file(REMOVE_RECURSE
  "CMakeFiles/example_budget_planner.dir/budget_planner.cpp.o"
  "CMakeFiles/example_budget_planner.dir/budget_planner.cpp.o.d"
  "example_budget_planner"
  "example_budget_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_budget_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
