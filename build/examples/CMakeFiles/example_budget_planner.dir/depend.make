# Empty dependencies file for example_budget_planner.
# This may be replaced when dependencies are built.
