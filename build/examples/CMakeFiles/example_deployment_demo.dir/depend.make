# Empty dependencies file for example_deployment_demo.
# This may be replaced when dependencies are built.
