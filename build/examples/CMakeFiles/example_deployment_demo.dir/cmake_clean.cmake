file(REMOVE_RECURSE
  "CMakeFiles/example_deployment_demo.dir/deployment_demo.cpp.o"
  "CMakeFiles/example_deployment_demo.dir/deployment_demo.cpp.o.d"
  "example_deployment_demo"
  "example_deployment_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_deployment_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
