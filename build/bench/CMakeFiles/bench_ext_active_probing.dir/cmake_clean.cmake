file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_active_probing.dir/bench_ext_active_probing.cpp.o"
  "CMakeFiles/bench_ext_active_probing.dir/bench_ext_active_probing.cpp.o.d"
  "bench_ext_active_probing"
  "bench_ext_active_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_active_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
