file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_oracle_potential.dir/bench_fig08_oracle_potential.cpp.o"
  "CMakeFiles/bench_fig08_oracle_potential.dir/bench_fig08_oracle_potential.cpp.o.d"
  "bench_fig08_oracle_potential"
  "bench_fig08_oracle_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_oracle_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
