# Empty compiler generated dependencies file for bench_fig08_oracle_potential.
# This may be replaced when dependencies are built.
