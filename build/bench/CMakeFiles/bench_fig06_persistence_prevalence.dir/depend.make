# Empty dependencies file for bench_fig06_persistence_prevalence.
# This may be replaced when dependencies are built.
