file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_persistence_prevalence.dir/bench_fig06_persistence_prevalence.cpp.o"
  "CMakeFiles/bench_fig06_persistence_prevalence.dir/bench_fig06_persistence_prevalence.cpp.o.d"
  "bench_fig06_persistence_prevalence"
  "bench_fig06_persistence_prevalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_persistence_prevalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
