# Empty dependencies file for bench_sec52_transit_vs_bounce.
# This may be replaced when dependencies are built.
