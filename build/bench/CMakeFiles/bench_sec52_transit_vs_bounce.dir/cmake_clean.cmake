file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_transit_vs_bounce.dir/bench_sec52_transit_vs_bounce.cpp.o"
  "CMakeFiles/bench_sec52_transit_vs_bounce.dir/bench_sec52_transit_vs_bounce.cpp.o.d"
  "bench_sec52_transit_vs_bounce"
  "bench_sec52_transit_vs_bounce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_transit_vs_bounce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
