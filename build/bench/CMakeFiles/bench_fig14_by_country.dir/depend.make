# Empty dependencies file for bench_fig14_by_country.
# This may be replaced when dependencies are built.
