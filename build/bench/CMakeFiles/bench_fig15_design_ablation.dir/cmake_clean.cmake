file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_design_ablation.dir/bench_fig15_design_ablation.cpp.o"
  "CMakeFiles/bench_fig15_design_ablation.dir/bench_fig15_design_ablation.cpp.o.d"
  "bench_fig15_design_ablation"
  "bench_fig15_design_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_design_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
