# Empty dependencies file for bench_fig05_aspair_contribution.
# This may be replaced when dependencies are built.
