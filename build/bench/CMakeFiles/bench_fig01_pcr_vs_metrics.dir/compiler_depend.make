# Empty compiler generated dependencies file for bench_fig01_pcr_vs_metrics.
# This may be replaced when dependencies are built.
