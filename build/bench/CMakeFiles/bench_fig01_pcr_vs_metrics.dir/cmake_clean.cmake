file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_pcr_vs_metrics.dir/bench_fig01_pcr_vs_metrics.cpp.o"
  "CMakeFiles/bench_fig01_pcr_vs_metrics.dir/bench_fig01_pcr_vs_metrics.cpp.o.d"
  "bench_fig01_pcr_vs_metrics"
  "bench_fig01_pcr_vs_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_pcr_vs_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
