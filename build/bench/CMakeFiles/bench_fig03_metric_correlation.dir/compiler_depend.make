# Empty compiler generated dependencies file for bench_fig03_metric_correlation.
# This may be replaced when dependencies are built.
