# Empty dependencies file for bench_fig18_deployment.
# This may be replaced when dependencies are built.
