# Empty compiler generated dependencies file for bench_fig17c_relay_deployment.
# This may be replaced when dependencies are built.
