file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hybrid_racing.dir/bench_ext_hybrid_racing.cpp.o"
  "CMakeFiles/bench_ext_hybrid_racing.dir/bench_ext_hybrid_racing.cpp.o.d"
  "bench_ext_hybrid_racing"
  "bench_ext_hybrid_racing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hybrid_racing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
