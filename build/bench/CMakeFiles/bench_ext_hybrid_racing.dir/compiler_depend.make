# Empty compiler generated dependencies file for bench_ext_hybrid_racing.
# This may be replaced when dependencies are built.
