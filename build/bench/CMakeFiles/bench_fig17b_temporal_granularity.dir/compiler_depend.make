# Empty compiler generated dependencies file for bench_fig17b_temporal_granularity.
# This may be replaced when dependencies are built.
