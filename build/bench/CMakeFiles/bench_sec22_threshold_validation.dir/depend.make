# Empty dependencies file for bench_sec22_threshold_validation.
# This may be replaced when dependencies are built.
