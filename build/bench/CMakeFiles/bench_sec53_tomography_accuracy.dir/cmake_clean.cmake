file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_tomography_accuracy.dir/bench_sec53_tomography_accuracy.cpp.o"
  "CMakeFiles/bench_sec53_tomography_accuracy.dir/bench_sec53_tomography_accuracy.cpp.o.d"
  "bench_sec53_tomography_accuracy"
  "bench_sec53_tomography_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_tomography_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
