# Empty dependencies file for bench_sec53_tomography_accuracy.
# This may be replaced when dependencies are built.
