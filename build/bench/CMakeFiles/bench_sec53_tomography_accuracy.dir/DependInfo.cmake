
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec53_tomography_accuracy.cpp" "bench/CMakeFiles/bench_sec53_tomography_accuracy.dir/bench_sec53_tomography_accuracy.cpp.o" "gcc" "bench/CMakeFiles/bench_sec53_tomography_accuracy.dir/bench_sec53_tomography_accuracy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/via_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/via_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/via_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/via_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/via_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/via_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/via_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
