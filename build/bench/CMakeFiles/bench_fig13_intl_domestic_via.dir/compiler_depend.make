# Empty compiler generated dependencies file for bench_fig13_intl_domestic_via.
# This may be replaced when dependencies are built.
