file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_intl_domestic_via.dir/bench_fig13_intl_domestic_via.cpp.o"
  "CMakeFiles/bench_fig13_intl_domestic_via.dir/bench_fig13_intl_domestic_via.cpp.o.d"
  "bench_fig13_intl_domestic_via"
  "bench_fig13_intl_domestic_via.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_intl_domestic_via.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
