# Empty dependencies file for bench_fig02_metric_cdfs.
# This may be replaced when dependencies are built.
