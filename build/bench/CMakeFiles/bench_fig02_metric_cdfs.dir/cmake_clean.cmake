file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_metric_cdfs.dir/bench_fig02_metric_cdfs.cpp.o"
  "CMakeFiles/bench_fig02_metric_cdfs.dir/bench_fig02_metric_cdfs.cpp.o.d"
  "bench_fig02_metric_cdfs"
  "bench_fig02_metric_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_metric_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
