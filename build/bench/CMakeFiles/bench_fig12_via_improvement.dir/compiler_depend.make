# Empty compiler generated dependencies file for bench_fig12_via_improvement.
# This may be replaced when dependencies are built.
