file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_intl_vs_domestic.dir/bench_fig04_intl_vs_domestic.cpp.o"
  "CMakeFiles/bench_fig04_intl_vs_domestic.dir/bench_fig04_intl_vs_domestic.cpp.o.d"
  "bench_fig04_intl_vs_domestic"
  "bench_fig04_intl_vs_domestic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_intl_vs_domestic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
