# Empty dependencies file for bench_fig04_intl_vs_domestic.
# This may be replaced when dependencies are built.
