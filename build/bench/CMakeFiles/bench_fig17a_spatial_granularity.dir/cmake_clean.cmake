file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17a_spatial_granularity.dir/bench_fig17a_spatial_granularity.cpp.o"
  "CMakeFiles/bench_fig17a_spatial_granularity.dir/bench_fig17a_spatial_granularity.cpp.o.d"
  "bench_fig17a_spatial_granularity"
  "bench_fig17a_spatial_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17a_spatial_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
