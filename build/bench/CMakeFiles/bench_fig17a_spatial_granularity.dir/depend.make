# Empty dependencies file for bench_fig17a_spatial_granularity.
# This may be replaced when dependencies are built.
