# Empty dependencies file for bench_fig16_budget.
# This may be replaced when dependencies are built.
