# Empty compiler generated dependencies file for bench_fig09_best_option_duration.
# This may be replaced when dependencies are built.
