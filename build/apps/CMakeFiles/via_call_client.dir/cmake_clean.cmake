file(REMOVE_RECURSE
  "CMakeFiles/via_call_client.dir/via_call_client.cpp.o"
  "CMakeFiles/via_call_client.dir/via_call_client.cpp.o.d"
  "via_call_client"
  "via_call_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_call_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
