# Empty compiler generated dependencies file for via_call_client.
# This may be replaced when dependencies are built.
