# Empty compiler generated dependencies file for via_controller.
# This may be replaced when dependencies are built.
