file(REMOVE_RECURSE
  "CMakeFiles/via_controller.dir/via_controller.cpp.o"
  "CMakeFiles/via_controller.dir/via_controller.cpp.o.d"
  "via_controller"
  "via_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
