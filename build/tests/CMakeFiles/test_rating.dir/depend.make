# Empty dependencies file for test_rating.
# This may be replaced when dependencies are built.
