# Empty dependencies file for test_emodel.
# This may be replaced when dependencies are built.
