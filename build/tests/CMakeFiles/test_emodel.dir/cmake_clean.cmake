file(REMOVE_RECURSE
  "CMakeFiles/test_emodel.dir/test_emodel.cpp.o"
  "CMakeFiles/test_emodel.dir/test_emodel.cpp.o.d"
  "test_emodel"
  "test_emodel.pdb"
  "test_emodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
