# Empty dependencies file for test_bandit.
# This may be replaced when dependencies are built.
