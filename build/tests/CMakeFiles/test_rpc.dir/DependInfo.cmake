
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rpc.cpp" "tests/CMakeFiles/test_rpc.dir/test_rpc.cpp.o" "gcc" "tests/CMakeFiles/test_rpc.dir/test_rpc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpc/CMakeFiles/via_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/via_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/via_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/via_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/via_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
