# Empty dependencies file for test_pathmodel.
# This may be replaced when dependencies are built.
