file(REMOVE_RECURSE
  "CMakeFiles/test_pathmodel.dir/test_pathmodel.cpp.o"
  "CMakeFiles/test_pathmodel.dir/test_pathmodel.cpp.o.d"
  "test_pathmodel"
  "test_pathmodel.pdb"
  "test_pathmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pathmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
