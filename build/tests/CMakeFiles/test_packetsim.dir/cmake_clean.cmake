file(REMOVE_RECURSE
  "CMakeFiles/test_packetsim.dir/test_packetsim.cpp.o"
  "CMakeFiles/test_packetsim.dir/test_packetsim.cpp.o.d"
  "test_packetsim"
  "test_packetsim.pdb"
  "test_packetsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packetsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
