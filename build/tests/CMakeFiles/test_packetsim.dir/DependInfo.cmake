
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_packetsim.cpp" "tests/CMakeFiles/test_packetsim.dir/test_packetsim.cpp.o" "gcc" "tests/CMakeFiles/test_packetsim.dir/test_packetsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quality/CMakeFiles/via_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/via_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/via_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
