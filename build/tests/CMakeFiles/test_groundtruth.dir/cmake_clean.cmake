file(REMOVE_RECURSE
  "CMakeFiles/test_groundtruth.dir/test_groundtruth.cpp.o"
  "CMakeFiles/test_groundtruth.dir/test_groundtruth.cpp.o.d"
  "test_groundtruth"
  "test_groundtruth.pdb"
  "test_groundtruth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_groundtruth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
