# Empty compiler generated dependencies file for test_tomography.
# This may be replaced when dependencies are built.
