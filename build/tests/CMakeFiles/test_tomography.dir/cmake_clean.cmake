file(REMOVE_RECURSE
  "CMakeFiles/test_tomography.dir/test_tomography.cpp.o"
  "CMakeFiles/test_tomography.dir/test_tomography.cpp.o.d"
  "test_tomography"
  "test_tomography.pdb"
  "test_tomography[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tomography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
