file(REMOVE_RECURSE
  "CMakeFiles/test_via_policy.dir/test_via_policy.cpp.o"
  "CMakeFiles/test_via_policy.dir/test_via_policy.cpp.o.d"
  "test_via_policy"
  "test_via_policy.pdb"
  "test_via_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_via_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
