# Empty dependencies file for test_via_policy.
# This may be replaced when dependencies are built.
