# Empty compiler generated dependencies file for via_quality.
# This may be replaced when dependencies are built.
