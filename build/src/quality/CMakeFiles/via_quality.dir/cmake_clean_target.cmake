file(REMOVE_RECURSE
  "libvia_quality.a"
)
