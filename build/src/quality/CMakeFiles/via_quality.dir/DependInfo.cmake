
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quality/emodel.cpp" "src/quality/CMakeFiles/via_quality.dir/emodel.cpp.o" "gcc" "src/quality/CMakeFiles/via_quality.dir/emodel.cpp.o.d"
  "/root/repo/src/quality/packetsim.cpp" "src/quality/CMakeFiles/via_quality.dir/packetsim.cpp.o" "gcc" "src/quality/CMakeFiles/via_quality.dir/packetsim.cpp.o.d"
  "/root/repo/src/quality/rating.cpp" "src/quality/CMakeFiles/via_quality.dir/rating.cpp.o" "gcc" "src/quality/CMakeFiles/via_quality.dir/rating.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/via_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/via_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
