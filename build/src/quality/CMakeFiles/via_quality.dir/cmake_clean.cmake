file(REMOVE_RECURSE
  "CMakeFiles/via_quality.dir/emodel.cpp.o"
  "CMakeFiles/via_quality.dir/emodel.cpp.o.d"
  "CMakeFiles/via_quality.dir/packetsim.cpp.o"
  "CMakeFiles/via_quality.dir/packetsim.cpp.o.d"
  "CMakeFiles/via_quality.dir/rating.cpp.o"
  "CMakeFiles/via_quality.dir/rating.cpp.o.d"
  "libvia_quality.a"
  "libvia_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
