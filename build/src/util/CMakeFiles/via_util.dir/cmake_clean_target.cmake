file(REMOVE_RECURSE
  "libvia_util.a"
)
