file(REMOVE_RECURSE
  "CMakeFiles/via_util.dir/geo.cpp.o"
  "CMakeFiles/via_util.dir/geo.cpp.o.d"
  "CMakeFiles/via_util.dir/histogram.cpp.o"
  "CMakeFiles/via_util.dir/histogram.cpp.o.d"
  "CMakeFiles/via_util.dir/percentile.cpp.o"
  "CMakeFiles/via_util.dir/percentile.cpp.o.d"
  "CMakeFiles/via_util.dir/rng.cpp.o"
  "CMakeFiles/via_util.dir/rng.cpp.o.d"
  "CMakeFiles/via_util.dir/table.cpp.o"
  "CMakeFiles/via_util.dir/table.cpp.o.d"
  "libvia_util.a"
  "libvia_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
