# Empty compiler generated dependencies file for via_util.
# This may be replaced when dependencies are built.
