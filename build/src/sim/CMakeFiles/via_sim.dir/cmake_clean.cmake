file(REMOVE_RECURSE
  "CMakeFiles/via_sim.dir/engine.cpp.o"
  "CMakeFiles/via_sim.dir/engine.cpp.o.d"
  "CMakeFiles/via_sim.dir/experiment.cpp.o"
  "CMakeFiles/via_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/via_sim.dir/oracle.cpp.o"
  "CMakeFiles/via_sim.dir/oracle.cpp.o.d"
  "libvia_sim.a"
  "libvia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
