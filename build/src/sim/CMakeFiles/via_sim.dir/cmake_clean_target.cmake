file(REMOVE_RECURSE
  "libvia_sim.a"
)
