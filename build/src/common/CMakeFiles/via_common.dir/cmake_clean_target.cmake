file(REMOVE_RECURSE
  "libvia_common.a"
)
