file(REMOVE_RECURSE
  "CMakeFiles/via_common.dir/relay_option.cpp.o"
  "CMakeFiles/via_common.dir/relay_option.cpp.o.d"
  "libvia_common.a"
  "libvia_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
