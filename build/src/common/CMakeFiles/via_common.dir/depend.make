# Empty dependencies file for via_common.
# This may be replaced when dependencies are built.
