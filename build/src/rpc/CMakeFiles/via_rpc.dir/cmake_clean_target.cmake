file(REMOVE_RECURSE
  "libvia_rpc.a"
)
