# Empty dependencies file for via_rpc.
# This may be replaced when dependencies are built.
