
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/client.cpp" "src/rpc/CMakeFiles/via_rpc.dir/client.cpp.o" "gcc" "src/rpc/CMakeFiles/via_rpc.dir/client.cpp.o.d"
  "/root/repo/src/rpc/framing.cpp" "src/rpc/CMakeFiles/via_rpc.dir/framing.cpp.o" "gcc" "src/rpc/CMakeFiles/via_rpc.dir/framing.cpp.o.d"
  "/root/repo/src/rpc/messages.cpp" "src/rpc/CMakeFiles/via_rpc.dir/messages.cpp.o" "gcc" "src/rpc/CMakeFiles/via_rpc.dir/messages.cpp.o.d"
  "/root/repo/src/rpc/server.cpp" "src/rpc/CMakeFiles/via_rpc.dir/server.cpp.o" "gcc" "src/rpc/CMakeFiles/via_rpc.dir/server.cpp.o.d"
  "/root/repo/src/rpc/socket.cpp" "src/rpc/CMakeFiles/via_rpc.dir/socket.cpp.o" "gcc" "src/rpc/CMakeFiles/via_rpc.dir/socket.cpp.o.d"
  "/root/repo/src/rpc/testbed.cpp" "src/rpc/CMakeFiles/via_rpc.dir/testbed.cpp.o" "gcc" "src/rpc/CMakeFiles/via_rpc.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/via_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/via_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/via_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/via_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
