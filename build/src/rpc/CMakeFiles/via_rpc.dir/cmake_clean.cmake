file(REMOVE_RECURSE
  "CMakeFiles/via_rpc.dir/client.cpp.o"
  "CMakeFiles/via_rpc.dir/client.cpp.o.d"
  "CMakeFiles/via_rpc.dir/framing.cpp.o"
  "CMakeFiles/via_rpc.dir/framing.cpp.o.d"
  "CMakeFiles/via_rpc.dir/messages.cpp.o"
  "CMakeFiles/via_rpc.dir/messages.cpp.o.d"
  "CMakeFiles/via_rpc.dir/server.cpp.o"
  "CMakeFiles/via_rpc.dir/server.cpp.o.d"
  "CMakeFiles/via_rpc.dir/socket.cpp.o"
  "CMakeFiles/via_rpc.dir/socket.cpp.o.d"
  "CMakeFiles/via_rpc.dir/testbed.cpp.o"
  "CMakeFiles/via_rpc.dir/testbed.cpp.o.d"
  "libvia_rpc.a"
  "libvia_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
