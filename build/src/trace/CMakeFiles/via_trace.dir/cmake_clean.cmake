file(REMOVE_RECURSE
  "CMakeFiles/via_trace.dir/dataset.cpp.o"
  "CMakeFiles/via_trace.dir/dataset.cpp.o.d"
  "CMakeFiles/via_trace.dir/generator.cpp.o"
  "CMakeFiles/via_trace.dir/generator.cpp.o.d"
  "libvia_trace.a"
  "libvia_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
