# Empty dependencies file for via_trace.
# This may be replaced when dependencies are built.
