file(REMOVE_RECURSE
  "libvia_trace.a"
)
