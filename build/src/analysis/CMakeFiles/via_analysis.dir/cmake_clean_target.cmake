file(REMOVE_RECURSE
  "libvia_analysis.a"
)
