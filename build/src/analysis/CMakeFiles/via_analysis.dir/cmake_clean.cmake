file(REMOVE_RECURSE
  "CMakeFiles/via_analysis.dir/section2.cpp.o"
  "CMakeFiles/via_analysis.dir/section2.cpp.o.d"
  "libvia_analysis.a"
  "libvia_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
