# Empty dependencies file for via_analysis.
# This may be replaced when dependencies are built.
