file(REMOVE_RECURSE
  "libvia_netsim.a"
)
