file(REMOVE_RECURSE
  "CMakeFiles/via_netsim.dir/dynamics.cpp.o"
  "CMakeFiles/via_netsim.dir/dynamics.cpp.o.d"
  "CMakeFiles/via_netsim.dir/groundtruth.cpp.o"
  "CMakeFiles/via_netsim.dir/groundtruth.cpp.o.d"
  "CMakeFiles/via_netsim.dir/pathmodel.cpp.o"
  "CMakeFiles/via_netsim.dir/pathmodel.cpp.o.d"
  "CMakeFiles/via_netsim.dir/world.cpp.o"
  "CMakeFiles/via_netsim.dir/world.cpp.o.d"
  "libvia_netsim.a"
  "libvia_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
