# Empty dependencies file for via_netsim.
# This may be replaced when dependencies are built.
