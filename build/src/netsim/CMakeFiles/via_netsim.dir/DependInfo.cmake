
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/dynamics.cpp" "src/netsim/CMakeFiles/via_netsim.dir/dynamics.cpp.o" "gcc" "src/netsim/CMakeFiles/via_netsim.dir/dynamics.cpp.o.d"
  "/root/repo/src/netsim/groundtruth.cpp" "src/netsim/CMakeFiles/via_netsim.dir/groundtruth.cpp.o" "gcc" "src/netsim/CMakeFiles/via_netsim.dir/groundtruth.cpp.o.d"
  "/root/repo/src/netsim/pathmodel.cpp" "src/netsim/CMakeFiles/via_netsim.dir/pathmodel.cpp.o" "gcc" "src/netsim/CMakeFiles/via_netsim.dir/pathmodel.cpp.o.d"
  "/root/repo/src/netsim/world.cpp" "src/netsim/CMakeFiles/via_netsim.dir/world.cpp.o" "gcc" "src/netsim/CMakeFiles/via_netsim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/via_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/via_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
