file(REMOVE_RECURSE
  "libvia_core.a"
)
