
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bandit.cpp" "src/core/CMakeFiles/via_core.dir/bandit.cpp.o" "gcc" "src/core/CMakeFiles/via_core.dir/bandit.cpp.o.d"
  "/root/repo/src/core/budget.cpp" "src/core/CMakeFiles/via_core.dir/budget.cpp.o" "gcc" "src/core/CMakeFiles/via_core.dir/budget.cpp.o.d"
  "/root/repo/src/core/extensions.cpp" "src/core/CMakeFiles/via_core.dir/extensions.cpp.o" "gcc" "src/core/CMakeFiles/via_core.dir/extensions.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/core/CMakeFiles/via_core.dir/history.cpp.o" "gcc" "src/core/CMakeFiles/via_core.dir/history.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/core/CMakeFiles/via_core.dir/policies.cpp.o" "gcc" "src/core/CMakeFiles/via_core.dir/policies.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/via_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/via_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/tomography.cpp" "src/core/CMakeFiles/via_core.dir/tomography.cpp.o" "gcc" "src/core/CMakeFiles/via_core.dir/tomography.cpp.o.d"
  "/root/repo/src/core/topk.cpp" "src/core/CMakeFiles/via_core.dir/topk.cpp.o" "gcc" "src/core/CMakeFiles/via_core.dir/topk.cpp.o.d"
  "/root/repo/src/core/via_policy.cpp" "src/core/CMakeFiles/via_core.dir/via_policy.cpp.o" "gcc" "src/core/CMakeFiles/via_core.dir/via_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/via_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/via_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
