file(REMOVE_RECURSE
  "CMakeFiles/via_core.dir/bandit.cpp.o"
  "CMakeFiles/via_core.dir/bandit.cpp.o.d"
  "CMakeFiles/via_core.dir/budget.cpp.o"
  "CMakeFiles/via_core.dir/budget.cpp.o.d"
  "CMakeFiles/via_core.dir/extensions.cpp.o"
  "CMakeFiles/via_core.dir/extensions.cpp.o.d"
  "CMakeFiles/via_core.dir/history.cpp.o"
  "CMakeFiles/via_core.dir/history.cpp.o.d"
  "CMakeFiles/via_core.dir/policies.cpp.o"
  "CMakeFiles/via_core.dir/policies.cpp.o.d"
  "CMakeFiles/via_core.dir/predictor.cpp.o"
  "CMakeFiles/via_core.dir/predictor.cpp.o.d"
  "CMakeFiles/via_core.dir/tomography.cpp.o"
  "CMakeFiles/via_core.dir/tomography.cpp.o.d"
  "CMakeFiles/via_core.dir/topk.cpp.o"
  "CMakeFiles/via_core.dir/topk.cpp.o.d"
  "CMakeFiles/via_core.dir/via_policy.cpp.o"
  "CMakeFiles/via_core.dir/via_policy.cpp.o.d"
  "libvia_core.a"
  "libvia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
