# Empty compiler generated dependencies file for via_core.
# This may be replaced when dependencies are built.
