# Empty compiler generated dependencies file for tool_benefit_probe.
# This may be replaced when dependencies are built.
