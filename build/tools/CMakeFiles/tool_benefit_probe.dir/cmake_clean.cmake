file(REMOVE_RECURSE
  "CMakeFiles/tool_benefit_probe.dir/benefit_probe.cpp.o"
  "CMakeFiles/tool_benefit_probe.dir/benefit_probe.cpp.o.d"
  "tool_benefit_probe"
  "tool_benefit_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_benefit_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
