# Empty compiler generated dependencies file for tool_via_probe2.
# This may be replaced when dependencies are built.
