file(REMOVE_RECURSE
  "CMakeFiles/tool_via_probe2.dir/via_probe2.cpp.o"
  "CMakeFiles/tool_via_probe2.dir/via_probe2.cpp.o.d"
  "tool_via_probe2"
  "tool_via_probe2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_via_probe2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
