# Empty dependencies file for tool_budget_probe.
# This may be replaced when dependencies are built.
