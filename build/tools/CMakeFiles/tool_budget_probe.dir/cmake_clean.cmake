file(REMOVE_RECURSE
  "CMakeFiles/tool_budget_probe.dir/budget_probe.cpp.o"
  "CMakeFiles/tool_budget_probe.dir/budget_probe.cpp.o.d"
  "tool_budget_probe"
  "tool_budget_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_budget_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
