# Empty compiler generated dependencies file for tool_testbed_probe.
# This may be replaced when dependencies are built.
