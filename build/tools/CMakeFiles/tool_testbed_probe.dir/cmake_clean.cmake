file(REMOVE_RECURSE
  "CMakeFiles/tool_testbed_probe.dir/testbed_probe.cpp.o"
  "CMakeFiles/tool_testbed_probe.dir/testbed_probe.cpp.o.d"
  "tool_testbed_probe"
  "tool_testbed_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_testbed_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
