file(REMOVE_RECURSE
  "CMakeFiles/tool_via_probe.dir/via_probe.cpp.o"
  "CMakeFiles/tool_via_probe.dir/via_probe.cpp.o.d"
  "tool_via_probe"
  "tool_via_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_via_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
