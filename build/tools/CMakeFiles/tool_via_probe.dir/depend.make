# Empty dependencies file for tool_via_probe.
# This may be replaced when dependencies are built.
