file(REMOVE_RECURSE
  "CMakeFiles/tool_pred_accuracy.dir/pred_accuracy.cpp.o"
  "CMakeFiles/tool_pred_accuracy.dir/pred_accuracy.cpp.o.d"
  "tool_pred_accuracy"
  "tool_pred_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_pred_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
