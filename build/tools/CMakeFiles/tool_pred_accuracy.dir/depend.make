# Empty dependencies file for tool_pred_accuracy.
# This may be replaced when dependencies are built.
