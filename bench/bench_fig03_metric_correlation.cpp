// Figure 3: pairwise correlation between the three metrics — the 10th /
// 50th / 90th percentile of one metric conditioned on bins of another.
// The paper's point: substantial spread means improving one metric could
// worsen another, so Via must also control the collective "at least one
// bad" PNR.
#include "bench_common.h"

#include "analysis/section2.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 3 — pairwise metric correlations (default-routed calls)", setup);

  const auto records = exp.generator().generate_default_routed();

  struct Panel {
    Metric x, y;
    double lo, hi;
    std::size_t bins;
  };
  const Panel panels[] = {{Metric::Rtt, Metric::Loss, 0, 640, 8},
                          {Metric::Rtt, Metric::Jitter, 0, 640, 8},
                          {Metric::Loss, Metric::Jitter, 0, 4, 8}};
  const std::int64_t min_samples = 200;

  for (const auto& panel : panels) {
    print_banner(std::cout, std::string(metric_name(panel.y)) + " conditioned on " +
                                std::string(metric_name(panel.x)));
    const auto rows = conditional_percentiles(records, panel.x, panel.y, panel.lo, panel.hi,
                                              panel.bins, min_samples);
    TextTable table({std::string(metric_name(panel.x)) + " bin center", "calls",
                     "p10 of " + std::string(metric_name(panel.y)),
                     "p50", "p90"});
    for (const auto& row : rows) {
      table.row()
          .cell(row.x_center, 1)
          .cell_int(row.calls)
          .cell(row.p10, 2)
          .cell(row.p50, 2)
          .cell(row.p90, 2);
    }
    table.print(std::cout);
  }

  print_paper_note(
      "metrics correlate positively but with a large p10-p90 spread: "
      "optimizing one metric does not automatically control the others.");
  print_elapsed(sw);
  return 0;
}
