// Section 2.2 (text): validating the thresholds-on-averages methodology
// against packet traces.  The paper ran a proprietary MOS calculator on
// 70K calls with full packet traces and found that 80% of calls rated
// "non-poor" by the average-value thresholds have a packet-trace MOS above
// the 75th percentile of the "poor" calls.  We rerun the same validation
// with our packet-level call simulator.
#include "bench_common.h"

#include <algorithm>

#include "quality/packetsim.h"
#include "util/percentile.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  setup.trace.total_calls = std::min<std::int64_t>(setup.trace.total_calls, 30'000);
  Experiment exp(setup);
  print_header("Section 2.2 — average thresholds vs packet-trace MOS", setup);

  const auto records = exp.generator().generate_default_routed();
  const PoorThresholds thresholds;
  PacketSimParams params;
  params.duration_s = 30.0;  // short calls keep the bench fast

  Rng rng(17);
  std::vector<double> poor_mos, good_mos;
  const std::size_t max_calls = 8000;
  for (std::size_t i = 0; i < records.size() && i < max_calls; ++i) {
    const auto& r = records[i];
    const PacketTraceResult packet = simulate_call_packets(r.perf, rng, params);
    (thresholds.any_poor(r.perf) ? poor_mos : good_mos).push_back(packet.mos);
  }

  std::sort(poor_mos.begin(), poor_mos.end());
  std::sort(good_mos.begin(), good_mos.end());

  TextTable table({"class (by average-value thresholds)", "calls", "MOS p25", "MOS p50",
                   "MOS p75"});
  auto add = [&](const char* label, const std::vector<double>& mos) {
    table.row()
        .cell(label)
        .cell_int(static_cast<long long>(mos.size()))
        .cell(percentile_sorted(mos, 25), 3)
        .cell(percentile_sorted(mos, 50), 3)
        .cell(percentile_sorted(mos, 75), 3);
  };
  add("non-poor (all metrics below thresholds)", good_mos);
  add("poor (at least one metric beyond)", poor_mos);
  table.print(std::cout);

  // The paper's statistic: fraction of non-poor calls whose packet-trace
  // MOS exceeds the 75th percentile of the poor calls' MOS.
  const double poor_p75 = percentile_sorted(poor_mos, 75);
  const auto above = static_cast<double>(std::count_if(
      good_mos.begin(), good_mos.end(), [&](double m) { return m > poor_p75; }));
  std::cout << "\nnon-poor calls with packet-trace MOS above the poor calls' p75: "
            << format_double(100.0 * above / static_cast<double>(good_mos.size()), 1)
            << "%   (paper: 80%)\n";

  print_paper_note(
      "thresholds on per-call averages are a reasonable approximation of "
      "packet-level quality, justifying the PNR methodology.");
  print_elapsed(sw);
  return 0;
}
