// Figure 9: how long the oracle's best relaying option lasts per AS pair.
// Paper: for 30% of AS pairs the optimal option changes within 2 days, and
// only 20% keep the same optimum for over 20 days — selection must be
// dynamic.
#include "bench_common.h"

#include <algorithm>

#include "util/percentile.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 9 — duration of the oracle's best relaying option", setup);

  const auto& pairs = exp.generator().traffic_matrix().pairs;
  // Cap the pair count so the bench stays fast at large scales.
  const std::size_t max_pairs = 600;
  const std::span<const TrafficMatrix::Pair> sample(
      pairs.data(), std::min(pairs.size(), max_pairs));

  for (const Metric m : kAllMetrics) {
    auto durations =
        best_option_durations(exp.ground_truth(), sample, setup.trace.days, m);
    if (durations.empty()) continue;
    std::sort(durations.begin(), durations.end());
    print_banner(std::cout, std::string("metric: ") + std::string(metric_name(m)) + " (" +
                                std::to_string(durations.size()) + " AS pairs, " +
                                std::to_string(setup.trace.days) + "-day horizon)");
    TextTable table({"CDF point", "median best-option duration (days)"});
    for (const double pct : {10.0, 25.0, 50.0, 75.0, 90.0}) {
      table.row().cell("p" + format_double(pct, 0)).cell(percentile_sorted(durations, pct), 1);
    }
    table.print(std::cout);
    const double n = static_cast<double>(durations.size());
    const auto short_lived = static_cast<double>(std::count_if(
        durations.begin(), durations.end(), [](double d) { return d < 2.0; }));
    const auto long_lived = static_cast<double>(std::count_if(
        durations.begin(), durations.end(), [](double d) { return d > 20.0; }));
    std::cout << "pairs whose best option lasts < 2 days:  "
              << format_double(100.0 * short_lived / n, 1) << "%   (paper: ~30%)\n"
              << "pairs whose best option lasts > 20 days: "
              << format_double(100.0 * long_lived / n, 1) << "%   (paper: ~20%)\n";
  }

  print_paper_note(
      "the best option churns for a large share of pairs: static relay "
      "assignment would quickly go stale (motivates Via's periodic refresh).");
  print_elapsed(sw);
  return 0;
}
