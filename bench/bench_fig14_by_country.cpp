// Figure 14: per-country dissection of Via's improvement — PNR of default /
// Via / oracle on each metric for the countries with the worst direct PNR.
// Paper: the worst countries sit far above the global PNR, and Via lands
// closer to the oracle than to the default for most of them.
#include "bench_common.h"

#include <algorithm>

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 14 — per-country PNR: default vs Via vs oracle", setup);

  RunConfig run_config;
  run_config.collect_by_country = true;
  run_config.min_pair_calls_for_eval =
      setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;

  for (const Metric m : kAllMetrics) {
    auto baseline = exp.make_default();
    auto via_policy = exp.make_via(m);
    auto oracle = exp.make_oracle(m);
    const RunResult base = exp.run(*baseline, run_config);
    const RunResult mine = exp.run(*via_policy, run_config);
    const RunResult best = exp.run(*oracle, run_config);

    // Countries ranked by direct PNR on this metric (enough data only).
    std::vector<std::pair<CountryId, double>> ranked;
    for (const auto& [country, acc] : base.by_country) {
      if (acc.total() < 300) continue;
      ranked.emplace_back(country, acc.pnr(m));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });

    print_banner(std::cout, std::string("PNR of ") + std::string(metric_name(m)) +
                                " — worst countries (international calls)");
    TextTable table({"country", "default", "Via", "oracle"});
    const auto countries = exp.world().countries();
    for (std::size_t i = 0; i < std::min<std::size_t>(ranked.size(), 10); ++i) {
      const CountryId c = ranked[i].first;
      auto pnr_of = [&](const RunResult& r) {
        const auto it = r.by_country.find(c);
        return it != r.by_country.end() ? it->second.pnr(m) : 0.0;
      };
      table.row()
          .cell(countries[static_cast<std::size_t>(c)].name)
          .cell_pct(pnr_of(base))
          .cell_pct(pnr_of(mine))
          .cell_pct(pnr_of(best));
    }
    table.print(std::cout);
    std::cout << "global direct PNR(" << metric_name(m) << "): "
              << format_double(100.0 * base.pnr.pnr(m), 1) << "%\n";
  }

  print_paper_note(
      "substantial diversity across countries; for most of the worst ones "
      "Via sits closer to the oracle than to default routing.");
  print_elapsed(sw);
  return 0;
}
