// Figure 1: user-perceived poor call rate (PCR) as a function of each
// network metric, over default-routed calls.  The paper's key finding is a
// strong monotone relationship (correlation coefficients 0.97/0.95/0.91)
// across the *entire* metric range.
#include "bench_common.h"

#include "analysis/section2.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 1 — PCR vs RTT / loss / jitter (default-routed calls)", setup);

  const auto records = exp.generator().generate_default_routed();

  struct Spec {
    Metric metric;
    double lo, hi;
    std::size_t bins;
    double paper_correlation;
  };
  // Bin counts chosen so each kept bin has >= min_samples rated calls.
  const Spec specs[] = {{Metric::Rtt, 0, 800, 16, 0.97},
                        {Metric::Loss, 0, 5, 10, 0.95},
                        {Metric::Jitter, 0, 30, 10, 0.91}};
  const std::int64_t min_samples = setup.trace.total_calls >= 300'000 ? 500 : 100;

  for (const auto& spec : specs) {
    const BinnedPcrCurve curve =
        binned_pcr(records, spec.metric, spec.lo, spec.hi, spec.bins, min_samples);
    print_banner(std::cout, std::string("PCR vs ") + std::string(metric_name(spec.metric)));
    TextTable table({std::string(metric_name(spec.metric)) + " bin (" +
                         std::string(metric_unit(spec.metric)) + ")",
                     "rated calls", "PCR", "normalized PCR"});
    for (const auto& bin : curve.bins) {
      table.row()
          .cell(format_double(bin.metric_lo, 1) + "-" +
                format_double(bin.metric_lo + (bin.metric_center - bin.metric_lo) * 2, 1))
          .cell_int(bin.calls)
          .cell_pct(bin.pcr)
          .cell(bin.normalized_pcr, 3);
    }
    table.print(std::cout);
    std::cout << "correlation(bin center, PCR) = " << format_double(curve.correlation, 3)
              << "   (paper: " << format_double(spec.paper_correlation, 2) << ")\n";
  }

  print_paper_note(
      "PCR rises monotonically with every metric over its whole range, "
      "motivating network-level optimization of all three.");
  print_elapsed(sw);
  return 0;
}
