// Figure 4: (a) international vs domestic PNR on each metric and the
// "at least one bad" criterion; (b) per-country PNR of international calls
// for the worst countries.  Paper: international calls see 2-3x the PNR of
// domestic ones, with the worst countries reaching ~70% on some metrics.
#include "bench_common.h"

#include "analysis/section2.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 4 — international vs domestic calls (default-routed)", setup);

  const auto records = exp.generator().generate_default_routed();
  const PnrBreakdown breakdown = pnr_breakdown(records);

  print_banner(std::cout, "4a: PNR by call class");
  TextTable table({"class", "calls", "PNR(RTT)", "PNR(loss)", "PNR(jitter)", "PNR(any bad)"});
  auto add_row = [&](const char* label, const PnrAccumulator& acc) {
    table.row()
        .cell(label)
        .cell_int(acc.total())
        .cell_pct(acc.pnr(Metric::Rtt))
        .cell_pct(acc.pnr(Metric::Loss))
        .cell_pct(acc.pnr(Metric::Jitter))
        .cell_pct(acc.pnr_any());
  };
  add_row("international", breakdown.international);
  add_row("domestic", breakdown.domestic);
  add_row("inter-AS", breakdown.inter_as);
  add_row("intra-AS", breakdown.intra_as);
  add_row("all", breakdown.all);
  table.print(std::cout);
  std::cout << "international / domestic PNR(any) ratio: "
            << format_double(breakdown.international.pnr_any() /
                                 std::max(1e-9, breakdown.domestic.pnr_any()),
                             2)
            << "x   (paper: 2-3x on every metric)\n";

  print_banner(std::cout, "4b: worst countries by PNR of their international calls");
  const auto by_country =
      pnr_by_country(records, /*international_only=*/true, /*min_calls=*/500);
  TextTable country_table({"country", "intl calls", "PNR(RTT)", "PNR(loss)", "PNR(jitter)",
                           "PNR(any bad)"});
  const auto countries = exp.world().countries();
  const std::size_t show = std::min<std::size_t>(by_country.size(), 15);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& entry = by_country[i];
    country_table.row()
        .cell(countries[static_cast<std::size_t>(entry.country)].name)
        .cell_int(entry.acc.total())
        .cell_pct(entry.acc.pnr(Metric::Rtt))
        .cell_pct(entry.acc.pnr(Metric::Loss))
        .cell_pct(entry.acc.pnr(Metric::Jitter))
        .cell_pct(entry.acc.pnr_any());
  }
  country_table.print(std::cout);

  print_paper_note(
      "a skewed distribution: the worst countries reach very high PNR, but "
      "half of all countries still see 25-50% — poor performance is global, "
      "not a few pockets.");
  print_elapsed(sw);
  return 0;
}
