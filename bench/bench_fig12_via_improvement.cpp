// Figure 12: Via's headline result.  (a) PNR reduction of Via vs the two
// strawmen and the oracle, per metric and on "at least one bad".
// (b) improvement of the metric percentiles.  Paper: Via cuts per-metric
// PNR by 39-45% (oracle 53%), the collective PNR by 23% (oracle 30%), and
// improves the median by 20-58% and the tail by 35-60%.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace via;
  using namespace via::bench;
  const int threads = parse_threads(argc, argv);
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 12 — improvement of Via vs strawmen and oracle", setup);

  // Evaluate on data-dense pairs, per the paper's §5.1 methodology.
  RunConfig run_config;
  run_config.min_pair_calls_for_eval =
      setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;

  // All 13 runs (baseline + 4 strategies x 3 target metrics) are
  // independent, so they fan out over the parallel runner in one batch.
  const std::vector<std::string> strategies = {"prediction-only", "exploration-only", "via",
                                               "oracle"};
  std::vector<RunSpec> specs;
  specs.push_back({"default", [&exp] { return exp.make_default(); }, run_config});
  for (const auto& which : strategies) {
    for (const Metric m : kAllMetrics) {
      std::function<std::unique_ptr<RoutingPolicy>()> factory;
      if (which == "prediction-only") {
        factory = [&exp, m] { return exp.make_prediction_only(m); };
      } else if (which == "exploration-only") {
        factory = [&exp, m] { return exp.make_exploration_only(m); };
      } else if (which == "via") {
        factory = [&exp, m] { return exp.make_via(m); };
      } else {
        factory = [&exp, m] { return exp.make_oracle(m); };
      }
      specs.push_back({which + "/" + std::string(metric_name(m)), std::move(factory),
                       run_config});
    }
  }
  const std::vector<RunResult> results = exp.run_many(specs, threads);
  const RunResult& base = results[0];

  struct PolicyRuns {
    std::string name;
    std::array<RunResult, kNumMetrics> runs;
  };
  std::vector<PolicyRuns> all;
  for (std::size_t w = 0; w < strategies.size(); ++w) {
    PolicyRuns pr;
    pr.name = strategies[w];
    for (const Metric m : kAllMetrics) {
      pr.runs[metric_index(m)] = results[1 + w * kNumMetrics + metric_index(m)];
    }
    all.push_back(std::move(pr));
  }

  print_banner(std::cout, "12a: PNR reduction over the default strategy");
  TextTable table({"strategy", "RTT", "loss", "jitter", "at least one bad"});
  table.row()
      .cell("default PNR (absolute)")
      .cell_pct(base.pnr.pnr(Metric::Rtt))
      .cell_pct(base.pnr.pnr(Metric::Loss))
      .cell_pct(base.pnr.pnr(Metric::Jitter))
      .cell_pct(base.pnr.pnr_any());
  for (const auto& pr : all) {
    TextTable& row = table.row();
    row.cell(pr.name);
    for (const Metric m : kAllMetrics) {
      const double red =
          relative_improvement_pct(base.pnr.pnr(m), pr.runs[metric_index(m)].pnr.pnr(m));
      row.cell(format_double(red, 1) + "%");
    }
    double worst_any = 0.0;
    for (const auto& run : pr.runs) worst_any = std::max(worst_any, run.pnr.pnr_any());
    row.cell(format_double(relative_improvement_pct(base.pnr.pnr_any(), worst_any), 1) + "%");
  }
  table.print(std::cout);
  std::cout << "paper: Via 39-45% per metric / 23% collective; oracle 53% / 30%; "
               "both strawmen clearly lower than Via.\n";

  print_banner(std::cout, "12b: Via's improvement at metric percentiles");
  TextTable pct_table({"metric", "p25", "p50", "p75", "p90", "p99", "paper"});
  const auto& via_runs = all[2].runs;
  for (const Metric m : kAllMetrics) {
    const auto cmp = compare_percentiles(base, via_runs[metric_index(m)], m,
                                         {25.0, 50.0, 75.0, 90.0, 99.0});
    TextTable& row = pct_table.row();
    row.cell(std::string(metric_name(m)));
    for (const double imp : cmp.improvement_pct) row.cell(format_double(imp, 1) + "%");
    row.cell("20-58% (p50), 20-57% (p90)");
  }
  pct_table.print(std::cout);

  print_paper_note(
      "Via approaches the oracle and clearly beats both pure prediction and "
      "pure exploration — the core claim of prediction-guided exploration.");
  print_elapsed(sw);
  return 0;
}
