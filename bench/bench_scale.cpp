// Scale bench (DESIGN.md §6i): the 100M-call / 1M-AS-pair streaming run.
//
// Unlike the figure benches, nothing here materializes the trace or a
// ground-truth model: arrivals are pulled one at a time from a
// SyntheticArrivalStream, per-call performance is a pure hash of
// (pair, option, day, call), and the policy runs with every §6i memory
// bound engaged (window path cap, snapshot memo budget, resident-pair cap
// + TTL).  The bench demonstrates — and BENCH_scale.json records — that
// throughput and peak RSS stay flat as call count grows without bound.
//
//   bench_scale [--calls N] [--pairs N] [--days N] [--seed S]
//               [--rss-cap-mb M] [--json PATH]
//
// Exits nonzero when peak RSS (VmHWM) breaches --rss-cap-mb, so CI can
// gate on "the scale run fits".  Defaults reproduce the checked-in
// 100M-call / 1M-pair run under a 4 GiB cap; CI runs a 1M/100k smoke.
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "bench_common.h"
#include "common/relay_option.h"
#include "core/via_policy.h"
#include "trace/stream.h"
#include "util/rng.h"

using namespace via;

namespace {

struct ScaleArgs {
  std::int64_t calls = 100'000'000;
  std::int64_t pairs = 1'000'000;
  int days = 30;
  std::uint64_t seed = 7;
  std::int64_t rss_cap_mb = 4096;
  std::string json_path = "BENCH_scale.json";
};

ScaleArgs parse_args(int argc, char** argv) {
  ScaleArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bench_scale: missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--calls") {
      args.calls = std::atoll(next());
    } else if (arg == "--pairs") {
      args.pairs = std::atoll(next());
    } else if (arg == "--days") {
      args.days = std::atoi(next());
    } else if (arg == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--rss-cap-mb") {
      args.rss_cap_mb = std::atoll(next());
    } else if (arg == "--json") {
      args.json_path = next();
    } else {
      std::cerr << "bench_scale: unknown argument " << arg << "\n"
                << "usage: bench_scale [--calls N] [--pairs N] [--days N] [--seed S]\n"
                << "                   [--rss-cap-mb M] [--json PATH]\n";
      std::exit(2);
    }
  }
  return args;
}

/// A /proc/self/status row in kB (VmHWM = peak RSS, VmRSS = current), or -1.
std::int64_t status_kb(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) == 0) return std::atoll(line.c_str() + std::strlen(key) + 1);
  }
  return -1;
}

// The synthetic "network": a modest relay fleet whose options are interned
// once up front; every pair's candidate set is a stable hash of its pair
// key into that table, so candidate memory is O(options), not O(pairs).
constexpr int kRelays = 24;
constexpr std::size_t kCandidatesPerPair = 6;

/// Fills `out` with the pair's candidate set: direct first, then
/// kCandidatesPerPair-1 distinct non-direct options on a hashed stride.
void candidates_for(std::uint64_t pair_key, std::uint32_t non_direct,
                    std::array<OptionId, kCandidatesPerPair>& out) {
  out[0] = RelayOptionTable::direct_id();
  const auto start =
      static_cast<std::uint32_t>(hash_mix(pair_key, 0xca9d) % non_direct);
  for (std::size_t i = 1; i < kCandidatesPerPair; ++i) {
    // Stride 37 is coprime with the 300 non-direct options, so the picks
    // stay distinct.
    out[i] = static_cast<OptionId>(1 + (start + (i - 1) * 37) % non_direct);
  }
}

/// Deterministic per-call performance: a stable (pair, option) quality
/// level, a day-scale drift, and per-call noise — all pure hashes, so the
/// run is reproducible and nothing is memoized anywhere.
PathPerformance sample_perf(std::uint64_t seed, std::uint64_t pair_key, OptionId option,
                            TimeSec t, CallId id) {
  const std::uint64_t path =
      hash_mix(seed, hash_mix(pair_key, 0x9e00 + static_cast<std::uint64_t>(option)));
  const double base = hashed_uniform(path);
  const double daily =
      hashed_uniform(hash_mix(path, static_cast<std::uint64_t>(day_of(t))));
  const double noise = hashed_uniform(
      hash_mix(0xca11, static_cast<std::uint64_t>(id) ^ static_cast<std::uint64_t>(option)));
  PathPerformance p;
  p.rtt_ms = 40.0 + 260.0 * base + 60.0 * daily + 40.0 * noise;
  p.loss_pct = 2.5 * base * daily + 0.5 * noise;
  p.jitter_ms = 3.0 + 12.0 * base + 5.0 * noise;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const ScaleArgs args = parse_args(argc, argv);

  StreamTraceConfig trace;
  trace.total_calls = args.calls;
  trace.days = args.days;
  trace.active_pairs = args.pairs;
  trace.seed = args.seed;
  SyntheticArrivalStream stream(trace);

  std::cout << "=====================================================================\n"
            << "bench_scale: streaming replay at fixed RSS (DESIGN.md §6i)\n"
            << "workload: " << args.calls << " calls, " << args.pairs << " active pairs, "
            << args.days << " days, seed " << args.seed << "\n"
            << "rss cap: " << args.rss_cap_mb << " MB (VmHWM)\n"
            << "=====================================================================\n";

  // Phase 1: generator-only pass — how fast the stream itself produces
  // arrivals (the figure benches' trace-materialization cost, amortized).
  std::int64_t generated = 0;
  const double gen_rps = via::bench::stream_arrivals_per_sec(stream, &generated);
  std::cout << "generator: " << generated << " arrivals ("
            << format_double(gen_rps / 1e6, 2) << "M arrivals/s)\n";

  // The relay fleet: all bounce and transit combinations of kRelays sites.
  RelayOptionTable options;
  for (RelayId r = 0; r < kRelays; ++r) options.intern_bounce(r);
  for (RelayId a = 0; a < kRelays; ++a) {
    for (RelayId b = static_cast<RelayId>(a + 1); b < kRelays; ++b) {
      options.intern_transit(a, b);
    }
  }
  const auto non_direct = static_cast<std::uint32_t>(options.size() - 1);

  const std::uint64_t seed = args.seed;
  BackboneFn backbone = [seed](RelayId a, RelayId b) {
    const std::uint64_t h = hash_mix(
        seed, hash_mix(0xbb, (static_cast<std::uint64_t>(static_cast<std::uint16_t>(a)) << 16) |
                                 static_cast<std::uint16_t>(b)));
    PathPerformance p;
    p.rtt_ms = 5.0 + 20.0 * hashed_uniform(h);
    p.loss_pct = 0.05;
    p.jitter_ms = 1.0 + 2.0 * hashed_uniform(hash_mix(h, 1));
    return p;
  };

  // Every §6i bound engaged, scaled to the workload so both smoke (1M/100k)
  // and full (100M/1M) runs actually evict.
  ViaConfig config;
  config.seed = args.seed;
  config.mem.max_window_paths =
      std::max<std::size_t>(4096, static_cast<std::size_t>(args.pairs) * 2);
  config.mem.snapshot_memo_budget =
      std::max<std::size_t>(2048, static_cast<std::size_t>(args.pairs) / 2);
  config.mem.max_resident_pairs =
      std::max<std::size_t>(2048, static_cast<std::size_t>(args.pairs) / 2);
  config.mem.pair_ttl_periods = 2;
  ViaPolicy policy(options, backbone, config);

  // Phase 2: the streaming policy replay.  One arrival at a time — the
  // only per-call allocations are inside the policy's bounded state.
  stream.reset();
  std::int64_t replayed = 0;
  double policy_seconds = 0.0;
  {
    const via::bench::Stopwatch sw;
    TimeSec next_refresh = config.refresh_period;
    std::array<OptionId, kCandidatesPerPair> cand{};
    CallArrival a;
    while (stream.next(a)) {
      while (a.time >= next_refresh) {
        policy.refresh(next_refresh);
        next_refresh += config.refresh_period;
      }
      CallContext ctx;
      ctx.id = a.id;
      ctx.time = a.time;
      ctx.src_as = a.src_as;
      ctx.dst_as = a.dst_as;
      ctx.key_src = a.src_as;
      ctx.key_dst = a.dst_as;
      ctx.src_country = a.src_country;
      ctx.dst_country = a.dst_country;
      const std::uint64_t pair_key = ctx.pair_key();
      candidates_for(pair_key, non_direct, cand);
      ctx.options = cand;

      const OptionId choice = policy.choose(ctx);

      Observation obs;
      obs.id = a.id;
      obs.time = a.time;
      obs.src_as = a.src_as;
      obs.dst_as = a.dst_as;
      obs.option = choice;
      obs.perf = sample_perf(args.seed, pair_key, choice, a.time, a.id);
      policy.observe(obs);

      if ((++replayed % 10'000'000) == 0) {
        std::cout << "  " << replayed << " calls, VmRSS " << status_kb("VmRSS:") / 1024
                  << " MB, " << format_double(sw.seconds(), 0) << "s\n";
      }
    }
    policy_seconds = sw.seconds();
  }
  const double policy_rps =
      policy_seconds > 0.0 ? static_cast<double>(replayed) / policy_seconds : 0.0;

  const ViaPolicy::Stats stats = policy.stats();
  const ViaPolicy::MemoryStats mem = policy.memory_stats();
  const std::int64_t peak_rss_kb = status_kb("VmHWM:");
  const double peak_rss_mb = static_cast<double>(peak_rss_kb) / 1024.0;
  const double model_bytes_per_pair =
      mem.resident_pairs > 0
          ? static_cast<double>(mem.total_bytes()) / static_cast<double>(mem.resident_pairs)
          : 0.0;
  const double rss_bytes_per_pair =
      args.pairs > 0 ? static_cast<double>(peak_rss_kb) * 1024.0 /
                           static_cast<double>(args.pairs)
                     : 0.0;

  std::cout << "\npolicy: " << replayed << " calls in " << format_double(policy_seconds, 1)
            << "s (" << format_double(policy_rps / 1e3, 1) << "k calls/s)\n"
            << "decisions: " << stats.bandit_served << " bandit, " << stats.epsilon_explored
            << " explored, " << stats.cold_start_direct << " cold-start direct\n"
            << "memory: window " << mem.window_bytes / (1 << 20) << " MB (" << mem.window_paths
            << " paths, " << mem.window_evictions << " evictions), snapshot "
            << mem.snapshot_bytes / (1 << 20) << " MB (" << mem.memo_overflow_builds
            << " overflow builds), store " << mem.store_bytes / (1 << 20) << " MB ("
            << mem.resident_pairs << " pairs, " << mem.store_evictions << " evictions)\n"
            << "peak RSS: " << format_double(peak_rss_mb, 0) << " MB ("
            << format_double(rss_bytes_per_pair, 0) << " B/pair at " << args.pairs
            << " pairs)\n";

  via::bench::BenchJson json;
  json.set_int("cores", static_cast<long long>(std::thread::hardware_concurrency()));
  json.set_int("scale_calls", replayed);
  json.set_int("scale_pairs", args.pairs);
  json.set_int("scale_days", args.days);
  json.set("scale_gen_rps", gen_rps);
  json.set("scale_policy_rps", policy_rps);
  json.set("scale_peak_rss_mb", peak_rss_mb);
  json.set("scale_rss_bytes_per_pair", rss_bytes_per_pair);
  json.set("scale_model_bytes_per_pair", model_bytes_per_pair);
  json.set_int("scale_window_bytes", static_cast<long long>(mem.window_bytes));
  json.set_int("scale_snapshot_bytes", static_cast<long long>(mem.snapshot_bytes));
  json.set_int("scale_store_bytes", static_cast<long long>(mem.store_bytes));
  json.set_int("scale_window_evictions", mem.window_evictions);
  json.set_int("scale_store_evictions", mem.store_evictions);
  json.set_int("scale_memo_overflow_builds", mem.memo_overflow_builds);
  json.set_int("scale_rss_cap_mb", args.rss_cap_mb);
  const bool within_cap = peak_rss_kb >= 0 && peak_rss_mb <= static_cast<double>(args.rss_cap_mb);
  json.set_bool("scale_within_rss_cap", within_cap);
  json.write(args.json_path);
  std::cout << "\nwrote " << args.json_path << "\n";

  if (!within_cap) {
    std::cerr << "bench_scale: FAIL: peak RSS " << format_double(peak_rss_mb, 0)
              << " MB exceeds cap " << args.rss_cap_mb << " MB\n";
    return 1;
  }
  std::cout << "peak RSS within " << args.rss_cap_mb << " MB cap\n";
  return 0;
}
