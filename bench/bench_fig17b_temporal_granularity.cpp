// Figure 17b: temporal granularity — how often the controller refreshes the
// predictor and top-k sets (T of Figure 10).  Paper: daily refresh is the
// sweet spot; much coarser goes stale, much finer starves each window of
// data.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace via;
  using namespace via::bench;
  const int threads = parse_threads(argc, argv);
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 17b — temporal refresh granularity T", setup);

  const Metric target = Metric::Rtt;
  RunConfig base_config;
  base_config.min_pair_calls_for_eval =
      setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;

  // One batch: the baseline plus one Via run per refresh period (the period
  // lives in the per-spec RunConfig).
  const std::vector<int> periods = {6, 12, 24, 48, 96};
  std::vector<RunSpec> specs;
  specs.push_back({"default", [&exp] { return exp.make_default(); }, base_config});
  for (const int hours : periods) {
    RunConfig config = base_config;
    config.refresh_period = static_cast<TimeSec>(hours) * 3600;
    specs.push_back(
        {"via/T=" + std::to_string(hours) + "h", [&exp, target] { return exp.make_via(target); },
         config});
  }
  const std::vector<RunResult> results = exp.run_many(specs, threads);
  const RunResult& base = results[0];

  TextTable table({"refresh period T", "PNR(RTT)", "reduction vs default", "PNR(any bad)"});
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const int hours = periods[i];
    const RunResult& r = results[1 + i];
    table.row()
        .cell(std::to_string(hours) + "h")
        .cell_pct(r.pnr.pnr(target))
        .cell(format_double(relative_improvement_pct(base.pnr.pnr(target), r.pnr.pnr(target)),
                            1) +
              "%")
        .cell_pct(r.pnr.pnr_any());
  }
  table.print(std::cout);
  std::cout << "default PNR(RTT): " << format_double(100.0 * base.pnr.pnr(target), 1) << "%\n";

  print_paper_note("diminishing returns finer than ~daily; stale decisions beyond that.");
  print_elapsed(sw);
  return 0;
}
