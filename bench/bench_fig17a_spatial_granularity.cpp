// Figure 17a: spatial granularity of relay decisions.  Via keys its state
// per country pair, AS pair (default) or /24-like prefix pair.  Paper:
// coarser than AS pair loses opportunities (different ISPs have different
// optimal relays); finer gains little because coverage collapses.
#include "bench_common.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 17a — spatial decision granularity", setup);

  const Metric target = Metric::Rtt;
  auto baseline = exp.make_default();
  RunConfig base_config;
  base_config.min_pair_calls_for_eval =
      setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;
  const RunResult base = exp.run(*baseline, base_config);

  TextTable table({"granularity", "PNR(RTT)", "reduction vs default", "PNR(any bad)"});
  const struct {
    const char* label;
    Granularity granularity;
  } levels[] = {{"country pair", Granularity::Country},
                {"AS pair (Via default)", Granularity::AsPair},
                {"prefix pair", Granularity::Prefix}};
  for (const auto& level : levels) {
    RunConfig config = base_config;
    config.granularity = level.granularity;
    auto policy = exp.make_via(target);
    const RunResult r = exp.run(*policy, config);
    table.row()
        .cell(level.label)
        .cell_pct(r.pnr.pnr(target))
        .cell(format_double(relative_improvement_pct(base.pnr.pnr(target), r.pnr.pnr(target)),
                            1) +
              "%")
        .cell_pct(r.pnr.pnr_any());
  }
  table.print(std::cout);
  std::cout << "default PNR(RTT): " << format_double(100.0 * base.pnr.pnr(target), 1) << "%\n";

  print_paper_note(
      "AS-pair granularity is the sweet spot: per-country decisions miss "
      "ISP-level differences, per-prefix decisions starve on data.");
  print_elapsed(sw);
  return 0;
}
