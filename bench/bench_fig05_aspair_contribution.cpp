// Figure 5: cumulative share of poor calls contributed by the worst-n AS
// pairs.  Paper: even the worst 1000 AS pairs account for under 15% of the
// overall PNR — localized fixes cannot solve the problem.
#include "bench_common.h"

#include "analysis/section2.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 5 — contribution of the worst AS pairs to poor calls", setup);

  const auto records = exp.generator().generate_default_routed();
  const PairContributionCurve curve = aspair_contribution(records);

  std::cout << "total AS pairs with poor calls: " << curve.total_pairs
            << ", total poor calls: " << curve.total_poor_calls << "\n\n";

  TextTable table({"worst n AS pairs", "share of all poor calls", "share of pairs"});
  for (const double frac : {0.005, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.0}) {
    const auto n = std::max<std::size_t>(
        1, static_cast<std::size_t>(frac * static_cast<double>(curve.total_pairs)));
    if (n > curve.cumulative_share.size()) continue;
    table.row()
        .cell_int(static_cast<long long>(n))
        .cell_pct(curve.cumulative_share[n - 1])
        .cell_pct(frac);
  }
  table.print(std::cout);

  // The paper's specific data point: the worst 1000 of ~hundreds of
  // thousands of pairs contribute < 15%.  At our scale we report the
  // equivalent: the worst ~0.5% of pairs.
  const auto n_head = std::max<std::size_t>(
      1, static_cast<std::size_t>(0.005 * static_cast<double>(curve.total_pairs)));
  std::cout << "\nworst 0.5% of pairs contribute "
            << format_double(100.0 * curve.cumulative_share[n_head - 1], 1)
            << "% of poor calls   (paper: worst 1000 pairs < 15%)\n";

  print_paper_note(
      "no small set of source-destination pairs dominates: fixing a few bad "
      "ASes or pairs cannot repair overall call quality.");
  print_elapsed(sw);
  return 0;
}
