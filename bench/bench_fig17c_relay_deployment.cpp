// Figure 17c: relay-deployment sensitivity — PNR when the least-used
// relays are excluded.  Paper: benefits are highly skewed across relays;
// removing 50% of the least-used ones barely dents Via's gains.
#include "bench_common.h"

#include <algorithm>

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  print_header("Figure 17c — excluding the least-used relays", setup);

  const Metric target = Metric::Rtt;

  // Pass 1 (full fleet): measure per-relay usage under Via.
  std::vector<std::int64_t> usage;
  double full_pnr = 0.0;
  double default_pnr = 0.0;
  {
    Experiment exp(setup);
    RunConfig run_config;
    run_config.min_pair_calls_for_eval =
        setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;
    auto baseline = exp.make_default();
    default_pnr = exp.run(*baseline, run_config).pnr.pnr(target);

    usage.assign(static_cast<std::size_t>(exp.world().num_relays()), 0);
    // Count relay usage via a usage-counting wrapper policy.
    class CountingVia final : public RoutingPolicy {
     public:
      CountingVia(std::unique_ptr<ViaPolicy> inner, const RelayOptionTable& options,
                  std::vector<std::int64_t>& usage)
          : inner_(std::move(inner)), options_(&options), usage_(&usage) {}
      OptionId choose(const CallContext& call) override {
        const OptionId pick = inner_->choose(call);
        const RelayOption& o = options_->get(pick);
        if (o.kind != RelayKind::Direct) ++(*usage_)[static_cast<std::size_t>(o.a)];
        if (o.kind == RelayKind::Transit) ++(*usage_)[static_cast<std::size_t>(o.b)];
        return pick;
      }
      void observe(const Observation& obs) override { inner_->observe(obs); }
      void refresh(TimeSec now) override { inner_->refresh(now); }
      std::string_view name() const override { return "via-counting"; }

     private:
      std::unique_ptr<ViaPolicy> inner_;
      const RelayOptionTable* options_;
      std::vector<std::int64_t>* usage_;
    };

    CountingVia counting(exp.make_via(target), exp.ground_truth().option_table(), usage);
    full_pnr = exp.run(counting, run_config).pnr.pnr(target);
  }

  // Pass 2..n: drop the least-used relays and rerun.
  std::vector<RelayId> order(usage.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<RelayId>(i);
  std::sort(order.begin(), order.end(),
            [&](RelayId a, RelayId b) {
              return usage[static_cast<std::size_t>(a)] < usage[static_cast<std::size_t>(b)];
            });

  TextTable table({"relays excluded (least used)", "PNR(RTT)", "reduction vs default"});
  table.row()
      .cell("0%")
      .cell_pct(full_pnr)
      .cell(format_double(relative_improvement_pct(default_pnr, full_pnr), 1) + "%");
  for (const double frac : {0.25, 0.5, 0.75}) {
    Experiment exp(setup);
    RunConfig run_config;
    run_config.min_pair_calls_for_eval =
        setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;
    std::vector<bool> allowed(usage.size(), true);
    const auto drop = static_cast<std::size_t>(frac * static_cast<double>(usage.size()));
    for (std::size_t i = 0; i < drop; ++i) {
      allowed[static_cast<std::size_t>(order[i])] = false;
    }
    exp.ground_truth().set_allowed_relays(allowed);
    auto policy = exp.make_via(target);
    const RunResult r = exp.run(*policy, run_config);
    table.row()
        .cell(format_double(100.0 * frac, 0) + "%")
        .cell_pct(r.pnr.pnr(target))
        .cell(format_double(relative_improvement_pct(default_pnr, r.pnr.pnr(target)), 1) +
              "%");
  }
  table.print(std::cout);
  std::cout << "default PNR(RTT): " << format_double(100.0 * default_pnr, 1) << "%\n";

  print_paper_note(
      "relay contribution is highly skewed: half the fleet can go with "
      "little loss, so new deployments should be placed deliberately.");
  print_elapsed(sw);
  return 0;
}
