// Section 5.3 (text): accuracy of tomography-based prediction.  Train the
// predictor on one day's history and compare predictions against the next
// day's true option averages.  Paper: 71% of predictions within 20% of the
// actual, 14% at least 50% off — good enough to prune, not good enough to
// pick, which is the entire case for prediction-guided exploration.
#include "bench_common.h"

#include <unordered_set>

#include "core/predictor.h"
#include "util/histogram.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Section 5.3 — prediction accuracy of relay-based tomography", setup);

  auto& gt = exp.ground_truth();
  Rng rng(5);

  struct Tally {
    std::int64_t total = 0, within20 = 0, over50 = 0;
    std::int64_t empirical = 0, tomography = 0;
  };
  std::array<Tally, kNumMetrics> tallies;
  Histogram error_hist(0.0, 1.0, 20);

  const int step = std::max(1, setup.trace.days / 6);
  for (int d = 1; d < setup.trace.days; d += step) {
    // Build a day-(d-1) window from a realistic option mix (part direct,
    // part relayed — the controller's own traffic plus connectivity
    // relays).
    HistoryWindow window(&gt.option_table());
    for (const auto& a : exp.arrivals()) {
      if (a.day() != d - 1) continue;
      const auto opts = gt.candidate_options(a.src_as, a.dst_as);
      const OptionId opt = rng.bernoulli(0.4)
                               ? RelayOptionTable::direct_id()
                               : opts[rng.uniform_index(opts.size())];
      Observation o;
      o.id = a.id;
      o.time = a.time;
      o.src_as = a.src_as;
      o.dst_as = a.dst_as;
      o.option = opt;
      o.ingress = gt.transit_ingress(a.src_as, opt);
      o.perf = gt.sample_call(a.id, a.src_as, a.dst_as, opt, a.time);
      window.add(o);
    }

    Predictor predictor(gt.option_table(),
                        [&gt](RelayId x, RelayId y) { return gt.backbone(x, y); });
    predictor.train(window);

    std::unordered_set<std::uint64_t> seen_pairs;
    for (const auto& a : exp.arrivals()) {
      if (a.day() != d) continue;
      if (!seen_pairs.insert(a.pair_key()).second) continue;
      for (const OptionId opt : gt.candidate_options(a.src_as, a.dst_as)) {
        for (const Metric m : kAllMetrics) {
          const Prediction p = predictor.predict(a.src_as, a.dst_as, opt, m);
          if (!p.valid) continue;
          const double actual = gt.day_mean(a.src_as, a.dst_as, opt, d).get(m);
          if (actual <= 0.0) continue;
          const double err = std::abs(p.mean - actual) / actual;
          Tally& tally = tallies[metric_index(m)];
          ++tally.total;
          if (err <= 0.20) ++tally.within20;
          if (err >= 0.50) ++tally.over50;
          if (p.source == Prediction::Source::Empirical) {
            ++tally.empirical;
          } else {
            ++tally.tomography;
          }
          if (m == Metric::Rtt) error_hist.add(std::min(err, 0.999));
        }
      }
    }
  }

  TextTable table({"metric", "predictions", "within 20%", ">= 50% off", "empirical",
                   "tomography"});
  for (const Metric m : kAllMetrics) {
    const Tally& tally = tallies[metric_index(m)];
    if (tally.total == 0) continue;
    const double n = static_cast<double>(tally.total);
    table.row()
        .cell(std::string(metric_name(m)))
        .cell_int(tally.total)
        .cell_pct(tally.within20 / n)
        .cell_pct(tally.over50 / n)
        .cell_pct(tally.empirical / n)
        .cell_pct(tally.tomography / n);
  }
  table.print(std::cout);
  std::cout << "paper (across metrics): 71% within 20%, 14% at least 50% off.\n";

  print_banner(std::cout, "RTT relative-error distribution");
  TextTable hist_table({"error bin", "fraction"});
  for (std::size_t i = 0; i < error_hist.bins(); i += 2) {
    hist_table.row()
        .cell(format_double(error_hist.bin_center(i) - 0.025, 2) + "-" +
              format_double(error_hist.bin_center(i) + 0.075, 2))
        .cell_pct(static_cast<double>(error_hist.bin_count(i) +
                                      (i + 1 < error_hist.bins()
                                           ? error_hist.bin_count(i + 1)
                                           : 0)) /
                  static_cast<double>(std::max<std::int64_t>(1, error_hist.total())));
  }
  hist_table.print(std::cout);

  print_paper_note(
      "prediction is useful but fallible — the error tail is what exploration "
      "must absorb (Strawman I's weakness in Figure 12a).");
  print_elapsed(sw);
  return 0;
}
