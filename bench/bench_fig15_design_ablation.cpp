// Figure 15: ablation of Via's two modifications to off-the-shelf bandit
// selection — (1) dynamic confidence-interval top-k instead of a fixed
// top-2, and (2) normalizing rewards by the mean top-k upper bound instead
// of the observed range.  Paper: on the "at least one bad" metric the full
// design cuts PNR 24% vs 15% for fixed top-2 (and loss PNR 44% vs 26%).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace via;
  using namespace via::bench;
  const int threads = parse_threads(argc, argv);
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 15 — prediction-guided exploration design ablation", setup);

  RunConfig run_config;
  run_config.min_pair_calls_for_eval =
      setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;

  struct Variant {
    std::string label;
    ViaConfig config;
  };
  std::vector<Variant> variants;
  {
    Variant full{"dynamic top-k + UCB-bound normalization (Via)", {}};
    variants.push_back(full);

    Variant fixed2{"fixed top-2 + UCB-bound normalization", {}};
    fixed2.config.topk = {.dynamic = false, .fixed_k = 2};
    variants.push_back(fixed2);

    Variant naive_norm{"dynamic top-k + max-observed normalization", {}};
    naive_norm.config.bandit.normalization = BanditNormalization::MaxObserved;
    variants.push_back(naive_norm);

    Variant both_off{"fixed top-2 + max-observed normalization", {}};
    both_off.config.topk = {.dynamic = false, .fixed_k = 2};
    both_off.config.bandit.normalization = BanditNormalization::MaxObserved;
    variants.push_back(both_off);

    Variant no_eps{"no general exploration (epsilon = 0)", {}};
    no_eps.config.epsilon = 0.0;
    variants.push_back(no_eps);
  }

  // One batch: baseline + every (variant, metric) pair on the parallel runner.
  std::vector<RunSpec> specs;
  specs.push_back({"default", [&exp] { return exp.make_default(); }, run_config});
  for (const auto& variant : variants) {
    for (const Metric m : kAllMetrics) {
      const ViaConfig config = variant.config;
      specs.push_back({variant.label + "/" + std::string(metric_name(m)),
                       [&exp, m, config] { return exp.make_via(m, config); }, run_config});
    }
  }
  const std::vector<RunResult> results = exp.run_many(specs, threads);
  const RunResult& base = results[0];

  TextTable table({"variant", "RTT", "loss", "jitter", "at least one bad"});
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const auto& variant = variants[v];
    std::array<RunResult, kNumMetrics> runs;
    for (const Metric m : kAllMetrics) {
      runs[metric_index(m)] = results[1 + v * kNumMetrics + metric_index(m)];
    }
    TextTable& row = table.row();
    row.cell(variant.label);
    for (const Metric m : kAllMetrics) {
      row.cell(format_double(relative_improvement_pct(base.pnr.pnr(m),
                                                      runs[metric_index(m)].pnr.pnr(m)),
                             1) +
               "%");
    }
    double worst_any = 0.0;
    for (const auto& run : runs) worst_any = std::max(worst_any, run.pnr.pnr_any());
    row.cell(format_double(relative_improvement_pct(base.pnr.pnr_any(), worst_any), 1) + "%");
  }
  table.print(std::cout);

  print_paper_note(
      "each modification contributes: full design cuts the collective PNR "
      "24% vs 15% with a fixed top-2 (loss: 44% vs 26%).");
  print_elapsed(sw);
  return 0;
}
