// Micro-benchmarks (google-benchmark) for Via's hot paths: history ingest,
// tomography solve, prediction, top-k selection, bandit pick, and the
// end-to-end per-call controller decision — with and without telemetry
// attached, so the instrumentation overhead itself is measured.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <map>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/predictor.h"
#include "core/topk.h"
#include "core/via_policy.h"
#include "netsim/groundtruth.h"
#include "netsim/world.h"
#include "obs/export.h"
#include "obs/telemetry.h"
#include "rpc/fed_client.h"
#include "rpc/fed_fleet.h"
#include "rpc/framing.h"
#include "rpc/messages.h"
#include "rpc/server.h"
#include "rpc/soak_driver.h"
#include "rpc/socket.h"
#include "rpc/uring_reactor.h"
#include "util/rng.h"

namespace via {
namespace {

const World& bench_world() {
  static const World world({.num_ases = 100, .num_relays = 20, .seed = 99});
  return world;
}

GroundTruth& bench_gt() {
  static GroundTruth gt(bench_world());
  return gt;
}

/// A window of realistic observations covering many pairs and options.
HistoryWindow make_window(int observations) {
  auto& gt = bench_gt();
  HistoryWindow window(&gt.option_table());
  Rng rng(3);
  for (int i = 0; i < observations; ++i) {
    const auto s = static_cast<AsId>(rng.uniform_index(100));
    auto d = static_cast<AsId>(rng.uniform_index(100));
    if (d == s) d = (d + 1) % 100;
    const auto opts = gt.candidate_options(s, d);
    const OptionId opt = opts[rng.uniform_index(opts.size())];
    Observation o;
    o.id = i;
    o.time = 1000 + i;
    o.src_as = s;
    o.dst_as = d;
    o.option = opt;
    o.ingress = gt.transit_ingress(s, opt);
    o.perf = gt.sample_call(i, s, d, opt, o.time);
    window.add(o);
  }
  return window;
}

void BM_HistoryIngest(benchmark::State& state) {
  auto& gt = bench_gt();
  Observation o;
  o.src_as = 1;
  o.dst_as = 2;
  o.option = 3;
  o.perf = {120.0, 0.8, 5.0};
  HistoryWindow window(&gt.option_table());
  for (auto _ : state) {
    window.add(o);
    benchmark::DoNotOptimize(window.observations());
  }
}
BENCHMARK(BM_HistoryIngest);

void BM_TomographySolve(benchmark::State& state) {
  auto& gt = bench_gt();
  const HistoryWindow window = make_window(static_cast<int>(state.range(0)));
  TomographySolver solver(gt.option_table(),
                          [&](RelayId a, RelayId b) { return gt.backbone(a, b); });
  for (auto _ : state) {
    solver.solve(window);
    benchmark::DoNotOptimize(solver.segment_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TomographySolve)->Arg(1000)->Arg(10000)->Arg(50000);

/// The parallel solve (DESIGN.md §6e) across worker counts on a fixed
/// 50k-observation window.  Results are bit-identical at every thread
/// count (segment partitioning preserves the serial fold order); only the
/// wall time should move.  On a single-core box all points degenerate to
/// roughly the serial time.
void BM_TomographySolveThreads(benchmark::State& state) {
  auto& gt = bench_gt();
  const HistoryWindow window = make_window(50000);
  TomographyConfig config;
  config.solve_threads = static_cast<int>(state.range(0));
  TomographySolver solver(
      gt.option_table(), [&](RelayId a, RelayId b) { return gt.backbone(a, b); }, config);
  for (auto _ : state) {
    solver.solve(window);
    benchmark::DoNotOptimize(solver.segment_count());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_TomographySolveThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PredictorTrainAndPredict(benchmark::State& state) {
  auto& gt = bench_gt();
  const HistoryWindow window = make_window(20000);
  Predictor predictor(gt.option_table(),
                      [&](RelayId a, RelayId b) { return gt.backbone(a, b); });
  predictor.train(window);
  Rng rng(5);
  for (auto _ : state) {
    const auto s = static_cast<AsId>(rng.uniform_index(100));
    const auto d = static_cast<AsId>((s + 1 + rng.uniform_index(99)) % 100);
    const auto opts = gt.candidate_options(s, d);
    const Prediction p =
        predictor.predict(s, d, opts[rng.uniform_index(opts.size())], Metric::Rtt);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PredictorTrainAndPredict);

void BM_TopKSelection(benchmark::State& state) {
  auto& gt = bench_gt();
  const HistoryWindow window = make_window(20000);
  Predictor predictor(gt.option_table(),
                      [&](RelayId a, RelayId b) { return gt.backbone(a, b); });
  predictor.train(window);
  Rng rng(7);
  for (auto _ : state) {
    const auto s = static_cast<AsId>(rng.uniform_index(100));
    const auto d = static_cast<AsId>((s + 1 + rng.uniform_index(99)) % 100);
    const auto top = select_top_k(predictor, s, d, gt.candidate_options(s, d), Metric::Rtt);
    benchmark::DoNotOptimize(top.size());
  }
}
BENCHMARK(BM_TopKSelection);

void BM_BanditPick(benchmark::State& state) {
  std::vector<RankedOption> arms;
  for (int i = 0; i < 8; ++i) {
    RankedOption r;
    r.option = i;
    r.pred.valid = true;
    r.pred.mean = 100.0 + i;
    r.pred.upper = 120.0 + i;
    r.pred.lower = 90.0 + i;
    arms.push_back(r);
  }
  UcbBandit bandit;
  bandit.set_arms(arms, {});
  Rng rng(9);
  for (auto _ : state) {
    const OptionId pick = bandit.pick();
    bandit.observe(pick, 100.0 + rng.uniform(0, 20));
    benchmark::DoNotOptimize(pick);
  }
}
BENCHMARK(BM_BanditPick);

/// Shared body for the end-to-end decision bench; `telemetry` toggles the
/// instrumented path and `health_enabled` toggles the relay-health filter,
/// so the variants differ only in those attachments.
void run_choose_per_call(benchmark::State& state, obs::Telemetry* telemetry,
                         bool health_enabled = false) {
  auto& gt = bench_gt();
  ViaConfig config;
  config.health.enabled = health_enabled;
  ViaPolicy policy(gt.option_table(),
                   [&](RelayId a, RelayId b) { return gt.backbone(a, b); },
                   config);
  policy.attach_telemetry(telemetry);
  // Warm up with a day of observations + refresh.
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const auto s = static_cast<AsId>(rng.uniform_index(100));
    auto d = static_cast<AsId>(rng.uniform_index(100));
    if (d == s) d = (d + 1) % 100;
    const auto opts = gt.candidate_options(s, d);
    Observation o;
    o.id = i;
    o.time = 1000 + i;
    o.src_as = s;
    o.dst_as = d;
    o.option = opts[rng.uniform_index(opts.size())];
    o.ingress = gt.transit_ingress(s, o.option);
    o.perf = gt.sample_call(i, s, d, o.option, o.time);
    policy.observe(o);
  }
  policy.refresh(kSecondsPerDay);

  CallId next = 1'000'000;
  for (auto _ : state) {
    const auto s = static_cast<AsId>(rng.uniform_index(100));
    const auto d = static_cast<AsId>((s + 1 + rng.uniform_index(99)) % 100);
    CallContext ctx;
    ctx.id = next++;
    ctx.time = kSecondsPerDay + 100;
    ctx.src_as = s;
    ctx.dst_as = d;
    ctx.key_src = s;
    ctx.key_dst = d;
    ctx.options = gt.candidate_options(s, d);
    benchmark::DoNotOptimize(policy.choose(ctx));
  }
  policy.attach_telemetry(nullptr);
}

void BM_ViaChoosePerCall(benchmark::State& state) { run_choose_per_call(state, nullptr); }
BENCHMARK(BM_ViaChoosePerCall);

void BM_ViaChoosePerCallTelemetry(benchmark::State& state) {
  obs::Telemetry telemetry;
  run_choose_per_call(state, &telemetry);
  telemetry.registry.merge_into(obs::MetricsRegistry::process());
}
BENCHMARK(BM_ViaChoosePerCallTelemetry);

/// The choose path with the relay-health filter armed but the fleet healthy:
/// measures the steady-state cost the filter adds (one relaxed hint load).
void BM_ChooseWithHealthFilter(benchmark::State& state) {
  run_choose_per_call(state, nullptr, /*health_enabled=*/true);
}
BENCHMARK(BM_ChooseWithHealthFilter);

/// Telemetry plus request tracing at the production sampling rate (1 in
/// 64): the §6g overhead contract.  The delta against the telemetry-only
/// variant — amortized sampling branch + the occasional StagedSpan emit —
/// is exported as trace_overhead_ns and pinned in bench/thresholds.json.
void BM_ViaChoosePerCallTraced(benchmark::State& state) {
  obs::Telemetry telemetry(4096, obs::TraceConfig{.sample_rate = 64, .buffer_capacity = 4096});
  run_choose_per_call(state, &telemetry);
  telemetry.registry.merge_into(obs::MetricsRegistry::process());
}
BENCHMARK(BM_ViaChoosePerCallTraced);

void BM_GroundTruthSample(benchmark::State& state) {
  auto& gt = bench_gt();
  Rng rng(13);
  CallId id = 0;
  for (auto _ : state) {
    const auto s = static_cast<AsId>(rng.uniform_index(100));
    const auto d = static_cast<AsId>((s + 1 + rng.uniform_index(99)) % 100);
    benchmark::DoNotOptimize(gt.sample_call(++id, s, d, 0, 5000));
  }
}
BENCHMARK(BM_GroundTruthSample);

/// Console reporter that additionally collects per-benchmark ns/op so the
/// numbers can be written to BENCH_core.json after the suite runs.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        ns_per_op[run.benchmark_name()] = run.GetAdjustedRealTime();
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::map<std::string, double> ns_per_op;
};

bool same_run_result(const RunResult& a, const RunResult& b) {
  if (a.calls != b.calls || a.evaluated_calls != b.evaluated_calls) return false;
  for (const Metric m : kAllMetrics) {
    if (a.values[metric_index(m)] != b.values[metric_index(m)]) return false;
    if (a.pnr.pnr(m) != b.pnr.pnr(m)) return false;
  }
  return a.pnr.pnr_any() == b.pnr.pnr_any();
}

/// Medium/small-scale policy sweep run twice — serially, then through the
/// parallel runner — on pre-warmed caches, to measure end-to-end replay
/// scaling and assert the parallel results stay bit-identical.
void run_policy_sweep(bench::BenchJson& json, int threads) {
  const char* env = std::getenv("VIA_BENCH_SWEEP_SCALE");
  const std::string which = env != nullptr ? env : "small";
  if (which == "off") return;
  const Experiment::Scale scale =
      which == "medium" ? Experiment::Scale::Medium : Experiment::Scale::Small;

  Experiment exp(Experiment::default_setup(scale));
  exp.warm_caches();  // excluded from both timings: measures replay, not warm-up

  std::vector<RunSpec> specs;
  specs.push_back({"default", [&exp] { return exp.make_default(); }, {}});
  for (const Metric m : kAllMetrics) {
    specs.push_back({"via/" + std::string(metric_name(m)),
                     [&exp, m] { return exp.make_via(m); }, {}});
  }
  specs.push_back(
      {"prediction-only", [&exp] { return exp.make_prediction_only(Metric::Rtt); }, {}});
  specs.push_back({"oracle", [&exp] { return exp.make_oracle(Metric::Rtt); }, {}});

  const bench::Stopwatch serial_sw;
  std::vector<RunResult> serial;
  serial.reserve(specs.size());
  for (const RunSpec& spec : specs) {
    auto policy = spec.make_policy();
    serial.push_back(exp.run(*policy, spec.config));
  }
  const double serial_seconds = serial_sw.seconds();

  ParallelRunner runner(threads);
  const bench::Stopwatch parallel_sw;
  const std::vector<RunResult> parallel = runner.run_all(exp, specs);
  const double parallel_seconds = parallel_sw.seconds();

  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = same_run_result(serial[i], parallel[i]);
  }

  std::cout << "policy sweep (" << which << ", " << specs.size() << " runs): serial "
            << serial_seconds << "s, parallel " << parallel_seconds << "s on "
            << runner.thread_count() << " threads, speedup "
            << (parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0)
            << "x, bit-identical: " << (identical ? "yes" : "NO") << "\n";

  json.set_string("sweep_scale", which);
  json.set_int("sweep_runs", static_cast<long long>(specs.size()));
  json.set_int("sweep_threads", runner.thread_count());
  json.set("sweep_serial_seconds", serial_seconds);
  json.set("sweep_parallel_seconds", parallel_seconds);
  json.set("sweep_speedup", parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0);
  json.set_bool("sweep_identical", identical);
}

/// Concurrent decision-serving throughput: one warmed ViaPolicy configured
/// with the maximum stripe count, hammered by 1/2/4/8 threads splitting a
/// fixed budget of choose() calls (so every sweep point does the same
/// work).  Emits Mops per thread count plus the 4-thread speedup into
/// BENCH_core.json; on a single-core box the speedup degenerates to ~1x.
void run_concurrent_choose(bench::BenchJson& json) {
  auto& gt = bench_gt();
  ViaConfig config;
  config.serving_stripes = 64;
  ViaPolicy policy(
      gt.option_table(), [&](RelayId a, RelayId b) { return gt.backbone(a, b); }, config);

  // Warm up with a day of observations + refresh (same regimen as the
  // single-threaded BM_ViaChoosePerCall, so the numbers are comparable).
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const auto s = static_cast<AsId>(rng.uniform_index(100));
    auto d = static_cast<AsId>(rng.uniform_index(100));
    if (d == s) d = (d + 1) % 100;
    const auto opts = gt.candidate_options(s, d);
    Observation o;
    o.id = i;
    o.time = 1000 + i;
    o.src_as = s;
    o.dst_as = d;
    o.option = opts[rng.uniform_index(opts.size())];
    o.ingress = gt.transit_ingress(s, o.option);
    o.perf = gt.sample_call(i, s, d, o.option, o.time);
    policy.observe(o);
  }
  policy.refresh(kSecondsPerDay);

  constexpr std::int64_t kTotalCalls = 200'000;
  double mops_1t = 0.0;
  double mops_4t = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    const std::int64_t per_thread = kTotalCalls / threads;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    const bench::Stopwatch sw;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&policy, &gt, per_thread, t] {
        Rng trng(100 + static_cast<std::uint64_t>(t));
        CallId next = 2'000'000 + static_cast<CallId>(t) * 10'000'000;
        for (std::int64_t i = 0; i < per_thread; ++i) {
          const auto s = static_cast<AsId>(trng.uniform_index(100));
          const auto d = static_cast<AsId>((s + 1 + trng.uniform_index(99)) % 100);
          CallContext ctx;
          ctx.id = next++;
          ctx.time = kSecondsPerDay + 100;
          ctx.src_as = s;
          ctx.dst_as = d;
          ctx.key_src = s;
          ctx.key_dst = d;
          ctx.options = gt.candidate_options(s, d);
          benchmark::DoNotOptimize(policy.choose(ctx));
        }
      });
    }
    for (auto& w : workers) w.join();
    const double seconds = sw.seconds();
    const double mops =
        seconds > 0.0
            ? static_cast<double>(per_thread * threads) / seconds / 1e6
            : 0.0;
    std::cout << "concurrent choose: " << threads << " thread(s), "
              << per_thread * threads << " calls, " << mops << " Mops\n";
    json.set("concurrent_choose_" + std::to_string(threads) + "t_mops", mops);
    if (threads == 1) mops_1t = mops;
    if (threads == 4) mops_4t = mops;
  }
  if (mops_1t > 0.0) json.set("concurrent_choose_speedup_4t", mops_4t / mops_1t);
}

/// Serializes one whole frame (u32 payload_len + u8 msg_type + payload)
/// into `out`, so a burst of requests goes out in a single send_all and
/// lands on the reactor within one readiness event.
void append_frame(std::vector<std::byte>& out, MsgType type, const WireWriter& w) {
  const auto payload = w.bytes();
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xFF));
  }
  out.push_back(static_cast<std::byte>(type));
  out.insert(out.end(), payload.begin(), payload.end());
}

/// Reactor serving throughput (DESIGN.md §6h/§6j): one warmed ViaPolicy
/// behind an event-driven backend (2 event-loop workers), hammered by raw
/// pipelined connections.  The sweep runs once per backend — epoll rows
/// keep their original `reactor_choose_rps_<n>c` names (comparable across
/// PRs), io_uring rows get a `_uring` suffix and are skipped (with a
/// message) on kernels without io_uring support.
///
/// The 64/256/1024-connection points run in-process: the client side is
/// capped at 8 driver threads regardless of the connection count, so the
/// sweep scales *connections* (and with them the per-wakeup frame batches
/// the reactor amortizes one snapshot acquire across), not client
/// parallelism.  Each round a driver writes an 8-deep DecisionRequest
/// burst on every connection it owns, then drains the 8 replies.
///
/// The 4096/10240-connection points exceed what one process's fd budget
/// can hold on both ends, so the client half runs in the via_soak_driver
/// child process (decision mode, empty options = "controller decides").
/// They are skipped when VIA_BENCH_SWEEP_SCALE=small (CI smoke) — the
/// matching threshold rows live in `_optional`, so a missing key reads as
/// an explicit SKIP, not a silent pass.
///
/// Emits reactor_choose_rps_{64,256,1024,4096,10240}c[_uring]
/// (requests/sec) into BENCH_core.json; set VIA_BENCH_REACTOR=off to skip.
void run_reactor_bench(bench::BenchJson& json) {
  const char* env = std::getenv("VIA_BENCH_REACTOR");
  if (env != nullptr && std::string(env) == "off") return;
  const char* scale = std::getenv("VIA_BENCH_SWEEP_SCALE");
  const bool small = scale != nullptr && std::string(scale) == "small";

  // The server side of the 10240-connection point needs >10k sockets.
  raise_fd_limit();

  auto& gt = bench_gt();
  ViaConfig config;
  config.serving_stripes = 64;
  ViaPolicy policy(
      gt.option_table(), [&](RelayId a, RelayId b) { return gt.backbone(a, b); }, config);
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const auto s = static_cast<AsId>(rng.uniform_index(100));
    auto d = static_cast<AsId>(rng.uniform_index(100));
    if (d == s) d = (d + 1) % 100;
    const auto opts = gt.candidate_options(s, d);
    Observation o;
    o.id = i;
    o.time = 1000 + i;
    o.src_as = s;
    o.dst_as = d;
    o.option = opts[rng.uniform_index(opts.size())];
    o.ingress = gt.transit_ingress(s, o.option);
    o.perf = gt.sample_call(i, s, d, o.option, o.time);
    policy.observe(o);
  }
  policy.refresh(kSecondsPerDay);

  constexpr int kDepth = 8;
  for (const ServingBackend backend : {ServingBackend::kEpoll, ServingBackend::kUring}) {
    if (backend == ServingBackend::kUring && !UringReactor::supported()) {
      std::cout << "reactor choose: io_uring unsupported on this kernel, "
                   "skipping _uring rows\n";
      continue;
    }
    const std::string suffix =
        backend == ServingBackend::kUring ? std::string("c_uring") : std::string("c");

    ServerConfig sconfig;
    sconfig.backend = backend;
    sconfig.reactor_threads = 2;
    sconfig.drain_timeout_ms = 1000;
    ControllerServer server(policy, 0, sconfig);
    server.start();

    for (const int conns : {64, 256, 1024}) {
      const int rounds = std::max(1, 32768 / (conns * kDepth));
      std::vector<TcpConnection> sockets;
      sockets.reserve(static_cast<std::size_t>(conns));
      for (int c = 0; c < conns; ++c) {
        sockets.push_back(TcpConnection::connect_local(server.port()));
      }

      // Pre-encode one burst per connection (outside the timed region) so
      // the drivers measure serving throughput, not client-side encoding.
      std::vector<std::vector<std::byte>> bursts(static_cast<std::size_t>(conns));
      Rng creq(17);
      for (int c = 0; c < conns; ++c) {
        for (int k = 0; k < kDepth; ++k) {
          const auto s = static_cast<AsId>(creq.uniform_index(100));
          const auto d = static_cast<AsId>((s + 1 + creq.uniform_index(99)) % 100);
          DecisionRequest req;
          req.call_id = 3'000'000 + static_cast<CallId>(c) * 1000 + k;
          req.time = kSecondsPerDay + 100;
          req.src_as = s;
          req.dst_as = d;
          const auto cand = gt.candidate_options(s, d);
          req.options.assign(cand.begin(), cand.end());
          WireWriter w;
          req.encode(w);
          append_frame(bursts[static_cast<std::size_t>(c)], MsgType::DecisionRequest, w);
        }
      }

      const int drivers = std::min(8, conns);
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(drivers));
      const bench::Stopwatch sw;
      for (int t = 0; t < drivers; ++t) {
        threads.emplace_back([&, t] {
          std::vector<std::byte> reply;
          for (int r = 0; r < rounds; ++r) {
            for (int c = t; c < conns; c += drivers) {
              sockets[static_cast<std::size_t>(c)].send_all(bursts[static_cast<std::size_t>(c)]);
            }
            for (int c = t; c < conns; c += drivers) {
              auto& conn = sockets[static_cast<std::size_t>(c)];
              for (int k = 0; k < kDepth; ++k) {
                std::byte header[5];
                if (!conn.recv_all(header)) return;
                std::uint32_t len = 0;
                for (int i = 0; i < 4; ++i) {
                  len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
                }
                reply.resize(len);
                if (len > 0 && !conn.recv_all(reply)) return;
              }
            }
          }
        });
      }
      for (auto& th : threads) th.join();
      const double seconds = sw.seconds();
      const auto total = static_cast<double>(conns) * kDepth * rounds;
      const double rps = seconds > 0.0 ? total / seconds : 0.0;
      std::cout << "reactor choose [" << serving_backend_name(backend) << "]: " << conns
                << " conns, " << static_cast<long long>(total) << " requests, " << rps
                << " req/s\n";
      json.set("reactor_choose_rps_" + std::to_string(conns) + suffix, rps);
      // Close client ends before the next sweep point so stop() never waits
      // out the drain timeout on idle connections.
      sockets.clear();
    }

    for (const int conns : {4096, 10240}) {
      if (small) {
        std::cout << "reactor choose [" << serving_backend_name(backend) << "]: " << conns
                  << " conns SKIPPED (VIA_BENCH_SWEEP_SCALE=small)\n";
        continue;
      }
      SoakConfig soak;
      soak.port = server.port();
      soak.connections = conns;
      soak.depth = kDepth;
      soak.rounds = std::max(2, 262'144 / (conns * kDepth));
      soak.threads = 8;
      std::string spawn_error;
      const auto result = spawn_soak(soak, &spawn_error);
      if (!result.has_value() || !result->ok) {
        std::cout << "reactor choose [" << serving_backend_name(backend) << "]: " << conns
                  << " conns soak FAILED: "
                  << (result.has_value() ? result->error : spawn_error) << "\n";
        continue;
      }
      std::cout << "reactor choose [" << serving_backend_name(backend) << "]: " << conns
                << " conns, " << result->received << " requests, " << result->rps
                << " req/s (child driver)\n";
      json.set("reactor_choose_rps_" + std::to_string(conns) + suffix, result->rps);
    }
    server.stop();
  }
}

/// Federation failover latency (DESIGN.md §6k): a 2-replica in-process
/// fleet serves a shard-routed FederatedClient; the client's shard home is
/// killed and the stopwatch runs from the kill to the first successful
/// re-homed decision on the ring successor — the health-trip plus failover
/// cost a caller actually sees.  One-shot by nature (the trip happens
/// once), so the row is warn-only in bench/thresholds.json.
void run_fed_failover_bench(bench::BenchJson& json) {
  auto& gt = bench_gt();
  FedFleetConfig cfg;
  cfg.replicas = 2;
  cfg.fed.fail_threshold = 1;
  cfg.fed.probe_period_ms = 60'000;  // the dead replica stays out of rotation
  cfg.server.drain_timeout_ms = 50;
  FedFleet fleet(
      gt.option_table(), [&](RelayId a, RelayId b) { return gt.backbone(a, b); }, cfg);
  fleet.start();

  FedClientConfig fc;
  fc.rpc.request_timeout_ms = 250;
  fc.rpc.max_retries = 1;
  fc.rpc.backoff_base_ms = 1;
  fc.rpc.backoff_max_ms = 4;
  FederatedClient client(fleet.federation(), fc);

  // A pair whose shard home is replica 0 (the one we will kill).
  AsId src = 1;
  while (client.ring().owner(as_pair_key(src, static_cast<AsId>(src + 50))) != 0) ++src;
  const AsId dst = static_cast<AsId>(src + 50);

  DecisionRequest req;
  req.time = 100;
  req.src_as = src;
  req.dst_as = dst;
  const auto cand = gt.candidate_options(src, dst);
  req.options.assign(cand.begin(), cand.end());

  // Warm the connection to the home replica first.
  req.call_id = 1;
  (void)client.request_decision(req);

  fleet.kill(0);
  const bench::Stopwatch sw;
  req.call_id = 2;
  (void)client.request_decision(req);
  const double rehome_ms = sw.seconds() * 1e3;
  const bool rehomed = client.rehomed_requests() > 0;
  std::cout << "fed failover: kill -> re-homed decision in " << rehome_ms
            << " ms (rehomed: " << (rehomed ? "yes" : "NO") << ")\n";
  if (rehomed) json.set("fed_failover_rehome_ms", rehome_ms);
}

/// Split-refresh and memo-warmth measurements (DESIGN.md §6e), taken with
/// a plain stopwatch because each phase runs once per refresh period, not
/// in a tight loop:
///   - refresh_prepare_ns: the off-path model build (harvest + tomography +
///     predictor training), run under a *shared* lock in the daemon.
///   - refresh_swap_ns: the commit — just the RCU pointer swap — which is
///     all that remains under the exclusive lock.
///   - topk_cold_ns / topk_warm_ns: first-touch per-pair model build vs the
///     memoized hit, the gap the pre-warm pipeline exists to close.
void run_refresh_split_bench(bench::BenchJson& json) {
  auto& gt = bench_gt();
  ViaPolicy policy(gt.option_table(),
                   [&](RelayId a, RelayId b) { return gt.backbone(a, b); });

  Rng rng(11);
  CallId id = 0;
  const auto feed_day = [&](TimeSec start) {
    for (int i = 0; i < 20000; ++i) {
      const auto s = static_cast<AsId>(rng.uniform_index(100));
      auto d = static_cast<AsId>(rng.uniform_index(100));
      if (d == s) d = (d + 1) % 100;
      const auto opts = gt.candidate_options(s, d);
      Observation o;
      o.id = ++id;
      o.time = start + i;
      o.src_as = s;
      o.dst_as = d;
      o.option = opts[rng.uniform_index(opts.size())];
      o.ingress = gt.transit_ingress(s, o.option);
      o.perf = gt.sample_call(o.id, s, d, o.option, o.time);
      policy.observe(o);
    }
  };

  double prepare_s = 1e30;
  double swap_s = 1e30;
  for (int round = 0; round < 3; ++round) {
    const TimeSec day = static_cast<TimeSec>(round) * kSecondsPerDay;
    feed_day(day + 1000);
    const bench::Stopwatch prepare_sw;
    policy.prepare_refresh(day + kSecondsPerDay);
    prepare_s = std::min(prepare_s, prepare_sw.seconds());
    const bench::Stopwatch swap_sw;
    policy.commit_refresh(day + kSecondsPerDay);
    swap_s = std::min(swap_s, swap_sw.seconds());
  }
  std::cout << "refresh split: prepare " << prepare_s * 1e9 << " ns, commit (swap) "
            << swap_s * 1e9 << " ns\n";
  json.set("refresh_prepare_ns", prepare_s * 1e9);
  json.set("refresh_swap_ns", swap_s * 1e9);

  // Cold vs warm per-pair model access against the just-published snapshot
  // (nothing pre-warmed here, so every pair's first touch is a real build).
  const auto model = policy.model();
  std::vector<CallContext> calls;
  for (AsId s = 0; s < 100; ++s) {
    const auto d = static_cast<AsId>((s + 7) % 100);
    if (d == s) continue;
    CallContext ctx;
    ctx.id = 5'000'000 + s;
    ctx.time = 3 * kSecondsPerDay + 100;
    ctx.src_as = s;
    ctx.dst_as = d;
    ctx.key_src = s;
    ctx.key_dst = d;
    ctx.options = gt.candidate_options(s, d);
    calls.push_back(ctx);
  }
  const bench::Stopwatch cold_sw;
  for (const CallContext& ctx : calls) {
    benchmark::DoNotOptimize(model->pair_model(ctx, nullptr).top_k.size());
  }
  const double cold_ns = cold_sw.seconds() * 1e9 / static_cast<double>(calls.size());
  constexpr int kWarmRounds = 50;
  const bench::Stopwatch warm_sw;
  for (int r = 0; r < kWarmRounds; ++r) {
    for (const CallContext& ctx : calls) {
      benchmark::DoNotOptimize(model->pair_model(ctx, nullptr).top_k.size());
    }
  }
  const double warm_ns =
      warm_sw.seconds() * 1e9 / static_cast<double>(calls.size() * kWarmRounds);
  std::cout << "pair model: cold " << cold_ns << " ns, warm " << warm_ns << " ns ("
            << calls.size() << " pairs)\n";
  json.set("topk_cold_ns", cold_ns);
  json.set("topk_warm_ns", warm_ns);
}

}  // namespace
}  // namespace via

// Expanded BENCHMARK_MAIN(): after the suite runs, dump the process-wide
// telemetry registry (fed by the *Telemetry variants) as one JSON line so
// harnesses diffing bench output see decision counts alongside timings, then
// run the serial-vs-parallel policy sweep and write BENCH_core.json.
int main(int argc, char** argv) {
  const int threads = via::bench::parse_threads(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  via::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  std::cout << "{\"telemetry\":";
  via::obs::render_json(via::obs::MetricsRegistry::process().snapshot(), std::cout);
  std::cout << "}\n";

  via::bench::BenchJson json;
  // Core count of the box that produced this run: tools/check_bench.py uses
  // it to downgrade multicore-only rows (sweep_speedup, the multi-thread
  // mops points) to warnings on single-core CI runners, where parallel
  // speedups legitimately degenerate to ~1x or below.
  json.set_int("cores", static_cast<long long>(std::thread::hardware_concurrency()));
  // ns/op for the decision-path hot loops (absent keys = benchmark filtered out).
  const std::map<std::string, std::string> tracked = {
      {"BM_ViaChoosePerCall", "choose_ns"},
      {"BM_ViaChoosePerCallTelemetry", "choose_telemetry_ns"},
      {"BM_ViaChoosePerCallTraced", "choose_traced_ns"},
      {"BM_ChooseWithHealthFilter", "choose_health_ns"},
      {"BM_TopKSelection", "topk_ns"},
      {"BM_TomographySolve/10000", "tomography_solve_10k_ns"},
      {"BM_TomographySolveThreads/1", "tomography_solve_threads_1_ns"},
      {"BM_TomographySolveThreads/2", "tomography_solve_threads_2_ns"},
      {"BM_TomographySolveThreads/4", "tomography_solve_threads_4_ns"},
      {"BM_TomographySolveThreads/8", "tomography_solve_threads_8_ns"},
      {"BM_HistoryIngest", "history_ingest_ns"},
      {"BM_GroundTruthSample", "groundtruth_sample_ns"},
  };
  for (const auto& [bench_name, key] : tracked) {
    const auto it = reporter.ns_per_op.find(bench_name);
    if (it != reporter.ns_per_op.end()) json.set(key, it->second);
  }
  // Tracing cost in isolation (§6g): traced-at-1/64 minus telemetry-only,
  // floored at zero since the delta sits inside run-to-run noise.
  {
    const auto traced = reporter.ns_per_op.find("BM_ViaChoosePerCallTraced");
    const auto telem = reporter.ns_per_op.find("BM_ViaChoosePerCallTelemetry");
    if (traced != reporter.ns_per_op.end() && telem != reporter.ns_per_op.end()) {
      json.set("trace_overhead_ns", std::max(0.0, traced->second - telem->second));
    }
  }
  via::run_policy_sweep(json, threads);
  via::run_concurrent_choose(json);
  via::run_reactor_bench(json);
  via::run_fed_failover_bench(json);
  via::run_refresh_split_bench(json);
  const std::string path = via::bench::bench_json_path();
  json.write(path);
  std::cout << "[wrote " << path << "]\n";
  return 0;
}
