// Extension (paper §7): hybrid reactive selection.  Clients race the
// controller's top candidates at call setup and keep the best — using the
// prediction-guided top-k to keep the race narrow instead of trying the
// full option space.  Measures quality gained per unit of extra setup
// traffic as the race widens.
#include "bench_common.h"

#include "core/extensions.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Extension — hybrid racing of top-k candidates", setup);

  const Metric target = Metric::Rtt;
  RunConfig run_config;
  run_config.min_pair_calls_for_eval =
      setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;

  auto baseline = exp.make_default();
  const RunResult base = exp.run(*baseline, run_config);

  TextTable table({"race width", "extra setup samples / call", "PNR(RTT)",
                   "reduction vs default"});

  // Width 1 == plain Via.
  {
    auto policy = exp.make_via(target);
    const RunResult r = exp.run(*policy, run_config);
    table.row()
        .cell("1 (no racing)")
        .cell(0.0, 2)
        .cell_pct(r.pnr.pnr(target))
        .cell(format_double(relative_improvement_pct(base.pnr.pnr(target), r.pnr.pnr(target)),
                            1) +
              "%");
  }
  for (const int width : {2, 3, 5}) {
    auto inner = exp.make_via(target);
    HybridRacer racer(*inner, width);
    RunConfig config = run_config;
    config.enable_racing = true;
    config.race_metric = target;
    const RunResult r = exp.run(racer, config);
    table.row()
        .cell_int(width)
        .cell(static_cast<double>(r.raced_extra_samples) /
                  static_cast<double>(std::max<std::int64_t>(1, r.calls)),
              2)
        .cell_pct(r.pnr.pnr(target))
        .cell(format_double(relative_improvement_pct(base.pnr.pnr(target), r.pnr.pnr(target)),
                            1) +
              "%");
  }
  table.print(std::cout);

  print_paper_note(
      "racing is the paper's suggested hybrid: prediction-guided pruning "
      "makes the raced set small enough to be practical for long calls.");
  print_elapsed(sw);
  return 0;
}
