// Figure 18: the controlled deployment — a real TCP controller and client
// pairs making back-to-back calls over many relaying options, then letting
// Via choose.  Reports the CDF of per-call sub-optimality vs the oracle.
// Paper: ~1000 calls over 18 pairs; Via within 20% of the oracle for 70% of
// calls while picking the exact best option for no more than 30%.
#include "bench_common.h"

#include <algorithm>

#include "rpc/testbed.h"
#include "util/percentile.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  TestbedConfig config;  // defaults mirror the paper's testbed shape
  std::cout << "=====================================================================\n"
            << "Figure 18 — controlled deployment (real TCP controller + clients)\n"
            << "testbed: " << config.client_pairs << " client pairs, "
            << config.measurement_rounds << " measurement rounds per option, "
            << config.eval_calls_per_pair << " evaluation calls per pair\n"
            << "=====================================================================\n";

  const TestbedResult result = run_testbed(config);

  std::cout << "measurement calls: " << result.measurement_calls
            << " (paper: ~1000, 9-20 options x 4-5 rounds)\n"
            << "evaluation calls:  " << result.eval_calls << "\n\n";

  TextTable table({"sub-optimality x", "fraction of calls within x", "paper"});
  const struct {
    double x;
    const char* paper;
  } rows[] = {{0.0, "<= 30% pick the exact best"},
              {0.05, "-"},
              {0.10, "-"},
              {0.20, "~70%"},
              {0.50, "-"},
              {1.00, "-"}};
  for (const auto& row : rows) {
    table.row()
        .cell(format_double(row.x, 2))
        .cell_pct(result.fraction_within(row.x))
        .cell(row.paper);
  }
  table.print(std::cout);

  std::cout << "\nexact-best picks: " << format_double(100.0 * result.fraction_best(), 1)
            << "%   (paper: <= 30%)\n";

  auto sorted = result.suboptimality;
  std::sort(sorted.begin(), sorted.end());
  std::cout << "sub-optimality percentiles: p50="
            << format_double(percentile_sorted(sorted, 50), 3)
            << " p90=" << format_double(percentile_sorted(sorted, 90), 3)
            << " p99=" << format_double(percentile_sorted(sorted, 99), 3) << "\n";

  print_paper_note(
      "Via rarely picks the single best option but almost always one close "
      "to it — fluctuations blur near-ties, not the decision quality.");
  print_elapsed(sw);
  return 0;
}
