// Figure 13: Via's improvement on international vs domestic calls, against
// default and oracle.  Paper: both classes improve significantly, with a
// slightly larger improvement for international calls (relaying can't fix
// a last-mile bottleneck).
#include "bench_common.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 13 — Via improvement: international vs domestic", setup);

  RunConfig run_config;
  run_config.min_pair_calls_for_eval =
      setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;

  auto baseline = exp.make_default();
  auto via_policy = exp.make_via(Metric::Rtt);
  auto oracle = exp.make_oracle(Metric::Rtt);
  const RunResult base = exp.run(*baseline, run_config);
  const RunResult mine = exp.run(*via_policy, run_config);
  const RunResult best = exp.run(*oracle, run_config);

  TextTable table({"class", "default PNR(any)", "Via PNR(any)", "oracle PNR(any)",
                   "Via reduction"});
  auto add_row = [&](const char* label, const PnrAccumulator& b, const PnrAccumulator& v,
                     const PnrAccumulator& o) {
    table.row()
        .cell(label)
        .cell_pct(b.pnr_any())
        .cell_pct(v.pnr_any())
        .cell_pct(o.pnr_any())
        .cell(format_double(relative_improvement_pct(b.pnr_any(), v.pnr_any()), 1) + "%");
  };
  add_row("international", base.pnr_international, mine.pnr_international,
          best.pnr_international);
  add_row("domestic", base.pnr_domestic, mine.pnr_domestic, best.pnr_domestic);
  add_row("all", base.pnr, mine.pnr, best.pnr);
  table.print(std::cout);

  print_paper_note(
      "both classes improve; international slightly more, since domestic "
      "poorness is more often a last-mile problem relaying cannot fix.");
  print_elapsed(sw);
  return 0;
}
