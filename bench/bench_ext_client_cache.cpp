// Extension (paper §3.1/§7): client-side caching of relaying decisions.
// Sweeps the cache TTL and reports the controller-load reduction against
// the call-quality cost of acting on stale decisions — quantifying the
// paper's "clients could cache the decisions and refresh periodically".
#include "bench_common.h"

#include "core/extensions.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Extension — client-side decision cache (TTL sweep)", setup);

  const Metric target = Metric::Rtt;
  RunConfig run_config;
  run_config.min_pair_calls_for_eval =
      setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;

  auto baseline = exp.make_default();
  const RunResult base = exp.run(*baseline, run_config);

  TextTable table({"cache TTL", "controller consultations", "cache hit rate", "PNR(RTT)",
                   "reduction vs default"});

  // No cache: every call consults the controller.
  {
    auto policy = exp.make_via(target);
    const RunResult r = exp.run(*policy, run_config);
    table.row()
        .cell("none")
        .cell_int(r.calls)
        .cell("0.0%")
        .cell_pct(r.pnr.pnr(target))
        .cell(format_double(relative_improvement_pct(base.pnr.pnr(target), r.pnr.pnr(target)),
                            1) +
              "%");
  }
  for (const int hours : {1, 3, 6, 12, 24}) {
    auto inner = exp.make_via(target);
    CachingClient cached(*inner, static_cast<TimeSec>(hours) * 3600);
    const RunResult r = exp.run(cached, run_config);
    table.row()
        .cell(std::to_string(hours) + "h")
        .cell_int(cached.cache_misses())
        .cell_pct(cached.hit_rate())
        .cell_pct(r.pnr.pnr(target))
        .cell(format_double(relative_improvement_pct(base.pnr.pnr(target), r.pnr.pnr(target)),
                            1) +
              "%");
  }
  table.print(std::cout);

  print_paper_note(
      "a few hours of TTL removes most per-call control traffic for a "
      "modest quality cost — the §7 scalability lever.");
  print_elapsed(sw);
  return 0;
}
