// Figure 2: CDFs of RTT, loss and jitter over default-routed calls.  The
// paper picks the poor-performance thresholds (RTT 320 ms, loss 1.2%,
// jitter 12 ms) at roughly the 85th percentile of these distributions.
#include "bench_common.h"

#include "analysis/section2.h"
#include "util/percentile.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 2 — CDFs of network metrics (default-routed calls)", setup);

  const auto records = exp.generator().generate_default_routed();
  const auto cdfs = metric_cdfs(records, 200);
  const PoorThresholds thresholds;

  for (const Metric m : kAllMetrics) {
    const auto& cdf = cdfs[metric_index(m)];
    print_banner(std::cout, std::string("CDF of ") + std::string(metric_name(m)));
    TextTable table({"percentile", std::string(metric_name(m)) + " (" +
                                       std::string(metric_unit(m)) + ")"});
    for (const double pct : {10.0, 25.0, 50.0, 75.0, 85.0, 90.0, 95.0, 99.0}) {
      // Find the CDF value at this percentile.
      double value = cdf.back().value;
      for (const auto& point : cdf) {
        if (point.cum_fraction >= pct / 100.0) {
          value = point.value;
          break;
        }
      }
      table.row().cell("p" + format_double(pct, 0)).cell(value, 2);
    }
    table.print(std::cout);
    const double frac_poor = 1.0 - cdf_fraction_at(cdf, thresholds.get(m));
    std::cout << "fraction of calls beyond the poor threshold (" +
                     format_double(thresholds.get(m), 1) + " " +
                     std::string(metric_unit(m)) + "): "
              << format_double(100.0 * frac_poor, 1) << "%   (paper: ~15%)\n";
  }

  print_paper_note(
      "over 15% of calls exceed RTT 320 ms, loss 1.2% or jitter 12 ms — the "
      "thresholds used for the Poor Network Rate throughout.");
  print_elapsed(sw);
  return 0;
}
