// Section 5.2 (text): transit vs bounce relaying.  Paper: having transit
// relays available (in addition to bounce) cuts PNR substantially on pairs
// that can use both, and Via's decision mix lands around 54% bounce / 38%
// transit / 8% direct.
#include "bench_common.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Section 5.2 — transit vs bouncing relays", setup);

  const Metric target = Metric::Rtt;
  RunConfig with_transit;
  with_transit.min_pair_calls_for_eval =
      setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;
  RunConfig bounce_only = with_transit;
  bounce_only.exclude_transit = true;

  auto baseline = exp.make_default();
  const RunResult base = exp.run(*baseline, with_transit);

  auto via_full = exp.make_via(target);
  const RunResult full = exp.run(*via_full, with_transit);

  auto via_bounce = exp.make_via(target);
  const RunResult bounce = exp.run(*via_bounce, bounce_only);

  print_banner(std::cout, "PNR with and without transit options");
  TextTable table({"candidate set", "PNR(RTT)", "PNR(any bad)", "reduction vs default"});
  table.row()
      .cell("direct + bounce + transit")
      .cell_pct(full.pnr.pnr(target))
      .cell_pct(full.pnr.pnr_any())
      .cell(format_double(relative_improvement_pct(base.pnr.pnr(target), full.pnr.pnr(target)),
                          1) +
            "%");
  table.row()
      .cell("direct + bounce only")
      .cell_pct(bounce.pnr.pnr(target))
      .cell_pct(bounce.pnr.pnr_any())
      .cell(format_double(
                relative_improvement_pct(base.pnr.pnr(target), bounce.pnr.pnr(target)), 1) +
            "%");
  table.print(std::cout);
  std::cout << "paper: ~50% lower PNR when transit relays are available too.\n";

  print_banner(std::cout, "Via's decision mix (full candidate set)");
  const double total = static_cast<double>(full.used_direct + full.used_bounce +
                                           full.used_transit);
  TextTable mix({"option kind", "share of calls", "paper"});
  mix.row().cell("bounce").cell_pct(full.used_bounce / total).cell("~54%");
  mix.row().cell("transit").cell_pct(full.used_transit / total).cell("~38%");
  mix.row().cell("direct").cell_pct(full.used_direct / total).cell("~8%");
  mix.print(std::cout);

  print_elapsed(sw);
  return 0;
}
