// Figure 6: persistence and prevalence of high-PNR AS pairs.  An AS pair is
// "high PNR" on a day when its PNR is >= 1.5x the overall PNR that day.
// Paper: 10-20% of AS pairs are always high-PNR, while 60-70% are high for
// less than 30% of days and no more than one day at a stretch — so relay
// decisions must be dynamic.
#include "bench_common.h"

#include <algorithm>

#include "analysis/section2.h"
#include "util/percentile.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 6 — persistence & prevalence of high-PNR AS pairs", setup);

  const auto records = exp.generator().generate_default_routed();

  for (const Metric m : kAllMetrics) {
    const PersistencePrevalence pp =
        persistence_prevalence(records, m, /*ratio=*/1.5, /*min_calls_per_day=*/20,
                               /*min_active_days=*/5);
    print_banner(std::cout, std::string("metric: ") + std::string(metric_name(m)) + " (" +
                                std::to_string(pp.prevalence.size()) +
                                " qualifying AS pairs)");
    if (pp.prevalence.empty()) {
      std::cout << "not enough data density at this scale; rerun with "
                   "VIA_BENCH_SCALE=large\n";
      continue;
    }

    TextTable table({"distribution over AS pairs", "p10", "p25", "p50", "p75", "p90"});
    auto add = [&](const char* label, std::vector<double> values) {
      std::sort(values.begin(), values.end());
      table.row()
          .cell(label)
          .cell(percentile_sorted(values, 10), 2)
          .cell(percentile_sorted(values, 25), 2)
          .cell(percentile_sorted(values, 50), 2)
          .cell(percentile_sorted(values, 75), 2)
          .cell(percentile_sorted(values, 90), 2);
    };
    add("persistence (median run, days)", pp.persistence_days);
    add("prevalence (fraction of days)", pp.prevalence);
    table.print(std::cout);

    const auto always = static_cast<double>(std::count_if(
        pp.prevalence.begin(), pp.prevalence.end(), [](double p) { return p >= 0.95; }));
    const auto rarely = static_cast<double>(std::count_if(
        pp.prevalence.begin(), pp.prevalence.end(), [](double p) { return p < 0.30; }));
    const double n = static_cast<double>(pp.prevalence.size());
    std::cout << "always high (prevalence >= 95%): " << format_double(100.0 * always / n, 1)
              << "%   (paper: 10-20%)\n"
              << "high < 30% of days:              " << format_double(100.0 * rarely / n, 1)
              << "%   (paper: 60-70%)\n";
  }

  print_paper_note(
      "a skewed mix of chronic and transient problem pairs: static "
      "configuration would miss most of the transient ones.");
  print_elapsed(sw);
  return 0;
}
