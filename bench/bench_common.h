// Shared infrastructure for the figure/table reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation as a text table on stdout, annotated with the paper's headline
// numbers for comparison.  Scale is selectable with VIA_BENCH_SCALE=
// small|medium|large (default medium) so the full suite stays minutes, not
// hours; shapes, not absolute counts, are the reproduction target.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/experiment.h"
#include "util/table.h"

namespace via::bench {

inline Experiment::Scale scale_from_env() {
  const char* env = std::getenv("VIA_BENCH_SCALE");
  if (env == nullptr) return Experiment::Scale::Medium;
  const std::string s(env);
  if (s == "small") return Experiment::Scale::Small;
  if (s == "large") return Experiment::Scale::Large;
  return Experiment::Scale::Medium;
}

inline Experiment::Setup default_setup() {
  return Experiment::default_setup(scale_from_env());
}

/// Prints the standard bench header with workload parameters.
inline void print_header(const std::string& title, const Experiment::Setup& setup) {
  std::cout << "=====================================================================\n"
            << title << "\n"
            << "workload: " << setup.trace.total_calls << " calls, "
            << setup.world.num_ases << " ASes, " << setup.world.num_relays << " relays, "
            << setup.trace.days << " days, " << setup.trace.active_pairs << " active pairs\n"
            << "=====================================================================\n";
}

inline void print_paper_note(const std::string& note) {
  std::cout << "\npaper: " << note << "\n";
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_elapsed(const Stopwatch& sw) {
  std::cout << "\n[bench completed in " << format_double(sw.seconds(), 1) << "s]\n";
}

}  // namespace via::bench
