// Shared infrastructure for the figure/table reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation as a text table on stdout, annotated with the paper's headline
// numbers for comparison.  Scale is selectable with VIA_BENCH_SCALE=
// small|medium|large (default medium) so the full suite stays minutes, not
// hours; shapes, not absolute counts, are the reproduction target.
#pragma once

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/experiment.h"
#include "sim/parallel.h"
#include "trace/stream.h"
#include "util/table.h"

namespace via::bench {

inline Experiment::Scale scale_from_env() {
  const char* env = std::getenv("VIA_BENCH_SCALE");
  if (env == nullptr) return Experiment::Scale::Medium;
  const std::string s(env);
  if (s == "small") return Experiment::Scale::Small;
  if (s == "large") return Experiment::Scale::Large;
  return Experiment::Scale::Medium;
}

inline Experiment::Setup default_setup() {
  return Experiment::default_setup(scale_from_env());
}

/// Worker-thread count for run_many-based benches: `--threads N` or
/// `--threads=N` on the command line (stripped from argv so downstream
/// parsers such as google-benchmark never see it), else VIA_BENCH_THREADS,
/// else 0 = one worker per hardware thread.
inline int parse_threads(int& argc, char** argv) {
  int threads = 0;
  if (const char* env = std::getenv("VIA_BENCH_THREADS")) threads = std::atoi(env);

  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return threads < 0 ? 0 : threads;
}

/// Flat JSON object accumulated key by key and written to one file; used by
/// bench_micro_core to emit BENCH_core.json for CI artifact diffing.
class BenchJson {
 public:
  void set(const std::string& key, double value) {
    std::ostringstream os;
    os << value;
    entries_.emplace_back(key, os.str());
  }
  void set_int(const std::string& key, long long value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void set_bool(const std::string& key, bool value) {
    entries_.emplace_back(key, value ? "true" : "false");
  }
  void set_string(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + value + "\"");
  }

  void write(const std::string& path) const {
    std::ofstream out(path);
    out << "{";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i != 0) out << ",";
      out << "\n  \"" << entries_[i].first << "\": " << entries_[i].second;
    }
    out << "\n}\n";
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

inline std::string bench_json_path() {
  const char* env = std::getenv("VIA_BENCH_JSON");
  return env != nullptr ? std::string(env) : std::string("BENCH_core.json");
}

/// Prints the standard bench header with workload parameters.
inline void print_header(const std::string& title, const Experiment::Setup& setup) {
  std::cout << "=====================================================================\n"
            << title << "\n"
            << "workload: " << setup.trace.total_calls << " calls, "
            << setup.world.num_ases << " ASes, " << setup.world.num_relays << " relays, "
            << setup.trace.days << " days, " << setup.trace.active_pairs << " active pairs\n"
            << "=====================================================================\n";
}

inline void print_paper_note(const std::string& note) {
  std::cout << "\npaper: " << note << "\n";
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Times one full pass over `stream` (reset() first): generator throughput
/// in arrivals/sec.  `count` (optional) receives the arrivals produced.
inline double stream_arrivals_per_sec(ArrivalStream& stream, std::int64_t* count = nullptr) {
  stream.reset();
  const Stopwatch sw;
  CallArrival a;
  std::int64_t n = 0;
  while (stream.next(a)) ++n;
  const double secs = sw.seconds();
  if (count != nullptr) *count = n;
  return secs > 0.0 ? static_cast<double>(n) / secs : 0.0;
}

/// One-line machine-readable telemetry summary of the whole bench process:
/// wall time, replayed calls/sec, per-reason decision counts, and the full
/// session registry (every engine run folds its per-run registry into
/// obs::MetricsRegistry::process(), so this sees all runs of the binary).
inline void print_telemetry_json(std::ostream& os, double wall_seconds) {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::process().snapshot();
  const std::int64_t calls = snap.counter_value("engine.calls");
  os << "{\"telemetry\":{\"wall_seconds\":" << wall_seconds << ",\"calls\":" << calls
     << ",\"calls_per_sec\":"
     << (wall_seconds > 0.0 ? static_cast<double>(calls) / wall_seconds : 0.0)
     << ",\"decisions\":{";
  bool first = true;
  for (std::size_t i = 0; i < obs::kNumDecisionReasons; ++i) {
    const auto reason = static_cast<obs::DecisionReason>(i);
    const std::string_view name = obs::decision_reason_name(reason);
    const std::string counter =
        reason == obs::DecisionReason::BackgroundRelay
            ? std::string("engine.decision.") + std::string(name)
            : std::string("policy.decision.") + std::string(name);
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << snap.counter_value(counter);
  }
  os << "},\"metrics\":";
  obs::render_json(snap, os);
  os << "}}\n";
}

inline void print_elapsed(const Stopwatch& sw) {
  std::cout << "\n[bench completed in " << format_double(sw.seconds(), 1) << "s]\n";
  print_telemetry_json(std::cout, sw.seconds());
}

}  // namespace via::bench
