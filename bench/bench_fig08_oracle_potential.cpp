// Figure 8: the potential of relaying, measured with an oracle that knows
// every option's daily-average performance.  Paper: 30-60% reduction of
// the metrics at the median, ~40-65% at the tail, PNR cut by up to 53% per
// metric and >30% on the "at least one bad" criterion.
#include "bench_common.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 8 — oracle potential of relaying", setup);

  // Per-metric oracle runs against the default baseline; per §5.1 we
  // evaluate data-dense pairs.
  RunConfig run_config;
  run_config.min_pair_calls_for_eval =
      setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;

  auto baseline_policy = exp.make_default();
  const RunResult base = exp.run(*baseline_policy, run_config);

  print_banner(std::cout, "8a: improvement of metric percentiles (oracle vs default)");
  std::array<RunResult, kNumMetrics> oracle_runs;
  for (const Metric m : kAllMetrics) {
    auto oracle = exp.make_oracle(m);
    oracle_runs[metric_index(m)] = exp.run(*oracle, run_config);
  }

  TextTable pct_table({"metric", "p25", "p50", "p75", "p90", "p99", "paper (median)"});
  for (const Metric m : kAllMetrics) {
    const auto cmp = compare_percentiles(base, oracle_runs[metric_index(m)], m,
                                         {25.0, 50.0, 75.0, 90.0, 99.0});
    TextTable& row = pct_table.row();
    row.cell(std::string(metric_name(m)));
    for (const double imp : cmp.improvement_pct) row.cell(format_double(imp, 1) + "%");
    row.cell("30-60%");
  }
  pct_table.print(std::cout);

  print_banner(std::cout, "8b: PNR reduction (oracle vs default)");
  TextTable pnr_table({"criterion", "default PNR", "oracle PNR", "reduction", "paper"});
  for (const Metric m : kAllMetrics) {
    const RunResult& treated = oracle_runs[metric_index(m)];
    pnr_table.row()
        .cell(std::string(metric_name(m)))
        .cell_pct(base.pnr.pnr(m))
        .cell_pct(treated.pnr.pnr(m))
        .cell(format_double(relative_improvement_pct(base.pnr.pnr(m), treated.pnr.pnr(m)), 1) +
              "%")
        .cell("up to 53%");
  }
  // "At least one bad", conservatively the worst over the three
  // per-metric-optimized runs (paper's rule).
  double worst_any = 0.0;
  for (const auto& run : oracle_runs) worst_any = std::max(worst_any, run.pnr.pnr_any());
  pnr_table.row()
      .cell("at least one bad")
      .cell_pct(base.pnr.pnr_any())
      .cell_pct(worst_any)
      .cell(format_double(relative_improvement_pct(base.pnr.pnr_any(), worst_any), 1) + "%")
      .cell(">30%");
  pnr_table.print(std::cout);

  print_paper_note(
      "an oracle-driven managed overlay can fix a large share of poor-network "
      "calls; the residue is dominated by bad last hops no relay can avoid.");
  print_elapsed(sw);
  return 0;
}
