// Figure 16: impact of the relaying budget.  Compares the oracle, budget-
// aware Via (§4.6: relay only calls whose predicted benefit clears the
// trailing top-B percentile) and budget-unaware Via (greedy) across budget
// levels.  Paper: budget-aware Via reaches about half of the unlimited
// benefit with a budget of only 30% of calls.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace via;
  using namespace via::bench;
  const int threads = parse_threads(argc, argv);
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Figure 16 — relaying under a budget (PNR of 'at least one bad')", setup);

  const Metric target = Metric::Rtt;
  RunConfig run_config;
  run_config.min_pair_calls_for_eval =
      setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;

  // The budget sweep is embarrassingly parallel: flatten every budget level's
  // (oracle, aware, unaware) triple into one 22-spec batch for the runner.
  const std::vector<double> budgets = {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0};
  std::vector<RunSpec> specs;
  specs.push_back({"default", [&exp] { return exp.make_default(); }, run_config});
  for (const double budget : budgets) {
    specs.push_back({"oracle/" + format_double(budget, 2),
                     [&exp, target, budget] {
                       return exp.make_oracle(target, {.fraction = budget, .aware = true});
                     },
                     run_config});
    specs.push_back({"aware/" + format_double(budget, 2),
                     [&exp, target, budget] {
                       ViaConfig config;
                       config.budget = {.fraction = budget, .aware = true};
                       return exp.make_via(target, config);
                     },
                     run_config});
    specs.push_back({"unaware/" + format_double(budget, 2),
                     [&exp, target, budget] {
                       ViaConfig config;
                       config.budget = {.fraction = budget, .aware = false};
                       return exp.make_via(target, config);
                     },
                     run_config});
  }
  const std::vector<RunResult> results = exp.run_many(specs, threads);
  const RunResult& base = results[0];

  TextTable table({"budget", "oracle PNR", "aware PNR", "unaware PNR", "aware relayed",
                   "unaware relayed"});
  double unlimited_cut = 0.0;
  double cut_at_30 = 0.0;
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    const double budget = budgets[b];
    const RunResult& ro = results[1 + b * 3];
    const RunResult& ra = results[1 + b * 3 + 1];
    const RunResult& ru = results[1 + b * 3 + 2];

    table.row()
        .cell_pct(budget, 0)
        .cell_pct(ro.pnr.pnr_any())
        .cell_pct(ra.pnr.pnr_any())
        .cell_pct(ru.pnr.pnr_any())
        .cell_pct(ra.relayed_fraction())
        .cell_pct(ru.relayed_fraction());

    const double cut = base.pnr.pnr_any() - ra.pnr.pnr_any();
    if (budget == 1.0) unlimited_cut = cut;
    if (budget == 0.3) cut_at_30 = cut;
  }
  table.print(std::cout);

  std::cout << "\ndefault PNR(any): " << format_double(100.0 * base.pnr.pnr_any(), 1)
            << "%\nbudget-aware at B=30% achieves "
            << format_double(unlimited_cut > 0 ? 100.0 * cut_at_30 / unlimited_cut : 0.0, 0)
            << "% of the unlimited-budget benefit   (paper: ~half)\n";

  print_paper_note(
      "budget-aware selection spends the budget on the highest-benefit "
      "calls; budget-unaware burns it on marginal ones.  (Above B~50% our "
      "aware variant goes conservative: it vetoes relays whose *predicted* "
      "benefit is negative even where the bandit's fresher same-day "
      "evidence disagrees — see EXPERIMENTS.md.)");
  print_elapsed(sw);
  return 0;
}
