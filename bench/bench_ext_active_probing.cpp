// Extension (paper §7): active measurements.  The controller requests mock
// calls to fill coverage holes (candidate options with no prediction);
// the engine executes up to N probes per refresh.  Measures how probing
// spends affect prediction coverage and PNR.
#include "bench_common.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  auto setup = default_setup();
  Experiment exp(setup);
  print_header("Extension — active measurements to fill coverage holes", setup);

  const Metric target = Metric::Rtt;
  RunConfig run_config;
  run_config.min_pair_calls_for_eval =
      setup.trace.total_calls / std::max(1, setup.trace.active_pairs) / 4;

  auto baseline = exp.make_default();
  const RunResult base = exp.run(*baseline, run_config);

  TextTable table({"probes per refresh", "probes executed", "PNR(RTT)",
                   "reduction vs default", "cold-start direct calls"});
  for (const int probes : {0, 50, 200, 1000}) {
    RunConfig config = run_config;
    config.probes_per_refresh = probes;
    auto policy = exp.make_via(target);
    const RunResult r = exp.run(*policy, config);
    table.row()
        .cell_int(probes)
        .cell_int(r.probes_executed)
        .cell_pct(r.pnr.pnr(target))
        .cell(format_double(relative_improvement_pct(base.pnr.pnr(target), r.pnr.pnr(target)),
                            1) +
              "%")
        .cell_int(policy->stats().cold_start_direct);
  }
  table.print(std::cout);

  print_paper_note(
      "probing 'fills holes in the passively obtained measurements' — the "
      "gain concentrates where passive coverage is thin (sparse pairs).");
  print_elapsed(sw);
  return 0;
}
