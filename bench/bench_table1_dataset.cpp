// Table 1: dataset summary (calls, users, ASes, countries), plus the §2.1
// headline characteristics: international / inter-AS / wireless fractions.
#include "bench_common.h"

#include "trace/dataset.h"

int main() {
  using namespace via;
  using namespace via::bench;
  const Stopwatch sw;

  const auto setup = default_setup();
  Experiment exp(setup);
  print_header("Table 1 — dataset summary", setup);

  const TraceStats stats = summarize_arrivals(exp.arrivals(), exp.ground_truth());

  TextTable table({"statistic", "this trace", "paper (430M-call Skype sample)"});
  table.row().cell("calls").cell_int(stats.calls).cell("430M");
  table.row().cell("users").cell_int(stats.users).cell("135M");
  table.row().cell("ASes").cell_int(stats.ases).cell("1.9K");
  table.row().cell("countries/regions").cell_int(stats.countries).cell("126");
  table.row().cell("days").cell_int(stats.days).cell("~197 (2015-11-15..2016-05-30)");
  table.row().cell("AS pairs").cell_int(stats.as_pairs).cell("-");
  table.row().cell("international calls").cell_pct(stats.international_fraction).cell("46.6%");
  table.row().cell("inter-AS calls").cell_pct(stats.inter_as_fraction).cell("80.7%");
  table.row().cell("wireless calls").cell_pct(stats.wireless_fraction).cell("83%");
  table.print(std::cout);

  print_paper_note(
      "scale is reduced by design; the structural fractions (international, "
      "inter-AS, wireless) are the calibration targets.");
  print_elapsed(sw);
  return 0;
}
