// via_controller — standalone Via controller daemon.
//
// Serves the prediction-guided-exploration relay selector over the TCP
// protocol in src/rpc/.  Clients request per-call decisions and push
// measurements; a timer thread refreshes the predictor every T hours of
// *reported call time* (the controller is driven by the clocks in the
// measurements, so replayed traces work too).
//
//   via_controller [--port N] [--metric rtt|loss|jitter] [--epsilon E]
//                  [--budget B] [--refresh-hours T] [--backbone FILE]
//                  [--stripes N] [--solve-threads N] [--no-prewarm]
//                  [--max-resident-pairs N] [--pair-ttl PERIODS]
//                  [--max-inflight N]
//                  [--backend legacy|epoll|uring] [--write-buffer-cap BYTES]
//                  [--reactor-threads N] [--legacy-threads]
//                  [--probe-backend uring]
//                  [--replica-id N] [--peers P1,P2,...] [--ring-seed S]
//                  [--ring-epoch E] [--gossip-period MS]
//                  [--http-port N] [--trace-sample N]
//                  [--flight-recorder FILE] [--timeseries-window MS]
//                  [--metrics-dump] [--metrics-format table|json|prom]
//
// Federation (DESIGN.md §6k): --replica-id stamps this controller's
// identity into every reply (and /varz) so multi-replica fleets are
// attributable; --peers names the sibling replicas' loopback ports, and a
// gossip thread pushes this replica's tomography segment estimates to each
// peer every --gossip-period ms (default 1000), folding whatever the peers
// sent back into the next refresh.  --ring-seed / --ring-epoch must match
// across the fleet (clients detect a stale epoch from the reply stamp).
// Without --peers the controller runs standalone, bit-identical to the
// pre-federation daemon.
//
// --backend legacy|epoll|uring: serving backend (DESIGN.md §6j).  `epoll`
// (the default) and `uring` serve every connection from an event-driven
// reactor behind the same dispatch path; `uring` uses one io_uring ring
// per worker and falls back to epoll — counted and flight-recorded — when
// the kernel cannot run it.  `legacy` is the thread-per-connection loop.
//
// --write-buffer-cap BYTES: per-connection reply-queue cap (default 4 MiB).
// A connection whose unsent replies reach the cap stops being *read* until
// its queue drains under half the cap, so one slow consumer cannot balloon
// server memory (rpc.server.backpressure.* counts pauses).
//
// --reactor-threads N: event-loop workers for the epoll/io_uring backends
// (DESIGN.md §6h).  The daemon defaults to half the hardware threads
// (clamped to [2, 8]); the flight recorder still captures shed,
// protocol-error, drain, and backpressure events in these modes.
//
// --legacy-threads: revert to the thread-per-connection accept loop
// (equivalent to --backend legacy); kept for one release as an escape
// hatch.
//
// --probe-backend uring: capability probe — exit 0 when this kernel can
// run the io_uring backend, 3 when it cannot.  CI uses this to decide
// between running the uring suite and an explicit SKIP.
//
// Observability plane (DESIGN.md §6g):
//
// --http-port N: start the admin HTTP sidecar on 127.0.0.1:N serving
// /metrics (Prometheus), /healthz, /varz, /trace (Chrome trace JSON), and
// /flightrecord (JSONL).  Omitted = no HTTP listener.
//
// --trace-sample N: record 1 in N decision traces (rpc.decide plus the
// policy's choose sub-stages) into a bounded span buffer, dumpable via
// GetTrace / the /trace endpoint.  0 (default) disables tracing entirely.
//
// --flight-recorder FILE: on shutdown, dump the flight recorder (health
// transitions, shed requests, protocol errors, refresh ticks) as JSONL to
// FILE ("-" = stdout).  The ring records regardless; this flag only adds
// the exit dump.
//
// --timeseries-window MS: close a windowed counter/histogram delta
// snapshot every MS milliseconds (queryable while running via /varz
// consumers; dumped as JSON on shutdown with --metrics-dump).
//
// --max-inflight N: overload shedding — when more than N connections are
// mid-request, new DecisionRequest/Report/Refresh frames get an explicit
// Busy reply instead of queueing (clients retry with backoff).  0 (the
// default) disables shedding.
//
// --stripes N: serving-state lock stripes (power of two, max 64).  The
// daemon defaults to 16 so concurrent clients' decisions for unrelated AS
// pairs proceed in parallel; 1 reproduces single-stream replay behavior
// bit for bit.
//
// --solve-threads N: worker threads for the per-refresh tomography solve
// (default 0 = one per hardware thread).  Any value produces bit-identical
// estimates (DESIGN.md §6e); this only buys refresh wall time.
//
// --no-prewarm: disable eager per-pair memo pre-warming during refresh
// preparation.  The daemon pre-warms by default so the first post-refresh
// call per active pair hits the warm lookup path instead of the cold
// predict/top-k build; decisions are identical either way.
//
// --max-resident-pairs N: cap the per-pair serving states kept resident
// (DESIGN.md §6i).  Enforced at each refresh commit, oldest-armed pairs
// evicted first; an evicted pair that calls again is re-armed from the
// published snapshot.  0 (default) = unbounded.
//
// --pair-ttl PERIODS: drop serving state for pairs that have not called
// in this many refresh periods (checked at each commit).  0 (default)
// disables the TTL.  Resident memory is visible live as the policy.mem.*
// gauges on /metrics and in /varz.
//
// --metrics-dump: print the telemetry registry (decision counters, RPC
// latency histograms, bytes in/out) on shutdown; the same snapshot is
// queryable live over the GetStats RPC (`via_call_client stats`).
//
// --backbone FILE: CSV "relay_a,relay_b,rtt_ms,loss_pct,jitter_ms" giving
// the managed backbone matrix (the operator knows this).  Without it the
// backbone is assumed free, which disables transit-path stitching but
// keeps everything else working.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>

#include <vector>

#include "core/via_policy.h"
#include "fed/federation.h"
#include "fed/segment_exchange.h"
#include "obs/export.h"
#include "rpc/admin_http.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/uring_reactor.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

via::Metric parse_metric(const std::string& s) {
  if (s == "loss") return via::Metric::Loss;
  if (s == "jitter") return via::Metric::Jitter;
  return via::Metric::Rtt;
}

via::obs::StatsFormat parse_stats_format(const std::string& s) {
  if (s == "json") return via::obs::StatsFormat::Json;
  if (s == "prom" || s == "prometheus") return via::obs::StatsFormat::Prometheus;
  return via::obs::StatsFormat::Table;
}

/// Backbone matrix loaded from CSV; symmetric, zero if absent.
class BackboneTable {
 public:
  void load(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open backbone file: " + path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ss(line);
      std::string cell;
      via::PathPerformance perf;
      int a = 0, b = 0;
      if (!std::getline(ss, cell, ',')) continue;
      a = std::stoi(cell);
      if (!std::getline(ss, cell, ',')) continue;
      b = std::stoi(cell);
      if (std::getline(ss, cell, ',')) perf.rtt_ms = std::stod(cell);
      if (std::getline(ss, cell, ',')) perf.loss_pct = std::stod(cell);
      if (std::getline(ss, cell, ',')) perf.jitter_ms = std::stod(cell);
      table_[key(static_cast<via::RelayId>(a), static_cast<via::RelayId>(b))] = perf;
      ++entries_;
    }
  }

  [[nodiscard]] via::PathPerformance get(via::RelayId a, via::RelayId b) const {
    const auto it = table_.find(key(a, b));
    return it != table_.end() ? it->second : via::PathPerformance{};
  }

  [[nodiscard]] int entries() const noexcept { return entries_; }

 private:
  static std::uint64_t key(via::RelayId a, via::RelayId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(a)) << 16) |
           static_cast<std::uint64_t>(static_cast<std::uint16_t>(b));
  }
  std::unordered_map<std::uint64_t, via::PathPerformance> table_;
  int entries_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace via;

  std::uint16_t port = 7401;
  ViaConfig config;
  // Daemon default: serve concurrent clients off 16 lock stripes (replays
  // and tests that need bit-identical single-stream behavior pass 1), a
  // hardware-wide tomography solve, and eager pair-memo pre-warming —
  // none of which change any decision, only serving latency.
  config.serving_stripes = 16;
  config.prewarm_pairs = true;
  config.predictor.tomography.solve_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  BackboneTable backbone;
  ServerConfig server_config;
  // Daemon default: event-driven serving (§6h) with half the hardware
  // threads, clamped to [2, 8]; --legacy-threads restores the old model.
  server_config.reactor_threads =
      std::clamp(static_cast<int>(std::thread::hardware_concurrency()) / 2, 2, 8);
  bool metrics_dump = false;
  obs::StatsFormat metrics_format = obs::StatsFormat::Table;
  bool http_enabled = false;
  std::uint16_t http_port = 0;
  std::string flight_recorder_file;
  // Federation (§6k): peer replica ports + gossip cadence.
  fed::FederationConfig fed_config;
  fed_config.ring_epoch = 0;  // 0 = unfederated unless --replica-id/--peers given
  std::vector<std::uint16_t> peer_ports;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--port") {
        port = static_cast<std::uint16_t>(std::stoi(next()));
      } else if (arg == "--metric") {
        config.target = parse_metric(next());
      } else if (arg == "--epsilon") {
        config.epsilon = std::stod(next());
      } else if (arg == "--budget") {
        config.budget.fraction = std::stod(next());
      } else if (arg == "--refresh-hours") {
        config.refresh_period = static_cast<TimeSec>(std::stod(next()) * 3600.0);
      } else if (arg == "--backbone") {
        backbone.load(next());
      } else if (arg == "--stripes") {
        config.serving_stripes = static_cast<std::size_t>(std::stoul(next()));
      } else if (arg == "--solve-threads") {
        const int n = std::stoi(next());
        config.predictor.tomography.solve_threads =
            n > 0 ? n : static_cast<int>(std::thread::hardware_concurrency());
      } else if (arg == "--no-prewarm") {
        config.prewarm_pairs = false;
      } else if (arg == "--max-resident-pairs") {
        config.mem.max_resident_pairs = static_cast<std::size_t>(std::stoul(next()));
      } else if (arg == "--pair-ttl") {
        config.mem.pair_ttl_periods = std::stoull(next());
      } else if (arg == "--max-inflight") {
        server_config.max_inflight = std::stoll(next());
      } else if (arg == "--reactor-threads") {
        server_config.reactor_threads = std::stoi(next());
      } else if (arg == "--legacy-threads") {
        server_config.reactor_threads = 0;
        server_config.backend = ServingBackend::kLegacy;
      } else if (arg == "--backend") {
        const std::string mode = next();
        if (mode == "legacy") {
          server_config.backend = ServingBackend::kLegacy;
          server_config.reactor_threads = 0;
        } else if (mode == "epoll") {
          server_config.backend = ServingBackend::kEpoll;
        } else if (mode == "uring") {
          server_config.backend = ServingBackend::kUring;
        } else {
          throw std::runtime_error("unknown backend: " + mode +
                                   " (expected legacy|epoll|uring)");
        }
      } else if (arg == "--probe-backend") {
        // Capability probe for CI: exit 0 when the named backend can run
        // here, 3 when it cannot, without starting a server.
        const std::string mode = next();
        if (mode == "uring") return UringReactor::supported() ? 0 : 3;
        return mode == "epoll" || mode == "legacy" ? 0 : 3;
      } else if (arg == "--write-buffer-cap") {
        server_config.write_buffer_cap = std::stoull(next());
      } else if (arg == "--replica-id") {
        server_config.replica_id = static_cast<std::uint32_t>(std::stoul(next()));
        if (fed_config.ring_epoch == 0) fed_config.ring_epoch = 1;
      } else if (arg == "--peers") {
        std::istringstream ss(next());
        std::string cell;
        while (std::getline(ss, cell, ',')) {
          if (!cell.empty()) peer_ports.push_back(static_cast<std::uint16_t>(std::stoi(cell)));
        }
        if (fed_config.ring_epoch == 0) fed_config.ring_epoch = 1;
      } else if (arg == "--ring-seed") {
        fed_config.ring_seed = std::stoull(next());
      } else if (arg == "--ring-epoch") {
        fed_config.ring_epoch = std::stoull(next());
      } else if (arg == "--gossip-period") {
        fed_config.exchange_period_ms = std::stoi(next());
      } else if (arg == "--http-port") {
        http_enabled = true;
        http_port = static_cast<std::uint16_t>(std::stoi(next()));
      } else if (arg == "--trace-sample") {
        server_config.trace_sample = static_cast<std::uint32_t>(std::stoul(next()));
      } else if (arg == "--flight-recorder") {
        flight_recorder_file = next();
      } else if (arg == "--timeseries-window") {
        server_config.timeseries_window_ms = std::stoi(next());
      } else if (arg == "--metrics-dump") {
        metrics_dump = true;
      } else if (arg == "--metrics-format") {
        metrics_format = parse_stats_format(next());
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "usage: via_controller [--port N] [--metric rtt|loss|jitter]\n"
                     "                      [--epsilon E] [--budget B]\n"
                     "                      [--refresh-hours T] [--backbone FILE]\n"
                     "                      [--stripes N] [--solve-threads N] [--no-prewarm]\n"
                     "                      [--max-resident-pairs N] [--pair-ttl PERIODS]\n"
                     "                      [--max-inflight N]\n"
                     "                      [--backend legacy|epoll|uring]\n"
                     "                      [--write-buffer-cap BYTES]\n"
                     "                      [--reactor-threads N] [--legacy-threads]\n"
                     "                      [--probe-backend uring]\n"
                     "                      [--replica-id N] [--peers P1,P2,...]\n"
                     "                      [--ring-seed S] [--ring-epoch E]\n"
                     "                      [--gossip-period MS]\n"
                     "                      [--http-port N] [--trace-sample N]\n"
                     "                      [--flight-recorder FILE] [--timeseries-window MS]\n"
                     "                      [--metrics-dump] [--metrics-format table|json|prom]\n";
        return 0;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  // The option table is populated on demand from client requests: clients
  // name options by id, so intern a generous bounce/transit space lazily.
  // For the daemon we pre-intern bounces for relays 0..255 and let transit
  // ids arrive via requests' option lists (already interned by peers that
  // share the same enumeration convention).
  RelayOptionTable options;
  for (RelayId r = 0; r < 256; ++r) (void)options.intern_bounce(r);
  for (RelayId a = 0; a < 64; ++a) {
    for (RelayId b = static_cast<RelayId>(a + 1); b < 64; ++b) {
      (void)options.intern_transit(a, b);
    }
  }

  ViaPolicy policy(
      options, [&backbone](RelayId a, RelayId b) { return backbone.get(a, b); }, config);

  // Federation wiring (§6k): stamp replies with this replica's identity,
  // park peer gossip in an exchange the next refresh folds, and push our
  // own segments to the peers on the gossip cadence.
  server_config.ring_epoch = fed_config.ring_epoch;
  fed::SegmentExchange exchange;
  if (!peer_ports.empty()) {
    policy.set_peer_segment_source([&exchange] { return exchange.collect(); });
  }

  try {
    ControllerServer server(policy, port, server_config);
    server.set_gossip_handler([&exchange](const GossipSegmentsMsg& msg) {
      return exchange.accept(fed::SegmentUpdate{msg.replica_id, msg.ring_epoch, msg.segments});
    });
    server.start();

    std::atomic<bool> gossip_stop{false};
    std::thread gossip_thread;
    if (!peer_ports.empty() && fed_config.exchange_period_ms > 0) {
      gossip_thread = std::thread([&] {
        while (!gossip_stop.load()) {
          for (int slept = 0; slept < fed_config.exchange_period_ms && !gossip_stop.load();
               slept += 50) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
          if (gossip_stop.load()) break;
          GossipSegmentsMsg msg;
          msg.replica_id = server_config.replica_id;
          msg.ring_epoch = fed_config.ring_epoch;
          msg.segments = fed::SegmentExchange::render(policy.model()->predictor().tomography(),
                                                      fed_config.exchange_max_segments);
          if (msg.segments.empty()) continue;
          for (const std::uint16_t peer_port : peer_ports) {
            try {
              ClientConfig cc;
              cc.request_timeout_ms = 1000;
              ControllerClient peer(peer_port, cc);
              (void)peer.gossip_segments(msg);
              peer.shutdown();
            } catch (const std::exception&) {
              // A dead peer misses this round; the next one covers it.
            }
          }
        }
      });
    }
    std::unique_ptr<AdminHttpServer> http;
    if (http_enabled) {
      http = std::make_unique<AdminHttpServer>(server.telemetry(), http_port);
      http->set_varz([&server, &policy, &server_config, &fed_config, &exchange, &peer_ports] {
        // memory_stats() walks the store under its stripe locks — cheap at
        // /varz scrape cadence, and safe concurrently with serving.
        ViaPolicy::MemoryStats mem = policy.memory_stats();
        std::ostringstream os;
        os << "\"decisions_served\":" << server.decisions_served()
           << ",\"reports_received\":" << server.reports_received()
           << ",\"active_handlers\":" << server.active_handlers()
           << ",\"mem_total_bytes\":" << mem.total_bytes()
           << ",\"mem_window_bytes\":" << mem.window_bytes
           << ",\"mem_snapshot_bytes\":" << mem.snapshot_bytes
           << ",\"mem_store_bytes\":" << mem.store_bytes
           << ",\"resident_pairs\":" << mem.resident_pairs
           << ",\"store_evictions\":" << mem.store_evictions
           << ",\"serving_backend\":\"" << serving_backend_name(server.serving_backend())
           << "\",\"backpressure_paused_conns\":" << server.backpressure_paused_conns()
           << ",\"backpressure_pauses_total\":" << server.backpressure_pauses_total()
           << ",\"backpressure_queued_bytes\":" << server.backpressure_queued_bytes()
           << ",\"peak_conn_queued_bytes\":" << server.peak_conn_queued_bytes()
           << ",\"replica_id\":" << server_config.replica_id
           << ",\"ring_epoch\":" << fed_config.ring_epoch
           << ",\"fed_peers\":" << peer_ports.size()
           << ",\"gossip_updates_received\":" << exchange.updates_accepted()
           << ",\"peer_segments_held\":" << exchange.segments_held()
           << ",\"peer_segments_folded\":" << policy.peer_segments_folded();
        return std::move(os).str();
      });
      http->start();
    }
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    if (http != nullptr) {
      std::cout << "admin http on 127.0.0.1:" << http->port()
                << " (/metrics /healthz /varz /trace /flightrecord)\n";
    }
    std::cout << "via_controller listening on 127.0.0.1:" << server.port() << " (";
    if (server.serving_backend() != ServingBackend::kLegacy) {
      std::cout << serving_backend_name(server.serving_backend()) << " reactor x"
                << std::max(server_config.reactor_threads, 2);
    } else {
      std::cout << "thread-per-connection";
    }
    std::cout << ", metric "
              << metric_name(config.target) << ", epsilon " << config.epsilon << ", budget "
              << config.budget.fraction << ", refresh "
              << config.refresh_period / 3600 << "h, stripes "
              << config.serving_stripes << ", solve threads "
              << config.predictor.tomography.solve_threads << ", prewarm "
              << (config.prewarm_pairs ? "on" : "off") << ", backbone entries "
              << backbone.entries() << ")\n";
    if (!peer_ports.empty() || fed_config.ring_epoch != 0) {
      std::cout << "federation: replica " << server_config.replica_id << ", ring epoch "
                << fed_config.ring_epoch << ", " << peer_ports.size()
                << " peer(s), gossip every " << fed_config.exchange_period_ms << "ms\n";
    }
    std::cout << "clients drive refresh via the Refresh message; Ctrl-C stops.\n";
    while (!g_stop.load()) {
      // The server runs its own threads; the main thread just waits.
      ::pause();
    }
    std::cout << "\nshutting down: " << server.decisions_served() << " decisions, "
              << server.reports_received() << " reports served.\n";
    if (metrics_dump) {
      std::cout << "\n== telemetry ==\n"
                << obs::render_stats(server.telemetry().registry.snapshot(), metrics_format);
      const obs::TimeSeries series = server.timeseries();
      if (!series.empty()) std::cout << "\n== timeseries ==\n" << series.to_json() << "\n";
    }
    if (!flight_recorder_file.empty()) {
      if (flight_recorder_file == "-") {
        std::cout << "\n== flight record ==\n";
        server.telemetry().flight.export_jsonl(std::cout);
      } else {
        std::ofstream out(flight_recorder_file);
        if (out) {
          server.telemetry().flight.export_jsonl(out);
          std::cout << "flight record written to " << flight_recorder_file << "\n";
        } else {
          std::cerr << "cannot write flight record to " << flight_recorder_file << "\n";
        }
      }
    }
    gossip_stop.store(true);
    if (gossip_thread.joinable()) gossip_thread.join();
    if (http != nullptr) http->stop();
    server.stop();
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
