// via_soak_driver — out-of-process soak client (DESIGN.md §6j).
//
// Opens --conns pipelined connections against a controller on
// 127.0.0.1:--port, drives --rounds bursts of --depth frames each, and
// prints a one-line JSON SoakResult on stdout.  Exists as a separate
// binary so a 10k-connection soak's client fds are charged to this
// process's RLIMIT_NOFILE, not the server under test's; tests and
// benchmarks launch it via via::spawn_soak().
#include "rpc/soak_driver.h"

int main(int argc, char** argv) { return via::soak_driver_main(argc, argv); }
