// via_call_client — command-line client for a running via_controller.
//
//   via_call_client --port N decide --call ID --time T --src AS --dst AS \
//                   --options 0,1,2,...
//   via_call_client --port N report --call ID --time T --src AS --dst AS \
//                   --option OPT [--ingress R] --rtt MS --loss PCT --jitter MS
//   via_call_client --port N refresh --time T
//   via_call_client --port N stats [--format table|json|prom]
//   via_call_client --port N trace [--max-bytes N]
//   via_call_client --port N flightrecord [--max-bytes N]
//   via_call_client --port N ping          (alias: --ping)
//
// `ping` sends the payload-free health probe (shedding-exempt, §6k) and
// prints the replica identity from the Pong — the same RPC the federated
// client's probation probe uses, so a scripted health check sees exactly
// what failover sees.
//
// Exposes the full wire protocol from the shell — handy for smoke-testing
// a deployment or scripting synthetic traffic against a live controller.
// `trace` prints the controller's span buffer as Chrome trace-event JSON;
// `flightrecord` prints its flight recorder as JSONL (§6g).
//
// Resilience flags (all commands): --request-timeout-ms M arms a receive
// deadline per round trip (0 = block forever); --retries K retries
// retryable failures (timeout/reset/busy) up to K times with exponential
// backoff and deterministic jitter, reconnecting after resets;
// --fallback-direct makes decide answer the direct path instead of
// failing when the controller stays unreachable.
//
// --client-stats: after the command, print the client's own accounting to
// stderr — per-kind error counters (rpc.client.errors.timeout / reset /
// protocol / busy), total request errors, and retry / reconnect /
// fallback totals.  --trace-id X stamps decide requests with a trace id
// so the controller's sampled spans line up with the caller's.
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "rpc/client.h"

namespace {

std::vector<via::OptionId> parse_options(const std::string& csv) {
  std::vector<via::OptionId> out;
  std::istringstream ss(csv);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    if (!cell.empty()) out.push_back(static_cast<via::OptionId>(std::stoi(cell)));
  }
  return out;
}

void usage() {
  std::cout
      << "usage:\n"
         "  via_call_client --port N decide --call ID --time T --src AS --dst AS"
         " --options 0,3,7\n"
         "  via_call_client --port N report --call ID --time T --src AS --dst AS"
         " --option OPT [--ingress R] --rtt MS --loss PCT --jitter MS\n"
         "  via_call_client --port N refresh --time T\n"
         "  via_call_client --port N stats [--format table|json|prom]\n"
         "  via_call_client --port N trace [--max-bytes N]\n"
         "  via_call_client --port N flightrecord [--max-bytes N]\n"
         "  via_call_client --port N ping          (alias: --ping)\n"
         "options: [--request-timeout-ms M] [--retries K] [--fallback-direct]\n"
         "         [--trace-id X] [--client-stats]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace via;

  std::uint16_t port = 7401;
  ClientConfig client_config;
  std::string command;
  DecisionRequest request;
  Observation obs;
  TimeSec refresh_time = 0;
  via::obs::StatsFormat stats_format = via::obs::StatsFormat::Table;
  std::uint32_t max_bytes = 0;
  bool client_stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--port") {
        port = static_cast<std::uint16_t>(std::stoi(next()));
      } else if (arg == "--request-timeout-ms") {
        client_config.request_timeout_ms = std::stoi(next());
      } else if (arg == "--retries") {
        client_config.max_retries = std::stoi(next());
      } else if (arg == "--fallback-direct") {
        client_config.fallback_direct = true;
      } else if (arg == "--client-stats") {
        client_stats = true;
      } else if (arg == "--trace-id") {
        request.trace_id = std::stoull(next(), nullptr, 0);
      } else if (arg == "--max-bytes") {
        max_bytes = static_cast<std::uint32_t>(std::stoul(next()));
      } else if (arg == "decide" || arg == "report" || arg == "refresh" || arg == "stats" ||
                 arg == "trace" || arg == "flightrecord" || arg == "ping") {
        command = arg;
      } else if (arg == "--ping") {
        command = "ping";
      } else if (arg == "--format") {
        const std::string f = next();
        stats_format = f == "json"   ? obs::StatsFormat::Json
                       : f == "prom" ? obs::StatsFormat::Prometheus
                                     : obs::StatsFormat::Table;
      } else if (arg == "--call") {
        request.call_id = obs.id = std::stoll(next());
      } else if (arg == "--time") {
        request.time = obs.time = refresh_time = std::stoll(next());
      } else if (arg == "--src") {
        request.src_as = obs.src_as = static_cast<AsId>(std::stoi(next()));
      } else if (arg == "--dst") {
        request.dst_as = obs.dst_as = static_cast<AsId>(std::stoi(next()));
      } else if (arg == "--options") {
        request.options = parse_options(next());
      } else if (arg == "--option") {
        obs.option = static_cast<OptionId>(std::stoi(next()));
      } else if (arg == "--ingress") {
        obs.ingress = static_cast<RelayId>(std::stoi(next()));
      } else if (arg == "--rtt") {
        obs.perf.rtt_ms = std::stod(next());
      } else if (arg == "--loss") {
        obs.perf.loss_pct = std::stod(next());
      } else if (arg == "--jitter") {
        obs.perf.jitter_ms = std::stod(next());
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  if (command.empty()) {
    usage();
    return 2;
  }

  via::obs::MetricsRegistry client_registry;
  const auto dump_client_stats = [&] {
    if (!client_stats) return;
    const via::obs::MetricsSnapshot snap = client_registry.snapshot();
    std::cerr << "== client stats ==\n";
    for (const char* name :
         {"rpc.client.request_errors", "rpc.client.errors.timeout", "rpc.client.errors.reset",
          "rpc.client.errors.protocol", "rpc.client.errors.busy", "rpc.client.retries",
          "rpc.client.reconnects", "rpc.client.fallback_direct"}) {
      std::cerr << name << " " << snap.counter_value(name) << "\n";
    }
  };

  int rc = 0;
  try {
    ControllerClient client(port, client_config);
    client.attach_metrics(&client_registry);
    if (command == "decide") {
      if (request.options.empty()) {
        std::cerr << "decide requires --options\n";
        return 2;
      }
      const OptionId choice = client.request_decision(request);
      std::cout << choice << "\n";
    } else if (command == "report") {
      client.report(obs);
      std::cout << "ok\n";
    } else if (command == "stats") {
      std::cout << client.get_stats(stats_format) << "\n";
    } else if (command == "trace") {
      std::cout << client.get_trace(max_bytes) << "\n";
    } else if (command == "flightrecord") {
      std::cout << client.get_flight_record(max_bytes);
    } else if (command == "ping") {
      const PongMsg pong = client.ping();
      std::cout << "pong replica_id=" << pong.replica_id << " ring_epoch=" << pong.ring_epoch
                << "\n";
    } else {
      client.refresh(refresh_time);
      std::cout << "ok\n";
    }
    client.shutdown();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 1;
  }
  dump_client_stats();
  return rc;
}
