// Section-2 analyses: everything the paper measures about call quality and
// poor-network patterns in the default-routed trace.
//
//   Figure 1  — binned PCR as a function of each network metric
//   Figure 2  — CDFs of RTT / loss / jitter and the poor thresholds
//   Figure 3  — pairwise metric correlation (conditional percentiles)
//   Figure 4  — international vs domestic PNR; per-country PNR
//   Figure 5  — cumulative PNR contribution of the worst AS pairs
//   Figure 6  — persistence and prevalence of high-PNR AS pairs
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/call.h"
#include "quality/pnr.h"
#include "util/percentile.h"

namespace via {

// ---------------------------------------------------------------- Figure 1

struct PcrBin {
  double metric_lo = 0.0;      ///< lower edge of the bin
  double metric_center = 0.0;
  std::int64_t calls = 0;      ///< rated calls in the bin
  double pcr = 0.0;            ///< fraction rated 1-2 stars
  double normalized_pcr = 0.0; ///< pcr / max-bin pcr (the paper's y-axis)
};

struct BinnedPcrCurve {
  Metric metric{};
  std::vector<PcrBin> bins;       ///< only bins with >= min_samples rated calls
  double correlation = 0.0;       ///< Pearson r of (bin center, PCR)
};

/// Bins rated calls by one metric and computes per-bin PCR.  Bins with
/// fewer than `min_samples` rated calls are dropped (statistical
/// significance rule from the paper: >= 1000 samples per bin).
[[nodiscard]] BinnedPcrCurve binned_pcr(std::span<const CallRecord> records, Metric metric,
                                        double lo, double hi, std::size_t bins,
                                        std::int64_t min_samples);

// ---------------------------------------------------------------- Figure 2

/// Empirical CDF of each metric over all calls.
[[nodiscard]] std::array<std::vector<CdfPoint>, kNumMetrics> metric_cdfs(
    std::span<const CallRecord> records, std::size_t max_points = 100);

// ---------------------------------------------------------------- Figure 3

struct ConditionalPercentileRow {
  double x_center = 0.0;
  std::int64_t calls = 0;
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
};

/// Distribution (10th/50th/90th percentile) of metric `y` conditioned on
/// binned values of metric `x` over the same calls.
[[nodiscard]] std::vector<ConditionalPercentileRow> conditional_percentiles(
    std::span<const CallRecord> records, Metric x, Metric y, double lo, double hi,
    std::size_t bins, std::int64_t min_samples);

// ---------------------------------------------------------------- Figure 4

struct PnrBreakdown {
  PnrAccumulator all;
  PnrAccumulator international;
  PnrAccumulator domestic;
  PnrAccumulator inter_as;
  PnrAccumulator intra_as;
};

[[nodiscard]] PnrBreakdown pnr_breakdown(std::span<const CallRecord> records,
                                         PoorThresholds thresholds = {});

struct CountryPnr {
  CountryId country = -1;
  PnrAccumulator acc;
};

/// PNR per country, attributing an international call to both endpoints'
/// countries (the paper's "country of one side of a call").  Sorted by
/// descending "at least one bad" PNR; countries with fewer than
/// `min_calls` calls are dropped.
[[nodiscard]] std::vector<CountryPnr> pnr_by_country(std::span<const CallRecord> records,
                                                     bool international_only,
                                                     std::int64_t min_calls,
                                                     PoorThresholds thresholds = {});

// ---------------------------------------------------------------- Figure 5

struct PairContributionCurve {
  /// cumulative_share[i]: fraction of all poor calls contributed by the
  /// worst (i+1) AS pairs, pairs ranked by their poor-call count.
  std::vector<double> cumulative_share;
  std::int64_t total_pairs = 0;
  std::int64_t total_poor_calls = 0;
};

/// Contribution of the worst AS pairs to the overall pool of poor calls,
/// for the "at least one bad" criterion.
[[nodiscard]] PairContributionCurve aspair_contribution(std::span<const CallRecord> records,
                                                        PoorThresholds thresholds = {});

// ---------------------------------------------------------------- Figure 6

struct PersistencePrevalence {
  /// One entry per qualifying AS pair.
  std::vector<double> persistence_days;  ///< median consecutive high-PNR run length
  std::vector<double> prevalence;        ///< fraction of active days with high PNR
};

/// Labels an AS pair "high PNR" on a day when its PNR (on the given metric)
/// is at least `ratio` times the overall PNR of that day (paper: 1.5x), and
/// summarizes how persistent and prevalent high-PNR status is per pair.
/// Pairs need >= `min_calls_per_day` calls on a day for that day to count,
/// and >= `min_active_days` qualifying days overall.
[[nodiscard]] PersistencePrevalence persistence_prevalence(std::span<const CallRecord> records,
                                                           Metric metric, double ratio = 1.5,
                                                           std::int64_t min_calls_per_day = 20,
                                                           int min_active_days = 5,
                                                           PoorThresholds thresholds = {});

}  // namespace via
