#include "analysis/section2.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/histogram.h"
#include "util/stats.h"

namespace via {

BinnedPcrCurve binned_pcr(std::span<const CallRecord> records, Metric metric, double lo,
                          double hi, std::size_t bins, std::int64_t min_samples) {
  BinnedRate rate(lo, hi, bins);
  for (const auto& r : records) {
    if (!r.rated()) continue;
    rate.add(r.perf.get(metric), r.rated_poor());
  }

  BinnedPcrCurve curve;
  curve.metric = metric;
  const double max_pcr = rate.max_rate(min_samples);
  Correlation corr;
  for (std::size_t i = 0; i < rate.bins(); ++i) {
    if (rate.bin_count(i) < min_samples) continue;
    PcrBin bin;
    bin.metric_lo = rate.bin_lo(i);
    bin.metric_center = rate.bin_center(i);
    bin.calls = rate.bin_count(i);
    bin.pcr = rate.bin_rate(i);
    bin.normalized_pcr = max_pcr > 0.0 ? bin.pcr / max_pcr : 0.0;
    curve.bins.push_back(bin);
    corr.add(bin.metric_center, bin.pcr);
  }
  curve.correlation = corr.coefficient();
  return curve;
}

std::array<std::vector<CdfPoint>, kNumMetrics> metric_cdfs(std::span<const CallRecord> records,
                                                           std::size_t max_points) {
  std::array<std::vector<CdfPoint>, kNumMetrics> out;
  for (const Metric m : kAllMetrics) {
    std::vector<double> values;
    values.reserve(records.size());
    for (const auto& r : records) values.push_back(r.perf.get(m));
    out[metric_index(m)] = build_cdf(std::move(values), max_points);
  }
  return out;
}

std::vector<ConditionalPercentileRow> conditional_percentiles(
    std::span<const CallRecord> records, Metric x, Metric y, double lo, double hi,
    std::size_t bins, std::int64_t min_samples) {
  const double width = (hi - lo) / static_cast<double>(bins);
  std::vector<std::vector<double>> buckets(bins);
  for (const auto& r : records) {
    const double xv = r.perf.get(x);
    if (xv < lo || xv >= hi) continue;
    const auto i = std::min(static_cast<std::size_t>((xv - lo) / width), bins - 1);
    buckets[i].push_back(r.perf.get(y));
  }

  std::vector<ConditionalPercentileRow> rows;
  for (std::size_t i = 0; i < bins; ++i) {
    auto& b = buckets[i];
    if (static_cast<std::int64_t>(b.size()) < min_samples) continue;
    std::sort(b.begin(), b.end());
    ConditionalPercentileRow row;
    row.x_center = lo + (static_cast<double>(i) + 0.5) * width;
    row.calls = static_cast<std::int64_t>(b.size());
    row.p10 = percentile_sorted(b, 10.0);
    row.p50 = percentile_sorted(b, 50.0);
    row.p90 = percentile_sorted(b, 90.0);
    rows.push_back(row);
  }
  return rows;
}

PnrBreakdown pnr_breakdown(std::span<const CallRecord> records, PoorThresholds thresholds) {
  PnrBreakdown b{PnrAccumulator(thresholds), PnrAccumulator(thresholds),
                 PnrAccumulator(thresholds), PnrAccumulator(thresholds),
                 PnrAccumulator(thresholds)};
  for (const auto& r : records) {
    b.all.add(r.perf);
    (r.international() ? b.international : b.domestic).add(r.perf);
    (r.inter_as() ? b.inter_as : b.intra_as).add(r.perf);
  }
  return b;
}

std::vector<CountryPnr> pnr_by_country(std::span<const CallRecord> records,
                                       bool international_only, std::int64_t min_calls,
                                       PoorThresholds thresholds) {
  std::unordered_map<CountryId, PnrAccumulator> by_country;
  for (const auto& r : records) {
    if (international_only && !r.international()) continue;
    by_country.try_emplace(r.src_country, thresholds).first->second.add(r.perf);
    if (r.dst_country != r.src_country) {
      by_country.try_emplace(r.dst_country, thresholds).first->second.add(r.perf);
    }
  }

  std::vector<CountryPnr> out;
  for (const auto& [country, acc] : by_country) {
    if (acc.total() >= min_calls) out.push_back({country, acc});
  }
  std::sort(out.begin(), out.end(), [](const CountryPnr& a, const CountryPnr& b) {
    return a.acc.pnr_any() > b.acc.pnr_any();
  });
  return out;
}

PairContributionCurve aspair_contribution(std::span<const CallRecord> records,
                                          PoorThresholds thresholds) {
  std::unordered_map<std::uint64_t, std::int64_t> poor_by_pair;
  std::int64_t total_poor = 0;
  for (const auto& r : records) {
    if (thresholds.any_poor(r.perf)) {
      ++poor_by_pair[r.pair_key()];
      ++total_poor;
    }
  }

  std::vector<std::int64_t> counts;
  counts.reserve(poor_by_pair.size());
  for (const auto& [key, n] : poor_by_pair) counts.push_back(n);
  std::sort(counts.begin(), counts.end(), std::greater<>());

  PairContributionCurve curve;
  curve.total_pairs = static_cast<std::int64_t>(counts.size());
  curve.total_poor_calls = total_poor;
  curve.cumulative_share.reserve(counts.size());
  double acc = 0.0;
  for (const auto n : counts) {
    acc += static_cast<double>(n);
    curve.cumulative_share.push_back(total_poor > 0 ? acc / static_cast<double>(total_poor)
                                                    : 0.0);
  }
  return curve;
}

PersistencePrevalence persistence_prevalence(std::span<const CallRecord> records, Metric metric,
                                             double ratio, std::int64_t min_calls_per_day,
                                             int min_active_days, PoorThresholds thresholds) {
  // Per-day overall PNR and per-(pair, day) PNR.
  std::map<int, RateCounter> overall_by_day;
  std::unordered_map<std::uint64_t, std::map<int, RateCounter>> pair_days;
  for (const auto& r : records) {
    const bool poor = thresholds.poor(metric, r.perf);
    overall_by_day[r.day()].add(poor);
    pair_days[r.pair_key()][r.day()].add(poor);
  }

  PersistencePrevalence out;
  for (const auto& [pair, days] : pair_days) {
    // Qualifying days (enough data) and whether each was "high PNR".
    std::vector<std::pair<int, bool>> labeled;
    for (const auto& [day, counter] : days) {
      if (counter.total() < min_calls_per_day) continue;
      const double base = overall_by_day[day].rate();
      labeled.emplace_back(day, base > 0.0 && counter.rate() >= ratio * base);
    }
    if (static_cast<int>(labeled.size()) < min_active_days) continue;

    // Prevalence: fraction of qualifying days that are high.
    std::int64_t high_days = 0;
    for (const auto& [day, high] : labeled) {
      if (high) ++high_days;
    }
    if (high_days == 0) continue;  // the paper studies pairs that do go high

    // Persistence: median length of consecutive-day high runs.  A gap in
    // qualifying days breaks a run, as does a non-high qualifying day.
    std::vector<double> runs;
    int run = 0;
    int prev_high_day = -2;
    for (const auto& [day, high] : labeled) {
      if (high) {
        if (run > 0 && day == prev_high_day + 1) {
          ++run;
        } else {
          if (run > 0) runs.push_back(static_cast<double>(run));
          run = 1;
        }
        prev_high_day = day;
      } else if (run > 0) {
        runs.push_back(static_cast<double>(run));
        run = 0;
      }
    }
    if (run > 0) runs.push_back(static_cast<double>(run));

    out.persistence_days.push_back(percentile(runs, 50.0));
    out.prevalence.push_back(static_cast<double>(high_days) /
                             static_cast<double>(labeled.size()));
  }
  return out;
}

}  // namespace via
