#include "quality/rating.h"

#include <algorithm>
#include <cmath>

namespace via {

double RatingModel::opinion_score(CallId id, const PathPerformance& perf) const {
  const double mos = emodel_mos(perf, params_.emodel);
  const double noise =
      hashed_gaussian(hash_mix(seed_, static_cast<std::uint64_t>(id), 0x5a71u));
  return mos + params_.user_noise_stddev * noise;
}

std::int8_t RatingModel::sample_rating(CallId id, const PathPerformance& perf) const {
  const double u = hashed_uniform(hash_mix(seed_, static_cast<std::uint64_t>(id), 0x10cdu));
  if (u >= params_.sample_fraction) return -1;
  const double score = opinion_score(id, perf);
  const double rounded = std::round(score);
  return static_cast<std::int8_t>(std::clamp(rounded, 1.0, 5.0));
}

}  // namespace via
