// Packet-level call simulator used to validate that thresholds on per-call
// *average* metrics are a reasonable approximation of packet-trace-derived
// quality (paper Section 2.2: 80% of calls rated non-poor by the averages
// have a packet-trace MOS above 75% of the calls rated poor).
//
// The simulator plays out a stream of 20 ms voice packets through a
// Gilbert-Elliott loss channel and a jittered delay process, emulates a
// playout buffer, and computes a MOS from the *observed packet trace*
// (effective loss including late packets, and true mouth-to-ear delay).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "quality/emodel.h"
#include "util/rng.h"

namespace via {

struct PacketSimParams {
  double packet_interval_ms = 20.0;  ///< one voice frame per packet
  double duration_s = 60.0;          ///< simulated talk time
  /// Mean burst length of the Gilbert-Elliott bad state, in packets.
  double mean_loss_burst = 3.0;
  /// Playout deadline above the median delay, as a multiple of jitter.
  double playout_jitter_factor = 3.0;
  /// Probability that a packet's delay is drawn from the heavy "spike" tail.
  double spike_prob = 0.01;
  double spike_scale = 6.0;  ///< spike delay inflation over normal jitter
  EModelParams emodel;
};

struct PacketTraceResult {
  std::int64_t packets_sent = 0;
  std::int64_t packets_lost = 0;  ///< dropped by the network
  std::int64_t packets_late = 0;  ///< arrived after the playout deadline
  double effective_loss_pct = 0.0;
  double mean_delay_ms = 0.0;     ///< network one-way delay of delivered packets
  double playout_delay_ms = 0.0;  ///< mouth-to-ear delay after buffering
  double mos = 1.0;               ///< packet-trace MOS
};

/// Simulates one call whose *average* network metrics are `avg` and returns
/// the packet-trace quality.  Deterministic for a given rng state.
[[nodiscard]] PacketTraceResult simulate_call_packets(const PathPerformance& avg, Rng& rng,
                                                      const PacketSimParams& params = {});

}  // namespace via
