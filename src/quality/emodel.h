// ITU-T E-model (G.107) as simplified by Cole & Rosenbluth, "Voice over IP
// Performance Monitoring" (CCR 2001) — the model the paper cites ([17]) for
// translating network metrics into a Mean Opinion Score (MOS).
//
//   R   = 94.2 - Id - Ie
//   Id  = 0.024 d + 0.11 (d - 177.3) H(d - 177.3)
//   Ie  = gamma1 + gamma2 * ln(1 + gamma3 * e)
//   MOS = 1 + 0.035 R + 7e-6 R (R - 60)(100 - R),  clamped to [1, 4.5]
//
// where d is the one-way mouth-to-ear delay (ms) and e is the end-to-end
// (network + playout-late) loss probability.
#pragma once

#include "common/types.h"

namespace via {

/// Codec-dependent loss-impairment parameters.  Defaults are the G.711 +
/// packet-loss-concealment values from Cole-Rosenbluth.
struct EModelParams {
  double gamma1 = 0.0;   ///< Ie at zero loss
  double gamma2 = 30.0;  ///< loss impairment scale
  double gamma3 = 15.0;  ///< loss impairment steepness
  /// Fixed encoding + packetization delay added to the network delay (ms).
  double codec_delay_ms = 25.0;
  /// Playout (de-jitter) buffer delay as a multiple of measured jitter.
  double jitter_buffer_factor = 2.0;
  /// Fraction of packets arriving later than the playout deadline, per ms of
  /// jitter beyond what the buffer absorbs; models jitter-induced loss.
  double late_loss_per_ms = 0.0005;
};

/// Transmission rating factor R for a call with the given average metrics.
[[nodiscard]] double emodel_r_factor(const PathPerformance& perf,
                                     const EModelParams& params = {}) noexcept;

/// Maps an R factor to MOS in [1, 4.5].
[[nodiscard]] double r_to_mos(double r) noexcept;

/// Convenience: MOS straight from per-call average network metrics.
[[nodiscard]] double emodel_mos(const PathPerformance& perf,
                                const EModelParams& params = {}) noexcept;

}  // namespace via
