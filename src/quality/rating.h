// User star-rating model.  In the real dataset a small random fraction of
// calls receive a 1..5 rating; the paper deems ratings of 1-2 "poor" and
// studies the Poor Call Rate (PCR).  We model the rating as the E-model MOS
// plus user noise, which reproduces the monotone PCR-vs-metric relationship
// of the paper's Figure 1 (correlation coefficients ~0.9+).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "quality/emodel.h"
#include "util/rng.h"

namespace via {

struct RatingModelParams {
  double user_noise_stddev = 0.85;  ///< idiosyncratic user disagreement (MOS points)
  double sample_fraction = 0.05;    ///< fraction of calls asked for a rating
  EModelParams emodel;
};

/// Samples ratings for calls.  Deterministic given (params, call id, seed):
/// the draw is keyed on the call id so re-generating a trace reproduces the
/// same ratings.
class RatingModel {
 public:
  explicit RatingModel(RatingModelParams params = {}, std::uint64_t seed = 0x9a7e5ULL)
      : params_(params), seed_(seed) {}

  /// Returns 1..5, or -1 if this call is not selected for rating.
  [[nodiscard]] std::int8_t sample_rating(CallId id, const PathPerformance& perf) const;

  /// The underlying continuous opinion score before discretization.
  [[nodiscard]] double opinion_score(CallId id, const PathPerformance& perf) const;

  [[nodiscard]] const RatingModelParams& params() const noexcept { return params_; }

 private:
  RatingModelParams params_;
  std::uint64_t seed_;
};

}  // namespace via
