// Poor Network Rate (PNR) accounting — the paper's primary evaluation
// metric: the fraction of calls whose average RTT / loss / jitter exceeds
// the poor-performance thresholds, individually and collectively ("at
// least one bad", Section 2.2).
#pragma once

#include <array>

#include "common/call.h"
#include "common/types.h"
#include "util/stats.h"

namespace via {

/// Accumulates PNR over a set of calls.
class PnrAccumulator {
 public:
  explicit PnrAccumulator(PoorThresholds thresholds = {}) : thresholds_(thresholds) {}

  void add(const PathPerformance& perf) noexcept {
    for (const Metric m : kAllMetrics) {
      per_metric_[metric_index(m)].add(thresholds_.poor(m, perf));
    }
    any_.add(thresholds_.any_poor(perf));
  }

  void merge(const PnrAccumulator& o) noexcept {
    for (std::size_t i = 0; i < kNumMetrics; ++i) per_metric_[i].merge(o.per_metric_[i]);
    any_.merge(o.any_);
  }

  [[nodiscard]] double pnr(Metric m) const noexcept {
    return per_metric_[metric_index(m)].rate();
  }
  [[nodiscard]] double pnr_sem(Metric m) const noexcept {
    return per_metric_[metric_index(m)].sem();
  }
  /// PNR of the "at least one bad" collective metric.
  [[nodiscard]] double pnr_any() const noexcept { return any_.rate(); }
  [[nodiscard]] double pnr_any_sem() const noexcept { return any_.sem(); }
  [[nodiscard]] std::int64_t total() const noexcept { return any_.total(); }
  [[nodiscard]] const PoorThresholds& thresholds() const noexcept { return thresholds_; }

 private:
  PoorThresholds thresholds_;
  std::array<RateCounter, kNumMetrics> per_metric_{};
  RateCounter any_{};
};

}  // namespace via
