#include "quality/emodel.h"

#include <algorithm>
#include <cmath>

namespace via {

double emodel_r_factor(const PathPerformance& perf, const EModelParams& params) noexcept {
  // One-way delay: half the RTT, plus codec and de-jitter buffering.
  const double jitter_buffer_ms = params.jitter_buffer_factor * perf.jitter_ms;
  const double d = perf.rtt_ms / 2.0 + params.codec_delay_ms + jitter_buffer_ms;

  double id = 0.024 * d;
  if (d > 177.3) id += 0.11 * (d - 177.3);

  // Effective loss: network loss plus packets that miss the playout deadline.
  const double network_loss = std::clamp(perf.loss_pct / 100.0, 0.0, 1.0);
  const double late_loss =
      std::clamp(params.late_loss_per_ms * perf.jitter_ms, 0.0, 0.5);
  const double e = std::clamp(network_loss + late_loss * (1.0 - network_loss), 0.0, 1.0);

  const double ie = params.gamma1 + params.gamma2 * std::log(1.0 + params.gamma3 * e);
  return 94.2 - id - ie;
}

double r_to_mos(double r) noexcept {
  if (r <= 0.0) return 1.0;
  if (r >= 100.0) return 4.5;
  const double mos = 1.0 + 0.035 * r + 7e-6 * r * (r - 60.0) * (100.0 - r);
  return std::clamp(mos, 1.0, 4.5);
}

double emodel_mos(const PathPerformance& perf, const EModelParams& params) noexcept {
  return r_to_mos(emodel_r_factor(perf, params));
}

}  // namespace via
