#include "quality/packetsim.h"

#include <algorithm>
#include <cmath>

namespace via {

PacketTraceResult simulate_call_packets(const PathPerformance& avg, Rng& rng,
                                        const PacketSimParams& params) {
  PacketTraceResult out;
  const auto n_packets =
      static_cast<std::int64_t>(params.duration_s * 1000.0 / params.packet_interval_ms);
  out.packets_sent = n_packets;
  if (n_packets <= 0) return out;

  // Gilbert-Elliott two-state loss channel calibrated to the target average
  // loss rate: stationary P(bad) = p_target; transitions chosen so the mean
  // bad-state sojourn is params.mean_loss_burst packets.
  const double p_target = std::clamp(avg.loss_pct / 100.0, 0.0, 0.95);
  const double p_bad_to_good = 1.0 / std::max(1.0, params.mean_loss_burst);
  // Stationarity: p_good_to_bad * P(good) = p_bad_to_good * P(bad).
  const double p_good_to_bad =
      p_target >= 1.0 ? 1.0
                      : std::min(1.0, p_bad_to_good * p_target / std::max(1e-12, 1.0 - p_target));

  const double base_delay = avg.rtt_ms / 2.0;
  const double jitter = std::max(0.05, avg.jitter_ms);
  const double playout_deadline =
      base_delay + params.playout_jitter_factor * jitter;

  bool bad_state = rng.bernoulli(p_target);
  double delay_sum = 0.0;
  std::int64_t delivered = 0;

  for (std::int64_t i = 0; i < n_packets; ++i) {
    // Advance the loss channel.
    if (bad_state) {
      if (rng.bernoulli(p_bad_to_good)) bad_state = false;
    } else {
      if (rng.bernoulli(p_good_to_bad)) bad_state = true;
    }
    if (bad_state && p_target > 0.0) {
      ++out.packets_lost;
      continue;
    }

    // One-way network delay: base + jitter noise; occasional heavy spike.
    double noise;
    if (rng.bernoulli(params.spike_prob)) {
      noise = rng.exponential(params.spike_scale * jitter);
    } else {
      // Laplace-like: difference of two exponentials has stddev sqrt(2)*scale.
      noise = rng.exponential(jitter / std::numbers::sqrt2) -
              rng.exponential(jitter / std::numbers::sqrt2);
    }
    const double delay = std::max(0.0, base_delay + noise);
    if (delay > playout_deadline) {
      ++out.packets_late;
      continue;
    }
    delay_sum += delay;
    ++delivered;
  }

  const double eff_loss =
      static_cast<double>(out.packets_lost + out.packets_late) / static_cast<double>(n_packets);
  out.effective_loss_pct = 100.0 * eff_loss;
  out.mean_delay_ms = delivered > 0 ? delay_sum / static_cast<double>(delivered) : base_delay;
  out.playout_delay_ms = playout_deadline;

  // MOS from the observed packet trace: true mouth-to-ear delay is the
  // playout deadline (receiver plays at the deadline), and the loss term is
  // the effective loss.  Feed the E-model directly in its native units.
  double d = out.playout_delay_ms + params.emodel.codec_delay_ms;
  double id = 0.024 * d;
  if (d > 177.3) id += 0.11 * (d - 177.3);
  const double ie =
      params.emodel.gamma1 + params.emodel.gamma2 * std::log(1.0 + params.emodel.gamma3 * eff_loss);
  out.mos = r_to_mos(94.2 - id - ie);
  return out;
}

}  // namespace via
