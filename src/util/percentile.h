// Percentile and CDF helpers, plus the P-squared streaming quantile estimator
// used by the budget filter (Section 4.6 of the paper) to track the trailing
// distribution of predicted relaying benefit without storing all samples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace via {

/// Percentile (0..100) of an *unsorted* sample; copies and sorts.
/// Uses linear interpolation between closest ranks.
[[nodiscard]] double percentile(std::span<const double> values, double pct);

/// Percentile of an already-sorted sample (ascending); no copy.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double pct);

/// A point on an empirical CDF.
struct CdfPoint {
  double value;
  double cum_fraction;  ///< fraction of samples <= value, in (0, 1]
};

/// Builds an empirical CDF downsampled to at most `max_points` points.
[[nodiscard]] std::vector<CdfPoint> build_cdf(std::vector<double> values,
                                              std::size_t max_points = 200);

/// Fraction of samples that are <= x under an empirical CDF.
[[nodiscard]] double cdf_fraction_at(std::span<const CdfPoint> cdf, double x);

/// P-squared (P²) single-quantile streaming estimator (Jain & Chlamtac 1985).
/// Tracks one quantile q in (0,1) with five markers, O(1) memory.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate; exact while fewer than 5 samples have been seen.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  void reset();

 private:
  double q_;
  std::size_t count_ = 0;
  // marker heights and positions
  double heights_[5] = {};
  double positions_[5] = {};
  double desired_[5] = {};
  double increments_[5] = {};
  std::vector<double> warmup_;
};

}  // namespace via
