#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace via {

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::gaussian() noexcept {
  // Box-Muller; guards against log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

double Rng::lognormal_mean_cv(double mean, double cv) noexcept {
  if (mean <= 0.0) return 0.0;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(mu + std::sqrt(sigma2) * gaussian());
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

double hashed_gaussian(std::uint64_t key) noexcept {
  // Two independent uniforms from consecutive hash steps feed Box-Muller.
  const std::uint64_t h1 = splitmix64(key);
  const std::uint64_t h2 = splitmix64(h1 ^ 0x9e3779b97f4a7c15ULL);
  double u1 = static_cast<double>(h1 >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double hashed_uniform(std::uint64_t key) noexcept {
  return static_cast<double>(splitmix64(key) >> 11) * 0x1.0p-53;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::pmf(std::size_t i) const {
  assert(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace via
