// Deterministic pseudo-random number generation for reproducible simulation.
//
// All stochastic components of the simulator derive their randomness from
// either (a) a sequential Xoshiro256++ stream, or (b) stateless hash-based
// draws keyed on domain identifiers (call id, link id, day index).  The
// hash-based form is what makes paired policy comparison possible: two
// policies that route the same call over the same relay option observe the
// exact same sampled performance.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace via {

/// SplitMix64 step; used for seeding and stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Mixes an arbitrary number of 64-bit keys into one hash value.
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t a) noexcept {
  return splitmix64(a);
}
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix64(splitmix64(a) ^ (b + 0x632be59bd9b4e019ULL));
}
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b,
                                               std::uint64_t c) noexcept {
  return hash_mix(hash_mix(a, b), c);
}
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b,
                                               std::uint64_t c, std::uint64_t d) noexcept {
  return hash_mix(hash_mix(a, b, c), d);
}

/// Xoshiro256++ generator.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& w : state_) {
      seed = splitmix64(seed);
      w = seed;
    }
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
      state_[0] = 1;  // all-zero state is the one forbidden state
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (no cached spare; keeps the generator
  /// state a pure function of the number of draws).
  [[nodiscard]] double gaussian() noexcept;

  [[nodiscard]] double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Exponential with the given mean (= 1/lambda).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Log-normal parameterized by the mean and coefficient of variation of the
  /// *resulting* distribution (not of the underlying normal).
  [[nodiscard]] double lognormal_mean_cv(double mean, double cv) noexcept;

  /// Pareto (Lomax-style heavy tail) with scale xm > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Picks an index with probability proportional to weights[i].
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Stateless standard-normal draw keyed on a hash value (for reproducible
/// per-(entity, day) noise without storing generator state).
[[nodiscard]] double hashed_gaussian(std::uint64_t key) noexcept;

/// Stateless uniform [0,1) draw keyed on a hash value.
[[nodiscard]] double hashed_uniform(std::uint64_t key) noexcept;

/// Zipf sampler over ranks 0..n-1 with exponent s (probability of rank i
/// proportional to 1/(i+1)^s).  Precomputes the CDF; O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  /// Probability mass of rank i.
  [[nodiscard]] double pmf(std::size_t i) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace via
