// Striped-lock concurrent map: a FlatMap split into power-of-two shards,
// each guarded by its own std::shared_mutex.  Used for the ground truth's
// lazily-filled memoization caches so that many simulation runs can read
// one GroundTruth concurrently (see DESIGN.md "Threading model").
//
// The locking contract is deliberately minimal: callers get the shard's
// FlatMap under a shared (with_shared) or exclusive (with_unique) lock and
// must not let references or iterators escape the callback — except spans
// over heap storage owned by an inserted value (e.g. a std::vector's
// buffer), which stay valid after the lock is released because inserted
// values are never mutated or erased (rehashes move the vector object, not
// its buffer; clear() is only legal when no readers are active).
//
// Determinism: all cached values in this codebase are pure functions of
// their key, so concurrent fill order cannot change what a reader observes
// — only *when* the value was computed.  That property, not the locks, is
// what keeps parallel replays bit-identical to serial ones.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "util/flat_map.h"

namespace via {

template <typename Value, std::size_t kShards = 16>
class ShardedMap {
  static_assert((kShards & (kShards - 1)) == 0, "shard count must be a power of two");

 public:
  /// Runs fn(const FlatMap<Value>&) under the key's shard read lock.
  template <typename Fn>
  decltype(auto) with_shared(std::uint64_t key, Fn&& fn) const {
    const Shard& shard = shards_[shard_index(key)];
    std::shared_lock lock(shard.mutex);
    return fn(shard.map);
  }

  /// Runs fn(FlatMap<Value>&) under the key's shard write lock.
  template <typename Fn>
  decltype(auto) with_unique(std::uint64_t key, Fn&& fn) {
    Shard& shard = shards_[shard_index(key)];
    std::unique_lock lock(shard.mutex);
    return fn(shard.map);
  }

  /// Exclusive clear of every shard.  Not safe concurrently with readers
  /// that retain spans into cached vectors (their buffers are freed).
  void clear() {
    for (Shard& shard : shards_) {
      std::unique_lock lock(shard.mutex);
      shard.map.clear();
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
      std::shared_lock lock(shard.mutex);
      n += shard.map.size();
    }
    return n;
  }

  /// Visits every entry as fn(key, const Value&), shard by shard under the
  /// shard's read lock.  References must not escape the callback.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::shared_lock lock(shard.mutex);
      shard.map.for_each(fn);
    }
  }

  /// Slot-array bytes across all shards; values' own heap storage is not
  /// followed (callers add that via for_each when they need it).
  [[nodiscard]] std::size_t approx_bytes() const {
    std::size_t n = sizeof(*this);
    for (const Shard& shard : shards_) {
      std::shared_lock lock(shard.mutex);
      n += shard.map.approx_bytes();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    FlatMap<Value> map;
  };

  /// Shards select on high hash bits; FlatMap probes on low bits, so the
  /// per-shard tables stay uniformly filled.
  [[nodiscard]] static std::size_t shard_index(std::uint64_t key) noexcept {
    return static_cast<std::size_t>(splitmix64(key) >> 58) & (kShards - 1);
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace via
