// Console table / CSV output for the bench harnesses: every figure and table
// in the paper is regenerated as an aligned text table on stdout (and
// optionally as CSV for external plotting).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace via {

/// A simple column-aligned text table.  Cells are strings; numeric helpers
/// format with fixed precision.  Rendering pads each column to its widest
/// cell and prints an underline under the header.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent add_cell calls fill it.
  TextTable& row();
  TextTable& cell(std::string text);
  TextTable& cell(const char* text);
  TextTable& cell(double value, int precision = 2);
  TextTable& cell_int(long long value);
  TextTable& cell_pct(double fraction, int precision = 1);  ///< 0.42 -> "42.0%"

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders to the stream with 2-space column gaps.
  void print(std::ostream& os) const;

  /// Renders as CSV (no quoting of separators; callers control cell content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
[[nodiscard]] std::string format_double(double value, int precision = 2);

/// Prints a section banner for bench output, e.g. "== Figure 12a: ... ==".
void print_banner(std::ostream& os, const std::string& title);

}  // namespace via
