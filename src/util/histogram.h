// Fixed-bin histogram used for binned "metric vs outcome" curves such as the
// paper's Figure 1 (PCR as a function of RTT / loss / jitter).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/stats.h"

namespace via {

/// Histogram over [lo, hi) with uniformly sized bins; values outside the
/// range are clamped into the first/last bin.  Each bin accumulates both a
/// count and an outcome rate, which is what the binned PCR plots need.
class BinnedRate {
 public:
  BinnedRate(double lo, double hi, std::size_t bins);

  void add(double x, bool outcome) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counters_.size(); }
  [[nodiscard]] double bin_center(std::size_t i) const noexcept;
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] std::int64_t bin_count(std::size_t i) const noexcept;
  [[nodiscard]] double bin_rate(std::size_t i) const noexcept;

  /// Maximum rate across bins with at least `min_samples` (used for the
  /// paper's "y-axis normalized to the maximum PCR" presentation).
  [[nodiscard]] double max_rate(std::int64_t min_samples) const noexcept;

 private:
  [[nodiscard]] std::size_t bin_of(double x) const noexcept;
  double lo_, hi_, width_;
  std::vector<RateCounter> counters_;
};

/// Plain counting histogram over [lo, hi) with uniform bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_center(std::size_t i) const noexcept;
  [[nodiscard]] std::int64_t bin_count(std::size_t i) const noexcept;
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  /// Fraction of samples with value <= upper edge of bin i.
  [[nodiscard]] double cumulative_fraction(std::size_t i) const noexcept;

 private:
  double lo_, hi_, width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace via
