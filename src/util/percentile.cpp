#include "util/percentile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace via {

double percentile_sorted(std::span<const double> sorted, double pct) {
  if (sorted.empty()) return 0.0;
  if (pct <= 0.0) return sorted.front();
  if (pct >= 100.0) return sorted.back();
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double percentile(std::span<const double> values, double pct) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, pct);
}

std::vector<CdfPoint> build_cdf(std::vector<double> values, std::size_t max_points) {
  std::vector<CdfPoint> cdf;
  if (values.empty()) return cdf;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  const std::size_t points = std::min(max_points, n);
  cdf.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Sample evenly in rank space, always including the final sample.
    const std::size_t rank = (points == 1) ? n - 1 : (i * (n - 1)) / (points - 1);
    cdf.push_back({values[rank], static_cast<double>(rank + 1) / static_cast<double>(n)});
  }
  return cdf;
}

double cdf_fraction_at(std::span<const CdfPoint> cdf, double x) {
  if (cdf.empty()) return 0.0;
  if (x < cdf.front().value) return 0.0;
  if (x >= cdf.back().value) return 1.0;
  // Binary search for last point with value <= x.
  std::size_t lo = 0, hi = cdf.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (cdf[mid].value <= x) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return cdf[lo].cum_fraction;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  assert(q > 0.0 && q < 1.0);
  warmup_.reserve(5);
}

void P2Quantile::reset() {
  count_ = 0;
  warmup_.clear();
}

void P2Quantile::add(double x) {
  ++count_;
  if (count_ <= 5) {
    warmup_.push_back(x);
    if (count_ == 5) {
      std::sort(warmup_.begin(), warmup_.end());
      for (int i = 0; i < 5; ++i) {
        heights_[i] = warmup_[static_cast<std::size_t>(i)];
        positions_[i] = i + 1;
      }
      desired_[0] = 1;
      desired_[1] = 1 + 2 * q_;
      desired_[2] = 1 + 4 * q_;
      desired_[3] = 3 + 2 * q_;
      desired_[4] = 5;
      increments_[0] = 0;
      increments_[1] = q_ / 2;
      increments_[2] = q_;
      increments_[3] = (1 + q_) / 2;
      increments_[4] = 1;
    }
    return;
  }

  // Find cell k containing x and update extreme heights.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers with parabolic (or linear) interpolation.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Parabolic prediction (P² formula).
      const double hp =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + sign) * (heights_[i + 1] - heights_[i]) /
                   right_gap +
               (positions_[i + 1] - positions_[i] - sign) * (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < hp && hp < heights_[i + 1]) {
        heights_[i] = hp;
      } else {
        // Linear fallback.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    std::vector<double> copy = warmup_;
    std::sort(copy.begin(), copy.end());
    return percentile_sorted(copy, q_ * 100.0);
  }
  return heights_[2];
}

}  // namespace via
