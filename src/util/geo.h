// Geodesic helpers for the synthetic world model.  Distances feed the
// propagation-delay component of the path performance model.
#pragma once

namespace via {

/// A point on the globe, degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance in kilometres (haversine, mean Earth radius).
[[nodiscard]] double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// One-way propagation delay in milliseconds over `km` of fibre, assuming
/// light travels at ~2/3 c in glass (~200 km/ms).
[[nodiscard]] double fiber_delay_ms(double km) noexcept;

/// Jitters a point by up to `max_offset_deg` degrees in both axes, keeping
/// latitude in [-85, 85]; used to scatter ASes around their country centroid.
[[nodiscard]] GeoPoint offset_point(const GeoPoint& p, double dlat_deg, double dlon_deg) noexcept;

}  // namespace via
