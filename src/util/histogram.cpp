#include "util/histogram.h"

#include <algorithm>
#include <cassert>

namespace via {

BinnedRate::BinnedRate(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counters_(bins) {
  assert(hi > lo && bins > 0);
}

std::size_t BinnedRate::bin_of(double x) const noexcept {
  if (x < lo_) return 0;
  if (x >= hi_) return counters_.size() - 1;
  auto i = static_cast<std::size_t>((x - lo_) / width_);
  return std::min(i, counters_.size() - 1);
}

void BinnedRate::add(double x, bool outcome) noexcept { counters_[bin_of(x)].add(outcome); }

double BinnedRate::bin_center(std::size_t i) const noexcept {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double BinnedRate::bin_lo(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i) * width_;
}

std::int64_t BinnedRate::bin_count(std::size_t i) const noexcept {
  return counters_[i].total();
}

double BinnedRate::bin_rate(std::size_t i) const noexcept { return counters_[i].rate(); }

double BinnedRate::max_rate(std::int64_t min_samples) const noexcept {
  double best = 0.0;
  for (const auto& c : counters_) {
    if (c.total() >= min_samples) best = std::max(best, c.rate());
  }
  return best;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) noexcept {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = std::min(static_cast<std::size_t>((x - lo_) / width_), counts_.size() - 1);
  }
  ++counts_[i];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const noexcept {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

std::int64_t Histogram::bin_count(std::size_t i) const noexcept { return counts_[i]; }

double Histogram::cumulative_fraction(std::size_t i) const noexcept {
  if (total_ == 0) return 0.0;
  std::int64_t acc = 0;
  for (std::size_t j = 0; j <= i && j < counts_.size(); ++j) acc += counts_[j];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

}  // namespace via
