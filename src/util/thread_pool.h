// Shared-queue thread pool for the parallel experiment runner.
//
// Tasks here are coarse — each one is an entire trace replay (hundreds of
// milliseconds to minutes) — so a single mutex-protected FIFO drained by N
// workers is the right tool: queue contention is unmeasurable at this
// granularity and, unlike a work-stealing deque per worker, the FIFO hands
// out runs in submission order, which keeps scheduling easy to reason
// about.  (Revisit if tasks ever become fine-grained.)
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace via {

class ThreadPool {
 public:
  /// `threads` <= 0 selects default_threads().
  explicit ThreadPool(int threads = 0) {
    const int n = threads > 0 ? threads : default_threads();
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock lock(mutex_);
      stopping_ = true;
    }
    wake_workers_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  /// Hardware concurrency with a sane floor (hardware_concurrency() may
  /// report 0 on restricted platforms).
  [[nodiscard]] static int default_threads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Enqueues a task.  Tasks must not submit to (or destroy) the pool.
  void submit(std::function<void()> task) {
    {
      std::unique_lock lock(mutex_);
      queue_.push_back(std::move(task));
      ++pending_;
    }
    wake_workers_.notify_one();
  }

  /// Blocks until every submitted task has finished running.
  void wait_idle() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        wake_workers_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::unique_lock lock(mutex_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t pending_ = 0;  ///< queued + currently running tasks
  bool stopping_ = false;
};

}  // namespace via
