#include "util/geo.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace via {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kFiberKmPerMs = 200.0;  // ~2/3 of c

double deg2rad(double d) noexcept { return d * std::numbers::pi / 180.0; }
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double s = std::sin(dlat / 2);
  const double t = std::sin(dlon / 2);
  const double h = s * s + std::cos(lat1) * std::cos(lat2) * t * t;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double fiber_delay_ms(double km) noexcept { return km / kFiberKmPerMs; }

GeoPoint offset_point(const GeoPoint& p, double dlat_deg, double dlon_deg) noexcept {
  GeoPoint out{p.lat_deg + dlat_deg, p.lon_deg + dlon_deg};
  out.lat_deg = std::clamp(out.lat_deg, -85.0, 85.0);
  if (out.lon_deg > 180.0) out.lon_deg -= 360.0;
  if (out.lon_deg < -180.0) out.lon_deg += 360.0;
  return out;
}

}  // namespace via
