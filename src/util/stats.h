// Streaming statistics: Welford mean/variance, standard error of the mean,
// and simple summaries used throughout the predictor and the analysis code.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace via {

/// Numerically stable running mean / variance (Welford).
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const OnlineStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double total = static_cast<double>(n_ + o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) / total;
    mean_ += delta * static_cast<double>(o.n_) / total;
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] std::int64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 if fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Standard error of the mean.  For a single sample the SEM is undefined;
  /// we return `single_sample_sem` scaled by the value so that confidence
  /// intervals stay wide until real evidence accumulates.
  [[nodiscard]] double sem() const noexcept {
    if (n_ > 1) return stddev() / std::sqrt(static_cast<double>(n_));
    if (n_ == 1) return std::abs(mean_) * kSingleSampleRelSem;
    return std::numeric_limits<double>::infinity();
  }

  void reset() noexcept { *this = OnlineStats{}; }

  /// Relative SEM assumed when only one sample exists.
  static constexpr double kSingleSampleRelSem = 0.5;

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A ratio counter for rates such as PNR / PCR.
class RateCounter {
 public:
  void add(bool hit) noexcept {
    ++total_;
    if (hit) ++hits_;
  }
  void merge(const RateCounter& o) noexcept {
    total_ += o.total_;
    hits_ += o.hits_;
  }
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] std::int64_t hits() const noexcept { return hits_; }
  [[nodiscard]] double rate() const noexcept {
    return total_ > 0 ? static_cast<double>(hits_) / static_cast<double>(total_) : 0.0;
  }
  /// Standard error of a binomial proportion.
  [[nodiscard]] double sem() const noexcept {
    if (total_ == 0) return 0.0;
    const double p = rate();
    return std::sqrt(p * (1.0 - p) / static_cast<double>(total_));
  }

 private:
  std::int64_t total_ = 0;
  std::int64_t hits_ = 0;
};

/// Relative improvement 100*(b-a)/b as defined in the paper (Section 3.2).
/// Returns 0 when the baseline is 0.
[[nodiscard]] inline double relative_improvement_pct(double baseline, double treated) noexcept {
  return baseline != 0.0 ? 100.0 * (baseline - treated) / baseline : 0.0;
}

/// Pearson correlation coefficient accumulator (bivariate Welford).
class Correlation {
 public:
  void add(double x, double y) noexcept {
    ++n_;
    const double dx = x - mx_;
    mx_ += dx / static_cast<double>(n_);
    const double dy = y - my_;
    my_ += dy / static_cast<double>(n_);
    sxx_ += dx * (x - mx_);
    syy_ += dy * (y - my_);
    sxy_ += dx * (y - my_);
  }

  [[nodiscard]] double coefficient() const noexcept {
    if (n_ < 2 || sxx_ <= 0.0 || syy_ <= 0.0) return 0.0;
    return sxy_ / std::sqrt(sxx_ * syy_);
  }

  [[nodiscard]] std::int64_t count() const noexcept { return n_; }

 private:
  std::int64_t n_ = 0;
  double mx_ = 0.0, my_ = 0.0;
  double sxx_ = 0.0, syy_ = 0.0, sxy_ = 0.0;
};

}  // namespace via
