// Open-addressing hash map keyed by std::uint64_t, built for the per-call
// hot paths (history aggregation, per-pair policy state, ground-truth
// memoization).  Compared to std::unordered_map it stores entries in one
// contiguous slot array (no per-node allocation, no pointer chase), hashes
// with a single SplitMix64 finalize, and probes linearly — a find is one
// multiply-shift plus a short cache-resident scan.
//
// Semantics are intentionally narrow:
//   - keys are arbitrary 64-bit values (no reserved sentinel),
//   - erase() uses backward-shift deletion (no tombstones), so probe
//     chains stay short even under the history window's eviction churn,
//   - clear() keeps the slot array so a recurring window reuses capacity;
//     shrink_to_fit() gives the capacity back after a burst,
//   - references are invalidated by rehash *and* by erase (don't hold
//     them across inserts or erases).
//
// Iteration order is a deterministic function of the insert/erase sequence,
// so replays that feed identical observation streams iterate identically —
// which is what keeps serial and parallel experiment runs bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace via {

template <typename Value>
class FlatMap {
 public:
  FlatMap() = default;

  /// Ensures capacity for `n` entries without rehashing mid-fill.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;  // keep load factor <= 0.75
    if (cap > slots_.size()) rehash(cap);
  }

  /// Rehashes down to the smallest capacity that holds the current entries
  /// (frees everything when empty), undoing a burst window's peak
  /// footprint.  Invalidates references.
  void shrink_to_fit() {
    if (size_ == 0) {
      std::vector<std::pair<std::uint64_t, Value>>().swap(slots_);
      std::vector<std::uint8_t>().swap(used_);
      return;
    }
    std::size_t cap = kMinCapacity;
    while (cap * 3 < size_ * 4) cap <<= 1;
    if (cap < slots_.size()) rehash(cap);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Heap bytes held by the slot arrays themselves.  Values that own heap
  /// storage (vectors, strings) are not followed; callers that need the
  /// full footprint add those via for_each.
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return slots_.capacity() * sizeof(std::pair<std::uint64_t, Value>) + used_.capacity();
  }

  /// Drops all entries but keeps the slot array (values are reset eagerly
  /// so reinserted keys start from a default-constructed Value).
  void clear() {
    if (size_ == 0) return;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) {
        used_[i] = 0;
        slots_[i].second = Value{};
      }
    }
    size_ = 0;
  }

  [[nodiscard]] Value* find(std::uint64_t key) noexcept {
    if (size_ == 0) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = splitmix64(key) & mask;; i = (i + 1) & mask) {
      if (!used_[i]) return nullptr;
      if (slots_[i].first == key) return &slots_[i].second;
    }
  }

  [[nodiscard]] const Value* find(std::uint64_t key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Inserts a default-constructed value if the key is absent.
  [[nodiscard]] Value& operator[](std::uint64_t key) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = splitmix64(key) & mask;; i = (i + 1) & mask) {
      if (!used_[i]) {
        used_[i] = 1;
        slots_[i].first = key;
        ++size_;
        return slots_[i].second;
      }
      if (slots_[i].first == key) return slots_[i].second;
    }
  }

  /// Inserts (or overwrites) key -> value.
  Value& insert(std::uint64_t key, Value value) {
    Value& slot = (*this)[key];
    slot = std::move(value);
    return slot;
  }

  /// Removes the key if present.  Backward-shift deletion: entries probing
  /// through the hole are moved back toward their home slot, so lookups
  /// never need tombstones and load stays honest under eviction churn.
  bool erase(std::uint64_t key) {
    if (size_ == 0) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t hole = splitmix64(key) & mask;
    for (;; hole = (hole + 1) & mask) {
      if (!used_[hole]) return false;
      if (slots_[hole].first == key) break;
    }
    // Shift the rest of the probe chain back.  An entry may fill the hole
    // only when its home slot does not lie (cyclically) after the hole —
    // otherwise the move would break its own probe chain.
    std::size_t next = (hole + 1) & mask;
    while (used_[next]) {
      const std::size_t home = splitmix64(slots_[next].first) & mask;
      if (((next - home) & mask) >= ((next - hole) & mask)) {
        slots_[hole] = std::move(slots_[next]);
        hole = next;
      }
      next = (next + 1) & mask;
    }
    used_[hole] = 0;
    slots_[hole].first = 0;
    slots_[hole].second = Value{};
    --size_;
    return true;
  }

  /// Visits every entry as fn(key, value); insertion-sequence-deterministic.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].first, slots_[i].second);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].first, slots_[i].second);
    }
  }

  /// Clock-hand scan (second-chance eviction support): visits occupied
  /// slots starting at the hand, wrapping, as fn(key, value&) -> bool;
  /// stops after the first true and leaves the hand one past that slot.
  /// The hand position is in slot units, so the sweep order is a
  /// deterministic function of the insert/erase sequence.  No-op when
  /// empty; fn must eventually return true on a non-empty map.
  template <typename Fn>
  void clock_sweep(std::size_t& hand, Fn&& fn) {
    if (size_ == 0) return;
    for (;;) {
      if (hand >= slots_.size()) hand = 0;
      const std::size_t i = hand++;
      if (used_[i] && fn(slots_[i].first, slots_[i].second)) return;
    }
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  void rehash(std::size_t new_cap) {
    std::vector<std::pair<std::uint64_t, Value>> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.clear();
    slots_.resize(new_cap);
    used_.assign(new_cap, 0);
    const std::size_t mask = new_cap - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      for (std::size_t j = splitmix64(old_slots[i].first) & mask;; j = (j + 1) & mask) {
        if (!used_[j]) {
          used_[j] = 1;
          slots_[j] = std::move(old_slots[i]);
          break;
        }
      }
    }
  }

  std::vector<std::pair<std::uint64_t, Value>> slots_;
  std::vector<std::uint8_t> used_;  ///< parallel to slots_ (1 = occupied)
  std::size_t size_ = 0;
};

}  // namespace via
