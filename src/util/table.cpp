#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace via {

std::string format_double(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(std::string text) {
  rows_.back().push_back(std::move(text));
  return *this;
}

TextTable& TextTable::cell(const char* text) { return cell(std::string(text)); }

TextTable& TextTable::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

TextTable& TextTable::cell_int(long long value) { return cell(std::to_string(value)); }

TextTable& TextTable::cell_pct(double fraction, int precision) {
  return cell(format_double(fraction * 100.0, precision) + "%");
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& text = i < r.size() ? r[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i])) << text;
      if (i + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

void TextTable::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) os << ',';
      os << r[i];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& r : rows_) print_row(r);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << "== " << title << " ==\n";
}

}  // namespace via
