// Cache-line geometry and a per-thread sharded counter.
//
// The concurrent-choose plateau (ROADMAP open item 2) traced to two kinds of
// cache-line ping-pong: adjacent PairStateStore stripes sharing lines, and
// every serving thread hammering the same relaxed-atomic decision counters.
// `kDestructiveInterferenceSize` gives the padding granularity; ShardedCounter
// spreads one logical counter over per-thread cells on distinct lines so
// increments are contention-free and reads fold the cells.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace via {

// GCC warns that std::hardware_destructive_interference_size may differ
// across -mtune targets (ABI hazard for public headers); this is an internal
// constant, so pin it here once with the warning silenced.
#if defined(__cpp_lib_hardware_interference_size)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
inline constexpr std::size_t kDestructiveInterferenceSize =
    std::hardware_destructive_interference_size;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#else
inline constexpr std::size_t kDestructiveInterferenceSize = 64;
#endif

/// Stable small id for the calling thread, assigned on first use.  Used to
/// pick a ShardedCounter cell; ids are never reused, so long-lived thread
/// pools each keep a private cell while short-lived threads wrap around.
[[nodiscard]] inline std::size_t tls_counter_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// A monotonically updated statistic sharded across cache-line-padded cells.
/// inc() touches only the calling thread's cell (relaxed, contention-free);
/// value() folds all cells and is approximate under concurrent increments,
/// exactly like a single relaxed atomic read would be.
class ShardedCounter {
 public:
  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void inc(std::int64_t n = 1) noexcept {
    cells_[tls_counter_slot() & (kCells - 1)].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t sum = 0;
    for (const Cell& cell : cells_) sum += cell.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  static constexpr std::size_t kCells = 16;  // power of two; covers typical core counts
  struct alignas(kDestructiveInterferenceSize) Cell {
    std::atomic<std::int64_t> v{0};
  };
  Cell cells_[kCells];
};

}  // namespace via
