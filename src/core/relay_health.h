// Per-relay health state machine (DESIGN.md §6f): the controller-side
// defense against a dead relay winning top-k on stale history.
//
//     healthy --consecutive failures >= degrade_after--> degraded
//     degraded --consecutive failures >= quarantine_after--> quarantined
//     quarantined --block expires--> probation
//     probation --probation_successes successes--> healthy
//     probation --any failure--> quarantined (escalated block)
//
// "Failure" is an observation whose metrics cross the configured
// catastrophic thresholds (an outage sample, a timed-out call reported
// with 100% loss).  While quarantined, ViaPolicy::choose() filters the
// relay's options out of candidate picks; when the block expires the next
// pick is allowed through on probation, and a clean streak re-admits the
// relay while a single failure re-quarantines it with a doubled block.
//
// Concurrency: the choose() hot path asks only allows()/option_blocked(),
// which read one relaxed atomic per relay — plus a single "is anything
// blocked at all" hint that keeps the fully-healthy fleet at one load per
// call.  State transitions (observe() path) take a per-relay mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>

#include "common/relay_option.h"
#include "common/types.h"

namespace via {

struct RelayHealthConfig {
  /// Master switch.  Disabled (the default) the tracker is never even
  /// consulted, preserving bit-identical golden replays.
  bool enabled = false;
  int degrade_after = 2;     ///< consecutive failures => degraded
  int quarantine_after = 3;  ///< consecutive failures => quarantined
  TimeSec quarantine_period = 1800;  ///< initial block; doubles per relapse
  int escalation_cap = 8;    ///< max block multiplier (2^k clamp)
  int probation_successes = 2;  ///< clean probation calls to re-admit
  /// Catastrophic-observation thresholds (either crossing counts).
  double failure_rtt_ms = 1500.0;
  double failure_loss_pct = 50.0;
};

class RelayHealthTracker {
 public:
  /// Relays with ids >= capacity are never tracked (and never blocked).
  explicit RelayHealthTracker(RelayHealthConfig config = {}, std::size_t capacity = 1024);

  RelayHealthTracker(const RelayHealthTracker&) = delete;
  RelayHealthTracker& operator=(const RelayHealthTracker&) = delete;

  enum class State : std::uint8_t { Healthy = 0, Degraded = 1, Quarantined = 2, Probation = 3 };

  /// What one recorded observation did to the relay's state; the policy
  /// turns these into telemetry events.
  struct Transition {
    bool entered_quarantine = false;
    bool readmitted = false;
  };

  /// Records one observation outcome for every relay `option` rides
  /// (Direct records nothing).  `failed` per the caller's thresholds.
  Transition record(const RelayOption& option, bool failed, TimeSec now);

  /// Hot-path gate: false while the relay's quarantine block is active.
  [[nodiscard]] bool allows(RelayId relay, TimeSec now) const noexcept {
    if (relay < 0 || static_cast<std::size_t>(relay) >= capacity_) return true;
    return now >= entries_[static_cast<std::size_t>(relay)].blocked_until.load(
                      std::memory_order_relaxed);
  }

  /// Whether any relay the option rides is currently blocked.
  [[nodiscard]] bool option_blocked(const RelayOption& option, TimeSec now) const noexcept;

  /// Conservative "anything blocked?" hint: true from the first quarantine
  /// until the relay is re-admitted (it may stay true across a passive
  /// block expiry — that only costs the per-option check, never a wrong
  /// filter).  One relaxed load; false keeps choose() at exactly that.
  [[nodiscard]] bool maybe_blocked() const noexcept {
    return blocked_hint_.load(std::memory_order_relaxed) > 0;
  }

  struct Counts {
    int healthy = 0;
    int degraded = 0;
    int quarantined = 0;  ///< block still active at `now`
    int probation = 0;
  };
  /// State census over every relay that has ever recorded an observation.
  [[nodiscard]] Counts counts(TimeSec now) const;

  [[nodiscard]] std::int64_t quarantine_events() const noexcept {
    return quarantine_events_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t readmissions() const noexcept {
    return readmissions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] State state_of(RelayId relay) const;

  [[nodiscard]] const RelayHealthConfig& config() const noexcept { return config_; }

 private:
  static constexpr TimeSec kNeverBlocked = std::numeric_limits<TimeSec>::min();

  struct Entry {
    std::atomic<TimeSec> blocked_until{kNeverBlocked};  ///< hot-path gate
    mutable std::mutex mutex;  ///< guards everything below
    State state = State::Healthy;
    int consecutive_failures = 0;
    int probation_successes = 0;
    int relapse_count = 0;  ///< quarantine spells; drives block escalation
    bool seen = false;      ///< has ever recorded an observation
  };

  Transition record_one(RelayId relay, bool failed, TimeSec now);

  RelayHealthConfig config_;
  std::size_t capacity_;
  std::unique_ptr<Entry[]> entries_;
  std::atomic<std::int64_t> blocked_hint_{0};
  std::atomic<std::int64_t> quarantine_events_{0};
  std::atomic<std::int64_t> readmissions_{0};
};

}  // namespace via
