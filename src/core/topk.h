// Confidence-bound top-k pruning (Algorithm 2 of the paper).
//
// The top-k set is the *minimal* set of relaying options such that the 95%
// lower confidence bound of every excluded option exceeds the 95% upper
// confidence bound of every included option — i.e., everything excluded is
// statistically surely worse than everything kept.  k is therefore dynamic:
// tight, well-separated predictions give a small k; noisy ones keep more
// candidates for the bandit stage to sort out.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "core/predictor.h"

namespace via {

struct TopKConfig {
  bool dynamic = true;  ///< false => fixed k (the Figure 15 ablation)
  int fixed_k = 2;
  int max_k = 10;  ///< safety cap on the dynamic set size
};

/// One candidate option with its prediction on the target metric.
struct RankedOption {
  OptionId option = kInvalidOption;
  Prediction pred;
};

/// Predictor-coverage accounting for one top-k build (telemetry): how many
/// candidates were considered and how many had a valid prediction.
struct TopKCoverage {
  std::int64_t considered = 0;
  std::int64_t predictable = 0;
};

/// Reusable allocation scratch for repeated top-k builds (one per policy
/// instance; the per-refresh pair-state rebuild is a hot path).
struct TopKScratch {
  std::vector<RankedOption> ranked;
  std::vector<char> taken;
};

/// Core top-k selection over precomputed predictions: preds[i] is the
/// prediction for candidates[i] (from Predictor::predict_into, so each
/// candidate costs exactly one predictor probe however many consumers the
/// batch has).  Options without a valid prediction are ignored (they remain
/// reachable through the ε general-exploration arm).  `out` is cleared and
/// left empty when nothing is predictable.  When `coverage` is given it
/// accumulates (adds to) the candidate/predictable tallies.
void select_top_k_into(std::span<const OptionId> candidates, std::span<const Prediction> preds,
                       const TopKConfig& config, TopKCoverage* coverage, TopKScratch& scratch,
                       std::vector<RankedOption>& out);

/// Convenience wrapper: predicts each candidate and selects in one call.
[[nodiscard]] std::vector<RankedOption> select_top_k(const Predictor& predictor, AsId s, AsId d,
                                                     std::span<const OptionId> candidates,
                                                     Metric metric, const TopKConfig& config = {},
                                                     TopKCoverage* coverage = nullptr);

}  // namespace via
