#include "core/bandit.h"

#include <algorithm>
#include <cmath>

namespace via {

void UcbBandit::set_arms(std::span<const RankedOption> top_k, const BanditConfig& config,
                         const UcbBandit* carry_from) {
  const std::vector<Arm> previous =
      carry_from != nullptr ? carry_from->arms_ : std::vector<Arm>{};
  config_ = config;
  arms_.clear();
  arms_.reserve(top_k.size());
  total_plays_ = 0;
  max_observed_ = 0.0;

  double upper_sum = 0.0;
  for (const auto& r : top_k) {
    Arm arm{r.option, 0, 0.0};
    // Decayed carry-over from the previous period, if the arm survived.
    for (const Arm& old : previous) {
      if (old.option != r.option || old.plays <= 0) continue;
      const auto kept = static_cast<std::int64_t>(
          std::ceil(static_cast<double>(old.plays) * config.carry_over));
      if (kept > 0) {
        arm.plays = kept;
        arm.cost_sum = old.cost_sum / static_cast<double>(old.plays) *
                       static_cast<double>(kept);
      }
      break;
    }
    if (arm.plays == 0 && config.seed_with_prediction && r.pred.valid) {
      arm.plays = 1;
      arm.cost_sum = r.pred.mean;
    }
    if (arm.plays > 0) arm.recache();
    total_plays_ += arm.plays;
    arms_.push_back(arm);
    upper_sum += r.pred.upper;
  }
  if (config_.normalization == BanditNormalization::MeanUpperBound && !top_k.empty()) {
    w_ = std::max(1e-9, upper_sum / static_cast<double>(top_k.size()));
  } else {
    w_ = 1.0;  // MaxObserved adjusts dynamically as rewards arrive
  }
}

OptionId UcbBandit::pick() const {
  if (arms_.empty()) return kInvalidOption;

  const double t = static_cast<double>(total_plays_ + 1);
  double best_index = std::numeric_limits<double>::infinity();
  OptionId best = kInvalidOption;

  const double w = config_.normalization == BanditNormalization::MaxObserved
                       ? std::max(1e-9, max_observed_)
                       : w_;

  // index(r) = mean/w - sqrt(c*ln T)/sqrt(n_r); hoisting the shared
  // sqrt(c*ln T) and the division by w leaves one multiply-subtract per arm.
  const double bonus = std::sqrt(config_.exploration_coefficient * std::log(t));
  const double inv_w = 1.0 / w;
  for (const auto& arm : arms_) {
    double index;
    if (arm.plays == 0) {
      index = -std::numeric_limits<double>::infinity();
    } else {
      index = arm.mean_cost * inv_w - bonus * arm.inv_sqrt_plays;
    }
    if (index < best_index) {
      best_index = index;
      best = arm.option;
    }
  }
  return best;
}

void UcbBandit::observe(OptionId option, double cost) {
  max_observed_ = std::max(max_observed_, cost);
  for (auto& arm : arms_) {
    if (arm.option == option) {
      ++arm.plays;
      arm.cost_sum += cost;
      arm.recache();
      ++total_plays_;
      return;
    }
  }
}

}  // namespace via
