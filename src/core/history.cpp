#include "core/history.h"

namespace via {

HistoryAddResult HistoryWindow::add(const Observation& obs) {
  const std::uint64_t pk = as_pair_key(obs.src_as, obs.dst_as);
  // Silent packing collisions at 1M+-pair scale would corrupt unrelated
  // paths' aggregates; fail loudly in debug, reject (and count) in release.
  assert(path_key_fits(pk, obs.option) && "endpoint group / option id overflows path_key");
  if (!path_key_fits(pk, obs.option)) {
    ++rejected_;
    return HistoryAddResult::kKeyOutOfRange;
  }
  const std::uint64_t key = path_key(pk, obs.option);
  if (max_paths_ > 0 && paths_.find(key) == nullptr && paths_.size() >= max_paths_) {
    if (!evict_one()) return HistoryAddResult::kWindowFull;
  }
  auto& entry = paths_[key];
  if (entry.agg.count() == 0) {
    entry.pair_key = pk;
    entry.option = obs.option;
  }
  entry.ref = 1;
  std::array<double, kNumMetrics> raw{};
  std::array<double, kNumMetrics> lin{};
  for (const Metric m : kAllMetrics) {
    const double v = obs.perf.get(m);
    raw[metric_index(m)] = v;
    lin[metric_index(m)] = linearize(m, v);
  }
  entry.agg.accumulate(raw, lin);
  if (obs.ingress >= 0) {
    // Normalize the ingress relay to the pair's lower-numbered endpoint: if
    // the source was the higher endpoint, the lo side talks to the *other*
    // relay of the transit pair.
    const AsId lo = obs.src_as < obs.dst_as ? obs.src_as : obs.dst_as;
    if (obs.src_as == lo || options_ == nullptr) {
      entry.agg.ingress_lo = obs.ingress;
    } else {
      const RelayOption& o = options_->get(obs.option);
      entry.agg.ingress_lo = (obs.ingress == o.a) ? o.b : o.a;
    }
  }
  ++observations_;
  return HistoryAddResult::kAdded;
}

bool HistoryWindow::evict_one() {
  if (paths_.empty()) return false;
  // Second chance: clear reference bits until an untouched path turns up.
  // Bounded by 2 * capacity slots: after one full revolution every bit is
  // clear, so the sweep must stop.  The hand is plain slot state, so the
  // victim sequence is a deterministic function of the add() sequence.
  std::uint64_t victim = 0;
  paths_.clock_sweep(clock_hand_, [&](std::uint64_t key, Entry& entry) {
    if (entry.ref != 0) {
      entry.ref = 0;
      return false;
    }
    victim = key;
    return true;
  });
  paths_.erase(victim);
  ++evictions_;
  return true;
}

const PathAggregate* HistoryWindow::find(std::uint64_t pair_key, OptionId option) const {
  const Entry* entry = paths_.find(path_key(pair_key, option));
  return entry != nullptr ? &entry->agg : nullptr;
}

void HistoryWindow::clear() {
  paths_.clear();
  paths_.shrink_to_fit();
  observations_ = 0;
  clock_hand_ = 0;
}

}  // namespace via
