#include "core/history.h"

namespace via {

void HistoryWindow::add(const Observation& obs) {
  const std::uint64_t pk = as_pair_key(obs.src_as, obs.dst_as);
  const std::uint64_t key = path_key(pk, obs.option);
  auto& entry = paths_[key];
  if (entry.agg.count() == 0) {
    entry.pair_key = pk;
    entry.option = obs.option;
  }
  for (const Metric m : kAllMetrics) {
    const double v = obs.perf.get(m);
    entry.agg.raw[metric_index(m)].add(v);
    entry.agg.lin[metric_index(m)].add(linearize(m, v));
  }
  if (obs.ingress >= 0) {
    // Normalize the ingress relay to the pair's lower-numbered endpoint: if
    // the source was the higher endpoint, the lo side talks to the *other*
    // relay of the transit pair.
    const AsId lo = obs.src_as < obs.dst_as ? obs.src_as : obs.dst_as;
    if (obs.src_as == lo || options_ == nullptr) {
      entry.agg.ingress_lo = obs.ingress;
    } else {
      const RelayOption& o = options_->get(obs.option);
      entry.agg.ingress_lo = (obs.ingress == o.a) ? o.b : o.a;
    }
  }
  ++observations_;
}

const PathAggregate* HistoryWindow::find(std::uint64_t pair_key, OptionId option) const {
  const Entry* entry = paths_.find(path_key(pair_key, option));
  return entry != nullptr ? &entry->agg : nullptr;
}

void HistoryWindow::clear() {
  paths_.clear();
  observations_ = 0;
}

}  // namespace via
