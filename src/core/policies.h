// Baseline policies the paper evaluates Via against:
//   - DefaultPolicy:          always the direct (BGP-derived) path.
//   - PredictionOnlyPolicy:   Strawman I — trust the predictor's single
//                             best option (k = 1), no exploration.
//   - ExplorationOnlyPolicy:  Strawman II — bandit over *all* candidate
//                             options with no prediction-based pruning and
//                             naive normalization.
// (The oracle lives in sim/, since it needs ground-truth access.)
#pragma once

#include <limits>
#include <unordered_map>

#include "common/relay_option.h"
#include "core/bandit.h"
#include "core/history.h"
#include "core/policy.h"
#include "core/predictor.h"
#include "util/rng.h"

namespace via {

class DefaultPolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] OptionId choose(const CallContext& /*call*/) override {
    return RelayOptionTable::direct_id();
  }
  [[nodiscard]] std::string_view name() const override { return "default"; }
};

/// Strawman I: purely prediction-based selection from call history.
class PredictionOnlyPolicy final : public RoutingPolicy {
 public:
  PredictionOnlyPolicy(const RelayOptionTable& options, BackboneFn backbone,
                       Metric target = Metric::Rtt, PredictorConfig config = {});

  [[nodiscard]] OptionId choose(const CallContext& call) override;
  void observe(const Observation& obs) override;
  void refresh(TimeSec now) override;
  [[nodiscard]] std::string_view name() const override { return "prediction-only"; }

 private:
  Metric target_;
  HistoryWindow current_window_;
  HistoryWindow trained_window_;
  Predictor predictor_;
};

/// Strawman II: purely exploration-based selection, as described in the
/// paper's Section 4.2 — a fraction of calls is set aside to measure every
/// possible relaying option per AS pair (round-robin), the rest exploit
/// the best empirical mean within the current window.  State resets every
/// window: with no pruning, the large option space must be re-measured
/// continually, which is exactly what makes this strawman expensive/slow.
class ExplorationOnlyPolicy final : public RoutingPolicy {
 public:
  explicit ExplorationOnlyPolicy(Metric target = Metric::Rtt, double explore_fraction = 0.1,
                                 std::uint64_t seed = 17);

  [[nodiscard]] OptionId choose(const CallContext& call) override;
  void observe(const Observation& obs) override;
  void refresh(TimeSec now) override;
  [[nodiscard]] std::string_view name() const override { return "exploration-only"; }

 private:
  struct PairState {
    std::unordered_map<OptionId, OnlineStats> stats;
    std::size_t round_robin = 0;
  };

  Metric target_;
  double explore_fraction_;
  Rng rng_;
  std::unordered_map<std::uint64_t, PairState> pairs_;
};

}  // namespace via
