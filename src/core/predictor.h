// Performance predictor (Pred of Algorithm 1): for a (source, destination,
// relaying option) triple it produces the predicted mean, standard error,
// and 95% confidence bounds of each metric.
//
// Two sources, in preference order:
//   1. Empirical: the path itself carried calls in the last window — use
//      its sample mean and SEM directly.
//   2. Tomography: stitch client<->relay segment estimates (Section 4.4),
//      covering paths with no direct history.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "common/relay_option.h"
#include "common/types.h"
#include "core/history.h"
#include "core/tomography.h"

namespace via {

struct PredictorConfig {
  /// Minimum calls on a path before its own history is trusted.
  std::int64_t min_empirical_samples = 3;
  bool use_tomography = true;  ///< ablation switch (Section 5.3)
  TomographyConfig tomography;
};

/// One metric's prediction with confidence bounds (paper Section 4.4):
/// lower/upper are the 95% CI, mean ± 1.96 SEM.
struct Prediction {
  bool valid = false;
  double mean = 0.0;
  double sem = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  enum class Source : std::uint8_t { None, Empirical, Tomography } source = Source::None;
};

class Predictor {
 public:
  Predictor(const RelayOptionTable& options, BackboneFn backbone, PredictorConfig config = {});

  /// Rebuilds the predictor from a completed history window (refresh step).
  void train(const HistoryWindow& window);

  /// Prediction for (s, d) over `option` on `metric`.
  [[nodiscard]] Prediction predict(AsId s, AsId d, OptionId option, Metric metric) const;

  /// Batched predict for one pair over many options: computes the pair key
  /// once and probes the history window once per option.  `out` is resized
  /// to options.size(); out[i] corresponds to options[i].  This is the form
  /// the per-refresh pair-state build uses, so a candidate is predicted
  /// exactly once per period (the top-k build, the direct baseline, the
  /// benefit estimate, and the probe wishlist all share the same batch).
  void predict_into(AsId s, AsId d, std::span<const OptionId> options, Metric metric,
                    std::vector<Prediction>& out) const;

  [[nodiscard]] const TomographySolver& tomography() const noexcept { return tomography_; }
  [[nodiscard]] bool trained() const noexcept { return window_ != nullptr; }

  /// Federation (§6k): folds peer-replica segment estimates into the
  /// tomography solver.  Call after train(), before serving predictions.
  std::size_t fold_peer_segments(std::vector<PeerSegment> peers) {
    return tomography_.fold_peer_segments(std::move(peers));
  }

  /// Resident bytes (the tomography solver dominates; the training window
  /// is borrowed, not owned, so its bytes are counted by its owner).
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return sizeof(*this) + tomography_.approx_bytes();
  }

 private:
  [[nodiscard]] Prediction predict_with_key(std::uint64_t pair_key, AsId s, AsId d,
                                            OptionId option, Metric metric) const;

  const RelayOptionTable* options_;
  PredictorConfig config_;
  TomographySolver tomography_;
  /// Aggregates of the window the predictor was trained on (owned copy is
  /// unnecessary: the ViaPolicy keeps the window alive across the period).
  const HistoryWindow* window_ = nullptr;
};

}  // namespace via
