#include "core/pair_state_store.h"

#include <algorithm>

namespace via {

namespace {
std::size_t clamp_stripes(std::size_t requested) {
  const std::size_t capped = std::clamp<std::size_t>(requested, 1, 64);
  std::size_t pow2 = 1;
  while (pow2 * 2 <= capped) pow2 *= 2;
  return pow2;
}
}  // namespace

PairStateStore::PairStateStore(std::uint64_t seed, std::size_t stripes,
                               const BudgetConfig& budget, double relay_share_cap)
    : stripe_count_(clamp_stripes(stripes)),
      stripes_(std::make_unique<Stripe[]>(stripe_count_)),
      budget_config_(budget),
      budget_(budget),
      relay_share_cap_(relay_share_cap) {
  // Stripe 0's seed is exactly the historical single-stream seed
  // (hash_mix(seed, 0x1a)), so one stripe == the pre-split RNG sequence.
  for (std::size_t i = 0; i < stripe_count_; ++i) {
    stripes_[i].rng.reseed(hash_mix(seed, 0x1a + i));
  }
}

void PairStateStore::budget_on_call(double predicted_benefit) {
  if (budget_config_.fraction >= 1.0) {
    // Unlimited budget: BudgetFilter::on_call would only bump its call
    // counter, so the gate stays lock-free on the hot path.
    budget_calls_.inc();
    return;
  }
  const std::lock_guard lock(budget_mutex_);
  budget_.on_call(predicted_benefit);
}

bool PairStateStore::budget_allow_relay(double predicted_benefit) {
  if (budget_config_.fraction >= 1.0) {
    budget_granted_.inc();
    return true;
  }
  const std::lock_guard lock(budget_mutex_);
  return budget_.allow_relay(predicted_benefit);
}

bool PairStateStore::relay_cap_allows(const RelayOption& option) {
  if (relay_share_cap_ >= 1.0) return true;
  if (option.kind == RelayKind::Direct) return true;
  const auto key_a = static_cast<std::uint64_t>(static_cast<std::uint32_t>(option.a));
  const auto key_b = static_cast<std::uint64_t>(static_cast<std::uint32_t>(option.b));
  const std::lock_guard lock(relay_mutex_);
  // A short warm-up so the first few calls are not all rejected.
  if (relayed_total_ >= 20) {
    const double cap = relay_share_cap_ * static_cast<double>(relayed_total_);
    if (static_cast<double>(relay_load_[key_a]) >= cap) return false;
    if (option.kind == RelayKind::Transit &&
        static_cast<double>(relay_load_[key_b]) >= cap) {
      return false;
    }
  }
  ++relay_load_[key_a];
  if (option.kind == RelayKind::Transit) ++relay_load_[key_b];
  ++relayed_total_;
  return true;
}

}  // namespace via
