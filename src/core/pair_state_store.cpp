#include "core/pair_state_store.h"

#include <algorithm>

namespace via {

namespace {
std::size_t clamp_stripes(std::size_t requested) {
  const std::size_t capped = std::clamp<std::size_t>(requested, 1, 64);
  std::size_t pow2 = 1;
  while (pow2 * 2 <= capped) pow2 *= 2;
  return pow2;
}
}  // namespace

PairStateStore::PairStateStore(std::uint64_t seed, std::size_t stripes,
                               const BudgetConfig& budget, double relay_share_cap)
    : stripe_count_(clamp_stripes(stripes)),
      stripes_(std::make_unique<Stripe[]>(stripe_count_)),
      budget_config_(budget),
      budget_(budget),
      relay_share_cap_(relay_share_cap) {
  // Stripe 0's seed is exactly the historical single-stream seed
  // (hash_mix(seed, 0x1a)), so one stripe == the pre-split RNG sequence.
  for (std::size_t i = 0; i < stripe_count_; ++i) {
    stripes_[i].rng.reseed(hash_mix(seed, 0x1a + i));
  }
}

void PairStateStore::budget_on_call(double predicted_benefit) {
  if (budget_config_.fraction >= 1.0) {
    // Unlimited budget: BudgetFilter::on_call would only bump its call
    // counter, so the gate stays lock-free on the hot path.
    budget_calls_.inc();
    return;
  }
  const std::lock_guard lock(budget_mutex_);
  budget_.on_call(predicted_benefit);
}

bool PairStateStore::budget_allow_relay(double predicted_benefit) {
  if (budget_config_.fraction >= 1.0) {
    budget_granted_.inc();
    return true;
  }
  const std::lock_guard lock(budget_mutex_);
  return budget_.allow_relay(predicted_benefit);
}

std::int64_t PairStateStore::evict_stale(std::uint64_t current_period,
                                         std::uint64_t ttl_periods) {
  if (ttl_periods == 0) return 0;
  std::int64_t evicted = 0;
  std::vector<std::uint64_t> victims;
  for (std::size_t i = 0; i < stripe_count_; ++i) {
    Stripe& s = stripes_[i];
    const std::lock_guard lock(s.mutex);
    victims.clear();
    s.pairs.for_each([&](std::uint64_t key, const PairServingState& state) {
      if (state.period == ~0ULL) return;  // never armed: placeholder, tiny
      if (state.period + ttl_periods <= current_period) victims.push_back(key);
    });
    for (const std::uint64_t key : victims) s.pairs.erase(key);
    if (!victims.empty()) s.pairs.shrink_to_fit();
    evicted += static_cast<std::int64_t>(victims.size());
  }
  evicted_total_ += evicted;
  return evicted;
}

std::int64_t PairStateStore::enforce_resident_cap(std::size_t max_pairs) {
  if (max_pairs == 0) return 0;
  struct Candidate {
    std::uint64_t period;
    std::uint64_t key;
    std::uint32_t stripe;
  };
  std::vector<Candidate> candidates;
  std::size_t total = 0;
  for (std::size_t i = 0; i < stripe_count_; ++i) {
    Stripe& s = stripes_[i];
    const std::lock_guard lock(s.mutex);
    total += s.pairs.size();
    s.pairs.for_each([&](std::uint64_t key, const PairServingState& state) {
      candidates.push_back({state.period, key, static_cast<std::uint32_t>(i)});
    });
  }
  if (total <= max_pairs) return 0;
  // Oldest armed period first; pair key breaks ties, so the victim order
  // is a total order independent of stripe count.  Never-armed entries
  // (~0ULL) sort last and are shed only under extreme pressure.
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    return a.period != b.period ? a.period < b.period : a.key < b.key;
  });
  const std::size_t to_evict = total - max_pairs;
  for (std::size_t i = 0; i < to_evict; ++i) {
    Stripe& s = stripes_[candidates[i].stripe];
    const std::lock_guard lock(s.mutex);
    s.pairs.erase(candidates[i].key);
  }
  for (std::size_t i = 0; i < stripe_count_; ++i) {
    Stripe& s = stripes_[i];
    const std::lock_guard lock(s.mutex);
    s.pairs.shrink_to_fit();
  }
  evicted_total_ += static_cast<std::int64_t>(to_evict);
  return static_cast<std::int64_t>(to_evict);
}

std::size_t PairStateStore::resident_pairs() {
  std::size_t n = 0;
  for (std::size_t i = 0; i < stripe_count_; ++i) {
    const std::lock_guard lock(stripes_[i].mutex);
    n += stripes_[i].pairs.size();
  }
  return n;
}

std::size_t PairStateStore::approx_bytes() {
  std::size_t n = sizeof(*this) + stripe_count_ * sizeof(Stripe);
  for (std::size_t i = 0; i < stripe_count_; ++i) {
    Stripe& s = stripes_[i];
    const std::lock_guard lock(s.mutex);
    n += s.pairs.approx_bytes();
    s.pairs.for_each([&](std::uint64_t, const PairServingState& state) {
      n += state.bandit.heap_bytes() + state.options.capacity() * sizeof(OptionId);
    });
  }
  {
    const std::lock_guard lock(relay_mutex_);
    n += relay_load_.approx_bytes();
  }
  return n;
}

bool PairStateStore::relay_cap_allows(const RelayOption& option) {
  if (relay_share_cap_ >= 1.0) return true;
  if (option.kind == RelayKind::Direct) return true;
  const auto key_a = static_cast<std::uint64_t>(static_cast<std::uint32_t>(option.a));
  const auto key_b = static_cast<std::uint64_t>(static_cast<std::uint32_t>(option.b));
  const std::lock_guard lock(relay_mutex_);
  // A short warm-up so the first few calls are not all rejected.
  if (relayed_total_ >= 20) {
    const double cap = relay_share_cap_ * static_cast<double>(relayed_total_);
    if (static_cast<double>(relay_load_[key_a]) >= cap) return false;
    if (option.kind == RelayKind::Transit &&
        static_cast<double>(relay_load_[key_b]) >= cap) {
      return false;
    }
  }
  ++relay_load_[key_a];
  if (option.kind == RelayKind::Transit) ++relay_load_[key_b];
  ++relayed_total_;
  return true;
}

}  // namespace via
