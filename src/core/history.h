// Call-history aggregation (stage 1 of the paper's pipeline).
//
// The controller aggregates client measurements per (AS pair, relaying
// option) over a time window of T hours.  Aggregates are kept both in raw
// metric units (for empirical prediction and bandit rewards) and in
// linearized form (for the tomography solver; see common/linearize.h).
//
// AS pairs are undirected: a call s->d and a call d->s traverse the same
// network path.  Transit observations additionally remember which relay
// was adjacent to the pair's lower-numbered endpoint so tomography can
// attribute segments consistently.
#pragma once

#include <array>
#include <cstdint>
#include <utility>

#include "common/linearize.h"
#include "common/relay_option.h"
#include "common/types.h"
#include "core/policy.h"
#include "util/flat_map.h"
#include "util/stats.h"

namespace via {

/// Aggregated measurements of one (AS pair, option) path within a window.
struct PathAggregate {
  std::array<OnlineStats, kNumMetrics> raw;  ///< per-metric raw statistics
  std::array<OnlineStats, kNumMetrics> lin;  ///< per-metric linearized statistics
  /// For transit options: the relay adjacent to the pair's lower endpoint.
  RelayId ingress_lo = -1;

  [[nodiscard]] std::int64_t count() const noexcept { return raw[0].count(); }
};

/// One window's worth of (pair, option) aggregates.
class HistoryWindow {
 public:
  /// `options` resolves transit relay pairs so the ingress relay can be
  /// normalized to the pair's lower endpoint; it must outlive the window.
  explicit HistoryWindow(const RelayOptionTable* options = nullptr) : options_(options) {}

  void add(const Observation& obs);

  [[nodiscard]] const PathAggregate* find(std::uint64_t pair_key, OptionId option) const;

  /// Visits every aggregate: fn(pair_key, option, aggregate).  Templated so
  /// hot callers (the tomography solve harvests every window each refresh)
  /// inline the body instead of bouncing through a std::function.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    paths_.for_each([&](std::uint64_t /*key*/, const Entry& entry) {
      fn(entry.pair_key, entry.option, entry.agg);
    });
  }

  [[nodiscard]] std::size_t size() const noexcept { return paths_.size(); }
  [[nodiscard]] std::int64_t observations() const noexcept { return observations_; }
  void clear();

  /// Composite map key for (pair, option).  Collision-free for endpoint
  /// group ids below 2^24 (AS, country, or prefix granularity all fit) and
  /// option ids below 2^14.
  [[nodiscard]] static std::uint64_t path_key(std::uint64_t pair_key, OptionId option) noexcept {
    const std::uint64_t folded = ((pair_key >> 32) << 24) | (pair_key & 0xFFFFFF);
    return (folded << 14) | (static_cast<std::uint64_t>(static_cast<std::uint32_t>(option)) &
                             0x3FFF);
  }

 private:
  struct Entry {
    std::uint64_t pair_key = 0;
    OptionId option = 0;
    PathAggregate agg;
  };
  const RelayOptionTable* options_ = nullptr;
  FlatMap<Entry> paths_;
  std::int64_t observations_ = 0;
};

}  // namespace via
