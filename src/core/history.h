// Call-history aggregation (stage 1 of the paper's pipeline).
//
// The controller aggregates client measurements per (AS pair, relaying
// option) over a time window of T hours.  Aggregates are kept both in raw
// metric units (for empirical prediction and bandit rewards) and in
// linearized form (for the tomography solver; see common/linearize.h).
//
// AS pairs are undirected: a call s->d and a call d->s traverse the same
// network path.  Transit observations additionally remember which relay
// was adjacent to the pair's lower-numbered endpoint so tomography can
// attribute segments consistently.
//
// Memory model (DESIGN.md §6i): PathAggregate is a compact fixed-footprint
// record — exactly the moments downstream stages read (raw mean + M2 for
// empirical prediction, linearized mean for tomography), one shared count,
// nothing else.  The window itself can be capped with set_max_paths();
// at the cap, cold (pair, option) paths are evicted second-chance
// (clock-hand) before a new path is admitted.  The cap is off by default,
// so golden replays are untouched.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/linearize.h"
#include "common/relay_option.h"
#include "common/types.h"
#include "core/policy.h"
#include "util/flat_map.h"
#include "util/stats.h"

namespace via {

/// Aggregated measurements of one (AS pair, option) path within a window.
///
/// Compact form of the original 6×OnlineStats layout (~256 B -> 80 B): all
/// metrics of an observation are recorded together, so one shared count
/// replaces six; min/max and the linearized second moment had no readers.
/// The update arithmetic is the same Welford recurrence OnlineStats uses,
/// term for term, so means/SEMs are bit-identical to the old layout.
struct PathAggregate {
  std::array<double, kNumMetrics> raw_mean{};  ///< raw metric means
  std::array<double, kNumMetrics> raw_m2{};    ///< raw sums of squared deviations
  std::array<double, kNumMetrics> lin_mean{};  ///< linearized means (tomography)
  std::uint32_t n = 0;                         ///< observations aggregated
  /// For transit options: the relay adjacent to the pair's lower endpoint.
  RelayId ingress_lo = -1;

  [[nodiscard]] std::int64_t count() const noexcept { return n; }

  /// Standard error of the raw mean for one metric; mirrors
  /// OnlineStats::sem() (wide for a single sample, infinite for none).
  [[nodiscard]] double raw_sem(std::size_t i) const noexcept {
    if (n > 1) {
      return std::sqrt(raw_m2[i] / static_cast<double>(n - 1)) /
             std::sqrt(static_cast<double>(n));
    }
    if (n == 1) return std::abs(raw_mean[i]) * OnlineStats::kSingleSampleRelSem;
    return std::numeric_limits<double>::infinity();
  }

  /// One Welford step across all metrics (`raw` in metric units, `lin`
  /// linearized).  Must be called with both arrays of one observation.
  void accumulate(const std::array<double, kNumMetrics>& raw,
                  const std::array<double, kNumMetrics>& lin) noexcept {
    ++n;
    const auto dn = static_cast<double>(n);
    for (std::size_t i = 0; i < kNumMetrics; ++i) {
      const double delta = raw[i] - raw_mean[i];
      raw_mean[i] += delta / dn;
      raw_m2[i] += delta * (raw[i] - raw_mean[i]);
      lin_mean[i] += (lin[i] - lin_mean[i]) / dn;
    }
  }
};

/// Outcome of HistoryWindow::add.
enum class HistoryAddResult : std::uint8_t {
  kAdded = 0,
  /// The observation's endpoint group or option id does not fit the
  /// path_key packing; recorded in rejected(), aggregate untouched.
  kKeyOutOfRange = 1,
  /// The window is at max_paths and every resident path was referenced
  /// this sweep round *and* the new path could not displace one (only
  /// possible when max_paths is 0-sized); practically unreachable.
  kWindowFull = 2,
};

/// One window's worth of (pair, option) aggregates.
class HistoryWindow {
 public:
  /// `options` resolves transit relay pairs so the ingress relay can be
  /// normalized to the pair's lower endpoint; it must outlive the window.
  explicit HistoryWindow(const RelayOptionTable* options = nullptr) : options_(options) {}

  HistoryAddResult add(const Observation& obs);

  [[nodiscard]] const PathAggregate* find(std::uint64_t pair_key, OptionId option) const;

  /// Visits every aggregate: fn(pair_key, option, aggregate).  Templated so
  /// hot callers (the tomography solve harvests every window each refresh)
  /// inline the body instead of bouncing through a std::function.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    paths_.for_each([&](std::uint64_t /*key*/, const Entry& entry) {
      fn(entry.pair_key, entry.option, entry.agg);
    });
  }

  [[nodiscard]] std::size_t size() const noexcept { return paths_.size(); }
  [[nodiscard]] std::int64_t observations() const noexcept { return observations_; }

  /// Caps resident (pair, option) paths; 0 (default) = unbounded.  At the
  /// cap, a new path evicts the first clock-hand victim whose reference
  /// bit is clear (every add() sets the touched path's bit).
  void set_max_paths(std::size_t n) noexcept { max_paths_ = n; }
  [[nodiscard]] std::size_t max_paths() const noexcept { return max_paths_; }
  [[nodiscard]] std::int64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::int64_t rejected() const noexcept { return rejected_; }

  /// Pre-sizes the path table (capacity hygiene for recurring windows).
  void reserve(std::size_t n) { paths_.reserve(n); }

  /// Drops all aggregates and returns the table's capacity to the
  /// allocator, so one burst window cannot pin peak RSS for the rest of
  /// the run.
  void clear();

  /// Resident bytes of this window (table plus bookkeeping).
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return sizeof(*this) + paths_.approx_bytes();
  }

  /// Composite map key for (pair, option).  Collision-free for endpoint
  /// group ids below 2^24 (AS, country, or prefix granularity all fit) and
  /// option ids below 2^14; add() rejects anything larger.
  [[nodiscard]] static std::uint64_t path_key(std::uint64_t pair_key, OptionId option) noexcept {
    const std::uint64_t folded = ((pair_key >> 32) << 24) | (pair_key & 0xFFFFFF);
    return (folded << 14) | (static_cast<std::uint64_t>(static_cast<std::uint32_t>(option)) &
                             0x3FFF);
  }

  /// True when (pair_key, option) packs into path_key without collision.
  [[nodiscard]] static bool path_key_fits(std::uint64_t pair_key, OptionId option) noexcept {
    return (pair_key >> 32) < (1ULL << 24) && (pair_key & 0xFFFFFFFFULL) < (1ULL << 24) &&
           option >= 0 && option < (1 << 14);
  }

 private:
  struct Entry {
    std::uint64_t pair_key = 0;
    OptionId option = 0;
    std::uint8_t ref = 0;  ///< second-chance bit for clock-hand eviction
    PathAggregate agg;
  };

  /// Frees one slot via clock sweep; returns false only on an empty map.
  bool evict_one();

  const RelayOptionTable* options_ = nullptr;
  FlatMap<Entry> paths_;
  std::int64_t observations_ = 0;
  std::size_t max_paths_ = 0;
  std::size_t clock_hand_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t rejected_ = 0;
};

}  // namespace via
