#include "core/model_snapshot.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/thread_pool.h"

namespace via {

ModelSnapshot::ModelSnapshot(const RelayOptionTable& options, BackboneFn backbone, Metric target,
                             const PredictorConfig& predictor_config,
                             const TopKConfig& topk_config)
    : options_(&options),
      target_(target),
      topk_(topk_config),
      window_(&options),
      predictor_(options, std::move(backbone), predictor_config) {}

ModelSnapshot::ModelSnapshot(const RelayOptionTable& options, BackboneFn backbone, Metric target,
                             const PredictorConfig& predictor_config,
                             const TopKConfig& topk_config, std::uint64_t period,
                             HistoryWindow&& window)
    : options_(&options),
      target_(target),
      topk_(topk_config),
      period_(period),
      window_(std::move(window)),
      predictor_(options, std::move(backbone), predictor_config) {
  predictor_.train(window_);
}

void ModelSnapshot::build_pair_model(const CallContext& call, std::vector<Prediction>& preds,
                                     TopKCoverage& coverage, PairModel& out) const {
  predictor_.predict_into(call.key_src, call.key_dst, call.options, target_, preds);

  TopKScratch scratch;
  select_top_k_into(call.options, preds, topk_, &coverage, scratch, out.top_k);

  Prediction direct;
  for (std::size_t i = 0; i < call.options.size(); ++i) {
    if (call.options[i] == RelayOptionTable::direct_id()) {
      direct = preds[i];
      break;
    }
  }
  out.predicted_benefit = 0.0;
  if (direct.valid && !out.top_k.empty()) {
    double best = std::numeric_limits<double>::infinity();
    for (const RankedOption& r : out.top_k) best = std::min(best, r.pred.mean);
    out.predicted_benefit = direct.mean - best;
  }
}

ModelSnapshot::PairView ModelSnapshot::pair_model(const CallContext& call,
                                                  PairBuildObserver* observer) const {
  const std::uint64_t key = call.pair_key();
  PairView view;
  const bool hit = pair_models_.with_shared(key, [&](const FlatMap<PairModel>& map) {
    const PairModel* model = map.find(key);
    if (model == nullptr) return false;
    view = {model->top_k, model->predicted_benefit};
    return true;
  });
  if (hit) return view;

  // Cold pair at an exhausted memo budget: build into thread-local scratch
  // and serve that — identical bits, no growth, rebuilt on each touch.
  if (memo_budget_ > 0 && memo_count_.load(std::memory_order_relaxed) >= memo_budget_) {
    thread_local PairModel overflow_model;
    thread_local std::vector<Prediction> overflow_preds;
    TopKCoverage coverage;
    build_pair_model(call, overflow_preds, coverage, overflow_model);
    memo_overflow_.fetch_add(1, std::memory_order_relaxed);
    return {overflow_model.top_k, overflow_model.predicted_benefit};
  }

  // Cold pair: compute the model outside any lock (a pure function of the
  // snapshot and the call's candidate set), then publish it.
  PairModel built;
  std::vector<Prediction> preds;
  TopKCoverage coverage;
  build_pair_model(call, preds, coverage, built);

  const bool won = pair_models_.with_unique(key, [&](FlatMap<PairModel>& map) {
    if (map.find(key) != nullptr) return false;  // lost the build race
    PairModel& slot = map[key];
    slot = std::move(built);
    view = {slot.top_k, slot.predicted_benefit};
    return true;
  });
  if (!won) {
    // Another thread published first; its entry holds the identical bits.
    pair_models_.with_shared(key, [&](const FlatMap<PairModel>& map) {
      const PairModel* model = map.find(key);
      view = {model->top_k, model->predicted_benefit};
      return true;
    });
    return view;
  }
  memo_count_.fetch_add(1, std::memory_order_relaxed);
  if (observer != nullptr) observer->on_pair_built(call, preds, view.top_k, coverage);
  return view;
}

std::size_t ModelSnapshot::approx_bytes() const {
  std::size_t n = sizeof(*this) + window_.approx_bytes() + predictor_.approx_bytes() +
                  pair_models_.approx_bytes();
  pair_models_.for_each([&](std::uint64_t, const PairModel& model) {
    n += model.top_k.capacity() * sizeof(RankedOption);
  });
  return n;
}

void ModelSnapshot::prewarm(std::span<const CallContext> calls, PairBuildObserver* observer,
                            ThreadPool* pool) const {
  if (calls.empty()) return;
  // Worth forking only when there are a few pairs per worker; tiny warm
  // sets build inline (and so does every serial replay, keeping observer
  // side-effect order deterministic there).
  if (pool == nullptr || calls.size() < 2 * static_cast<std::size_t>(pool->thread_count())) {
    for (const CallContext& call : calls) (void)pair_model(call, observer);
    return;
  }
  const std::size_t workers = static_cast<std::size_t>(pool->thread_count());
  const std::size_t chunk = (calls.size() + workers - 1) / workers;
  for (std::size_t begin = 0; begin < calls.size(); begin += chunk) {
    const std::size_t end = std::min(calls.size(), begin + chunk);
    pool->submit([this, observer, calls, begin, end] {
      for (std::size_t i = begin; i < end; ++i) (void)pair_model(calls[i], observer);
    });
  }
  pool->wait_idle();
}

}  // namespace via
