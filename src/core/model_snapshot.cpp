#include "core/model_snapshot.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/thread_pool.h"

namespace via {

ModelSnapshot::ModelSnapshot(const RelayOptionTable& options, BackboneFn backbone, Metric target,
                             const PredictorConfig& predictor_config,
                             const TopKConfig& topk_config)
    : options_(&options),
      target_(target),
      topk_(topk_config),
      window_(&options),
      predictor_(options, std::move(backbone), predictor_config) {}

ModelSnapshot::ModelSnapshot(const RelayOptionTable& options, BackboneFn backbone, Metric target,
                             const PredictorConfig& predictor_config,
                             const TopKConfig& topk_config, std::uint64_t period,
                             HistoryWindow&& window)
    : options_(&options),
      target_(target),
      topk_(topk_config),
      period_(period),
      window_(std::move(window)),
      predictor_(options, std::move(backbone), predictor_config) {
  predictor_.train(window_);
}

ModelSnapshot::PairView ModelSnapshot::pair_model(const CallContext& call,
                                                  PairBuildObserver* observer) const {
  const std::uint64_t key = call.pair_key();
  PairView view;
  const bool hit = pair_models_.with_shared(key, [&](const FlatMap<PairModel>& map) {
    const PairModel* model = map.find(key);
    if (model == nullptr) return false;
    view = {model->top_k, model->predicted_benefit};
    return true;
  });
  if (hit) return view;

  // Cold pair: compute the model outside any lock (a pure function of the
  // snapshot and the call's candidate set), then publish it.
  PairModel built;
  std::vector<Prediction> preds;
  predictor_.predict_into(call.key_src, call.key_dst, call.options, target_, preds);

  TopKCoverage coverage;
  TopKScratch scratch;
  select_top_k_into(call.options, preds, topk_, &coverage, scratch, built.top_k);

  Prediction direct;
  for (std::size_t i = 0; i < call.options.size(); ++i) {
    if (call.options[i] == RelayOptionTable::direct_id()) {
      direct = preds[i];
      break;
    }
  }
  if (direct.valid && !built.top_k.empty()) {
    double best = std::numeric_limits<double>::infinity();
    for (const RankedOption& r : built.top_k) best = std::min(best, r.pred.mean);
    built.predicted_benefit = direct.mean - best;
  }

  const bool won = pair_models_.with_unique(key, [&](FlatMap<PairModel>& map) {
    if (map.find(key) != nullptr) return false;  // lost the build race
    PairModel& slot = map[key];
    slot = std::move(built);
    view = {slot.top_k, slot.predicted_benefit};
    return true;
  });
  if (!won) {
    // Another thread published first; its entry holds the identical bits.
    pair_models_.with_shared(key, [&](const FlatMap<PairModel>& map) {
      const PairModel* model = map.find(key);
      view = {model->top_k, model->predicted_benefit};
      return true;
    });
    return view;
  }
  if (observer != nullptr) observer->on_pair_built(call, preds, view.top_k, coverage);
  return view;
}

void ModelSnapshot::prewarm(std::span<const CallContext> calls, PairBuildObserver* observer,
                            ThreadPool* pool) const {
  if (calls.empty()) return;
  // Worth forking only when there are a few pairs per worker; tiny warm
  // sets build inline (and so does every serial replay, keeping observer
  // side-effect order deterministic there).
  if (pool == nullptr || calls.size() < 2 * static_cast<std::size_t>(pool->thread_count())) {
    for (const CallContext& call : calls) (void)pair_model(call, observer);
    return;
  }
  const std::size_t workers = static_cast<std::size_t>(pool->thread_count());
  const std::size_t chunk = (calls.size() + workers - 1) / workers;
  for (std::size_t begin = 0; begin < calls.size(); begin += chunk) {
    const std::size_t end = std::min(calls.size(), begin + chunk);
    pool->submit([this, observer, calls, begin, end] {
      for (std::size_t i = begin; i < end; ++i) (void)pair_model(calls[i], observer);
    });
  }
  pool->wait_idle();
}

}  // namespace via
