#include "core/extensions.h"

#include <algorithm>

namespace via {

CachingClient::CachingClient(RoutingPolicy& controller, TimeSec ttl)
    : controller_(&controller), ttl_(ttl) {}

OptionId CachingClient::choose(const CallContext& call) {
  Entry& entry = cache_[call.pair_key()];
  if (entry.fetched_at >= 0 && call.time - entry.fetched_at < ttl_) {
    ++hits_;
    return entry.option;
  }
  ++misses_;
  entry.option = controller_->choose(call);
  entry.fetched_at = call.time;
  return entry.option;
}

void CachingClient::refresh(TimeSec now) {
  controller_->refresh(now);
  // Controller state changed; cached decisions may be stale, but clients
  // only notice at TTL expiry — that latency is exactly the tradeoff this
  // wrapper exists to study.  (We keep entries; TTL governs staleness.)
}

HybridRacer::HybridRacer(ViaPolicy& inner, int race_width)
    : inner_(&inner), race_width_(std::max(1, race_width)) {}

std::vector<OptionId> HybridRacer::choose_candidates(const CallContext& call) {
  std::vector<OptionId> race;
  const OptionId primary = inner_->choose(call);
  race.push_back(primary);

  // Add the best-predicted remaining top-k candidates.
  for (const RankedOption& r : inner_->top_k_for(call)) {
    if (static_cast<int>(race.size()) >= race_width_) break;
    if (std::find(race.begin(), race.end(), r.option) == race.end()) {
      race.push_back(r.option);
    }
  }
  return race;
}

}  // namespace via
