#include "core/budget.h"

#include <algorithm>
#include <limits>

namespace via {

namespace {
// The P² estimator needs a quantile strictly inside (0,1).
double benefit_quantile_for(double fraction) {
  return std::clamp(1.0 - fraction, 0.001, 0.999);
}
}  // namespace

BudgetFilter::BudgetFilter(BudgetConfig config)
    : config_(config), benefit_quantile_(benefit_quantile_for(config.fraction)) {}

void BudgetFilter::on_call(double predicted_benefit) {
  ++calls_;
  // Unlimited budget (the default): allow_relay and benefit_threshold never
  // consult the token bucket or the quantile, so skip their upkeep on the
  // per-call path.
  if (config_.fraction >= 1.0) return;
  // Token cap of 1 call: unused allowance does not accumulate without
  // bound, keeping the relayed fraction near B at all times rather than
  // only in aggregate.
  tokens_ = std::min(tokens_ + config_.fraction, std::max(1.0, config_.fraction * 100.0));
  benefit_quantile_.add(predicted_benefit);
}

double BudgetFilter::benefit_threshold() const {
  if (config_.fraction >= 1.0) return -std::numeric_limits<double>::infinity();
  return benefit_quantile_.value();
}

bool BudgetFilter::allow_relay(double predicted_benefit) {
  if (config_.fraction >= 1.0) {
    ++granted_;
    return true;
  }
  if (tokens_ < 1.0) return false;
  if (config_.aware) {
    // Only relay calls whose benefit clears the trailing (1-B) percentile
    // (the paper's §4.6 rule); small-benefit calls save their token for
    // someone who needs it more.  As B grows the threshold slides down the
    // benefit distribution and the filter converges to unconstrained.
    if (predicted_benefit < benefit_threshold()) return false;
  } else {
    // Budget-unaware: greedy — any non-negative (including unknown = 0)
    // predicted benefit spends a token.  This is what burns the budget on
    // marginal calls (the paper's Figure 16 contrast).
    if (predicted_benefit < 0.0) return false;
  }
  tokens_ -= 1.0;
  ++granted_;
  return true;
}

}  // namespace via
