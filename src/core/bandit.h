// Modified UCB1 bandit over the top-k candidates (Algorithm 3).
//
// Standard UCB1 normalizes rewards into [0,1] by the full value range; with
// heavy-tailed network metrics that squashes the common case, so the paper
// instead normalizes by w = the mean of the top-k candidates' upper
// confidence bounds.  Because the metric is a cost (lower is better) the
// index *subtracts* the exploration bonus and the arm with the minimum
// index is played:
//     index(r) = mean(Q_r) / w  -  sqrt(0.1 * ln(T) / n_r)
// Arms never played are tried first (index -inf).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/topk.h"

namespace via {

enum class BanditNormalization : std::uint8_t {
  MeanUpperBound,  ///< the paper's scheme: w = avg Pred_upper over top-k
  MaxObserved,     ///< naive scheme for the Figure 15 ablation
};

struct BanditConfig {
  double exploration_coefficient = 0.1;  ///< the 0.1 in sqrt(0.1 ln T / n)
  BanditNormalization normalization = BanditNormalization::MeanUpperBound;
  /// Seed each arm with one pseudo-observation at its predicted mean, so
  /// the bandit starts from the predictor's ranking instead of playing
  /// every arm round-robin (costly at realistic per-pair call volumes).
  bool seed_with_prediction = true;
  /// When re-arming at a refresh, carry over this fraction of each
  /// surviving arm's play count (0 = full reset, as in stateless UCB1).
  double carry_over = 0.5;
};

/// Bandit state for one (AS pair, metric) within one refresh period.
class UcbBandit {
 public:
  UcbBandit() = default;

  /// Installs the period's arms (top-k options with predictions).  `w` is
  /// computed from the predictions per the config.  When `carry_from` is
  /// given, arms surviving from the previous period keep a decayed version
  /// of their statistics (non-stationarity adaptation without total
  /// amnesia); fresh arms are optionally seeded with their prediction.
  void set_arms(std::span<const RankedOption> top_k, const BanditConfig& config,
                const UcbBandit* carry_from = nullptr);

  /// Picks the arm with the minimum UCB index; kInvalidOption if armless.
  [[nodiscard]] OptionId pick() const;

  /// pick(), skipping arms whose option the predicate rejects (relay
  /// quarantine filtering); kInvalidOption when every arm is rejected.
  template <typename Pred>
  [[nodiscard]] OptionId pick_if(Pred&& allowed) const;

  /// Records an observed cost for an arm (no-op for unknown arms, which can
  /// happen for ε-exploration picks outside the top-k).
  void observe(OptionId option, double cost);

  [[nodiscard]] bool has_arms() const noexcept { return !arms_.empty(); }
  [[nodiscard]] std::size_t arm_count() const noexcept { return arms_.size(); }
  /// Heap bytes owned by this bandit (the arm array); the object itself is
  /// counted by whoever embeds it.
  [[nodiscard]] std::size_t heap_bytes() const noexcept {
    return arms_.capacity() * sizeof(Arm);
  }
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return sizeof(*this) + heap_bytes();
  }
  [[nodiscard]] std::int64_t total_plays() const noexcept { return total_plays_; }
  [[nodiscard]] double normalizer() const noexcept { return w_; }

 private:
  struct Arm {
    OptionId option = kInvalidOption;
    std::int64_t plays = 0;
    double cost_sum = 0.0;
    // Derived quantities cached at update time: pick() runs once per call
    // over every arm, so keeping the division and square root out of its
    // inner loop matters (observe() runs once per call total).
    double mean_cost = 0.0;       ///< cost_sum / plays (0 when unplayed)
    double inv_sqrt_plays = 0.0;  ///< 1 / sqrt(plays)  (0 when unplayed)
    void recache() {
      mean_cost = cost_sum / static_cast<double>(plays);
      inv_sqrt_plays = 1.0 / std::sqrt(static_cast<double>(plays));
    }
  };
  std::vector<Arm> arms_;
  double w_ = 1.0;
  double max_observed_ = 0.0;
  std::int64_t total_plays_ = 0;
  BanditConfig config_;
};

template <typename Pred>
OptionId UcbBandit::pick_if(Pred&& allowed) const {
  if (arms_.empty()) return kInvalidOption;

  const double t = static_cast<double>(total_plays_ + 1);
  double best_index = std::numeric_limits<double>::infinity();
  OptionId best = kInvalidOption;

  const double w = config_.normalization == BanditNormalization::MaxObserved
                       ? (max_observed_ > 1e-9 ? max_observed_ : 1e-9)
                       : w_;
  const double bonus = std::sqrt(config_.exploration_coefficient * std::log(t));
  const double inv_w = 1.0 / w;
  // Same index and tie-breaking as pick(); the predicate only prunes.
  for (const auto& arm : arms_) {
    if (!allowed(arm.option)) continue;
    double index;
    if (arm.plays == 0) {
      index = -std::numeric_limits<double>::infinity();
    } else {
      index = arm.mean_cost * inv_w - bonus * arm.inv_sqrt_plays;
    }
    if (index < best_index) {
      best_index = index;
      best = arm.option;
    }
  }
  return best;
}

}  // namespace via
