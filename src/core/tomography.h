// Network tomography (stage 2, Section 4.4 of the paper).
//
// Relayed paths decompose into client<->relay segments:
//   bounce(r):        path(s,d) = seg(s,r) + seg(d,r)
//   transit(r1,r2):   path(s,d) = seg(s,r1) + backbone(r1,r2) + seg(d,r2)
// with "+" taken in linearized metric space (common/linearize.h) and the
// backbone matrix known to the operator.  Every observed relayed path thus
// yields one linear equation over the unknown segment values; solving the
// (overdetermined, sparse) system by weighted Gauss-Seidel recovers
// per-segment estimates, which can then be stitched to predict paths that
// have never carried a call — exactly the paper's Figure 11 construction.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "common/relay_option.h"
#include "common/types.h"
#include "core/history.h"
#include "util/flat_map.h"

namespace via {

/// Supplies the managed backbone's known performance.
using BackboneFn = std::function<PathPerformance(RelayId, RelayId)>;

struct TomographyConfig {
  int gauss_seidel_sweeps = 20;
  /// Minimum number of calls on a path for its equation to be used.  Even
  /// single-call paths carry signal (they get proportionally low weight);
  /// raising this trades coverage for per-equation confidence.
  std::int64_t min_samples_per_path = 1;
};

/// Per-segment estimate in linearized space, with uncertainty.
struct SegmentEstimate {
  std::array<double, kNumMetrics> lin_mean{};  ///< linearized metric estimate
  std::array<double, kNumMetrics> lin_sem{};   ///< standard error (linearized)
  std::int64_t evidence = 0;                   ///< total calls behind the estimate
};

/// Solves for client<->relay segment estimates from one history window.
class TomographySolver {
 public:
  TomographySolver(const RelayOptionTable& options, BackboneFn backbone,
                   TomographyConfig config = {});

  /// Builds segment estimates from the window's relayed-path aggregates.
  void solve(const HistoryWindow& window);

  /// Segment estimate for (AS, relay); nullptr when the segment was not
  /// covered by any observed path.
  [[nodiscard]] const SegmentEstimate* segment(AsId as, RelayId relay) const;

  [[nodiscard]] std::size_t segment_count() const noexcept { return segments_.size(); }
  [[nodiscard]] std::size_t equation_count() const noexcept { return equations_.size(); }

  /// Predicted linearized mean/SEM for a relayed path between s and d over
  /// `option`, stitched from segment estimates.  Returns false when any
  /// needed segment is unknown.
  [[nodiscard]] bool predict_lin(AsId s, AsId d, OptionId option,
                                 std::array<double, kNumMetrics>& lin_mean,
                                 std::array<double, kNumMetrics>& lin_sem) const;

  [[nodiscard]] static std::uint64_t segment_key(AsId as, RelayId relay) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(as)) << 16) |
           static_cast<std::uint64_t>(static_cast<std::uint16_t>(relay));
  }

 private:
  struct Equation {
    std::uint64_t seg1 = 0;
    std::uint64_t seg2 = 0;
    std::array<double, kNumMetrics> rhs{};  ///< linearized path value minus backbone
    double weight = 1.0;                    ///< call count
  };

  struct Work {
    std::array<double, kNumMetrics> x{};
    std::array<double, kNumMetrics> rhs_sum{};
    double weight_sum = 0.0;
    std::int64_t evidence = 0;
  };

  /// Picks the relay each endpoint of a transit observation talks to.
  [[nodiscard]] std::pair<RelayId, RelayId> transit_sides(const PathAggregate& agg,
                                                          const RelayOption& o) const;

  const RelayOptionTable* options_;
  BackboneFn backbone_;
  TomographyConfig config_;
  std::vector<Equation> equations_;
  FlatMap<SegmentEstimate> segments_;
  // Solver scratch, kept across solves so a recurring refresh reuses the
  // table capacity instead of reallocating every period.
  FlatMap<Work> work_;
  FlatMap<Work> next_;
  FlatMap<std::array<double, kNumMetrics>> resid2_;
};

}  // namespace via
