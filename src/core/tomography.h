// Network tomography (stage 2, Section 4.4 of the paper).
//
// Relayed paths decompose into client<->relay segments:
//   bounce(r):        path(s,d) = seg(s,r) + seg(d,r)
//   transit(r1,r2):   path(s,d) = seg(s,r1) + backbone(r1,r2) + seg(d,r2)
// with "+" taken in linearized metric space (common/linearize.h) and the
// backbone matrix known to the operator.  Every observed relayed path thus
// yields one linear equation over the unknown segment values; solving the
// (overdetermined, sparse) system by weighted Gauss-Seidel recovers
// per-segment estimates, which can then be stitched to predict paths that
// have never carried a call — exactly the paper's Figure 11 construction.
//
// Parallel solve (DESIGN.md §6e).  Each sweep is Jacobi-style: every
// unknown's next value is a weighted average over its equations, reading
// only the *previous* iterate.  The sweep therefore partitions by
// **segment**, not by equation: a worker owns a contiguous slice of the
// segment array and, for each owned segment, folds that segment's
// equations in ascending equation order — the exact floating-point
// accumulation order the historical serial pass used.  No partial sums are
// ever merged across workers, so the result is bit-identical for any
// `solve_threads`, including 1 (which is why golden replays stay pinned
// without a special-cased legacy path).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/relay_option.h"
#include "common/types.h"
#include "core/history.h"
#include "util/flat_map.h"

namespace via {

class ThreadPool;

/// Supplies the managed backbone's known performance.
using BackboneFn = std::function<PathPerformance(RelayId, RelayId)>;

struct TomographyConfig {
  int gauss_seidel_sweeps = 20;
  /// Minimum number of calls on a path for its equation to be used.  Even
  /// single-call paths carry signal (they get proportionally low weight);
  /// raising this trades coverage for per-equation confidence.
  std::int64_t min_samples_per_path = 1;
  /// Worker threads for the sweep and residual passes.  1 (the default)
  /// runs everything on the calling thread; any value yields bit-identical
  /// estimates (see file comment), so replays may stay at 1 while the
  /// serving controller solves wide.  <= 0 is treated as 1.
  int solve_threads = 1;
  /// Convergence early-exit: stop sweeping once the largest per-segment,
  /// per-metric change of one sweep (linearized units) drops below this.
  /// 0 (the default) keeps the legacy fixed-sweep behavior — what the
  /// golden-replay tests pin.  The delta is an exact max over identical
  /// per-segment values, so the sweep count — and with it the estimates —
  /// stays deterministic across thread counts.
  double convergence_tol = 0.0;
};

/// Per-segment estimate in linearized space, with uncertainty.
struct SegmentEstimate {
  std::array<double, kNumMetrics> lin_mean{};  ///< linearized metric estimate
  std::array<double, kNumMetrics> lin_sem{};   ///< standard error (linearized)
  std::int64_t evidence = 0;                   ///< total calls behind the estimate
};

/// One segment estimate received from a peer controller replica (federation
/// §6k): the solver folds these into its own estimates after a solve, so
/// shards pool segment knowledge instead of converging in isolation.
struct PeerSegment {
  std::uint64_t key = 0;  ///< TomographySolver::segment_key(as, relay)
  SegmentEstimate est;
};

/// Solves for client<->relay segment estimates from one history window.
class TomographySolver {
 public:
  TomographySolver(const RelayOptionTable& options, BackboneFn backbone,
                   TomographyConfig config = {});
  ~TomographySolver();

  TomographySolver(const TomographySolver&) = delete;
  TomographySolver& operator=(const TomographySolver&) = delete;

  /// Builds segment estimates from the window's relayed-path aggregates.
  void solve(const HistoryWindow& window);

  /// Folds peer-replica segment estimates into this solver's own (§6k).
  /// Known segments merge by evidence-weighted mean in linearized space;
  /// unknown ones are adopted outright.  The fold is applied in ascending
  /// (key, input-order) order — `peers` is sorted internally — so the
  /// result is deterministic for any arrival order of the same updates.
  /// An empty `peers` is a strict no-op (bit-identical estimates), which is
  /// what keeps a single-replica ring pinned to the golden replays.
  /// Returns the number of estimates merged or adopted.
  std::size_t fold_peer_segments(std::vector<PeerSegment> peers);

  /// Segment estimate for (AS, relay); nullptr when the segment was not
  /// covered by any observed path.
  [[nodiscard]] const SegmentEstimate* segment(AsId as, RelayId relay) const;

  [[nodiscard]] std::size_t segment_count() const noexcept { return segments_.size(); }
  [[nodiscard]] std::size_t equation_count() const noexcept { return equations_.size(); }
  /// Gauss-Seidel sweeps the last solve() actually ran (< the configured
  /// maximum when convergence_tol triggered the early exit).
  [[nodiscard]] int last_sweeps() const noexcept { return last_sweeps_; }

  /// Resident bytes: published estimates plus the retained solver scratch
  /// (the scratch is the dominant term between solves — it is kept to be
  /// reused, so it must be visible to the memory gauges).
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return sizeof(*this) + equations_.capacity() * sizeof(Equation) +
           segments_.approx_bytes() + work_.approx_bytes() +
           seg_keys_.capacity() * sizeof(std::uint64_t) +
           (x_.capacity() + next_x_.capacity() + resid2_.capacity()) *
               sizeof(std::array<double, kNumMetrics>) +
           weight_sum_.capacity() * sizeof(double) +
           evidence_.capacity() * sizeof(std::int64_t) +
           (incidence_off_.capacity() + incidence_eq_.capacity()) * sizeof(std::uint32_t);
  }

  /// Visits every segment estimate as fn(segment_key, estimate), in the
  /// deterministic solve order — what the cross-thread parity tests hash.
  template <typename Fn>
  void for_each_segment(Fn&& fn) const {
    segments_.for_each(
        [&](std::uint64_t key, const SegmentEstimate& est) { fn(key, est); });
  }

  /// Predicted linearized mean/SEM for a relayed path between s and d over
  /// `option`, stitched from segment estimates.  Returns false when any
  /// needed segment is unknown.
  [[nodiscard]] bool predict_lin(AsId s, AsId d, OptionId option,
                                 std::array<double, kNumMetrics>& lin_mean,
                                 std::array<double, kNumMetrics>& lin_sem) const;

  [[nodiscard]] static std::uint64_t segment_key(AsId as, RelayId relay) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(as)) << 16) |
           static_cast<std::uint64_t>(static_cast<std::uint16_t>(relay));
  }

 private:
  struct Equation {
    std::uint64_t seg1 = 0;
    std::uint64_t seg2 = 0;
    std::uint32_t idx1 = 0;                 ///< dense segment index of seg1
    std::uint32_t idx2 = 0;                 ///< dense segment index of seg2
    std::array<double, kNumMetrics> rhs{};  ///< linearized path value minus backbone
    double weight = 1.0;                    ///< call count
  };

  struct Work {
    std::array<double, kNumMetrics> rhs_sum{};
    double weight_sum = 0.0;
    std::int64_t evidence = 0;
    std::uint32_t index = 0;  ///< dense index, assigned in insertion order
  };

  /// Picks the relay each endpoint of a transit observation talks to.
  [[nodiscard]] std::pair<RelayId, RelayId> transit_sides(const PathAggregate& agg,
                                                          const RelayOption& o) const;

  /// Runs fn(begin, end) over [0, count) split into contiguous slices —
  /// inline when solve_threads is 1 or the problem is tiny, otherwise on
  /// the lazily created pool.  Slice boundaries never affect results
  /// (segments are independent), only which thread computes them.
  template <typename Fn>
  void parallel_segments(std::size_t count, Fn&& fn);

  /// One Jacobi sweep over segments [begin, end): reads x_, writes next_x_,
  /// returns the slice's max per-metric delta (0 when tol is disabled).
  [[nodiscard]] double sweep_slice(std::size_t begin, std::size_t end, bool track_delta);

  const RelayOptionTable* options_;
  BackboneFn backbone_;
  TomographyConfig config_;
  std::vector<Equation> equations_;
  FlatMap<SegmentEstimate> segments_;
  int last_sweeps_ = 0;

  // Solver scratch, kept across solves so a recurring refresh reuses
  // capacity instead of reallocating every period.  `work_` accumulates the
  // per-segment initialization and assigns the dense segment order; the
  // sweeps themselves run over the dense arrays (no hashing in the inner
  // loop).  `incidence_*` is a CSR index: segment i's equations are
  // incidence_eq_[incidence_off_[i] .. incidence_off_[i+1]), in ascending
  // equation order.
  FlatMap<Work> work_;
  std::vector<std::uint64_t> seg_keys_;
  std::vector<std::array<double, kNumMetrics>> x_;
  std::vector<std::array<double, kNumMetrics>> next_x_;
  std::vector<std::array<double, kNumMetrics>> resid2_;
  std::vector<double> weight_sum_;
  std::vector<std::int64_t> evidence_;
  std::vector<std::uint32_t> incidence_off_;
  std::vector<std::uint32_t> incidence_eq_;
  std::unique_ptr<ThreadPool> pool_;  ///< created on first multi-threaded solve
};

}  // namespace via
