#include "core/policies.h"

#include <algorithm>

namespace via {

// ---------------------------------------------------------- Strawman I

PredictionOnlyPolicy::PredictionOnlyPolicy(const RelayOptionTable& options, BackboneFn backbone,
                                           Metric target, PredictorConfig config)
    : target_(target),
      current_window_(&options),
      trained_window_(&options),
      predictor_(options, std::move(backbone), config) {}

void PredictionOnlyPolicy::refresh(TimeSec /*now*/) {
  std::swap(trained_window_, current_window_);
  current_window_.clear();
  predictor_.train(trained_window_);
}

OptionId PredictionOnlyPolicy::choose(const CallContext& call) {
  OptionId best = RelayOptionTable::direct_id();
  double best_mean = std::numeric_limits<double>::infinity();
  bool any = false;
  for (const OptionId opt : call.options) {
    const Prediction p = predictor_.predict(call.key_src, call.key_dst, opt, target_);
    if (!p.valid) continue;
    any = true;
    if (p.mean < best_mean) {
      best_mean = p.mean;
      best = opt;
    }
  }
  return any ? best : RelayOptionTable::direct_id();
}

void PredictionOnlyPolicy::observe(const Observation& obs) { current_window_.add(obs); }

// ---------------------------------------------------------- Strawman II

ExplorationOnlyPolicy::ExplorationOnlyPolicy(Metric target, double explore_fraction,
                                             std::uint64_t seed)
    : target_(target),
      explore_fraction_(explore_fraction),
      rng_(hash_mix(seed, 0x5717)) {}

void ExplorationOnlyPolicy::refresh(TimeSec /*now*/) {
  // A fresh window: previously measured Q values are considered stale.
  pairs_.clear();
}

OptionId ExplorationOnlyPolicy::choose(const CallContext& call) {
  if (call.options.empty()) return RelayOptionTable::direct_id();
  PairState& state = pairs_[call.pair_key()];

  // Measurement calls: walk the full option space round-robin.
  if (rng_.uniform() < explore_fraction_) {
    const OptionId pick = call.options[state.round_robin % call.options.size()];
    ++state.round_robin;
    return pick;
  }

  // Exploit: best empirical mean among measured options this window.
  OptionId best = RelayOptionTable::direct_id();
  double best_mean = std::numeric_limits<double>::infinity();
  for (const OptionId opt : call.options) {
    const auto it = state.stats.find(opt);
    if (it == state.stats.end() || it->second.count() == 0) continue;
    if (it->second.mean() < best_mean) {
      best_mean = it->second.mean();
      best = opt;
    }
  }
  return best;
}

void ExplorationOnlyPolicy::observe(const Observation& obs) {
  pairs_[as_pair_key(obs.src_as, obs.dst_as)].stats[obs.option].add(obs.perf.get(target_));
}

}  // namespace via
