// The routing-policy interface: what the Via controller (and every baseline
// the paper compares against) implements.
//
// Life cycle, mirroring Figure 10 of the paper:
//   - choose()  — per call (stages 1 & 4: history feedback + bandit pick)
//   - observe() — per call completion; the client pushes its measurements
//   - refresh() — every T hours (stages 2 & 3: tomography + top-k pruning)
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "common/call.h"
#include "common/types.h"

namespace via {

namespace obs {
struct Telemetry;  // obs/telemetry.h: metrics registry + decision trace
}

/// An active-measurement request (paper §7, "Active Measurements"): the
/// controller asks for a mock call between two endpoints over a specific
/// option to fill a coverage hole in its passive history.
struct ProbeRequest {
  AsId src_as = kInvalidAs;
  AsId dst_as = kInvalidAs;
  OptionId option = kInvalidOption;
};

/// A completed-call measurement as pushed to the controller by the clients.
/// `ingress` is the relay the *source* client connected to (clients know
/// their ingress; -1 for direct and bounce options, where no orientation
/// ambiguity exists).
struct Observation {
  CallId id = 0;
  TimeSec time = 0;
  /// Endpoint grouping ids, matching CallContext::key_src/key_dst (AS ids
  /// by default; country/prefix ids under coarser/finer granularity).
  AsId src_as = kInvalidAs;
  AsId dst_as = kInvalidAs;
  OptionId option = 0;
  RelayId ingress = -1;
  PathPerformance perf;
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  RoutingPolicy() = default;
  RoutingPolicy(const RoutingPolicy&) = delete;
  RoutingPolicy& operator=(const RoutingPolicy&) = delete;

  /// Picks a relaying option for a call about to be placed.
  [[nodiscard]] virtual OptionId choose(const CallContext& call) = 0;

  /// Batched variant of choose() for hosts that decode many decision
  /// requests at once (the RPC reactor's per-readiness batches, §6h).
  /// `out` must have the same length as `calls`.  Decisions are identical
  /// to calling choose() once per context in order; the default does
  /// exactly that.  Policies with per-call acquisition costs (snapshot
  /// pins) override it to pay them once per batch.
  virtual void choose_batch(std::span<const CallContext> calls, std::span<OptionId> out) {
    for (std::size_t i = 0; i < calls.size(); ++i) out[i] = choose(calls[i]);
  }

  /// Ingests a completed call's measurements.
  virtual void observe(const Observation& obs) { (void)obs; }

  /// Periodic controller refresh (paper stages 2-3, period T).
  virtual void refresh(TimeSec now) { (void)now; }

  /// Optional split refresh (DESIGN.md §6e): hosts that cannot afford to
  /// stall serving during the periodic model rebuild drive the two phases
  /// separately.  prepare_refresh() harvests the completed window and
  /// builds the next period's model off the serving path — for a
  /// concurrent_safe() policy it may run concurrently with choose()/
  /// observe() (hosts hold their policy lock *shared* for it).
  /// commit_refresh() publishes the prepared model and requires the same
  /// external exclusion as refresh(); when nothing was prepared it must
  /// fall back to a full refresh so the split protocol is always safe to
  /// drive.  The defaults make every policy drivable either way: prepare
  /// is a no-op and commit performs the classic monolithic refresh.
  virtual void prepare_refresh(TimeSec now) { (void)now; }
  virtual void commit_refresh(TimeSec now) { refresh(now); }

  /// Optional (paper §7, hybrid reactive selection): a prioritized set of
  /// options to *race* at call setup; the client briefly tries all of them
  /// and keeps the best.  Default: just the single choice.
  [[nodiscard]] virtual std::vector<OptionId> choose_candidates(const CallContext& call) {
    return {choose(call)};
  }

  /// Optional (paper §7, active measurements): mock calls the controller
  /// would like executed to fill coverage holes.  Called after refresh();
  /// default: none.
  [[nodiscard]] virtual std::vector<ProbeRequest> plan_probes(std::size_t max_probes) {
    (void)max_probes;
    return {};
  }

  /// Optional telemetry hookup: the host (engine run, RPC server, app)
  /// owns the Telemetry; instrumented policies emit per-decision counters
  /// and DecisionTrace events into it.  nullptr detaches.  Policies without
  /// instrumentation ignore the call; behavior must not depend on it.
  virtual void attach_telemetry(obs::Telemetry* telemetry) { (void)telemetry; }

  /// Thread-safety capability.  When true, choose()/observe()/
  /// choose_candidates()/plan_probes() may be called concurrently from many
  /// threads; refresh() and attach_telemetry() still require external
  /// exclusion against everything else (hosts typically hold a shared lock
  /// for the former group and an exclusive lock for the latter — see
  /// rpc::ControllerServer).  The default is false: the host must serialize
  /// every call into the policy, which is always correct.
  [[nodiscard]] virtual bool concurrent_safe() const noexcept { return false; }

  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace via
