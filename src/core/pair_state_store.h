// The mutable half of the Via controller (paper stages 1 & 4): everything a
// per-call decision *writes* — bandit arms, the epsilon RNG, decision
// statistics, the relay budget, and per-relay load accounting.
//
// Per-pair state (the UCB bandit, re-armed from the published ModelSnapshot
// when its period changes) lives in lock stripes selected by the hashed
// pair key, so decisions for unrelated pairs proceed concurrently.  Each
// stripe also owns its own RNG stream, seeded off the policy seed and the
// stripe index: stripe 0's stream is seeded exactly like the historical
// single-stream implementation, so a store configured with ONE stripe (the
// default, what simulation replays use) reproduces pre-split results bit
// for bit, while the RPC server configures many stripes for concurrency.
//
// Global accounting is tiered by cost:
//   - decision stats: relaxed atomics, always.
//   - budget gate: unlimited budget (the default) touches only relaxed
//     atomics; a constrained budget wraps the exact BudgetFilter (P2
//     quantile + token bucket) in a dedicated mutex, preserving its
//     sequential semantics bit for bit.
//   - relay-share cap: disabled (cap >= 1) costs nothing; enabled, the
//     check-then-account runs under a dedicated mutex so the cap invariant
//     is never violated by a lost update.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/relay_option.h"
#include "core/bandit.h"
#include "core/budget.h"
#include "util/cacheline.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace via {

/// One pair's mutable serving state.  `period` is the snapshot period the
/// bandit was last armed for; a newer published snapshot re-arms lazily.
struct PairServingState {
  std::uint64_t period = ~0ULL;
  UcbBandit bandit;
  /// Pre-warm context (ViaConfig::prewarm_pairs): endpoints and candidate
  /// set of the call that last re-armed this pair, captured once per
  /// period under the stripe lock so prepare_refresh() can rebuild the
  /// pair's memo in the next snapshot before it is published.  Left empty
  /// when pre-warming is off — replays pay nothing.
  AsId src_as = kInvalidAs;
  AsId dst_as = kInvalidAs;
  AsId key_src = kInvalidAs;
  AsId key_dst = kInvalidAs;
  std::vector<OptionId> options;
};

/// Decision accounting (the concurrent mirror of ViaPolicy::Stats;
/// ViaPolicy::stats() flattens it into the plain struct).  Every serving
/// thread bumps `calls` and a handful of outcome counters per decision, so
/// these are ShardedCounters: single relaxed atomics here put all eleven
/// hot words on two shared cache lines and showed up as the 4/8-thread
/// throughput decline in BENCH_core.json.
struct ServingStats {
  ShardedCounter calls;
  ShardedCounter epsilon_explored;
  ShardedCounter bandit_served;
  ShardedCounter cold_start_direct;
  ShardedCounter budget_denied;
  ShardedCounter relay_cap_denied;
  ShardedCounter quarantine_rerouted;
  ShardedCounter outage_fallback_direct;
  ShardedCounter chose_direct;
  ShardedCounter chose_bounce;
  ShardedCounter chose_transit;
};

class PairStateStore {
 public:
  /// `stripes` is clamped to a power of two in [1, 64].
  PairStateStore(std::uint64_t seed, std::size_t stripes, const BudgetConfig& budget,
                 double relay_share_cap);

  PairStateStore(const PairStateStore&) = delete;
  PairStateStore& operator=(const PairStateStore&) = delete;

  /// Padded to the destructive-interference size: stripes live in one
  /// contiguous array, and without the alignment two adjacent stripes'
  /// mutexes share a cache line, so unrelated pairs contend anyway.
  struct alignas(kDestructiveInterferenceSize) Stripe {
    std::mutex mutex;
    FlatMap<PairServingState> pairs;  ///< guarded by mutex
    Rng rng{0};                       ///< guarded by mutex (epsilon draws)
  };

  [[nodiscard]] Stripe& stripe(std::uint64_t pair_key) noexcept {
    return stripes_[stripe_index(pair_key)];
  }
  /// Direct stripe access for whole-store walks (the refresh pipeline's
  /// pre-warm harvest); callers lock each stripe's mutex themselves.
  [[nodiscard]] Stripe& stripe_at(std::size_t i) noexcept { return stripes_[i]; }
  [[nodiscard]] std::size_t stripe_count() const noexcept { return stripe_count_; }

  // ------------------------------------------------- budget gate (§4.6)
  /// Once per call, before allow_relay (mirrors BudgetFilter::on_call).
  void budget_on_call(double predicted_benefit);
  /// Whether a relay may be granted, consuming a token when it is.
  [[nodiscard]] bool budget_allow_relay(double predicted_benefit);

  // ------------------------------------------------- per-relay load cap
  /// Whether the relay-share cap permits routing another call via `option`;
  /// accounts the call's load when it does.  Exact under concurrency: the
  /// check and the account are one critical section.
  [[nodiscard]] bool relay_cap_allows(const RelayOption& option);

  // ------------------------------------------------- memory bounds (§6i)
  // Both eviction passes run from the policy's refresh commit, which the
  // host already serializes against serving (policy.h's exclusion
  // contract), so they see a quiescent store.  Both are deterministic at
  // any stripe count: eviction is decided by (armed period, pair key)
  // alone — per-entry state independent of stripe layout, insertion
  // interleaving, and hash order.

  /// Drops pairs whose bandit was last armed `ttl_periods` or more periods
  /// before `current_period` (0 = disabled).  Never-armed placeholder
  /// entries are kept.  Returns the evicted count.
  std::int64_t evict_stale(std::uint64_t current_period, std::uint64_t ttl_periods);

  /// Evicts oldest-armed pairs first (ties by pair key) until at most
  /// `max_pairs` remain (0 = unbounded).  Returns the evicted count.
  std::int64_t enforce_resident_cap(std::size_t max_pairs);

  [[nodiscard]] std::size_t resident_pairs();
  /// Resident bytes: stripe tables, per-pair bandit arms and pre-warm
  /// option vectors, and the relay-load table.
  [[nodiscard]] std::size_t approx_bytes();
  [[nodiscard]] std::int64_t evicted_total() const noexcept { return evicted_total_; }

  ServingStats stats;

 private:
  [[nodiscard]] std::size_t stripe_index(std::uint64_t pair_key) const noexcept {
    // High hash bits, like ShardedMap: FlatMap probes on the low bits.
    return static_cast<std::size_t>(splitmix64(pair_key) >> 58) & (stripe_count_ - 1);
  }

  std::size_t stripe_count_;
  std::unique_ptr<Stripe[]> stripes_;

  BudgetConfig budget_config_;
  std::mutex budget_mutex_;
  BudgetFilter budget_;  ///< guarded by budget_mutex_ (constrained path only)
  ShardedCounter budget_calls_;    ///< unlimited fast path
  ShardedCounter budget_granted_;  ///< unlimited fast path

  double relay_share_cap_;
  std::mutex relay_mutex_;
  FlatMap<std::int64_t> relay_load_;  ///< keyed by RelayId; guarded by relay_mutex_
  std::int64_t relayed_total_ = 0;    ///< guarded by relay_mutex_

  std::int64_t evicted_total_ = 0;  ///< written only by the refresh thread
};

}  // namespace via
