#include "core/topk.h"

#include <algorithm>

namespace via {

std::vector<RankedOption> select_top_k(const Predictor& predictor, AsId s, AsId d,
                                       std::span<const OptionId> candidates, Metric metric,
                                       const TopKConfig& config, TopKCoverage* coverage) {
  std::vector<RankedOption> ranked;
  ranked.reserve(candidates.size());
  for (const OptionId opt : candidates) {
    RankedOption r;
    r.option = opt;
    r.pred = predictor.predict(s, d, opt, metric);
    if (r.pred.valid) ranked.push_back(r);
  }
  if (coverage != nullptr) {
    coverage->considered += static_cast<std::int64_t>(candidates.size());
    coverage->predictable += static_cast<std::int64_t>(ranked.size());
  }
  if (ranked.empty()) return ranked;

  if (!config.dynamic) {
    // Fixed-k ablation: simply the k best predicted means.
    std::sort(ranked.begin(), ranked.end(), [](const RankedOption& a, const RankedOption& b) {
      return a.pred.mean < b.pred.mean;
    });
    if (static_cast<int>(ranked.size()) > config.fixed_k) {
      ranked.resize(static_cast<std::size_t>(config.fixed_k));
    }
    return ranked;
  }

  // Dynamic top-k: grow from the option with the smallest upper bound; any
  // option whose lower bound does not exceed the current included maximum
  // upper bound cannot be ruled out and must be included.
  std::sort(ranked.begin(), ranked.end(), [](const RankedOption& a, const RankedOption& b) {
    return a.pred.lower < b.pred.lower;
  });

  const auto seed = std::min_element(
      ranked.begin(), ranked.end(), [](const RankedOption& a, const RankedOption& b) {
        return a.pred.upper < b.pred.upper;
      });
  double threshold = seed->pred.upper;

  std::vector<RankedOption> top;
  std::vector<bool> taken(ranked.size(), false);
  taken[static_cast<std::size_t>(seed - ranked.begin())] = true;
  top.push_back(*seed);

  // Fixpoint growth.  ranked is sorted by lower bound, so a single forward
  // scan per round suffices; rounds repeat while the threshold grows.
  bool grew = true;
  while (grew && static_cast<int>(top.size()) < config.max_k) {
    grew = false;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (taken[i]) continue;
      if (ranked[i].pred.lower <= threshold) {
        taken[i] = true;
        top.push_back(ranked[i]);
        threshold = std::max(threshold, ranked[i].pred.upper);
        grew = true;
        if (static_cast<int>(top.size()) >= config.max_k) break;
      }
    }
  }

  std::sort(top.begin(), top.end(), [](const RankedOption& a, const RankedOption& b) {
    return a.pred.mean < b.pred.mean;
  });
  return top;
}

}  // namespace via
