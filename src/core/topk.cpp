#include "core/topk.h"

#include <algorithm>
#include <cassert>

#include "core/predictor.h"

namespace via {

void select_top_k_into(std::span<const OptionId> candidates, std::span<const Prediction> preds,
                       const TopKConfig& config, TopKCoverage* coverage, TopKScratch& scratch,
                       std::vector<RankedOption>& out) {
  assert(candidates.size() == preds.size());
  out.clear();

  std::vector<RankedOption>& ranked = scratch.ranked;
  ranked.clear();
  ranked.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (preds[i].valid) ranked.push_back({candidates[i], preds[i]});
  }
  if (coverage != nullptr) {
    coverage->considered += static_cast<std::int64_t>(candidates.size());
    coverage->predictable += static_cast<std::int64_t>(ranked.size());
  }
  if (ranked.empty()) return;

  if (!config.dynamic) {
    // Fixed-k ablation: simply the k best predicted means.
    std::sort(ranked.begin(), ranked.end(), [](const RankedOption& a, const RankedOption& b) {
      return a.pred.mean < b.pred.mean;
    });
    const std::size_t k =
        std::min(ranked.size(), static_cast<std::size_t>(std::max(0, config.fixed_k)));
    out.assign(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(k));
    return;
  }

  // Dynamic top-k: grow from the option with the smallest upper bound; any
  // option whose lower bound does not exceed the current included maximum
  // upper bound cannot be ruled out and must be included.
  std::sort(ranked.begin(), ranked.end(), [](const RankedOption& a, const RankedOption& b) {
    return a.pred.lower < b.pred.lower;
  });

  const auto seed = std::min_element(
      ranked.begin(), ranked.end(), [](const RankedOption& a, const RankedOption& b) {
        return a.pred.upper < b.pred.upper;
      });
  double threshold = seed->pred.upper;

  std::vector<char>& taken = scratch.taken;
  taken.assign(ranked.size(), 0);
  taken[static_cast<std::size_t>(seed - ranked.begin())] = 1;
  out.push_back(*seed);

  // Fixpoint growth.  ranked is sorted by lower bound, so a single forward
  // scan per round suffices; rounds repeat while the threshold grows.
  bool grew = true;
  while (grew && static_cast<int>(out.size()) < config.max_k) {
    grew = false;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (taken[i] != 0) continue;
      if (ranked[i].pred.lower <= threshold) {
        taken[i] = 1;
        out.push_back(ranked[i]);
        threshold = std::max(threshold, ranked[i].pred.upper);
        grew = true;
        if (static_cast<int>(out.size()) >= config.max_k) break;
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const RankedOption& a, const RankedOption& b) {
    return a.pred.mean < b.pred.mean;
  });
}

std::vector<RankedOption> select_top_k(const Predictor& predictor, AsId s, AsId d,
                                       std::span<const OptionId> candidates, Metric metric,
                                       const TopKConfig& config, TopKCoverage* coverage) {
  std::vector<Prediction> preds;
  predictor.predict_into(s, d, candidates, metric, preds);
  TopKScratch scratch;
  std::vector<RankedOption> out;
  select_top_k_into(candidates, preds, config, coverage, scratch, out);
  return out;
}

}  // namespace via
