// The read-only half of the Via controller (paper stages 2-3): everything a
// refresh period produces and per-call serving only *reads*.
//
// A ModelSnapshot owns the completed history window, the predictor trained
// on it (empirical + tomography), and the per-AS-pair products derived from
// the predictor — top-k candidate sets and predicted relaying benefits.
// Snapshots are immutable once published: `refresh()` builds a fresh one
// and swaps it into an `std::atomic<std::shared_ptr<const ModelSnapshot>>`
// RCU-style, so decision threads keep serving off the old model until they
// naturally pick up the new pointer, and never block on a refresh.
//
// The per-pair products cannot be enumerated eagerly at refresh time — the
// candidate option set for a pair arrives with the first call that names it
// — so they are memoized lazily in a ShardedMap.  That stays logically
// immutable by the same argument as the ground-truth caches (DESIGN.md §6c):
// each entry is a pure function of (snapshot, pair, candidate set), so a
// concurrent duplicate build computes identical bits and a lost insert race
// is harmless.  Spans handed out over a cached top-k vector stay valid for
// the snapshot's lifetime because entries are never erased or mutated after
// publication.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/call.h"
#include "common/relay_option.h"
#include "core/history.h"
#include "core/predictor.h"
#include "core/topk.h"
#include "util/sharded_map.h"

namespace via {

class ThreadPool;

/// Hook fired exactly once per (pair, snapshot) when a lazy per-pair model
/// is built: the *mutable* side effects of a build — the active-measurement
/// probe wishlist and telemetry tallies — belong to the policy, not to the
/// immutable snapshot.  Under a concurrent duplicate build only the thread
/// whose insert wins fires the hook, so effects stay once-per-pair-period.
class PairBuildObserver {
 public:
  virtual ~PairBuildObserver() = default;

  /// `preds[i]` is the prediction for `call.options[i]`; `top_k` is the
  /// selected candidate set; `coverage` the considered/predictable tally.
  virtual void on_pair_built(const CallContext& call, std::span<const Prediction> preds,
                             std::span<const RankedOption> top_k,
                             const TopKCoverage& coverage) = 0;
};

class ModelSnapshot {
 public:
  /// One pair's slice of the model.  The span points into snapshot-owned
  /// storage and stays valid for the snapshot's lifetime.
  struct PairView {
    std::span<const RankedOption> top_k;
    /// Predicted benefit of relaying: direct prediction minus the best
    /// candidate's prediction (0 when either side is unknown).
    double predicted_benefit = 0.0;
  };

  /// The cold controller's period-0 snapshot: untrained predictor, so every
  /// pair model comes out empty and calls fall back to the direct path.
  ModelSnapshot(const RelayOptionTable& options, BackboneFn backbone, Metric target,
                const PredictorConfig& predictor_config, const TopKConfig& topk_config);

  /// A refresh's product: takes ownership of the completed window and
  /// trains the predictor on it (history + tomography).
  ModelSnapshot(const RelayOptionTable& options, BackboneFn backbone, Metric target,
                const PredictorConfig& predictor_config, const TopKConfig& topk_config,
                std::uint64_t period, HistoryWindow&& window);

  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  /// The pair's model, memoized on first touch (see file comment for why
  /// lazy fill keeps the snapshot logically immutable).  `observer` (may be
  /// null) fires only when this call actually built the entry.
  [[nodiscard]] PairView pair_model(const CallContext& call, PairBuildObserver* observer) const;

  /// Eagerly builds the per-pair memos for `calls` (DESIGN.md §6e): the
  /// refresh pipeline pre-warms the pairs that carried traffic last period
  /// so the first post-publication call per pair hits the warm path
  /// instead of paying the cold predict/top-k build.  Fans the builds out
  /// over `pool` when given (nullptr = inline); safe because each entry is
  /// a pure function of (snapshot, pair, candidate set), so the values are
  /// identical to what lazy first-call fill would have produced.
  void prewarm(std::span<const CallContext> calls, PairBuildObserver* observer,
               ThreadPool* pool) const;

  /// Federation (§6k): folds peer-replica segment estimates into this
  /// snapshot's predictor.  Part of *building* a snapshot (like
  /// set_memo_budget): only valid before publication, and before any
  /// pair-model memo is built from the predictor.
  std::size_t fold_peer_segments(std::vector<PeerSegment> peers) {
    return predictor_.fold_peer_segments(std::move(peers));
  }

  [[nodiscard]] std::uint64_t period() const noexcept { return period_; }
  [[nodiscard]] const Predictor& predictor() const noexcept { return predictor_; }
  [[nodiscard]] const HistoryWindow& window() const noexcept { return window_; }
  /// Pair models built so far (diagnostics/tests).
  [[nodiscard]] std::size_t pair_models_built() const { return pair_models_.size(); }

  /// Caps memoized per-pair models; 0 (default) = unbounded.  Set before
  /// the snapshot is published (it is part of building, not serving).  Once
  /// `budget` pairs are resident, further cold pairs are served from
  /// thread-local scratch instead of being inserted: correct bits, no
  /// growth, but rebuilt on every touch and — like a lost insert race —
  /// no observer fire.  A scratch-served PairView's span is valid only
  /// until the same thread's next overflow build; budgeted callers use the
  /// view within the call (all in-tree callers do).
  void set_memo_budget(std::size_t budget) noexcept { memo_budget_ = budget; }
  [[nodiscard]] std::size_t memo_budget() const noexcept { return memo_budget_; }
  /// Cold builds served from scratch because the budget was exhausted.
  [[nodiscard]] std::int64_t memo_overflow_builds() const noexcept {
    return memo_overflow_.load(std::memory_order_relaxed);
  }

  /// Resident bytes of the full snapshot: window + predictor (tomography)
  /// + per-pair memo table including the memoized top-k vectors.
  [[nodiscard]] std::size_t approx_bytes() const;

 private:
  struct PairModel {
    std::vector<RankedOption> top_k;
    double predicted_benefit = 0.0;
  };

  /// Predict + top-k build for one cold pair (pure function of snapshot
  /// and candidate set).  `preds`/`coverage` are outputs for the observer.
  void build_pair_model(const CallContext& call, std::vector<Prediction>& preds,
                        TopKCoverage& coverage, PairModel& out) const;

  const RelayOptionTable* options_;
  Metric target_;
  TopKConfig topk_;
  std::uint64_t period_ = 0;
  HistoryWindow window_;
  Predictor predictor_;
  mutable ShardedMap<PairModel> pair_models_;
  std::size_t memo_budget_ = 0;
  /// Approximate resident-entry count (bumped on winning inserts only);
  /// avoids the 16-shard size() walk on the per-call budget check.
  mutable std::atomic<std::size_t> memo_count_{0};
  mutable std::atomic<std::int64_t> memo_overflow_{0};
};

}  // namespace via
