#include "core/relay_health.h"

#include <algorithm>

namespace via {

RelayHealthTracker::RelayHealthTracker(RelayHealthConfig config, std::size_t capacity)
    : config_(config), capacity_(capacity), entries_(new Entry[capacity]) {}

bool RelayHealthTracker::option_blocked(const RelayOption& option, TimeSec now) const noexcept {
  switch (option.kind) {
    case RelayKind::Direct:
      return false;
    case RelayKind::Bounce:
      return !allows(option.a, now);
    case RelayKind::Transit:
      return !allows(option.a, now) || !allows(option.b, now);
  }
  return false;
}

RelayHealthTracker::Transition RelayHealthTracker::record(const RelayOption& option,
                                                          bool failed, TimeSec now) {
  Transition out;
  auto merge = [&out](Transition t) {
    out.entered_quarantine |= t.entered_quarantine;
    out.readmitted |= t.readmitted;
  };
  switch (option.kind) {
    case RelayKind::Direct:
      break;  // the default path has no relay to track
    case RelayKind::Bounce:
      merge(record_one(option.a, failed, now));
      break;
    case RelayKind::Transit:
      merge(record_one(option.a, failed, now));
      merge(record_one(option.b, failed, now));
      break;
  }
  return out;
}

RelayHealthTracker::Transition RelayHealthTracker::record_one(RelayId relay, bool failed,
                                                              TimeSec now) {
  Transition transition;
  if (relay < 0 || static_cast<std::size_t>(relay) >= capacity_) return transition;
  Entry& e = entries_[static_cast<std::size_t>(relay)];
  const std::lock_guard lock(e.mutex);
  e.seen = true;

  // A quarantine block that has expired flips to probation on the next
  // observed call: the relay is being *tried*, not trusted.
  if (e.state == State::Quarantined &&
      now >= e.blocked_until.load(std::memory_order_relaxed)) {
    e.state = State::Probation;
    e.probation_successes = 0;
  }

  auto enter_quarantine = [&] {
    // Block doubles per relapse, clamped so a flapping relay is retried
    // within bounded time rather than exiled forever.
    const int shift = std::min(e.relapse_count, config_.escalation_cap);
    const TimeSec block = config_.quarantine_period * (TimeSec{1} << shift);
    if (e.state == State::Healthy || e.state == State::Degraded) {
      blocked_hint_.fetch_add(1, std::memory_order_relaxed);
    }
    e.state = State::Quarantined;
    e.blocked_until.store(now + block, std::memory_order_relaxed);
    e.relapse_count++;
    e.probation_successes = 0;
    quarantine_events_.fetch_add(1, std::memory_order_relaxed);
    transition.entered_quarantine = true;
  };

  if (failed) {
    e.consecutive_failures++;
    if (e.state == State::Probation) {
      enter_quarantine();  // one strike on probation: escalated re-block
    } else if (e.state != State::Quarantined &&
               e.consecutive_failures >= config_.quarantine_after) {
      enter_quarantine();
    } else if (e.state == State::Healthy &&
               e.consecutive_failures >= config_.degrade_after) {
      e.state = State::Degraded;
    }
    return transition;
  }

  // Success.
  if (e.state == State::Probation) {
    if (++e.probation_successes >= config_.probation_successes) {
      e.state = State::Healthy;
      e.consecutive_failures = 0;
      e.relapse_count = 0;
      e.blocked_until.store(kNeverBlocked, std::memory_order_relaxed);
      blocked_hint_.fetch_sub(1, std::memory_order_relaxed);
      readmissions_.fetch_add(1, std::memory_order_relaxed);
      transition.readmitted = true;
    }
  } else if (e.state != State::Quarantined) {
    e.consecutive_failures = 0;
    if (e.state == State::Degraded) e.state = State::Healthy;
  }
  return transition;
}

RelayHealthTracker::Counts RelayHealthTracker::counts(TimeSec now) const {
  Counts c;
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Entry& e = entries_[i];
    const std::lock_guard lock(e.mutex);
    if (!e.seen) continue;
    switch (e.state) {
      case State::Healthy:
        c.healthy++;
        break;
      case State::Degraded:
        c.degraded++;
        break;
      case State::Quarantined:
        // An expired block is probation-in-waiting, not an active outage.
        if (now < e.blocked_until.load(std::memory_order_relaxed)) {
          c.quarantined++;
        } else {
          c.probation++;
        }
        break;
      case State::Probation:
        c.probation++;
        break;
    }
  }
  return c;
}

RelayHealthTracker::State RelayHealthTracker::state_of(RelayId relay) const {
  if (relay < 0 || static_cast<std::size_t>(relay) >= capacity_) return State::Healthy;
  const Entry& e = entries_[static_cast<std::size_t>(relay)];
  const std::lock_guard lock(e.mutex);
  return e.state;
}

}  // namespace via
