#include "core/predictor.h"

#include <algorithm>
#include <cmath>

#include "common/linearize.h"

namespace via {

namespace {
constexpr double kZ95 = 1.96;
}

Predictor::Predictor(const RelayOptionTable& options, BackboneFn backbone,
                     PredictorConfig config)
    : options_(&options),
      config_(config),
      tomography_(options, std::move(backbone), config.tomography) {}

void Predictor::train(const HistoryWindow& window) {
  window_ = &window;
  if (config_.use_tomography) {
    tomography_.solve(window);
  }
}

Prediction Predictor::predict(AsId s, AsId d, OptionId option, Metric metric) const {
  return predict_with_key(as_pair_key(s, d), s, d, option, metric);
}

void Predictor::predict_into(AsId s, AsId d, std::span<const OptionId> options, Metric metric,
                             std::vector<Prediction>& out) const {
  out.clear();
  out.reserve(options.size());
  const std::uint64_t pair_key = as_pair_key(s, d);
  for (const OptionId option : options) {
    out.push_back(predict_with_key(pair_key, s, d, option, metric));
  }
}

Prediction Predictor::predict_with_key(std::uint64_t pair_key, AsId s, AsId d, OptionId option,
                                       Metric metric) const {
  Prediction out;
  if (window_ == nullptr) return out;

  // 1. Empirical path history.
  if (const PathAggregate* agg = window_->find(pair_key, option);
      agg != nullptr && agg->count() >= config_.min_empirical_samples) {
    const std::size_t i = metric_index(metric);
    out.valid = true;
    out.source = Prediction::Source::Empirical;
    out.mean = agg->raw_mean[i];
    out.sem = agg->raw_sem(i);
    out.lower = std::max(0.0, out.mean - kZ95 * out.sem);
    out.upper = out.mean + kZ95 * out.sem;
    return out;
  }

  // 2. Tomography stitching for relayed paths.
  if (config_.use_tomography && options_->get(option).kind != RelayKind::Direct) {
    std::array<double, kNumMetrics> lin_mean{};
    std::array<double, kNumMetrics> lin_sem{};
    if (tomography_.predict_lin(s, d, option, lin_mean, lin_sem)) {
      const std::size_t i = metric_index(metric);
      out.valid = true;
      out.source = Prediction::Source::Tomography;
      out.mean = delinearize(metric, lin_mean[i]);
      out.lower = delinearize(metric, std::max(0.0, lin_mean[i] - kZ95 * lin_sem[i]));
      out.upper = delinearize(metric, lin_mean[i] + kZ95 * lin_sem[i]);
      // Back out an approximate raw-space SEM from the CI width.
      out.sem = (out.upper - out.lower) / (2.0 * kZ95);
      return out;
    }
  }

  return out;
}

}  // namespace via
