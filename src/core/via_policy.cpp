#include "core/via_policy.h"

#include <algorithm>
#include <limits>

#include "obs/telemetry.h"

namespace via {

void ViaPolicy::attach_telemetry(obs::Telemetry* telemetry) {
  inst_ = Instruments{};
  if (telemetry == nullptr) return;
  obs::MetricsRegistry& r = telemetry->registry;
  inst_.trace = &telemetry->decisions;
  inst_.ring = telemetry->decisions.enabled();
  inst_.ucb = &r.counter("policy.decision.ucb");
  inst_.epsilon_explore = &r.counter("policy.decision.epsilon_explore");
  inst_.budget_veto = &r.counter("policy.decision.budget_veto");
  inst_.fallback_direct = &r.counter("policy.decision.fallback_direct");
  inst_.choice_direct = &r.counter("policy.choice.direct");
  inst_.choice_bounce = &r.counter("policy.choice.bounce");
  inst_.choice_transit = &r.counter("policy.choice.transit");
  inst_.refreshes = &r.counter("policy.refresh.count");
  inst_.predict_considered = &r.counter("policy.predict.considered");
  inst_.predict_valid = &r.counter("policy.predict.valid");
  inst_.tomography_segments = &r.gauge("policy.refresh.tomography_segments");
  const std::vector<double> topk_bounds = obs::LatencyHistogram::linear_bounds(0.0, 1.0, 11);
  inst_.topk_size = &r.histogram("policy.topk.size", topk_bounds);
}

void ViaPolicy::trace_decision(const CallContext& call, OptionId option,
                               obs::DecisionReason reason, const PairState& state) {
  if (inst_.trace == nullptr) return;
  switch (reason) {
    case obs::DecisionReason::Ucb:
      inst_.ucb->inc();
      break;
    case obs::DecisionReason::EpsilonExplore:
      inst_.epsilon_explore->inc();
      break;
    case obs::DecisionReason::BudgetVeto:
      inst_.budget_veto->inc();
      break;
    case obs::DecisionReason::FallbackDirect:
      inst_.fallback_direct->inc();
      break;
    case obs::DecisionReason::BackgroundRelay:
      break;  // engine-tagged, never emitted by the policy
  }
  // Reason counters above are cheap relaxed atomics and always tallied;
  // building and recording the full event only pays off when the ring can
  // actually retain it.
  if (!inst_.ring) return;
  obs::DecisionEvent event;
  event.call_id = call.id;
  event.time = call.time;
  event.src_as = call.src_as;
  event.dst_as = call.dst_as;
  event.option = option;
  event.reason = reason;
  event.top_k_size = static_cast<std::int32_t>(state.top_k.size());
  event.bandit_pulls = state.bandit.total_plays();
  for (const RankedOption& r : state.top_k) {
    if (r.option == option) {
      event.predicted = r.pred.mean;
      break;
    }
  }
  inst_.trace->record(event);
}

ViaPolicy::ViaPolicy(const RelayOptionTable& options, BackboneFn backbone, ViaConfig config)
    : options_(&options),
      config_(config),
      current_window_(&options),
      trained_window_(&options),
      predictor_(options, std::move(backbone), config.predictor),
      budget_(config.budget),
      rng_(hash_mix(config.seed, 0x1a)) {}

void ViaPolicy::refresh(TimeSec /*now*/) {
  // The window that just completed becomes the training window; per-pair
  // states are invalidated lazily by bumping the period counter.
  std::swap(trained_window_, current_window_);
  current_window_.clear();
  predictor_.train(trained_window_);
  ++period_;
  if (inst_.refreshes != nullptr) {
    inst_.refreshes->inc();
    inst_.tomography_segments->set(static_cast<double>(predictor_.tomography().segment_count()));
  }
}

ViaPolicy::PairState& ViaPolicy::pair_state(const CallContext& call) {
  PairState& state = pairs_[call.pair_key()];
  if (state.period == period_) return state;

  const bool adjacent_period = (state.period + 1 == period_);
  state.period = period_;

  // One predictor probe per candidate; every consumer below reads the batch.
  predictor_.predict_into(call.key_src, call.key_dst, call.options, config_.target,
                          scratch_preds_);

  TopKCoverage coverage;
  select_top_k_into(call.options, scratch_preds_, config_.topk,
                    inst_.trace != nullptr ? &coverage : nullptr, topk_scratch_,
                    state.top_k);
  if (inst_.trace != nullptr) {
    inst_.predict_considered->inc(coverage.considered);
    inst_.predict_valid->inc(coverage.predictable);
    inst_.topk_size->observe(static_cast<double>(state.top_k.size()));
  }
  // Surviving arms keep decayed statistics from the previous period.
  state.bandit.set_arms(state.top_k, config_.bandit,
                        adjacent_period ? &state.bandit : nullptr);

  // Predicted benefit of relaying: direct prediction minus the best
  // candidate's prediction (0 when either side is unknown).
  state.predicted_benefit = 0.0;
  Prediction direct;
  for (std::size_t i = 0; i < call.options.size(); ++i) {
    if (call.options[i] == RelayOptionTable::direct_id()) {
      direct = scratch_preds_[i];
      break;
    }
  }
  if (direct.valid && !state.top_k.empty()) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& r : state.top_k) best = std::min(best, r.pred.mean);
    state.predicted_benefit = direct.mean - best;
  }

  // Active-measurement wishlist (§7): candidate options this pair cannot
  // predict are coverage holes worth probing.
  if (probe_wishlist_.size() < config_.probe_wishlist_capacity) {
    for (std::size_t i = 0; i < call.options.size(); ++i) {
      const OptionId opt = call.options[i];
      if (opt == RelayOptionTable::direct_id()) continue;
      if (scratch_preds_[i].valid) continue;  // predictable => not a hole
      probe_wishlist_.push_back({call.src_as, call.dst_as, opt});
      if (probe_wishlist_.size() >= config_.probe_wishlist_capacity) break;
    }
  }
  return state;
}

std::vector<ProbeRequest> ViaPolicy::plan_probes(std::size_t max_probes) {
  std::vector<ProbeRequest> out;
  const std::size_t n = std::min(max_probes, probe_wishlist_.size());
  out.assign(probe_wishlist_.end() - static_cast<std::ptrdiff_t>(n), probe_wishlist_.end());
  probe_wishlist_.clear();
  return out;
}

bool ViaPolicy::relay_cap_allows(OptionId option) {
  if (config_.relay_share_cap >= 1.0) return true;
  const RelayOption& o = options_->get(option);
  if (o.kind == RelayKind::Direct) return true;
  const auto key_a = static_cast<std::uint64_t>(static_cast<std::uint32_t>(o.a));
  const auto key_b = static_cast<std::uint64_t>(static_cast<std::uint32_t>(o.b));
  // A short warm-up so the first few calls are not all rejected.
  if (relayed_total_ >= 20) {
    const double cap = config_.relay_share_cap * static_cast<double>(relayed_total_);
    if (static_cast<double>(relay_load_[key_a]) >= cap) return false;
    if (o.kind == RelayKind::Transit &&
        static_cast<double>(relay_load_[key_b]) >= cap) {
      return false;
    }
  }
  ++relay_load_[key_a];
  if (o.kind == RelayKind::Transit) ++relay_load_[key_b];
  ++relayed_total_;
  return true;
}

std::vector<RankedOption> ViaPolicy::top_k_for(const CallContext& call) {
  return pair_state(call).top_k;
}

void ViaPolicy::count_choice(OptionId option) {
  switch (options_->get(option).kind) {
    case RelayKind::Direct:
      ++stats_.chose_direct;
      if (inst_.choice_direct != nullptr) inst_.choice_direct->inc();
      break;
    case RelayKind::Bounce:
      ++stats_.chose_bounce;
      if (inst_.choice_bounce != nullptr) inst_.choice_bounce->inc();
      break;
    case RelayKind::Transit:
      ++stats_.chose_transit;
      if (inst_.choice_transit != nullptr) inst_.choice_transit->inc();
      break;
  }
}

OptionId ViaPolicy::choose(const CallContext& call) {
  ++stats_.calls;
  PairState& state = pair_state(call);
  budget_.on_call(state.predicted_benefit);

  const OptionId direct = RelayOptionTable::direct_id();

  // Stage 4b: ε general exploration over *all* candidate options, keeping
  // the pruning honest under non-stationary performance.  Exploration
  // calls bypass the benefit threshold but still consume budget tokens.
  if (!call.options.empty() && rng_.uniform() < config_.epsilon) {
    const OptionId pick =
        call.options[static_cast<std::size_t>(rng_.uniform_index(call.options.size()))];
    if (pick == direct || (budget_.allow_relay(std::numeric_limits<double>::infinity()) &&
                           relay_cap_allows(pick))) {
      ++stats_.epsilon_explored;
      count_choice(pick);
      trace_decision(call, pick, obs::DecisionReason::EpsilonExplore, state);
      return pick;
    }
    ++stats_.budget_denied;
    count_choice(direct);
    trace_decision(call, direct, obs::DecisionReason::BudgetVeto, state);
    return direct;
  }

  // Stage 4a: modified-UCB1 over the top-k candidates.
  const OptionId pick = state.bandit.pick();
  if (pick == kInvalidOption) {
    // Cold start: no predictable candidate yet.
    ++stats_.cold_start_direct;
    count_choice(direct);
    trace_decision(call, direct, obs::DecisionReason::FallbackDirect, state);
    return direct;
  }
  if (pick != direct) {
    if (!budget_.allow_relay(state.predicted_benefit)) {
      ++stats_.budget_denied;
      count_choice(direct);
      trace_decision(call, direct, obs::DecisionReason::BudgetVeto, state);
      return direct;
    }
    if (!relay_cap_allows(pick)) {
      ++stats_.relay_cap_denied;
      count_choice(direct);
      trace_decision(call, direct, obs::DecisionReason::BudgetVeto, state);
      return direct;
    }
  }
  ++stats_.bandit_served;
  count_choice(pick);
  trace_decision(call, pick, obs::DecisionReason::Ucb, state);
  return pick;
}

void ViaPolicy::observe(const Observation& obs) {
  current_window_.add(obs);
  if (inst_.ring) {
    inst_.trace->fill_observed(obs.id, obs.perf.get(config_.target));
  }
  PairState* state = pairs_.find(as_pair_key(obs.src_as, obs.dst_as));
  if (state != nullptr && state->period == period_) {
    state->bandit.observe(obs.option, obs.perf.get(config_.target));
  }
}

}  // namespace via
