#include "core/via_policy.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "util/thread_pool.h"

namespace via {

void ViaPolicy::set_peer_segment_source(PeerSegmentSource source) {
  const std::lock_guard lock(prepare_mutex_);
  peer_segment_source_ = std::move(source);
}

void ViaPolicy::attach_telemetry(obs::Telemetry* telemetry) {
  inst_ = Instruments{};
  if (telemetry == nullptr) return;
  obs::MetricsRegistry& r = telemetry->registry;
  inst_.trace = &telemetry->decisions;
  inst_.ring = telemetry->decisions.enabled();
  inst_.tracer = telemetry->tracer_if_enabled();
  inst_.flight = telemetry->flight_if_enabled();
  inst_.ucb = &r.counter("policy.decision.ucb");
  inst_.epsilon_explore = &r.counter("policy.decision.epsilon_explore");
  inst_.budget_veto = &r.counter("policy.decision.budget_veto");
  inst_.fallback_direct = &r.counter("policy.decision.fallback_direct");
  inst_.quarantined_relay = &r.counter("policy.decision.quarantined_relay");
  inst_.fallback_direct_outage = &r.counter("policy.decision.fallback_direct_outage");
  inst_.health_quarantine_events = &r.counter("policy.health.quarantine_events");
  inst_.health_readmissions = &r.counter("policy.health.readmissions");
  inst_.health_quarantined = &r.gauge("policy.health.quarantined");
  inst_.health_degraded = &r.gauge("policy.health.degraded");
  inst_.choice_direct = &r.counter("policy.choice.direct");
  inst_.choice_bounce = &r.counter("policy.choice.bounce");
  inst_.choice_transit = &r.counter("policy.choice.transit");
  inst_.refreshes = &r.counter("policy.refresh.count");
  inst_.predict_considered = &r.counter("policy.predict.considered");
  inst_.predict_valid = &r.counter("policy.predict.valid");
  inst_.tomography_segments = &r.gauge("policy.refresh.tomography_segments");
  inst_.tomography_sweeps = &r.gauge("policy.refresh.tomography_sweeps");
  const std::vector<double> topk_bounds = obs::LatencyHistogram::linear_bounds(0.0, 1.0, 11);
  inst_.topk_size = &r.histogram("policy.topk.size", topk_bounds);
  const std::vector<double> latency_bounds(obs::kLatencyBoundsUs.begin(),
                                           obs::kLatencyBoundsUs.end());
  inst_.refresh_prepare_us = &r.histogram("policy.refresh.prepare_us", latency_bounds);
  inst_.refresh_swap_us = &r.histogram("policy.refresh.swap_us", latency_bounds);
  inst_.mem_window_bytes = &r.gauge("policy.mem.window_bytes");
  inst_.mem_snapshot_bytes = &r.gauge("policy.mem.snapshot_bytes");
  inst_.mem_store_bytes = &r.gauge("policy.mem.store_bytes");
  inst_.mem_total_bytes = &r.gauge("policy.mem.total_bytes");
  inst_.mem_resident_pairs = &r.gauge("policy.mem.resident_pairs");
  inst_.mem_window_evictions = &r.gauge("policy.mem.window_evictions");
  inst_.mem_store_evictions = &r.gauge("policy.mem.store_evictions");
  inst_.mem_rejected_keys = &r.gauge("policy.mem.rejected_keys");
  inst_.mem_memo_overflow = &r.gauge("policy.mem.memo_overflow_builds");
}

void ViaPolicy::trace_decision(const CallContext& call, OptionId option,
                               obs::DecisionReason reason, std::span<const RankedOption> top_k,
                               std::int64_t bandit_pulls) {
  if (inst_.trace == nullptr) return;
  switch (reason) {
    case obs::DecisionReason::Ucb:
      inst_.ucb->inc();
      break;
    case obs::DecisionReason::EpsilonExplore:
      inst_.epsilon_explore->inc();
      break;
    case obs::DecisionReason::BudgetVeto:
      inst_.budget_veto->inc();
      break;
    case obs::DecisionReason::FallbackDirect:
      inst_.fallback_direct->inc();
      break;
    case obs::DecisionReason::QuarantinedRelay:
      inst_.quarantined_relay->inc();
      break;
    case obs::DecisionReason::FallbackDirectOutage:
      inst_.fallback_direct_outage->inc();
      break;
    case obs::DecisionReason::BackgroundRelay:
      break;  // engine-tagged, never emitted by the policy
  }
  // Reason counters above are cheap relaxed atomics and always tallied;
  // building and recording the full event only pays off when the ring can
  // actually retain it.
  if (!inst_.ring) return;
  obs::DecisionEvent event;
  event.call_id = call.id;
  event.time = call.time;
  event.src_as = call.src_as;
  event.dst_as = call.dst_as;
  event.option = option;
  event.reason = reason;
  event.top_k_size = static_cast<std::int32_t>(top_k.size());
  event.bandit_pulls = bandit_pulls;
  for (const RankedOption& r : top_k) {
    if (r.option == option) {
      event.predicted = r.pred.mean;
      break;
    }
  }
  inst_.trace->record(event);
}

namespace {
std::uint64_t next_policy_uid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const ModelSnapshot> make_cold_snapshot(const RelayOptionTable& options,
                                                        const BackboneFn& backbone,
                                                        const ViaConfig& config) {
  auto snap = std::make_shared<ModelSnapshot>(options, backbone, config.target,
                                              config.predictor, config.topk);
  snap->set_memo_budget(config.mem.snapshot_memo_budget);
  return snap;
}
}  // namespace

ViaPolicy::ViaPolicy(const RelayOptionTable& options, BackboneFn backbone, ViaConfig config)
    : options_(&options),
      config_(config),
      backbone_(std::move(backbone)),
      current_window_(&options),
      snapshot_(make_cold_snapshot(options, backbone_, config)),
      policy_uid_(next_policy_uid()),
      store_(config.seed, config.serving_stripes, config.budget, config.relay_share_cap),
      health_(config.health) {
  current_window_.set_max_paths(config_.mem.max_window_paths);
}

ViaPolicy::~ViaPolicy() = default;

void ViaPolicy::refresh(TimeSec now) {
  prepare_refresh(now);
  commit_refresh(now);
}

void ViaPolicy::prepare_refresh(TimeSec now) {
  if (inst_.flight != nullptr) {
    inst_.flight->record(obs::FlightEventKind::RefreshPrepare,
                         "refresh prepare: harvesting window, training predictor", -1, -1, now);
  }
  const obs::ScopedTimer prepare_timer(inst_.refresh_prepare_us);
  // One prepare at a time; serving (choose/observe) continues throughout —
  // everything below touches only the staged snapshot, the window under
  // its own mutex, and per-stripe state under the stripe locks.
  const std::lock_guard prepare_lock(prepare_mutex_);

  // The window that just completed becomes the staged snapshot's training
  // window; a fresh one starts accumulating in its place.  Observations
  // arriving between prepare and commit belong to the next period.
  HistoryWindow completed(options_);
  completed.set_max_paths(config_.mem.max_window_paths);
  {
    const std::lock_guard lock(window_mutex_);
    std::swap(completed, current_window_);
  }
  // The completed window's eviction/rejection tallies die with the window
  // (it moves into the snapshot and is eventually dropped), so fold them
  // into the lifetime totals now.
  window_evictions_total_.fetch_add(completed.evictions(), std::memory_order_relaxed);
  window_rejected_total_.fetch_add(completed.rejected(), std::memory_order_relaxed);
  const std::shared_ptr<const ModelSnapshot> current = model();
  auto building = std::make_shared<ModelSnapshot>(
      *options_, backbone_, config_.target, config_.predictor, config_.topk,
      current->period() + 1, std::move(completed));
  if (peer_segment_source_) {
    // Federation fold-in (§6k): pooled peer segments join the freshly
    // trained solver before any pair memo derives from it.  An empty
    // source keeps the snapshot bit-identical to a standalone build.
    std::vector<PeerSegment> peers = peer_segment_source_();
    if (!peers.empty()) {
      const std::size_t folded = building->fold_peer_segments(std::move(peers));
      peer_segments_folded_.fetch_add(static_cast<std::int64_t>(folded),
                                      std::memory_order_relaxed);
    }
  }
  building->set_memo_budget(config_.mem.snapshot_memo_budget);
  std::shared_ptr<const ModelSnapshot> next = std::move(building);

  if (config_.prewarm_pairs) {
    // Pairs that carried traffic this period (their serving state was
    // armed for the outgoing snapshot) get their memos rebuilt eagerly so
    // the first post-publication call per pair skips the cold build.
    std::vector<PairServingState> warm;
    for (std::size_t i = 0; i < store_.stripe_count(); ++i) {
      PairStateStore::Stripe& stripe = store_.stripe_at(i);
      const std::lock_guard stripe_lock(stripe.mutex);
      stripe.pairs.for_each([&](std::uint64_t /*key*/, const PairServingState& state) {
        if (state.period != current->period() || state.options.empty()) return;
        PairServingState copy;
        copy.src_as = state.src_as;
        copy.dst_as = state.dst_as;
        copy.key_src = state.key_src;
        copy.key_dst = state.key_dst;
        copy.options = state.options;
        warm.push_back(std::move(copy));
      });
    }
    std::vector<CallContext> contexts;
    contexts.reserve(warm.size());
    for (const PairServingState& w : warm) {
      CallContext ctx;
      ctx.src_as = w.src_as;
      ctx.dst_as = w.dst_as;
      ctx.key_src = w.key_src;
      ctx.key_dst = w.key_dst;
      ctx.options = w.options;
      contexts.push_back(ctx);
    }
    const int threads = std::max(1, config_.predictor.tomography.solve_threads);
    if (threads > 1 && refresh_pool_ == nullptr) {
      refresh_pool_ = std::make_unique<ThreadPool>(threads);
    }
    next->prewarm(contexts, this, threads > 1 ? refresh_pool_.get() : nullptr);
  }

  pending_ = std::move(next);
}

void ViaPolicy::commit_refresh(TimeSec now) {
  std::shared_ptr<const ModelSnapshot> staged;
  {
    const std::lock_guard lock(prepare_mutex_);
    staged = std::move(pending_);
    pending_ = nullptr;
  }
  if (staged == nullptr) {
    // Nothing prepared: a host driving only commit gets the monolithic
    // behavior (build inline, then publish below).
    prepare_refresh(now);
    const std::lock_guard lock(prepare_mutex_);
    staged = std::move(pending_);
    pending_ = nullptr;
  }
  // The exclusive section the host stalls serving for is just this swap.
  const obs::ScopedTimer swap_timer(inst_.refresh_swap_us);
  // Per-pair serving states are invalidated lazily: choose() re-arms a
  // pair's bandit when its recorded period trails the published one.
  snapshot_.store(std::move(staged), std::memory_order_release);
  // Publish the new epoch only after the pointer itself: a reader that
  // observes the bumped version (acquire) is guaranteed to reload at least
  // this snapshot; a reader that still sees the old version serves the old
  // snapshot, exactly as an in-flight choose() pinned before the swap does.
  snapshot_version_.fetch_add(1, std::memory_order_release);
  if (inst_.flight != nullptr) {
    inst_.flight->record(obs::FlightEventKind::RefreshCommit, "refresh commit: snapshot published",
                         static_cast<std::int64_t>(model()->period()), -1, now);
  }
  if (inst_.refreshes != nullptr) {
    inst_.refreshes->inc();
    const Predictor& predictor = model()->predictor();
    inst_.tomography_segments->set(
        static_cast<double>(predictor.tomography().segment_count()));
    inst_.tomography_sweeps->set(static_cast<double>(predictor.tomography().last_sweeps()));
  }

  // §6i: shed cold serving state at the period boundary.  commit_refresh
  // runs under the host's exclusive lock, so the store is quiescent — the
  // one place eviction can run without racing a concurrent re-arm.
  if (config_.mem.pair_ttl_periods > 0) {
    store_.evict_stale(model()->period(), config_.mem.pair_ttl_periods);
  }
  if (config_.mem.max_resident_pairs > 0) {
    store_.enforce_resident_cap(config_.mem.max_resident_pairs);
  }
  if (inst_.mem_total_bytes != nullptr) {
    const MemoryStats m = memory_stats();
    inst_.mem_window_bytes->set(static_cast<double>(m.window_bytes));
    inst_.mem_snapshot_bytes->set(static_cast<double>(m.snapshot_bytes));
    inst_.mem_store_bytes->set(static_cast<double>(m.store_bytes));
    inst_.mem_total_bytes->set(static_cast<double>(m.total_bytes()));
    inst_.mem_resident_pairs->set(static_cast<double>(m.resident_pairs));
    inst_.mem_window_evictions->set(static_cast<double>(m.window_evictions));
    inst_.mem_store_evictions->set(static_cast<double>(m.store_evictions));
    inst_.mem_rejected_keys->set(static_cast<double>(m.window_rejected));
    inst_.mem_memo_overflow->set(static_cast<double>(m.memo_overflow_builds));
  }
}

ViaPolicy::MemoryStats ViaPolicy::memory_stats() {
  MemoryStats m;
  {
    const std::lock_guard lock(window_mutex_);
    m.window_bytes = current_window_.approx_bytes();
    m.window_paths = current_window_.size();
    m.window_evictions =
        window_evictions_total_.load(std::memory_order_relaxed) + current_window_.evictions();
    m.window_rejected =
        window_rejected_total_.load(std::memory_order_relaxed) + current_window_.rejected();
  }
  const std::shared_ptr<const ModelSnapshot> snap = model();
  m.snapshot_bytes = snap->approx_bytes();
  m.memo_overflow_builds = snap->memo_overflow_builds();
  m.store_bytes = store_.approx_bytes();
  m.resident_pairs = store_.resident_pairs();
  m.store_evictions = store_.evicted_total();
  return m;
}

void ViaPolicy::on_pair_built(const CallContext& call, std::span<const Prediction> preds,
                              std::span<const RankedOption> top_k,
                              const TopKCoverage& coverage) {
  if (inst_.trace != nullptr) {
    inst_.predict_considered->inc(coverage.considered);
    inst_.predict_valid->inc(coverage.predictable);
    inst_.topk_size->observe(static_cast<double>(top_k.size()));
  }

  // Active-measurement wishlist (§7): candidate options this pair cannot
  // predict are coverage holes worth probing.
  if (config_.probe_wishlist_capacity == 0) return;
  const std::lock_guard lock(wishlist_mutex_);
  if (probe_wishlist_.size() >= config_.probe_wishlist_capacity) return;
  for (std::size_t i = 0; i < call.options.size(); ++i) {
    const OptionId opt = call.options[i];
    if (opt == RelayOptionTable::direct_id()) continue;
    if (preds[i].valid) continue;  // predictable => not a hole
    probe_wishlist_.push_back({call.src_as, call.dst_as, opt});
    if (probe_wishlist_.size() >= config_.probe_wishlist_capacity) break;
  }
}

std::vector<ProbeRequest> ViaPolicy::plan_probes(std::size_t max_probes) {
  const std::lock_guard lock(wishlist_mutex_);
  std::vector<ProbeRequest> out;
  const std::size_t n = std::min(max_probes, probe_wishlist_.size());
  out.assign(probe_wishlist_.end() - static_cast<std::ptrdiff_t>(n), probe_wishlist_.end());
  probe_wishlist_.clear();
  return out;
}

std::vector<RankedOption> ViaPolicy::top_k_for(const CallContext& call) const {
  // The cold-build side effects (wishlist, telemetry tallies) live in the
  // policy's mutable half behind their own locks, so observing from a
  // const accessor is sound.
  auto* observer = const_cast<ViaPolicy*>(this);
  const ModelSnapshot::PairView pair = model()->pair_model(call, observer);
  return {pair.top_k.begin(), pair.top_k.end()};
}

void ViaPolicy::count_choice(OptionId option) {
  switch (options_->get(option).kind) {
    case RelayKind::Direct:
      store_.stats.chose_direct.inc();
      if (inst_.choice_direct != nullptr) inst_.choice_direct->inc();
      break;
    case RelayKind::Bounce:
      store_.stats.chose_bounce.inc();
      if (inst_.choice_bounce != nullptr) inst_.choice_bounce->inc();
      break;
    case RelayKind::Transit:
      store_.stats.chose_transit.inc();
      if (inst_.choice_transit != nullptr) inst_.choice_transit->inc();
      break;
  }
}

std::shared_ptr<const ModelSnapshot> ViaPolicy::model_cached() const noexcept {
  struct Pin {
    std::uint64_t uid = 0;  ///< 0 never matches a real policy_uid_
    std::uint64_t version = 0;
    std::shared_ptr<const ModelSnapshot> snap;
  };
  thread_local Pin pin;
  const std::uint64_t version = snapshot_version_.load(std::memory_order_acquire);
  if (pin.uid != policy_uid_ || pin.version != version) {
    // A publish may land between the two loads; then the pin holds a
    // *newer* snapshot than `version` claims and the next call reloads —
    // never the reverse, so a stale snapshot is never served once the
    // version bump is visible.
    pin.snap = snapshot_.load(std::memory_order_acquire);
    pin.uid = policy_uid_;
    pin.version = version;
  }
  return pin.snap;
}

OptionId ViaPolicy::choose(const CallContext& call) { return choose_with(model_cached(), call); }

void ViaPolicy::choose_batch(std::span<const CallContext> calls, std::span<OptionId> out) {
  // One snapshot pin for the whole batch (§6h): the reactor decodes many
  // decision requests per readiness event and lands them here.
  const std::shared_ptr<const ModelSnapshot> snap = model_cached();
  for (std::size_t i = 0; i < calls.size(); ++i) out[i] = choose_with(snap, calls[i]);
}

OptionId ViaPolicy::choose_with(const std::shared_ptr<const ModelSnapshot>& snap,
                                const CallContext& call) {
  ServingStats& stats = store_.stats;
  stats.calls.inc();

  // §6g request tracing.  With no tracer attached (the default) this whole
  // scope is one null-pointer test; with one attached but the trace not
  // sampled it adds one hash.  Only sampled calls read the clock — the
  // stage() marks below are no-ops otherwise — and nothing here touches
  // RNG or decision state, so traced and untraced replays stay
  // bit-identical.
  obs::StagedSpan span(
      inst_.tracer,
      inst_.tracer != nullptr
          ? (call.trace_id != 0 ? call.trace_id
                                : obs::derive_trace_id(static_cast<std::uint64_t>(call.id)))
          : 0,
      call.parent_span, "policy.choose");

  // `snap` pins the published model for the whole decision: a concurrent
  // refresh swaps the pointer but cannot invalidate what the caller loaded.
  const ModelSnapshot::PairView pair = snap->pair_model(call, this);
  store_.budget_on_call(pair.predicted_benefit);
  span.stage("snapshot_topk");

  const OptionId direct = RelayOptionTable::direct_id();
  const std::uint64_t key = call.pair_key();
  PairStateStore::Stripe& stripe = store_.stripe(key);
  const std::lock_guard lock(stripe.mutex);

  PairServingState& state = stripe.pairs[key];
  if (state.period != snap->period()) {
    // Surviving arms keep decayed statistics from the adjacent period.
    const bool adjacent_period = (state.period + 1 == snap->period());
    state.period = snap->period();
    state.bandit.set_arms(pair.top_k, config_.bandit,
                          adjacent_period ? &state.bandit : nullptr);
    if (config_.prewarm_pairs) {
      // Once per pair and period: capture the pre-warm context the next
      // prepare_refresh() rebuilds this pair's memo from.
      state.src_as = call.src_as;
      state.dst_as = call.dst_as;
      state.key_src = call.key_src;
      state.key_dst = call.key_dst;
      state.options.assign(call.options.begin(), call.options.end());
    }
  }
  span.stage("pair_state");

  // §6f relay health: with the state machine enabled AND at least one
  // relay possibly quarantined, picks that ride a blocked relay are
  // filtered.  The healthy-fleet fast path is one relaxed load; disabled,
  // the whole block folds to `false` and the decision flow (including
  // every RNG draw) is bit-identical to a health-unaware policy.
  const bool health_active = config_.health.enabled && health_.maybe_blocked();
  auto health_blocks = [&](OptionId opt) {
    return health_active && opt != direct &&
           health_.option_blocked(options_->get(opt), call.time);
  };

  // Stage 4b: ε general exploration over *all* candidate options, keeping
  // the pruning honest under non-stationary performance.  Exploration
  // calls bypass the benefit threshold but still consume budget tokens.
  if (!call.options.empty() && stripe.rng.uniform() < config_.epsilon) {
    span.name_tail("epsilon_pick");
    const OptionId pick =
        call.options[static_cast<std::size_t>(stripe.rng.uniform_index(call.options.size()))];
    if (health_blocks(pick)) {
      // Exploration must not hand traffic to a quarantined relay; the
      // probe that re-admits it comes from probation, not from ε.
      stats.quarantine_rerouted.inc();
      count_choice(direct);
      trace_decision(call, direct, obs::DecisionReason::QuarantinedRelay, pair.top_k,
                     state.bandit.total_plays());
      return direct;
    }
    if (pick == direct ||
        (store_.budget_allow_relay(std::numeric_limits<double>::infinity()) &&
         store_.relay_cap_allows(options_->get(pick)))) {
      stats.epsilon_explored.inc();
      count_choice(pick);
      trace_decision(call, pick, obs::DecisionReason::EpsilonExplore, pair.top_k,
                     state.bandit.total_plays());
      return pick;
    }
    stats.budget_denied.inc();
    count_choice(direct);
    trace_decision(call, direct, obs::DecisionReason::BudgetVeto, pair.top_k,
                   state.bandit.total_plays());
    return direct;
  }

  // Stage 4a: modified-UCB1 over the top-k candidates.
  OptionId pick = state.bandit.pick();
  span.stage("bandit_pick");
  span.name_tail("budget");
  if (pick == kInvalidOption) {
    // Cold start: no predictable candidate yet.
    span.name_tail("fallback_direct");
    stats.cold_start_direct.inc();
    count_choice(direct);
    trace_decision(call, direct, obs::DecisionReason::FallbackDirect, pair.top_k,
                   state.bandit.total_plays());
    return direct;
  }
  obs::DecisionReason served_reason = obs::DecisionReason::Ucb;
  bool rerouted = false;
  if (health_blocks(pick)) {
    // The bandit's pick rides a quarantined relay: substitute its best
    // unblocked arm, or fall all the way back to direct when the outage
    // has taken the entire candidate set down.
    pick = state.bandit.pick_if([&](OptionId o) { return !health_blocks(o); });
    span.stage("health_filter");
    if (pick == kInvalidOption) {
      stats.outage_fallback_direct.inc();
      if (inst_.flight != nullptr) {
        inst_.flight->record(obs::FlightEventKind::OutageFallback,
                             "all top-k candidates quarantined; served direct",
                             static_cast<std::int64_t>(call.src_as),
                             static_cast<std::int64_t>(call.dst_as), call.time);
      }
      count_choice(direct);
      trace_decision(call, direct, obs::DecisionReason::FallbackDirectOutage, pair.top_k,
                     state.bandit.total_plays());
      return direct;
    }
    served_reason = obs::DecisionReason::QuarantinedRelay;
    rerouted = true;
  }
  if (pick != direct) {
    if (!store_.budget_allow_relay(pair.predicted_benefit)) {
      stats.budget_denied.inc();
      count_choice(direct);
      trace_decision(call, direct, obs::DecisionReason::BudgetVeto, pair.top_k,
                     state.bandit.total_plays());
      return direct;
    }
    if (!store_.relay_cap_allows(options_->get(pick))) {
      stats.relay_cap_denied.inc();
      count_choice(direct);
      trace_decision(call, direct, obs::DecisionReason::BudgetVeto, pair.top_k,
                     state.bandit.total_plays());
      return direct;
    }
  }
  (rerouted ? stats.quarantine_rerouted : stats.bandit_served)
      .inc();
  count_choice(pick);
  trace_decision(call, pick, served_reason, pair.top_k, state.bandit.total_plays());
  return pick;
}

void ViaPolicy::observe(const Observation& obs) {
  {
    // One insertion point keeps observation order — and with it the next
    // period's tomography solve — identical to the serial execution.
    const std::lock_guard lock(window_mutex_);
    current_window_.add(obs);
  }
  if (inst_.ring) {
    inst_.trace->fill_observed(obs.id, obs.perf.get(config_.target));
  }

  {
    const std::shared_ptr<const ModelSnapshot> snap = model_cached();
    const std::uint64_t key = as_pair_key(obs.src_as, obs.dst_as);
    PairStateStore::Stripe& stripe = store_.stripe(key);
    const std::lock_guard lock(stripe.mutex);
    PairServingState* state = stripe.pairs.find(key);
    if (state != nullptr && state->period == snap->period()) {
      state->bandit.observe(obs.option, obs.perf.get(config_.target));
    }
  }

  // §6f relay health: classify the observation against the catastrophic
  // thresholds and advance the state machine of every relay it rode.
  if (config_.health.enabled) {
    const RelayOption& ropt = options_->get(obs.option);
    if (ropt.kind != RelayKind::Direct) {
      const bool failed = obs.perf.rtt_ms >= config_.health.failure_rtt_ms ||
                          obs.perf.loss_pct >= config_.health.failure_loss_pct;
      const RelayHealthTracker::Transition t = health_.record(ropt, failed, obs.time);
      if ((t.entered_quarantine || t.readmitted) && inst_.trace != nullptr) {
        if (t.entered_quarantine) inst_.health_quarantine_events->inc();
        if (t.readmitted) inst_.health_readmissions->inc();
        const RelayHealthTracker::Counts counts = health_.counts(obs.time);
        inst_.health_quarantined->set(static_cast<double>(counts.quarantined));
        inst_.health_degraded->set(static_cast<double>(counts.degraded));
      }
      if ((t.entered_quarantine || t.readmitted) && inst_.flight != nullptr) {
        inst_.flight->record(t.entered_quarantine ? obs::FlightEventKind::HealthQuarantine
                                                  : obs::FlightEventKind::HealthReadmit,
                             t.entered_quarantine
                                 ? "relay quarantined after catastrophic observations"
                                 : "relay readmitted after clean probation",
                             static_cast<std::int64_t>(obs.option), -1, obs.time);
      }
    }
  }
}

ViaPolicy::Stats ViaPolicy::stats() const noexcept {
  const ServingStats& s = store_.stats;
  Stats out;
  out.calls = s.calls.value();
  out.epsilon_explored = s.epsilon_explored.value();
  out.bandit_served = s.bandit_served.value();
  out.cold_start_direct = s.cold_start_direct.value();
  out.budget_denied = s.budget_denied.value();
  out.relay_cap_denied = s.relay_cap_denied.value();
  out.quarantine_rerouted = s.quarantine_rerouted.value();
  out.outage_fallback_direct = s.outage_fallback_direct.value();
  out.chose_direct = s.chose_direct.value();
  out.chose_bounce = s.chose_bounce.value();
  out.chose_transit = s.chose_transit.value();
  return out;
}

}  // namespace via
