// Budgeted relaying (Section 4.6).
//
// The operator caps the fraction of calls that may be relayed at B.  The
// budget-aware filter relays a call only when its *predicted benefit*
// (predicted cost of the direct path minus predicted cost of the best
// relayed candidate) lands in the top-B percentile of the trailing benefit
// distribution — tracked streamingly with a P² quantile estimator — AND a
// token bucket confirms capacity remains.  The budget-unaware variant
// (Figure 16's strawman) relays greedily whenever any benefit is predicted,
// until the bucket runs dry.
#pragma once

#include <cstdint>

#include "util/percentile.h"

namespace via {

struct BudgetConfig {
  double fraction = 1.0;  ///< B: max fraction of calls relayed (1.0 = no cap)
  bool aware = true;      ///< false => greedy (budget-unaware) usage
};

class BudgetFilter {
 public:
  explicit BudgetFilter(BudgetConfig config);

  /// Must be called once per call (relayed or not) *before* allow_relay;
  /// accrues relay tokens and records the call's predicted benefit.
  void on_call(double predicted_benefit);

  /// Decides whether a call with this predicted benefit may be relayed,
  /// consuming a token when it is.
  [[nodiscard]] bool allow_relay(double predicted_benefit);

  [[nodiscard]] double tokens() const noexcept { return tokens_; }
  [[nodiscard]] std::int64_t calls_seen() const noexcept { return calls_; }
  [[nodiscard]] std::int64_t relays_granted() const noexcept { return granted_; }
  [[nodiscard]] double benefit_threshold() const;

 private:
  BudgetConfig config_;
  P2Quantile benefit_quantile_;
  double tokens_ = 0.0;
  std::int64_t calls_ = 0;
  std::int64_t granted_ = 0;
};

}  // namespace via
