#include "core/tomography.h"

#include <algorithm>
#include <cmath>

#include "common/linearize.h"

namespace via {

TomographySolver::TomographySolver(const RelayOptionTable& options, BackboneFn backbone,
                                   TomographyConfig config)
    : options_(&options), backbone_(std::move(backbone)), config_(config) {}

std::pair<RelayId, RelayId> TomographySolver::transit_sides(const PathAggregate& agg,
                                                            const RelayOption& o) const {
  // agg.ingress_lo is the relay adjacent to the pair's lower endpoint, as
  // reported by the clients; default to option order if it was never set.
  if (agg.ingress_lo == o.a || agg.ingress_lo == o.b) {
    return agg.ingress_lo == o.a ? std::pair{o.a, o.b} : std::pair{o.b, o.a};
  }
  return {o.a, o.b};
}

void TomographySolver::solve(const HistoryWindow& window) {
  equations_.clear();
  segments_.clear();
  equations_.reserve(window.size());

  // 1. Harvest equations from relayed-path aggregates.
  window.for_each([&](std::uint64_t pair_key, OptionId option, const PathAggregate& agg) {
    if (agg.count() < config_.min_samples_per_path) return;
    const RelayOption& o = options_->get(option);
    if (o.kind == RelayKind::Direct) return;

    const auto lo = static_cast<AsId>(pair_key & 0xFFFFFFFF);
    const auto hi = static_cast<AsId>(pair_key >> 32);

    Equation eq;
    eq.weight = static_cast<double>(agg.count());
    if (o.kind == RelayKind::Bounce) {
      eq.seg1 = segment_key(lo, o.a);
      eq.seg2 = segment_key(hi, o.a);
      for (const Metric m : kAllMetrics) {
        eq.rhs[metric_index(m)] = agg.lin[metric_index(m)].mean();
      }
    } else {
      const auto [r_lo, r_hi] = transit_sides(agg, o);
      eq.seg1 = segment_key(lo, r_lo);
      eq.seg2 = segment_key(hi, r_hi);
      const PathPerformance bb = backbone_(o.a, o.b);
      for (const Metric m : kAllMetrics) {
        eq.rhs[metric_index(m)] =
            agg.lin[metric_index(m)].mean() - linearize(m, bb.get(m));
      }
    }
    equations_.push_back(eq);
  });

  if (equations_.empty()) return;

  // 2. Initialize unknowns to half of the average RHS of their equations.
  work_.clear();
  work_.reserve(2 * equations_.size());
  for (const auto& eq : equations_) {
    for (const auto seg : {eq.seg1, eq.seg2}) {
      auto& w = work_[seg];
      for (std::size_t m = 0; m < kNumMetrics; ++m) w.rhs_sum[m] += eq.weight * eq.rhs[m];
      w.weight_sum += eq.weight;
      w.evidence += static_cast<std::int64_t>(eq.weight);
    }
  }
  work_.for_each([](std::uint64_t /*seg*/, Work& w) {
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
      w.x[m] = std::max(0.0, 0.5 * w.rhs_sum[m] / w.weight_sum);
    }
  });

  // 3. Weighted Gauss-Seidel sweeps: each unknown moves to the weighted
  // average of (rhs - other side) over its equations.  Every key is already
  // present in work_ after step 2, so lookups below cannot rehash.
  next_.reserve(work_.size());
  for (int sweep = 0; sweep < config_.gauss_seidel_sweeps; ++sweep) {
    next_.clear();
    for (const auto& eq : equations_) {
      const Work& w1 = *work_.find(eq.seg1);
      const Work& w2 = *work_.find(eq.seg2);
      for (const auto& [self, other] :
           {std::pair{eq.seg1, &w2}, std::pair{eq.seg2, &w1}}) {
        auto& acc = next_[self];
        for (std::size_t m = 0; m < kNumMetrics; ++m) {
          acc.rhs_sum[m] += eq.weight * (eq.rhs[m] - other->x[m]);
        }
        acc.weight_sum += eq.weight;
      }
    }
    next_.for_each([&](std::uint64_t seg, const Work& acc) {
      Work& w = *work_.find(seg);
      for (std::size_t m = 0; m < kNumMetrics; ++m) {
        // Segment metrics cannot be negative in linearized space.
        w.x[m] = std::max(0.0, acc.rhs_sum[m] / acc.weight_sum);
      }
    });
  }

  // 4. Residual-based uncertainty: the SEM of a segment reflects how well
  // its equations agree, shrunk by the evidence behind it.
  resid2_.clear();
  resid2_.reserve(work_.size());
  for (const auto& eq : equations_) {
    const Work& w1 = *work_.find(eq.seg1);
    const Work& w2 = *work_.find(eq.seg2);
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
      const double r = eq.rhs[m] - (w1.x[m] + w2.x[m]);
      resid2_[eq.seg1][m] += eq.weight * r * r;
      resid2_[eq.seg2][m] += eq.weight * r * r;
    }
  }

  segments_.reserve(work_.size());
  work_.for_each([&](std::uint64_t seg, const Work& w) {
    SegmentEstimate est;
    est.evidence = w.evidence;
    const auto& r2 = *resid2_.find(seg);
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
      est.lin_mean[m] = w.x[m];
      const double var = r2[m] / std::max(1.0, w.weight_sum);
      // Effective-sample shrinkage, with a floor so single-path segments
      // keep a non-trivial confidence interval.
      est.lin_sem[m] = std::sqrt(var / std::max(1.0, w.weight_sum)) +
                       0.05 * w.x[m] / std::sqrt(std::max(1.0, w.weight_sum));
    }
    segments_.insert(seg, est);
  });
}

const SegmentEstimate* TomographySolver::segment(AsId as, RelayId relay) const {
  return segments_.find(segment_key(as, relay));
}

bool TomographySolver::predict_lin(AsId s, AsId d, OptionId option,
                                   std::array<double, kNumMetrics>& lin_mean,
                                   std::array<double, kNumMetrics>& lin_sem) const {
  const RelayOption& o = options_->get(option);
  if (o.kind == RelayKind::Direct) return false;

  const SegmentEstimate* seg_s = nullptr;
  const SegmentEstimate* seg_d = nullptr;
  PathPerformance bb{};

  if (o.kind == RelayKind::Bounce) {
    seg_s = segment(s, o.a);
    seg_d = segment(d, o.a);
  } else {
    // Try both orientations; prefer the one with evidence on both sides,
    // then the lower predicted RTT (clients pick the near ingress).
    const SegmentEstimate* sa = segment(s, o.a);
    const SegmentEstimate* db = segment(d, o.b);
    const SegmentEstimate* sb = segment(s, o.b);
    const SegmentEstimate* da = segment(d, o.a);
    const bool fwd = sa && db;
    const bool rev = sb && da;
    if (fwd && rev) {
      const double rtt_fwd = sa->lin_mean[0] + db->lin_mean[0];
      const double rtt_rev = sb->lin_mean[0] + da->lin_mean[0];
      if (rtt_fwd <= rtt_rev) {
        seg_s = sa;
        seg_d = db;
      } else {
        seg_s = sb;
        seg_d = da;
      }
    } else if (fwd) {
      seg_s = sa;
      seg_d = db;
    } else if (rev) {
      seg_s = sb;
      seg_d = da;
    }
    bb = backbone_(o.a, o.b);
  }

  if (seg_s == nullptr || seg_d == nullptr) return false;
  for (const Metric m : kAllMetrics) {
    const std::size_t i = metric_index(m);
    lin_mean[i] = seg_s->lin_mean[i] + seg_d->lin_mean[i] + linearize(m, bb.get(m));
    lin_sem[i] = std::sqrt(seg_s->lin_sem[i] * seg_s->lin_sem[i] +
                           seg_d->lin_sem[i] * seg_d->lin_sem[i]);
  }
  return true;
}

}  // namespace via
