#include "core/tomography.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/linearize.h"
#include "util/thread_pool.h"

namespace via {

TomographySolver::TomographySolver(const RelayOptionTable& options, BackboneFn backbone,
                                   TomographyConfig config)
    : options_(&options), backbone_(std::move(backbone)), config_(config) {}

TomographySolver::~TomographySolver() = default;

std::pair<RelayId, RelayId> TomographySolver::transit_sides(const PathAggregate& agg,
                                                            const RelayOption& o) const {
  // agg.ingress_lo is the relay adjacent to the pair's lower endpoint, as
  // reported by the clients; default to option order if it was never set.
  if (agg.ingress_lo == o.a || agg.ingress_lo == o.b) {
    return agg.ingress_lo == o.a ? std::pair{o.a, o.b} : std::pair{o.b, o.a};
  }
  return {o.a, o.b};
}

template <typename Fn>
void TomographySolver::parallel_segments(std::size_t count, Fn&& fn) {
  const int threads = std::max(1, config_.solve_threads);
  // Below ~2 slices per worker the fork/join overhead dominates; tiny
  // systems (unit-test scale) also stay inline so they never spin a pool.
  if (threads == 1 || count < 64) {
    fn(std::size_t{0}, count);
    return;
  }
  if (pool_ == nullptr || pool_->thread_count() != threads) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  const std::size_t chunk = (count + static_cast<std::size_t>(threads) - 1) /
                            static_cast<std::size_t>(threads);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    pool_->submit([&fn, begin, end] { fn(begin, end); });
  }
  pool_->wait_idle();
}

double TomographySolver::sweep_slice(std::size_t begin, std::size_t end, bool track_delta) {
  // Weighted Jacobi step: each owned unknown moves to the weighted average
  // of (rhs - other side) over its equations, folded in ascending equation
  // order — the historical serial accumulation order, which is what keeps
  // the result bit-identical at every thread count.
  double max_delta = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    std::array<double, kNumMetrics> rhs_sum{};
    double weight_sum = 0.0;
    for (std::uint32_t c = incidence_off_[i]; c < incidence_off_[i + 1]; ++c) {
      const Equation& eq = equations_[incidence_eq_[c]];
      const std::array<double, kNumMetrics>& other =
          x_[eq.idx1 == static_cast<std::uint32_t>(i) ? eq.idx2 : eq.idx1];
      for (std::size_t m = 0; m < kNumMetrics; ++m) {
        rhs_sum[m] += eq.weight * (eq.rhs[m] - other[m]);
      }
      weight_sum += eq.weight;
    }
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
      // Segment metrics cannot be negative in linearized space.
      const double nx = std::max(0.0, rhs_sum[m] / weight_sum);
      if (track_delta) max_delta = std::max(max_delta, std::abs(nx - x_[i][m]));
      next_x_[i][m] = nx;
    }
  }
  return max_delta;
}

void TomographySolver::solve(const HistoryWindow& window) {
  equations_.clear();
  segments_.clear();
  last_sweeps_ = 0;
  equations_.reserve(window.size());

  // 1. Harvest equations from relayed-path aggregates.
  window.for_each([&](std::uint64_t pair_key, OptionId option, const PathAggregate& agg) {
    if (agg.count() < config_.min_samples_per_path) return;
    const RelayOption& o = options_->get(option);
    if (o.kind == RelayKind::Direct) return;

    const auto lo = static_cast<AsId>(pair_key & 0xFFFFFFFF);
    const auto hi = static_cast<AsId>(pair_key >> 32);

    Equation eq;
    eq.weight = static_cast<double>(agg.count());
    if (o.kind == RelayKind::Bounce) {
      eq.seg1 = segment_key(lo, o.a);
      eq.seg2 = segment_key(hi, o.a);
      for (const Metric m : kAllMetrics) {
        eq.rhs[metric_index(m)] = agg.lin_mean[metric_index(m)];
      }
    } else {
      const auto [r_lo, r_hi] = transit_sides(agg, o);
      eq.seg1 = segment_key(lo, r_lo);
      eq.seg2 = segment_key(hi, r_hi);
      const PathPerformance bb = backbone_(o.a, o.b);
      for (const Metric m : kAllMetrics) {
        eq.rhs[metric_index(m)] =
            agg.lin_mean[metric_index(m)] - linearize(m, bb.get(m));
      }
    }
    equations_.push_back(eq);
  });

  if (equations_.empty()) return;

  // 2. Per-segment initialization sums (serial: one pass over the
  // equations, and FlatMap insertion order here fixes the dense segment
  // order every later pass and the published estimates iterate in).
  work_.clear();
  work_.reserve(2 * equations_.size());
  std::uint32_t next_index = 0;
  for (auto& eq : equations_) {
    for (const auto& [seg, idx] :
         {std::pair{eq.seg1, &eq.idx1}, std::pair{eq.seg2, &eq.idx2}}) {
      Work& w = work_[seg];
      if (w.weight_sum == 0.0) w.index = next_index++;
      *idx = w.index;
      for (std::size_t m = 0; m < kNumMetrics; ++m) w.rhs_sum[m] += eq.weight * eq.rhs[m];
      w.weight_sum += eq.weight;
      w.evidence += static_cast<std::int64_t>(eq.weight);
    }
  }

  // Dense mirrors of the per-segment state, in work_ insertion order.
  const std::size_t n = work_.size();
  seg_keys_.assign(n, 0);
  x_.assign(n, {});
  next_x_.assign(n, {});
  weight_sum_.assign(n, 0.0);
  evidence_.assign(n, 0);
  work_.for_each([&](std::uint64_t seg, const Work& w) {
    seg_keys_[w.index] = seg;
    weight_sum_[w.index] = w.weight_sum;
    evidence_[w.index] = w.evidence;
    // Initialize unknowns to half of the average RHS of their equations.
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
      x_[w.index][m] = std::max(0.0, 0.5 * w.rhs_sum[m] / w.weight_sum);
    }
  });

  // CSR incidence: segment i's equations in ascending equation order.
  incidence_off_.assign(n + 1, 0);
  for (const Equation& eq : equations_) {
    ++incidence_off_[eq.idx1 + 1];
    ++incidence_off_[eq.idx2 + 1];
  }
  for (std::size_t i = 0; i < n; ++i) incidence_off_[i + 1] += incidence_off_[i];
  incidence_eq_.assign(incidence_off_[n], 0);
  {
    std::vector<std::uint32_t> cursor(incidence_off_.begin(), incidence_off_.end() - 1);
    for (std::uint32_t e = 0; e < equations_.size(); ++e) {
      incidence_eq_[cursor[equations_[e].idx1]++] = e;
      incidence_eq_[cursor[equations_[e].idx2]++] = e;
    }
  }

  // 3. Weighted Gauss-Seidel sweeps, segment-partitioned across the pool.
  // With convergence_tol > 0 a sweep whose largest per-segment move is
  // below tol ends the loop early; the max is exact (no partial-sum
  // merging), so the early exit fires on the same sweep at every thread
  // count.
  const bool track_delta = config_.convergence_tol > 0.0;
  for (int sweep = 0; sweep < config_.gauss_seidel_sweeps; ++sweep) {
    std::atomic<double> max_delta{0.0};
    parallel_segments(n, [&](std::size_t begin, std::size_t end) {
      const double slice_delta = sweep_slice(begin, end, track_delta);
      if (track_delta) {
        double seen = max_delta.load(std::memory_order_relaxed);
        while (seen < slice_delta &&
               !max_delta.compare_exchange_weak(seen, slice_delta,
                                                std::memory_order_relaxed)) {
        }
      }
    });
    std::swap(x_, next_x_);
    ++last_sweeps_;
    if (track_delta && max_delta.load(std::memory_order_relaxed) < config_.convergence_tol) {
      break;
    }
  }

  // 4. Residual-based uncertainty: the SEM of a segment reflects how well
  // its equations agree, shrunk by the evidence behind it.  Also
  // segment-partitioned; each segment folds its own equations in ascending
  // order, reproducing the serial accumulation exactly.
  resid2_.assign(n, {});
  parallel_segments(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (std::uint32_t c = incidence_off_[i]; c < incidence_off_[i + 1]; ++c) {
        const Equation& eq = equations_[incidence_eq_[c]];
        for (std::size_t m = 0; m < kNumMetrics; ++m) {
          const double r = eq.rhs[m] - (x_[eq.idx1][m] + x_[eq.idx2][m]);
          resid2_[i][m] += eq.weight * r * r;
        }
      }
    }
  });

  segments_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SegmentEstimate est;
    est.evidence = evidence_[i];
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
      est.lin_mean[m] = x_[i][m];
      const double var = resid2_[i][m] / std::max(1.0, weight_sum_[i]);
      // Effective-sample shrinkage, with a floor so single-path segments
      // keep a non-trivial confidence interval.
      est.lin_sem[m] = std::sqrt(var / std::max(1.0, weight_sum_[i])) +
                       0.05 * x_[i][m] / std::sqrt(std::max(1.0, weight_sum_[i]));
    }
    segments_.insert(seg_keys_[i], est);
  }
}

std::size_t TomographySolver::fold_peer_segments(std::vector<PeerSegment> peers) {
  if (peers.empty()) return 0;
  // Stable sort by key: the fold order for one key is then the caller's
  // input order, so deterministic inputs give deterministic estimates.
  std::stable_sort(peers.begin(), peers.end(),
                   [](const PeerSegment& a, const PeerSegment& b) { return a.key < b.key; });
  std::size_t folded = 0;
  segments_.reserve(segments_.size() + peers.size());
  for (const PeerSegment& p : peers) {
    if (p.est.evidence <= 0) continue;
    if (SegmentEstimate* local = segments_.find(p.key)) {
      const double wl = static_cast<double>(local->evidence);
      const double wp = static_cast<double>(p.est.evidence);
      const double wsum = wl + wp;
      for (std::size_t m = 0; m < kNumMetrics; ++m) {
        local->lin_mean[m] = (wl * local->lin_mean[m] + wp * p.est.lin_mean[m]) / wsum;
        // Evidence-weighted SEM blend: conservative (no sqrt-N shrink from
        // the pooled count), deterministic, and order-insensitive-enough.
        local->lin_sem[m] = (wl * local->lin_sem[m] + wp * p.est.lin_sem[m]) / wsum;
      }
      local->evidence += p.est.evidence;
    } else {
      segments_.insert(p.key, p.est);
    }
    ++folded;
  }
  return folded;
}

const SegmentEstimate* TomographySolver::segment(AsId as, RelayId relay) const {
  return segments_.find(segment_key(as, relay));
}

bool TomographySolver::predict_lin(AsId s, AsId d, OptionId option,
                                   std::array<double, kNumMetrics>& lin_mean,
                                   std::array<double, kNumMetrics>& lin_sem) const {
  const RelayOption& o = options_->get(option);
  if (o.kind == RelayKind::Direct) return false;

  const SegmentEstimate* seg_s = nullptr;
  const SegmentEstimate* seg_d = nullptr;
  PathPerformance bb{};

  if (o.kind == RelayKind::Bounce) {
    seg_s = segment(s, o.a);
    seg_d = segment(d, o.a);
  } else {
    // Try both orientations; prefer the one with evidence on both sides,
    // then the lower predicted RTT (clients pick the near ingress).
    const SegmentEstimate* sa = segment(s, o.a);
    const SegmentEstimate* db = segment(d, o.b);
    const SegmentEstimate* sb = segment(s, o.b);
    const SegmentEstimate* da = segment(d, o.a);
    const bool fwd = sa && db;
    const bool rev = sb && da;
    if (fwd && rev) {
      const double rtt_fwd = sa->lin_mean[0] + db->lin_mean[0];
      const double rtt_rev = sb->lin_mean[0] + da->lin_mean[0];
      if (rtt_fwd <= rtt_rev) {
        seg_s = sa;
        seg_d = db;
      } else {
        seg_s = sb;
        seg_d = da;
      }
    } else if (fwd) {
      seg_s = sa;
      seg_d = db;
    } else if (rev) {
      seg_s = sb;
      seg_d = da;
    }
    bb = backbone_(o.a, o.b);
  }

  if (seg_s == nullptr || seg_d == nullptr) return false;
  for (const Metric m : kAllMetrics) {
    const std::size_t i = metric_index(m);
    lin_mean[i] = seg_s->lin_mean[i] + seg_d->lin_mean[i] + linearize(m, bb.get(m));
    lin_sem[i] = std::sqrt(seg_s->lin_sem[i] * seg_s->lin_sem[i] +
                           seg_d->lin_sem[i] * seg_d->lin_sem[i]);
  }
  return true;
}

}  // namespace via
