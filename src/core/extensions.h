// Extensions the paper discusses but leaves to future work (§3.1 / §7):
//
//   - CachingClient: clients cache the controller's relaying decision per
//     AS pair with a TTL, collapsing the per-call control round trips that
//     worry §7's scalability discussion — at the cost of reacting slower.
//
//   - HybridRacer: the "hybrid reactive" idea — at call setup the client
//     briefly races the controller's top-k candidates in parallel and
//     keeps the best, using prediction-guided pruning to keep the race
//     small instead of trying the full option space.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/via_policy.h"

namespace via {

/// Wraps any controller policy with a client-side decision cache.
class CachingClient final : public RoutingPolicy {
 public:
  /// The inner policy must outlive this wrapper.
  CachingClient(RoutingPolicy& controller, TimeSec ttl);

  [[nodiscard]] OptionId choose(const CallContext& call) override;
  void observe(const Observation& obs) override { controller_->observe(obs); }
  void refresh(TimeSec now) override;
  [[nodiscard]] std::vector<ProbeRequest> plan_probes(std::size_t max_probes) override {
    return controller_->plan_probes(max_probes);
  }
  [[nodiscard]] std::string_view name() const override { return "via+client-cache"; }

  [[nodiscard]] std::int64_t cache_hits() const noexcept { return hits_; }
  [[nodiscard]] std::int64_t cache_misses() const noexcept { return misses_; }
  /// Fraction of calls answered without contacting the controller.
  [[nodiscard]] double hit_rate() const noexcept {
    const auto total = hits_ + misses_;
    return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
  }

 private:
  struct Entry {
    OptionId option = kInvalidOption;
    TimeSec fetched_at = -1;
  };
  RoutingPolicy* controller_;
  TimeSec ttl_;
  std::unordered_map<std::uint64_t, Entry> cache_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

/// Wraps a ViaPolicy so call setup races the top few candidates.
class HybridRacer final : public RoutingPolicy {
 public:
  /// Races up to `race_width` options per call (including the bandit's
  /// pick).  The inner policy must outlive this wrapper.
  HybridRacer(ViaPolicy& inner, int race_width = 3);

  /// Fallback single choice (the inner bandit's pick).
  [[nodiscard]] OptionId choose(const CallContext& call) override {
    return inner_->choose(call);
  }
  /// The racing set: the bandit pick plus the next-best predicted options.
  [[nodiscard]] std::vector<OptionId> choose_candidates(const CallContext& call) override;
  void observe(const Observation& obs) override { inner_->observe(obs); }
  void refresh(TimeSec now) override { inner_->refresh(now); }
  [[nodiscard]] std::string_view name() const override { return "via+racing"; }

 private:
  ViaPolicy* inner_;
  int race_width_;
};

}  // namespace via
