// The Via controller policy: prediction-guided exploration (Algorithm 1).
//
// Per refresh period (every T hours, stages 2-3): train the predictor
// (history + tomography) on the window that just completed, and lazily
// compute per-AS-pair top-k candidate sets from it.
//
// Per call (stages 1 & 4): with probability ε route to a uniformly random
// candidate (general exploration, guarding against non-stationary rewards);
// otherwise play the modified-UCB1 bandit over the pair's top-k set.  A
// budget filter (Section 4.6) can veto relaying when the predicted benefit
// is too small for the configured relay budget.
//
// Concurrency model (DESIGN.md §6d): the policy is split into a published
// read-only ModelSnapshot (the per-period products, swapped RCU-style by
// refresh()) and a striped PairStateStore (the per-call mutable state).
// choose()/observe()/plan_probes()/top_k_for() may run concurrently from
// many threads; refresh() and attach_telemetry() require external
// exclusion (the RPC server holds its policy lock exclusively for them and
// shared for everything else — see RoutingPolicy::concurrent_safe()).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/relay_option.h"
#include "core/bandit.h"
#include "core/budget.h"
#include "core/history.h"
#include "core/model_snapshot.h"
#include "core/pair_state_store.h"
#include "core/policy.h"
#include "core/predictor.h"
#include "core/relay_health.h"
#include "core/topk.h"
#include "util/rng.h"

namespace via {

class ThreadPool;

namespace obs {
class Counter;
class Gauge;
class LatencyHistogram;
class DecisionTrace;
class Tracer;
class FlightRecorder;
enum class DecisionReason : std::uint8_t;
}  // namespace obs

struct ViaConfig {
  Metric target = Metric::Rtt;       ///< the metric this instance optimizes
  double epsilon = 0.03;             ///< general-exploration fraction
  TimeSec refresh_period = 24 * 3600;  ///< T (paper default: 24 hours)
  std::uint64_t seed = 99;
  PredictorConfig predictor;
  TopKConfig topk;
  BanditConfig bandit;
  BudgetConfig budget;  ///< fraction = 1 => unconstrained

  /// Per-relay load cap (paper §4.6 mentions per-relay budget models): no
  /// single relay may carry more than this fraction of the relayed calls.
  /// 1.0 disables the cap.
  double relay_share_cap = 1.0;

  /// Per-relay health state machine (DESIGN.md §6f): quarantines relays
  /// after consecutive catastrophic observations and filters them out of
  /// candidate picks until probation re-admits them.  Disabled by default —
  /// with it off (or on but with no relay ever quarantined) decisions are
  /// bit-identical to a health-unaware policy.
  RelayHealthConfig health;

  /// Active-measurement planning (paper §7): remember up to this many
  /// coverage holes (candidate options with no prediction) per refresh
  /// period, to be offered via plan_probes().  0 disables.
  std::size_t probe_wishlist_capacity = 256;

  /// Serving-state lock stripes (power of two, clamped to [1, 64]).  Each
  /// stripe guards its slice of per-pair bandit state with its own mutex
  /// and owns its own epsilon RNG stream.  1 (the default) reproduces the
  /// historical single-stream replay results bit for bit — what the
  /// simulation engine and all figure benches rely on; the controller
  /// daemon and the concurrency tests configure more stripes so decisions
  /// for unrelated pairs proceed in parallel.
  std::size_t serving_stripes = 1;

  /// Memory bounds (DESIGN.md §6i).  Every knob defaults to 0 = unbounded,
  /// which is byte-for-byte the historical behavior — golden replays and
  /// fig benches never see an eviction.  The controller daemon and the
  /// scale bench set them to run 1M+-pair workloads at fixed RSS.
  struct MemoryConfig {
    /// Cap on resident (pair, option) aggregates in the accumulating
    /// history window; clock-hand second-chance eviction past it.
    std::size_t max_window_paths = 0;
    /// Cap on memoized per-pair models in each published snapshot; cold
    /// pairs past it are served from thread-local scratch (correct bits,
    /// no growth, rebuilt per touch).
    std::size_t snapshot_memo_budget = 0;
    /// Cap on resident per-pair serving states; enforced at refresh
    /// commit, oldest armed period evicted first.
    std::size_t max_resident_pairs = 0;
    /// Serving states not re-armed for this many refresh periods are
    /// dropped at the next commit.
    std::uint64_t pair_ttl_periods = 0;
  };
  MemoryConfig mem;

  /// Eagerly rebuild the per-pair top-k/benefit memos of every pair that
  /// carried traffic last period when a new snapshot is prepared, so the
  /// first post-refresh call per pair hits the warm path (~168ns) instead
  /// of the cold predict/top-k build (~2.7µs).  Decisions are identical
  /// either way (each memo is a pure function of snapshot + pair +
  /// candidate set); off by default so replays keep the historical lazy
  /// fill order for the probe wishlist.  The daemon enables it.  Assumes a
  /// pair's candidate set is stable across calls, as everywhere else in
  /// the memoization.
  bool prewarm_pairs = false;
};

class ViaPolicy final : public RoutingPolicy, private PairBuildObserver {
 public:
  ViaPolicy(const RelayOptionTable& options, BackboneFn backbone, ViaConfig config = {});
  ~ViaPolicy() override;

  [[nodiscard]] OptionId choose(const CallContext& call) override;
  /// Batched choose (§6h): pins the published snapshot once for the whole
  /// batch instead of once per call, then decides each context exactly as
  /// choose() would.  Bit-identical to the sequential loop.
  void choose_batch(std::span<const CallContext> calls, std::span<OptionId> out) override;
  void observe(const Observation& obs) override;
  /// Monolithic refresh: prepare + commit back to back.  What the serial
  /// simulation engine drives; equivalent to the split protocol with no
  /// serving traffic in between.
  void refresh(TimeSec now) override;
  /// Split refresh (DESIGN.md §6e).  prepare_refresh() harvests the
  /// accumulating window, solves tomography, trains the predictor, and
  /// (with ViaConfig::prewarm_pairs) pre-warms per-pair memos — all into a
  /// staged snapshot, safe to run concurrently with choose()/observe()
  /// (hosts hold their policy lock shared).  Concurrent prepares serialize
  /// on an internal mutex.  commit_refresh() just publishes the staged
  /// snapshot — the RCU pointer swap is the only work left under the
  /// host's exclusive lock; with nothing staged it falls back to a full
  /// monolithic build.
  void prepare_refresh(TimeSec now) override;
  void commit_refresh(TimeSec now) override;
  /// Coverage holes collected while building per-pair candidate sets, for
  /// the active-measurement extension (§7).  Drains the wishlist.
  [[nodiscard]] std::vector<ProbeRequest> plan_probes(std::size_t max_probes) override;
  [[nodiscard]] std::string_view name() const override { return "via"; }

  /// choose/observe/plan_probes/top_k_for are safe to call concurrently;
  /// refresh and attach_telemetry still require exclusion (see policy.h).
  [[nodiscard]] bool concurrent_safe() const noexcept override { return true; }

  /// Telemetry hookup (obs/telemetry.h): per-decision reason counters and
  /// DecisionTrace events, per-refresh coverage/tomography instruments.
  /// Instrument references are resolved once here so choose() stays a few
  /// relaxed atomics.  nullptr detaches.
  void attach_telemetry(obs::Telemetry* telemetry) override;

  /// Federation hook (§6k): supplies peer-replica tomography segments to
  /// fold into each refresh's staged snapshot, right after its predictor
  /// trains and before memos/prewarm derive from it.  An unset source or
  /// an empty return is a strict no-op — decisions stay bit-identical to a
  /// standalone controller, which is what the golden-hash tests pin.
  /// Serialized with prepares; safe to call while serving.
  using PeerSegmentSource = std::function<std::vector<PeerSegment>()>;
  void set_peer_segment_source(PeerSegmentSource source);
  /// Lifetime count of peer segment estimates folded into snapshots.
  [[nodiscard]] std::int64_t peer_segments_folded() const noexcept {
    return peer_segments_folded_.load(std::memory_order_relaxed);
  }

  /// Decision accounting, for the Section 5.2 relaying-mix analysis.
  struct Stats {
    std::int64_t calls = 0;
    std::int64_t epsilon_explored = 0;
    std::int64_t bandit_served = 0;     ///< calls decided by the top-k bandit
    std::int64_t cold_start_direct = 0; ///< no prediction available yet
    std::int64_t budget_denied = 0;
    std::int64_t relay_cap_denied = 0;
    std::int64_t quarantine_rerouted = 0;    ///< pick hit a quarantined relay; substituted
    std::int64_t outage_fallback_direct = 0; ///< every candidate quarantined; direct used
    std::int64_t chose_direct = 0;
    std::int64_t chose_bounce = 0;
    std::int64_t chose_transit = 0;
  };
  /// A consistent-enough snapshot of the relaxed atomic counters (exact
  /// once concurrent callers have quiesced).
  [[nodiscard]] Stats stats() const noexcept;

  /// Memory accounting across the policy's three stateful layers (§6i),
  /// surfaced as the policy.mem.* gauges and /varz.  Non-const: walking
  /// the store takes its stripe locks.
  struct MemoryStats {
    std::size_t window_bytes = 0;    ///< accumulating history window
    std::size_t snapshot_bytes = 0;  ///< published snapshot (window+predictor+memos)
    std::size_t store_bytes = 0;     ///< per-pair serving state
    std::size_t window_paths = 0;
    std::size_t resident_pairs = 0;
    std::int64_t window_evictions = 0;  ///< lifetime, across all windows
    std::int64_t window_rejected = 0;   ///< lifetime path_key-range rejections
    std::int64_t store_evictions = 0;   ///< lifetime ttl+cap evictions
    std::int64_t memo_overflow_builds = 0;  ///< published snapshot only
    [[nodiscard]] std::size_t total_bytes() const noexcept {
      return window_bytes + snapshot_bytes + store_bytes;
    }
  };
  [[nodiscard]] MemoryStats memory_stats();

  /// The currently published model's predictor.  The reference is valid
  /// while the snapshot stays published; hold model() across refreshes if
  /// concurrent refreshing is possible.
  [[nodiscard]] const Predictor& predictor() const noexcept { return model()->predictor(); }
  [[nodiscard]] const ViaConfig& config() const noexcept { return config_; }

  /// The published read-only model snapshot (refresh() swaps a new one in).
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> model() const noexcept {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// The pair's current top-k set (empty if nothing predictable this
  /// period), read from the published ModelSnapshot; exposed for the
  /// deployment prototype and tests.  Const: a cold pair's model is built
  /// memoized into the snapshot, which is logically immutable.
  [[nodiscard]] std::vector<RankedOption> top_k_for(const CallContext& call) const;

  /// The per-relay health state machine (read-only; observe() drives it).
  [[nodiscard]] const RelayHealthTracker& relay_health() const noexcept { return health_; }

 private:
  /// Cached instrument pointers, all null while no telemetry is attached.
  struct Instruments {
    obs::DecisionTrace* trace = nullptr;
    /// Request tracing (§6g): null unless the attached telemetry's tracer
    /// is enabled, so the untraced choose() pays exactly one branch.
    obs::Tracer* tracer = nullptr;
    /// Flight recorder (§6g): null unless enabled; fed only by rare
    /// structural events (health transitions, total-outage fallbacks).
    obs::FlightRecorder* flight = nullptr;
    /// True only when the attached trace ring has nonzero capacity; gates
    /// the per-call DecisionEvent construction and observed-value fill-in
    /// so a disabled ring costs nothing on the choose/observe hot paths.
    bool ring = false;
    obs::Counter* ucb = nullptr;
    obs::Counter* epsilon_explore = nullptr;
    obs::Counter* budget_veto = nullptr;
    obs::Counter* fallback_direct = nullptr;
    obs::Counter* quarantined_relay = nullptr;
    obs::Counter* fallback_direct_outage = nullptr;
    obs::Counter* health_quarantine_events = nullptr;
    obs::Counter* health_readmissions = nullptr;
    obs::Gauge* health_quarantined = nullptr;
    obs::Gauge* health_degraded = nullptr;
    obs::Counter* choice_direct = nullptr;
    obs::Counter* choice_bounce = nullptr;
    obs::Counter* choice_transit = nullptr;
    obs::Counter* refreshes = nullptr;
    obs::Counter* predict_considered = nullptr;
    obs::Counter* predict_valid = nullptr;
    obs::Gauge* tomography_segments = nullptr;
    obs::Gauge* tomography_sweeps = nullptr;
    obs::LatencyHistogram* topk_size = nullptr;
    obs::LatencyHistogram* refresh_prepare_us = nullptr;
    obs::LatencyHistogram* refresh_swap_us = nullptr;
    /// §6i memory gauges, refreshed once per commit (totals, so gauges
    /// rather than counters: a restart-safe scrape sees current state).
    obs::Gauge* mem_window_bytes = nullptr;
    obs::Gauge* mem_snapshot_bytes = nullptr;
    obs::Gauge* mem_store_bytes = nullptr;
    obs::Gauge* mem_total_bytes = nullptr;
    obs::Gauge* mem_resident_pairs = nullptr;
    obs::Gauge* mem_window_evictions = nullptr;
    obs::Gauge* mem_store_evictions = nullptr;
    obs::Gauge* mem_rejected_keys = nullptr;
    obs::Gauge* mem_memo_overflow = nullptr;
  };

  /// PairBuildObserver: telemetry tallies + probe-wishlist fill for one
  /// cold per-pair model build (fires once per pair and snapshot).
  void on_pair_built(const CallContext& call, std::span<const Prediction> preds,
                     std::span<const RankedOption> top_k,
                     const TopKCoverage& coverage) override;

  void count_choice(OptionId option);
  /// Emits the reason counter + DecisionTrace event for one routed call
  /// (no-op when telemetry is detached).
  void trace_decision(const CallContext& call, OptionId option, obs::DecisionReason reason,
                      std::span<const RankedOption> top_k, std::int64_t bandit_pulls);

  /// choose() against an already-pinned snapshot — the shared body of
  /// choose() and choose_batch().
  [[nodiscard]] OptionId choose_with(const std::shared_ptr<const ModelSnapshot>& snap,
                                     const CallContext& call);

  /// The published snapshot via a thread-local pin revalidated against
  /// snapshot_version_.  Functionally identical to model(), but the common
  /// case (no refresh since this thread's last call) costs one acquire
  /// load of a plain word instead of an atomic<shared_ptr> load — which in
  /// libstdc++ serializes every caller on a per-object spinlock plus two
  /// contended refcount RMWs, and was a main driver of the 4/8-thread
  /// choose throughput decline.
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> model_cached() const noexcept;

  const RelayOptionTable* options_;
  ViaConfig config_;
  BackboneFn backbone_;  ///< kept to construct each refresh's predictor

  /// The accumulating window (stage 1).  Guarded by window_mutex_: a
  /// single insertion point keeps observation order — and therefore the
  /// next period's tomography solve — identical to the serial execution.
  std::mutex window_mutex_;
  HistoryWindow current_window_;

  /// The published read-only model (stages 2-3 products), RCU-style.
  std::atomic<std::shared_ptr<const ModelSnapshot>> snapshot_;
  /// Publication epoch: bumped (release) right after every snapshot_ store
  /// so model_cached() can revalidate thread-local pins cheaply.
  std::atomic<std::uint64_t> snapshot_version_{1};
  /// Globally unique per-instance id (never reused), keying the
  /// thread-local pins in model_cached() so a new policy constructed at a
  /// freed policy's address cannot inherit its stale cache entries.
  const std::uint64_t policy_uid_;

  /// The striped mutable serving state (stages 1 & 4).
  PairStateStore store_;

  /// Per-relay health (§6f); consulted by choose() only while
  /// config_.health.enabled, fed by observe().
  RelayHealthTracker health_;

  std::mutex wishlist_mutex_;
  std::vector<ProbeRequest> probe_wishlist_;  ///< guarded by wishlist_mutex_

  /// Split-refresh staging (§6e).  prepare_mutex_ serializes prepares and
  /// guards pending_ (the built-but-unpublished snapshot) and the lazily
  /// created pre-warm pool.
  std::mutex prepare_mutex_;
  std::shared_ptr<const ModelSnapshot> pending_;
  std::unique_ptr<ThreadPool> refresh_pool_;
  PeerSegmentSource peer_segment_source_;  ///< guarded by prepare_mutex_
  std::atomic<std::int64_t> peer_segments_folded_{0};

  /// Lifetime eviction/rejection totals carried across window swaps (each
  /// completed window's counters die with it); relaxed — diagnostics only.
  std::atomic<std::int64_t> window_evictions_total_{0};
  std::atomic<std::int64_t> window_rejected_total_{0};

  Instruments inst_;
};

}  // namespace via
