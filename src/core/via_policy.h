// The Via controller policy: prediction-guided exploration (Algorithm 1).
//
// Per refresh period (every T hours, stages 2-3): train the predictor
// (history + tomography) on the window that just completed, and lazily
// compute per-AS-pair top-k candidate sets from it.
//
// Per call (stages 1 & 4): with probability ε route to a uniformly random
// candidate (general exploration, guarding against non-stationary rewards);
// otherwise play the modified-UCB1 bandit over the pair's top-k set.  A
// budget filter (Section 4.6) can veto relaying when the predicted benefit
// is too small for the configured relay budget.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "common/relay_option.h"
#include "core/bandit.h"
#include "core/budget.h"
#include "core/history.h"
#include "core/policy.h"
#include "core/predictor.h"
#include "core/topk.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace via {

namespace obs {
class Counter;
class Gauge;
class LatencyHistogram;
class DecisionTrace;
enum class DecisionReason : std::uint8_t;
}  // namespace obs

struct ViaConfig {
  Metric target = Metric::Rtt;       ///< the metric this instance optimizes
  double epsilon = 0.03;             ///< general-exploration fraction
  TimeSec refresh_period = 24 * 3600;  ///< T (paper default: 24 hours)
  std::uint64_t seed = 99;
  PredictorConfig predictor;
  TopKConfig topk;
  BanditConfig bandit;
  BudgetConfig budget;  ///< fraction = 1 => unconstrained

  /// Per-relay load cap (paper §4.6 mentions per-relay budget models): no
  /// single relay may carry more than this fraction of the relayed calls.
  /// 1.0 disables the cap.
  double relay_share_cap = 1.0;

  /// Active-measurement planning (paper §7): remember up to this many
  /// coverage holes (candidate options with no prediction) per refresh
  /// period, to be offered via plan_probes().  0 disables.
  std::size_t probe_wishlist_capacity = 256;
};

class ViaPolicy : public RoutingPolicy {
 public:
  ViaPolicy(const RelayOptionTable& options, BackboneFn backbone, ViaConfig config = {});

  [[nodiscard]] OptionId choose(const CallContext& call) override;
  void observe(const Observation& obs) override;
  void refresh(TimeSec now) override;
  /// Coverage holes collected while building per-pair candidate sets, for
  /// the active-measurement extension (§7).  Drains the wishlist.
  [[nodiscard]] std::vector<ProbeRequest> plan_probes(std::size_t max_probes) override;
  [[nodiscard]] std::string_view name() const override { return "via"; }

  /// Telemetry hookup (obs/telemetry.h): per-decision reason counters and
  /// DecisionTrace events, per-refresh coverage/tomography instruments.
  /// Instrument references are resolved once here so choose() stays a few
  /// relaxed atomics.  nullptr detaches.
  void attach_telemetry(obs::Telemetry* telemetry) override;

  /// Decision accounting, for the Section 5.2 relaying-mix analysis.
  struct Stats {
    std::int64_t calls = 0;
    std::int64_t epsilon_explored = 0;
    std::int64_t bandit_served = 0;     ///< calls decided by the top-k bandit
    std::int64_t cold_start_direct = 0; ///< no prediction available yet
    std::int64_t budget_denied = 0;
    std::int64_t relay_cap_denied = 0;
    std::int64_t chose_direct = 0;
    std::int64_t chose_bounce = 0;
    std::int64_t chose_transit = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Predictor& predictor() const noexcept { return predictor_; }
  [[nodiscard]] const ViaConfig& config() const noexcept { return config_; }

  /// The pair's current top-k set (empty if not yet built this period);
  /// exposed for the deployment prototype and tests.
  [[nodiscard]] std::vector<RankedOption> top_k_for(const CallContext& call);

 private:
  struct PairState {
    std::uint64_t period = ~0ULL;  ///< refresh period the state was built in
    std::vector<RankedOption> top_k;
    UcbBandit bandit;
    double predicted_benefit = 0.0;  ///< direct mean - best candidate mean
  };

  /// Cached instrument pointers, all null while no telemetry is attached.
  struct Instruments {
    obs::DecisionTrace* trace = nullptr;
    /// True only when the attached trace ring has nonzero capacity; gates
    /// the per-call DecisionEvent construction and observed-value fill-in
    /// so a disabled ring costs nothing on the choose/observe hot paths.
    bool ring = false;
    obs::Counter* ucb = nullptr;
    obs::Counter* epsilon_explore = nullptr;
    obs::Counter* budget_veto = nullptr;
    obs::Counter* fallback_direct = nullptr;
    obs::Counter* choice_direct = nullptr;
    obs::Counter* choice_bounce = nullptr;
    obs::Counter* choice_transit = nullptr;
    obs::Counter* refreshes = nullptr;
    obs::Counter* predict_considered = nullptr;
    obs::Counter* predict_valid = nullptr;
    obs::Gauge* tomography_segments = nullptr;
    obs::LatencyHistogram* topk_size = nullptr;
  };

  PairState& pair_state(const CallContext& call);
  void count_choice(OptionId option);
  /// Emits the reason counter + DecisionTrace event for one routed call
  /// (no-op when telemetry is detached).
  void trace_decision(const CallContext& call, OptionId option, obs::DecisionReason reason,
                      const PairState& state);
  /// Whether the relay-share cap permits routing another call via `option`;
  /// updates the per-relay load accounting when it does.
  [[nodiscard]] bool relay_cap_allows(OptionId option);

  const RelayOptionTable* options_;
  ViaConfig config_;
  HistoryWindow current_window_;
  HistoryWindow trained_window_;  ///< the completed window the predictor uses
  Predictor predictor_;
  FlatMap<PairState> pairs_;
  BudgetFilter budget_;
  Rng rng_;
  std::uint64_t period_ = 0;
  Stats stats_;
  std::vector<ProbeRequest> probe_wishlist_;
  FlatMap<std::int64_t> relay_load_;  ///< keyed by RelayId
  std::int64_t relayed_total_ = 0;
  Instruments inst_;
  // Per-pair rebuild scratch: one predictor probe per candidate feeds the
  // top-k build, the direct baseline, the benefit estimate, and the probe
  // wishlist; buffers are reused across rebuilds.
  std::vector<Prediction> scratch_preds_;
  TopKScratch topk_scratch_;
};

}  // namespace via
