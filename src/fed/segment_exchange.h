// Segment exchange (DESIGN.md §6k): the cross-shard pooling of tomography
// segment estimates.  Segments (client<->relay) are shared between AS
// pairs, so shards that pool them converge faster than isolated ones (the
// paper's §4.3 decomposition argument).
//
// Each replica periodically *pushes* its solver's segment estimates to its
// peers (GossipSegments RPC); the receiving side parks the latest update
// per peer in a SegmentExchange, and the policy's peer-segment source
// drains a merged, deterministically ordered view at the next
// prepare_refresh, where TomographySolver::fold_peer_segments folds it in.
// With no peers the collect is empty and the refresh is bit-identical to a
// standalone controller.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "core/tomography.h"

namespace via::fed {

/// One replica's segment snapshot as received from the wire.
struct SegmentUpdate {
  std::uint32_t replica_id = 0;
  std::uint64_t ring_epoch = 0;
  std::vector<PeerSegment> segments;
};

/// Thread-safe store of the latest segment snapshot per peer replica.
class SegmentExchange {
 public:
  /// Replaces the stored snapshot for `update.replica_id`.  Returns the
  /// number of segment estimates accepted.
  std::size_t accept(SegmentUpdate update);

  /// Merged view of every stored peer snapshot, ordered by (segment key,
  /// replica id) so the downstream fold is deterministic for any arrival
  /// order.  Leaves the store intact (updates are state, not a queue: a
  /// refresh between two gossip rounds still sees the peers' last word).
  [[nodiscard]] std::vector<PeerSegment> collect() const;

  /// Renders a solver's current estimates as an outbound update, keeping
  /// at most `max_segments` (ties and order resolved by highest evidence
  /// first, then ascending key — deterministic).
  [[nodiscard]] static std::vector<PeerSegment> render(const TomographySolver& solver,
                                                      std::size_t max_segments);

  [[nodiscard]] std::size_t peers() const;
  [[nodiscard]] std::int64_t updates_accepted() const;
  [[nodiscard]] std::size_t segments_held() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::uint32_t, SegmentUpdate> by_peer_;
  std::int64_t updates_accepted_ = 0;
};

}  // namespace via::fed
