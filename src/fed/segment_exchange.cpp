#include "fed/segment_exchange.h"

#include <algorithm>
#include <utility>

namespace via::fed {

std::size_t SegmentExchange::accept(SegmentUpdate update) {
  const std::size_t n = update.segments.size();
  const std::lock_guard lock(mutex_);
  ++updates_accepted_;
  by_peer_[update.replica_id] = std::move(update);
  return n;
}

std::vector<PeerSegment> SegmentExchange::collect() const {
  std::vector<PeerSegment> out;
  std::vector<std::pair<std::uint32_t, const PeerSegment*>> tagged;
  {
    const std::lock_guard lock(mutex_);
    std::size_t total = 0;
    for (const auto& [id, update] : by_peer_) total += update.segments.size();
    out.reserve(total);
    tagged.reserve(total);
    for (const auto& [id, update] : by_peer_) {
      for (const PeerSegment& s : update.segments) tagged.emplace_back(id, &s);
    }
    std::sort(tagged.begin(), tagged.end(), [](const auto& a, const auto& b) {
      return a.second->key != b.second->key ? a.second->key < b.second->key
                                            : a.first < b.first;
    });
    for (const auto& [id, seg] : tagged) out.push_back(*seg);
  }
  return out;
}

std::vector<PeerSegment> SegmentExchange::render(const TomographySolver& solver,
                                                 std::size_t max_segments) {
  std::vector<PeerSegment> all;
  all.reserve(solver.segment_count());
  solver.for_each_segment([&](std::uint64_t key, const SegmentEstimate& est) {
    if (est.evidence > 0) all.push_back(PeerSegment{key, est});
  });
  std::sort(all.begin(), all.end(), [](const PeerSegment& a, const PeerSegment& b) {
    return a.est.evidence != b.est.evidence ? a.est.evidence > b.est.evidence
                                            : a.key < b.key;
  });
  if (max_segments > 0 && all.size() > max_segments) all.resize(max_segments);
  return all;
}

std::size_t SegmentExchange::peers() const {
  const std::lock_guard lock(mutex_);
  return by_peer_.size();
}

std::int64_t SegmentExchange::updates_accepted() const {
  const std::lock_guard lock(mutex_);
  return updates_accepted_;
}

std::size_t SegmentExchange::segments_held() const {
  const std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& [id, update] : by_peer_) total += update.segments.size();
  return total;
}

void SegmentExchange::clear() {
  const std::lock_guard lock(mutex_);
  by_peer_.clear();
}

}  // namespace via::fed
