// Federation configuration (DESIGN.md §6k): everything a client or replica
// needs to agree on the fleet layout — replica endpoints, the consistent-
// hash ring parameters, the segment-exchange cadence, and the client-side
// failover state-machine knobs.  The ring is a pure function of this
// struct, so distributing the config distributes the shard map.
#pragma once

#include <cstdint>
#include <vector>

namespace via::fed {

struct FederationConfig {
  /// Loopback TCP ports of the controller replicas; index == replica id.
  std::vector<std::uint16_t> replica_ports;

  /// Consistent-hash ring parameters; all parties must agree.
  std::uint64_t ring_seed = 0x5eedu;
  int ring_vnodes = 64;
  /// Ring configuration epoch, stamped into replies so a client holding an
  /// older config can detect that it is routing on a stale ring.
  std::uint64_t ring_epoch = 1;

  /// How often replicas push their tomography segment estimates to peers.
  int exchange_period_ms = 1000;
  /// Most-evidenced segments kept per gossip push (bounds frame size).
  std::size_t exchange_max_segments = 8192;

  /// Consecutive timeouts/resets against one replica before the client
  /// marks it down and re-homes its traffic to the ring successor.
  int fail_threshold = 2;
  /// While a replica is down, the client re-probes it (Ping) at most once
  /// per this period; a successful probe returns it to rotation.
  int probe_period_ms = 200;

  [[nodiscard]] std::uint32_t replicas() const noexcept {
    return static_cast<std::uint32_t>(replica_ports.size());
  }
};

}  // namespace via::fed
