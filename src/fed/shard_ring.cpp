#include "fed/shard_ring.h"

#include <algorithm>

#include "util/rng.h"

namespace via::fed {

ShardRing::ShardRing(std::uint32_t replicas, std::uint64_t seed, int vnodes)
    : replicas_(std::max<std::uint32_t>(1, replicas)), seed_(seed) {
  const int points_per = std::max(1, vnodes);
  points_.reserve(static_cast<std::size_t>(replicas_) * static_cast<std::size_t>(points_per));
  for (std::uint32_t r = 0; r < replicas_; ++r) {
    for (int v = 0; v < points_per; ++v) {
      points_.push_back(Point{hash_mix(seed_, static_cast<std::uint64_t>(r) + 1,
                                       static_cast<std::uint64_t>(v) + 1),
                              r});
    }
  }
  // Position ties (astronomically rare) break by replica id so the ring is
  // a total order — identical on every host.
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.pos != b.pos ? a.pos < b.pos : a.replica < b.replica;
  });
}

std::size_t ShardRing::first_point(std::uint64_t key) const noexcept {
  const std::uint64_t h = hash_mix(seed_, key);
  std::size_t lo = 0;
  std::size_t hi = points_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (points_[mid].pos < h) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == points_.size() ? 0 : lo;  // wrap past the last point
}

std::uint32_t ShardRing::owner(std::uint64_t key) const noexcept {
  return points_[first_point(key)].replica;
}

std::vector<std::uint32_t> ShardRing::route(std::uint64_t key) const {
  std::vector<std::uint32_t> out;
  out.reserve(replicas_);
  std::vector<bool> seen(replicas_, false);
  const std::size_t start = first_point(key);
  for (std::size_t i = 0; i < points_.size() && out.size() < replicas_; ++i) {
    const Point& p = points_[(start + i) % points_.size()];
    if (!seen[p.replica]) {
      seen[p.replica] = true;
      out.push_back(p.replica);
    }
  }
  return out;
}

std::vector<std::uint64_t> ShardRing::load_split(std::uint64_t samples) const {
  std::vector<std::uint64_t> counts(replicas_, 0);
  for (std::uint64_t k = 0; k < samples; ++k) ++counts[owner(k)];
  return counts;
}

}  // namespace via::fed
