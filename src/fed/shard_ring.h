// Consistent-hash ring for the sharded control plane (DESIGN.md §6k).
//
// The AS-pair key space is partitioned across N controller replicas with a
// classic virtual-node ring: every replica hashes `vnodes` points onto a
// 64-bit circle, and a pair key is owned by the replica whose point is the
// first at-or-after the key's own hash.  Virtual nodes smooth the split
// (max/min owned share stays within a small factor of 1), and keeping the
// point set a pure function of (replicas, seed, vnodes) makes every client
// and replica agree on the mapping without any coordination — the ring is
// configuration, not state.
//
// `route()` returns the distinct replicas in ring order starting at the
// owner: element 0 is the shard home, element 1 the failover successor a
// client re-homes to while the owner is down, and so on.  Removing a
// replica therefore only moves the keys it owned (the consistent-hashing
// minimal-disruption property), which the federation tests assert.
#pragma once

#include <cstdint>
#include <vector>

namespace via::fed {

class ShardRing {
 public:
  /// `replicas` must be >= 1; `vnodes` is points per replica (clamped to
  /// >= 1).  The same (replicas, seed, vnodes) always builds the same ring.
  ShardRing(std::uint32_t replicas, std::uint64_t seed, int vnodes = 64);

  [[nodiscard]] std::uint32_t replicas() const noexcept { return replicas_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// The replica owning `key` (the shard home for an AS-pair key).
  [[nodiscard]] std::uint32_t owner(std::uint64_t key) const noexcept;

  /// All `replicas()` distinct replicas in ring order from the owner:
  /// out[0] == owner(key), out[1] is the first failover successor, ...
  [[nodiscard]] std::vector<std::uint32_t> route(std::uint64_t key) const;

  /// Keys per replica over `samples` sequential probe keys (diagnostics /
  /// balance tests).
  [[nodiscard]] std::vector<std::uint64_t> load_split(std::uint64_t samples) const;

 private:
  struct Point {
    std::uint64_t pos;
    std::uint32_t replica;
  };

  /// Index into points_ of the first point at-or-after the key's hash.
  [[nodiscard]] std::size_t first_point(std::uint64_t key) const noexcept;

  std::uint32_t replicas_;
  std::uint64_t seed_;
  std::vector<Point> points_;  ///< sorted by pos (ties broken by replica)
};

}  // namespace via::fed
