// Temporal dynamics of WAN congestion.
//
// Each link (direct AS pair, or AS<->relay segment) carries a daily
// congestion level >= 0 composed of:
//   - an AR(1) day-to-day noise series (smooth ordinary variation),
//   - sporadic multi-day "bad events" whose per-link proneness is strongly
//     skewed (a few links are nearly always bad, most are rarely bad) —
//     this is what reproduces the persistence/prevalence distributions of
//     the paper's Figure 6,
//   - a within-day diurnal factor peaking in the local evening.
//
// The series is a pure function of (link key, day), so the ground truth is
// reproducible and can be queried lazily; computed series are memoized.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "util/sharded_map.h"

namespace via {

struct DynamicsParams {
  double ar1_rho = 0.45;          ///< day-to-day correlation of ordinary noise
  double sigma_min = 0.25;        ///< per-link congestion volatility range
  double sigma_max = 0.90;
  double event_proneness_base = 0.015;  ///< per-day event start probability, calm links
  double event_proneness_spread = 0.30; ///< added as spread * u^6 (rare chronic links)
  double event_mean_duration_days = 2.5;
  double event_max_duration_days = 30.0;
  double event_severity_mean = 1.6;     ///< congestion units added during an event
  double diurnal_amplitude_min = 0.10;
  double diurnal_amplitude_max = 0.45;
  int peak_hour = 20;                   ///< local evening busy hour
};

/// Per-link congestion level as a function of day, plus the intra-day
/// diurnal multiplier.  Safe for concurrent readers: every query is a pure
/// function of (link key, day) and the AR(1) memo sits behind striped locks.
class Dynamics {
 public:
  explicit Dynamics(std::uint64_t seed, DynamicsParams params = {});

  /// Congestion level (>= 0) of the link on the given day; ~0 most days,
  /// around `event_severity_mean` during a bad event.
  [[nodiscard]] double congestion(std::uint64_t link_key, int day) const;

  /// Multiplier (mean ~1 across the day) applied to the congestion-driven
  /// component of the metrics within a day.
  [[nodiscard]] double diurnal_factor(std::uint64_t link_key, TimeSec t) const;

  /// True when the link is inside a bad event on `day` (exposed for tests
  /// and for the persistence/prevalence calibration bench).
  [[nodiscard]] bool in_event(std::uint64_t link_key, int day) const;

  [[nodiscard]] const DynamicsParams& params() const noexcept { return params_; }

 private:
  struct LinkTraits {
    double sigma;
    double proneness;
    double diurnal_amplitude;
    // Per-metric congestion weights so RTT/loss/jitter aren't perfectly
    // correlated (used by GroundTruth, exposed via traits()).
    double w_rtt, w_loss, w_jitter;
  };
  friend class GroundTruth;

  [[nodiscard]] LinkTraits traits(std::uint64_t link_key) const;
  [[nodiscard]] double ar1_level(std::uint64_t link_key, int day) const;
  [[nodiscard]] double event_severity(std::uint64_t link_key, int day) const;

  std::uint64_t seed_;
  DynamicsParams params_;
  /// Memoized AR(1) series per link (grown on demand under striped locks).
  mutable ShardedMap<std::vector<float>> series_;
};

}  // namespace via
