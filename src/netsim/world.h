// Synthetic Internet world: countries at real coordinates, ASes scattered
// around their country with heterogeneous last-mile quality, and relay
// sites at real cloud-datacenter cities joined by a private backbone.
//
// This is the substitute for the proprietary Skype client population (see
// DESIGN.md Section 3): Via's algorithms only ever observe (AS, country,
// option, metrics) tuples, so a world with realistic geography, skewed
// activity, and heterogeneous infrastructure exercises the same code paths.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "util/geo.h"
#include "util/rng.h"

namespace via {

/// Static country catalog entry.
struct CountryInfo {
  std::string name;
  std::string iso;      ///< two-letter code
  GeoPoint centroid;
  double call_weight;   ///< relative share of global call activity
  double infra_quality; ///< 0 (poor) .. 1 (excellent) last-mile / peering
};

/// One autonomous system (eyeball network) in the synthetic world.
struct AsNode {
  CountryId country = -1;
  GeoPoint pos;
  double activity = 1.0;         ///< relative call volume weight
  double lastmile_rtt_ms = 10.0; ///< access RTT contribution
  double lastmile_loss_pct = 0.1;
  double lastmile_jitter_ms = 2.0;
  double peering_quality = 0.8;  ///< 0..1; poor peering => circuitous WAN paths
};

/// One relay site (datacenter) of the managed overlay.
struct RelaySite {
  std::string city;
  GeoPoint pos;
};

struct WorldConfig {
  int num_ases = 200;
  int num_relays = 30;  ///< capped at the site catalog size
  std::uint64_t seed = 42;
};

/// The generated world.  Immutable after construction.
class World {
 public:
  explicit World(const WorldConfig& config);

  [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::span<const CountryInfo> countries() const noexcept { return countries_; }
  [[nodiscard]] std::span<const AsNode> ases() const noexcept { return ases_; }
  [[nodiscard]] std::span<const RelaySite> relays() const noexcept { return relays_; }

  [[nodiscard]] const CountryInfo& country_of(AsId as) const {
    return countries_[static_cast<std::size_t>(ases_[static_cast<std::size_t>(as)].country)];
  }
  [[nodiscard]] const AsNode& as_node(AsId as) const {
    return ases_[static_cast<std::size_t>(as)];
  }
  [[nodiscard]] const RelaySite& relay(RelayId r) const {
    return relays_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int num_ases() const noexcept { return static_cast<int>(ases_.size()); }
  [[nodiscard]] int num_relays() const noexcept { return static_cast<int>(relays_.size()); }
  [[nodiscard]] int num_countries() const noexcept { return static_cast<int>(countries_.size()); }

  /// Per-AS activity weights (relative call volume), for workload sampling.
  [[nodiscard]] std::span<const double> as_activity() const noexcept { return activity_; }

  /// The full built-in country catalog (also used by tests).
  [[nodiscard]] static std::span<const CountryInfo> country_catalog();
  /// The full built-in relay site catalog.
  [[nodiscard]] static std::span<const RelaySite> relay_site_catalog();

 private:
  WorldConfig config_;
  std::vector<CountryInfo> countries_;
  std::vector<AsNode> ases_;
  std::vector<RelaySite> relays_;
  std::vector<double> activity_;
};

}  // namespace via
