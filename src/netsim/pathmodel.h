// Static (time-invariant) path performance model.
//
// Three kinds of network segments exist in the world:
//   - direct AS<->AS paths over the public Internet (BGP-derived),
//   - AS<->relay segments over the public Internet (client to datacenter),
//   - relay<->relay links over the provider's private backbone.
//
// Each segment's *base* performance is a deterministic function of geometry
// (great-circle distance), endpoint last-mile characteristics, and a stable
// per-pair random draw modelling route circuitousness and peering quality.
// Public paths between poorly-peered networks are circuitous and lossy —
// which is exactly the headroom a managed overlay exploits; the private
// backbone runs near the fibre limit.  Time-varying congestion is layered
// on top by Dynamics (dynamics.h).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "netsim/world.h"

namespace via {

struct PathModelParams {
  // Direct AS<->AS public paths.
  double direct_circuitousness_min = 1.25;
  double direct_circuitousness_spread = 1.6;  ///< added as spread * u^2 (heavy tail)
  double direct_intl_penalty = 0.35;          ///< extra circuitousness across borders
  double poor_peering_penalty = 1.0;          ///< extra circuitousness for poor networks
  double direct_wan_loss_pct = 0.8;           ///< scale of WAN loss on poor public paths
  double direct_wan_jitter_ms = 6.0;          ///< scale of WAN jitter on public paths
  /// Distance at which WAN loss/jitter reach full scale (longer paths cross
  /// more congested interconnects).
  double wan_full_scale_km = 8000.0;

  // AS<->relay public segments: cloud providers peer widely, so these
  // are straighter and cleaner than arbitrary AS<->AS paths.
  double segment_circuitousness_min = 1.1;
  double segment_circuitousness_spread = 0.5;
  double segment_poor_peering_penalty = 0.45;
  double segment_wan_loss_pct = 0.25;
  double segment_wan_jitter_ms = 2.0;

  // Private backbone relay<->relay links.
  double backbone_circuitousness = 1.05;
  double backbone_fixed_rtt_ms = 1.0;
  double backbone_loss_pct = 0.01;
  double backbone_jitter_ms = 0.3;
};

/// Computes base (uncongested daily-average) performance for every segment
/// kind.  Stateless and thread-safe; all randomness is hashed from
/// (seed, endpoint ids) so the same world always yields the same paths.
class PathModel {
 public:
  PathModel(const World& world, PathModelParams params = {});

  /// Base performance of the direct public path between two ASes.
  [[nodiscard]] PathPerformance direct_base(AsId a, AsId b) const;

  /// Base performance of the public segment between an AS and a relay.
  /// Includes the AS-side last mile; the relay side contributes none.
  [[nodiscard]] PathPerformance segment_base(AsId a, RelayId r) const;

  /// Performance of the private backbone link between two relays
  /// (deterministic; the overlay operator knows this matrix).
  [[nodiscard]] PathPerformance backbone(RelayId r1, RelayId r2) const;

  [[nodiscard]] const World& world() const noexcept { return *world_; }
  [[nodiscard]] const PathModelParams& params() const noexcept { return params_; }

  /// Stable link keys for the dynamics layer.
  [[nodiscard]] std::uint64_t direct_link_key(AsId a, AsId b) const noexcept;
  [[nodiscard]] std::uint64_t segment_link_key(AsId a, RelayId r) const noexcept;

  /// How exposed a link is to WAN congestion (0..1): longer paths traverse
  /// more shared interconnects; scales the dynamics layer's contribution.
  [[nodiscard]] double direct_congestion_exposure(AsId a, AsId b) const;
  [[nodiscard]] double segment_congestion_exposure(AsId a, RelayId r) const;

 private:
  const World* world_;
  PathModelParams params_;
  std::uint64_t seed_;
};

}  // namespace via
