#include "netsim/dynamics.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace via {

Dynamics::Dynamics(std::uint64_t seed, DynamicsParams params)
    : seed_(hash_mix(seed, 0xd14a)), params_(params) {}

Dynamics::LinkTraits Dynamics::traits(std::uint64_t link_key) const {
  const std::uint64_t k = hash_mix(seed_, link_key);
  LinkTraits t;
  t.sigma = params_.sigma_min +
            (params_.sigma_max - params_.sigma_min) * hashed_uniform(hash_mix(k, 1));
  // Strongly skewed proneness: u^6 keeps most links calm while a small
  // fraction are chronically bad (Figure 6's always-high-PNR tail).
  const double u = hashed_uniform(hash_mix(k, 2));
  t.proneness = params_.event_proneness_base + params_.event_proneness_spread * std::pow(u, 6.0);
  t.diurnal_amplitude =
      params_.diurnal_amplitude_min +
      (params_.diurnal_amplitude_max - params_.diurnal_amplitude_min) *
          hashed_uniform(hash_mix(k, 3));
  t.w_rtt = 0.5 + hashed_uniform(hash_mix(k, 4));
  t.w_loss = 0.5 + hashed_uniform(hash_mix(k, 5));
  t.w_jitter = 0.5 + hashed_uniform(hash_mix(k, 6));
  return t;
}

double Dynamics::ar1_level(std::uint64_t link_key, int day) const {
  if (day < 0) return 0.0;
  const auto idx = static_cast<std::size_t>(day);

  struct Hit {
    bool found = false;
    double level = 0.0;
  };
  const Hit hit =
      series_.with_shared(link_key, [&](const FlatMap<std::vector<float>>& map) {
        const std::vector<float>* series = map.find(link_key);
        if (series != nullptr && series->size() > idx) {
          return Hit{true, static_cast<double>((*series)[idx])};
        }
        return Hit{};
      });
  if (hit.found) return hit.level;

  // AR(1) needs the previous element, so the series is extended in place
  // under the write lock (re-checking: another thread may have extended it).
  return series_.with_unique(link_key, [&](FlatMap<std::vector<float>>& map) {
    std::vector<float>& series = map[link_key];
    if (series.size() <= idx) {
      const std::uint64_t k = hash_mix(seed_, link_key, 0xa41);
      double prev = series.empty() ? hashed_gaussian(hash_mix(k, 0xFFFF))
                                   : static_cast<double>(series.back());
      const double rho = params_.ar1_rho;
      const double innov = std::sqrt(1.0 - rho * rho);
      for (int d = static_cast<int>(series.size()); d <= day; ++d) {
        // Round through the stored float each step so series[d] does not
        // depend on how many days one call extends (see wobble_level).
        prev = static_cast<float>(
            rho * prev + innov * hashed_gaussian(hash_mix(k, static_cast<std::uint64_t>(d))));
        series.push_back(static_cast<float>(prev));
      }
    }
    return static_cast<double>(series[idx]);
  });
}

double Dynamics::event_severity(std::uint64_t link_key, int day) const {
  const LinkTraits t = traits(link_key);
  const std::uint64_t k = hash_mix(seed_, link_key, 0xE7E);
  const int max_dur = static_cast<int>(params_.event_max_duration_days);
  double severity = 0.0;
  // An event starting on day d0 with duration L covers [d0, d0+L).  Scan the
  // possible start days that could cover `day`.
  for (int back = 0; back < max_dur; ++back) {
    const int d0 = day - back;
    if (d0 < 0) break;
    const std::uint64_t ek = hash_mix(k, static_cast<std::uint64_t>(d0));
    if (hashed_uniform(hash_mix(ek, 1)) >= t.proneness) continue;
    // Geometric-ish duration with a hard cap.
    const double u = std::max(1e-12, hashed_uniform(hash_mix(ek, 2)));
    const int duration = std::min(
        max_dur, 1 + static_cast<int>(-std::log(u) * (params_.event_mean_duration_days - 1.0)));
    if (back < duration) {
      // Severity: exponential around the mean; overlapping events take max.
      const double sev = params_.event_severity_mean *
                         (0.4 + 1.2 * hashed_uniform(hash_mix(ek, 3)));
      severity = std::max(severity, sev);
    }
  }
  return severity;
}

bool Dynamics::in_event(std::uint64_t link_key, int day) const {
  return event_severity(link_key, day) > 0.0;
}

double Dynamics::congestion(std::uint64_t link_key, int day) const {
  const LinkTraits t = traits(link_key);
  const double ordinary = std::max(0.0, t.sigma * ar1_level(link_key, day));
  return ordinary + event_severity(link_key, day);
}

double Dynamics::diurnal_factor(std::uint64_t link_key, TimeSec t) const {
  const LinkTraits tr = traits(link_key);
  const double hour = static_cast<double>(t % kSecondsPerDay) / 3600.0;
  const double phase = 2.0 * std::numbers::pi * (hour - params_.peak_hour) / 24.0;
  return 1.0 + tr.diurnal_amplitude * std::cos(phase);
}

}  // namespace via
