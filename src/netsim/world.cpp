#include "netsim/world.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace via {

namespace {

// Country catalog: rough geographic centroids, relative VoIP call activity
// weights, and an infrastructure-quality score (0..1) controlling last-mile
// and peering characteristics.  Weights skew towards countries with heavy
// international calling, mirroring the paper's observation that 46.6% of
// calls are international.
const std::vector<CountryInfo>& country_table() {
  static const std::vector<CountryInfo> table = {
      {"United States", "US", {38.0, -97.0}, 10.0, 0.90},
      {"India", "IN", {21.0, 78.0}, 9.0, 0.45},
      {"China", "CN", {35.0, 104.0}, 6.0, 0.60},
      {"Brazil", "BR", {-10.0, -55.0}, 5.0, 0.55},
      {"Russia", "RU", {60.0, 100.0}, 4.0, 0.60},
      {"United Kingdom", "GB", {54.0, -2.0}, 5.0, 0.92},
      {"Germany", "DE", {51.0, 10.0}, 5.0, 0.92},
      {"France", "FR", {46.0, 2.0}, 4.0, 0.90},
      {"Philippines", "PH", {13.0, 122.0}, 4.0, 0.40},
      {"Indonesia", "ID", {-5.0, 120.0}, 4.0, 0.40},
      {"Nigeria", "NG", {9.0, 8.0}, 3.0, 0.30},
      {"Mexico", "MX", {23.0, -102.0}, 3.0, 0.55},
      {"Pakistan", "PK", {30.0, 70.0}, 3.0, 0.35},
      {"Bangladesh", "BD", {24.0, 90.0}, 3.0, 0.35},
      {"Vietnam", "VN", {16.0, 108.0}, 3.0, 0.50},
      {"Egypt", "EG", {26.0, 30.0}, 2.5, 0.40},
      {"Turkey", "TR", {39.0, 35.0}, 2.5, 0.55},
      {"Iran", "IR", {32.0, 53.0}, 2.0, 0.40},
      {"Thailand", "TH", {15.0, 101.0}, 2.0, 0.55},
      {"Italy", "IT", {42.0, 12.0}, 3.0, 0.80},
      {"Spain", "ES", {40.0, -4.0}, 3.0, 0.85},
      {"Poland", "PL", {52.0, 20.0}, 2.5, 0.80},
      {"Ukraine", "UA", {49.0, 32.0}, 2.0, 0.60},
      {"Canada", "CA", {56.0, -106.0}, 3.0, 0.90},
      {"Australia", "AU", {-25.0, 134.0}, 2.5, 0.85},
      {"Japan", "JP", {36.0, 138.0}, 3.0, 0.95},
      {"South Korea", "KR", {36.0, 128.0}, 2.0, 0.97},
      {"Saudi Arabia", "SA", {24.0, 45.0}, 2.0, 0.60},
      {"United Arab Emirates", "AE", {24.0, 54.0}, 2.0, 0.75},
      {"Singapore", "SG", {1.3, 103.8}, 1.5, 0.97},
      {"Malaysia", "MY", {4.0, 102.0}, 1.5, 0.60},
      {"South Africa", "ZA", {-29.0, 24.0}, 2.0, 0.50},
      {"Kenya", "KE", {0.0, 38.0}, 1.5, 0.35},
      {"Ghana", "GH", {8.0, -1.0}, 1.0, 0.30},
      {"Morocco", "MA", {32.0, -6.0}, 1.0, 0.45},
      {"Algeria", "DZ", {28.0, 2.0}, 1.0, 0.40},
      {"Colombia", "CO", {4.0, -72.0}, 1.5, 0.50},
      {"Argentina", "AR", {-34.0, -64.0}, 1.5, 0.60},
      {"Peru", "PE", {-10.0, -76.0}, 1.0, 0.45},
      {"Chile", "CL", {-30.0, -71.0}, 1.0, 0.65},
      {"Venezuela", "VE", {7.0, -66.0}, 1.0, 0.35},
      {"Netherlands", "NL", {52.5, 5.75}, 2.0, 0.95},
      {"Sweden", "SE", {62.0, 15.0}, 1.5, 0.95},
      {"Norway", "NO", {61.0, 8.0}, 1.0, 0.95},
      {"Romania", "RO", {46.0, 25.0}, 1.5, 0.75},
      {"Greece", "GR", {39.0, 22.0}, 1.0, 0.70},
      {"Portugal", "PT", {39.5, -8.0}, 1.0, 0.80},
      {"Israel", "IL", {31.0, 35.0}, 1.5, 0.80},
      {"Sri Lanka", "LK", {7.0, 81.0}, 1.0, 0.40},
      {"Nepal", "NP", {28.0, 84.0}, 1.0, 0.30},
  };
  return table;
}

// Relay site catalog: cloud-datacenter metros of the big public clouds.
const std::vector<RelaySite>& relay_table() {
  static const std::vector<RelaySite> table = {
      {"Virginia", {39.0, -78.0}},      {"Oregon", {44.0, -121.0}},
      {"California", {37.4, -122.1}},   {"Texas", {30.3, -98.0}},
      {"Chicago", {41.9, -87.6}},       {"Miami", {25.8, -80.2}},
      {"Montreal", {45.5, -73.6}},      {"Sao Paulo", {-23.5, -46.6}},
      {"Rio de Janeiro", {-22.9, -43.2}}, {"Santiago", {-33.4, -70.6}},
      {"Dublin", {53.3, -6.3}},         {"London", {51.5, -0.1}},
      {"Amsterdam", {52.4, 4.9}},       {"Frankfurt", {50.1, 8.7}},
      {"Paris", {48.9, 2.3}},           {"Madrid", {40.4, -3.7}},
      {"Milan", {45.5, 9.2}},           {"Stockholm", {59.3, 18.1}},
      {"Warsaw", {52.2, 21.0}},         {"Moscow", {55.8, 37.6}},
      {"Istanbul", {41.0, 29.0}},       {"Dubai", {25.2, 55.3}},
      {"Tel Aviv", {32.1, 34.8}},       {"Johannesburg", {-26.2, 28.0}},
      {"Lagos", {6.5, 3.4}},            {"Nairobi", {-1.3, 36.8}},
      {"Mumbai", {19.1, 72.9}},         {"Delhi", {28.6, 77.2}},
      {"Chennai", {13.1, 80.3}},        {"Singapore", {1.35, 103.8}},
      {"Jakarta", {-6.2, 106.8}},       {"Hong Kong", {22.3, 114.2}},
      {"Tokyo", {35.7, 139.7}},         {"Osaka", {34.7, 135.5}},
      {"Seoul", {37.6, 127.0}},         {"Sydney", {-33.9, 151.2}},
      {"Melbourne", {-37.8, 145.0}},
  };
  return table;
}

}  // namespace

std::span<const CountryInfo> World::country_catalog() { return country_table(); }
std::span<const RelaySite> World::relay_site_catalog() { return relay_table(); }

World::World(const WorldConfig& config) : config_(config) {
  assert(config.num_ases > 0);
  countries_ = country_table();

  // Pick relay sites: take every site if we can, otherwise a spread-out
  // subset (stride over the catalog keeps geographic diversity).
  const auto& sites = relay_table();
  const int n_relays = std::clamp(config.num_relays, 1, static_cast<int>(sites.size()));
  relays_.reserve(static_cast<std::size_t>(n_relays));
  const double stride = static_cast<double>(sites.size()) / n_relays;
  for (int i = 0; i < n_relays; ++i) {
    relays_.push_back(sites[static_cast<std::size_t>(i * stride)]);
  }

  // Generate ASes: country by call weight; position jittered around the
  // centroid; last-mile characteristics driven by the country's
  // infrastructure quality plus per-AS heterogeneity.
  Rng rng(hash_mix(config.seed, 0xa51d));
  std::vector<double> weights;
  weights.reserve(countries_.size());
  for (const auto& c : countries_) weights.push_back(c.call_weight);

  ases_.reserve(static_cast<std::size_t>(config.num_ases));
  activity_.reserve(static_cast<std::size_t>(config.num_ases));
  for (int i = 0; i < config.num_ases; ++i) {
    const auto ci = static_cast<CountryId>(rng.weighted_index(weights));
    const auto& country = countries_[static_cast<std::size_t>(ci)];

    AsNode node;
    node.country = ci;
    node.pos = offset_point(country.centroid, rng.uniform(-6.0, 6.0), rng.uniform(-8.0, 8.0));

    // Per-AS quality: country infra quality with substantial spread, so even
    // good countries contain some poor eyeball networks and vice versa.
    const double q =
        std::clamp(country.infra_quality + rng.gaussian(0.0, 0.15), 0.05, 0.99);
    node.peering_quality = q;
    node.lastmile_rtt_ms = 4.0 + (1.0 - q) * 30.0 * rng.uniform(0.5, 1.5);
    node.lastmile_loss_pct = std::max(0.0, (1.0 - q) * 0.15 * rng.uniform(0.2, 1.8));
    node.lastmile_jitter_ms = 0.5 + (1.0 - q) * 2.5 * rng.uniform(0.4, 1.6);

    // Heavy-tailed activity: a few large consumer ISPs carry most calls.
    node.activity = rng.pareto(1.0, 1.1);

    ases_.push_back(node);
    activity_.push_back(node.activity);
  }
}

}  // namespace via
