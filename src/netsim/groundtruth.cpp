#include "netsim/groundtruth.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/linearize.h"
#include "util/rng.h"

namespace via {

namespace {
constexpr std::uint64_t kTagCallNoise = 0xCA11;
constexpr std::uint64_t kTagLastHop = 0x1A57;
constexpr std::uint64_t kTagQuirk = 0x4B1C;
constexpr std::uint64_t kTagWobble = 0x30BB;

/// Unit-mean log-normal factor keyed by a hash.
double hashed_lognormal(std::uint64_t key, double cv) noexcept {
  if (cv <= 0.0) return 1.0;
  const double sigma2 = std::log(1.0 + cv * cv);
  return std::exp(-0.5 * sigma2 + std::sqrt(sigma2) * hashed_gaussian(key));
}
}  // namespace

GroundTruth::GroundTruth(const World& world, GroundTruthConfig config)
    : world_(&world),
      config_(config),
      path_model_(world, config.path_model),
      dynamics_(world.config().seed, config.dynamics),
      seed_(hash_mix(world.config().seed, 0x67f)),
      allowed_relays_(static_cast<std::size_t>(world.num_relays()), true) {
  assert(world.num_ases() < (1 << 17));
  assert(world.num_relays() > 0);
}

std::uint64_t GroundTruth::memo_key(AsId s, AsId d, OptionId o, int day) noexcept {
  // 17 + 17 + 16 + 11 bits = 61.
  return (static_cast<std::uint64_t>(s) << 44) | (static_cast<std::uint64_t>(d) << 27) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(o)) << 11) |
         static_cast<std::uint64_t>(day & 0x7FF);
}

PathPerformance GroundTruth::segment_day_mean(AsId a, RelayId r, int day) const {
  PathPerformance p = path_model_.segment_base(a, r);
  const std::uint64_t link = path_model_.segment_link_key(a, r);
  const double c =
      dynamics_.congestion(link, day) * path_model_.segment_congestion_exposure(a, r);
  if (c > 0.0) {
    const auto t = dynamics_.traits(link);
    p.rtt_ms += c * config_.congestion_rtt_ms * t.w_rtt;
    p.loss_pct += c * config_.congestion_loss_pct * t.w_loss;
    p.jitter_ms += c * config_.congestion_jitter_ms * t.w_jitter;
  }
  return p;
}

PathPerformance GroundTruth::direct_day_mean(AsId s, AsId d, int day) const {
  PathPerformance p = path_model_.direct_base(s, d);
  const std::uint64_t link = path_model_.direct_link_key(s, d);
  const double c =
      dynamics_.congestion(link, day) * path_model_.direct_congestion_exposure(s, d);
  if (c > 0.0) {
    const auto t = dynamics_.traits(link);
    p.rtt_ms += c * config_.congestion_rtt_ms * t.w_rtt;
    p.loss_pct += c * config_.congestion_loss_pct * t.w_loss;
    p.jitter_ms += c * config_.congestion_jitter_ms * t.w_jitter;
  }
  return p;
}

std::pair<RelayId, RelayId> GroundTruth::orient_transit(AsId s, const RelayOption& o) const {
  const double rtt_a = path_model_.segment_base(s, o.a).rtt_ms;
  const double rtt_b = path_model_.segment_base(s, o.b).rtt_ms;
  return rtt_a <= rtt_b ? std::pair{o.a, o.b} : std::pair{o.b, o.a};
}

PathPerformance GroundTruth::day_mean(AsId s, AsId d, OptionId option, int day) {
  const std::uint64_t key = memo_key(s, d, option, day);
  struct Hit {
    bool found = false;
    PathPerformance p;
  };
  const Hit hit = day_mean_cache_.with_shared(key, [&](const FlatMap<PathPerformance>& map) {
    const PathPerformance* cached = map.find(key);
    return cached != nullptr ? Hit{true, *cached} : Hit{};
  });
  if (hit.found) return hit.p;

  // Miss: compute outside the lock (the value is a pure function of the
  // key, so a concurrent duplicate compute yields the identical result).
  const PathPerformance p = compute_day_mean(s, d, option, day);
  day_mean_cache_.with_unique(key, [&](FlatMap<PathPerformance>& map) {
    map.insert(key, p);
  });
  return p;
}

PathPerformance GroundTruth::compute_day_mean(AsId s, AsId d, OptionId option, int day) {
  const RelayOption& o = options_.get(option);
  PathPerformance p;
  switch (o.kind) {
    case RelayKind::Direct:
      p = direct_day_mean(s, d, day);
      break;
    case RelayKind::Bounce:
      p = compose_segments(segment_day_mean(s, o.a, day), segment_day_mean(d, o.a, day));
      break;
    case RelayKind::Transit: {
      const auto [ra, rb] = orient_transit(s, o);
      p = compose_segments(segment_day_mean(s, ra, day), path_model_.backbone(ra, rb),
                           segment_day_mean(d, rb, day));
      break;
    }
  }

  // Stable model-violation quirk on relayed paths: real relay paths do not
  // decompose exactly into their segments.
  const std::uint64_t pair = as_pair_key(s, d);
  const std::uint64_t opt_key =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(option));
  if (o.kind != RelayKind::Direct) {
    const std::uint64_t q = hash_mix(seed_, kTagQuirk, pair, opt_key);
    p.rtt_ms *= hashed_lognormal(hash_mix(q, 1), config_.quirk_cv_rtt);
    p.loss_pct *= hashed_lognormal(hash_mix(q, 2), config_.quirk_cv_loss);
    p.jitter_ms *= hashed_lognormal(hash_mix(q, 3), config_.quirk_cv_jitter);
    if (hashed_uniform(hash_mix(q, 4)) < config_.quirk_outlier_prob) {
      const double sev = std::abs(hashed_gaussian(hash_mix(q, 5)));
      p.rtt_ms *= 1.0 + config_.quirk_outlier_scale_rtt * sev;
      p.loss_pct *= 1.0 + config_.quirk_outlier_scale_loss * sev;
      p.jitter_ms *= 1.0 + config_.quirk_outlier_scale_jitter * sev;
    }
  }

  // Day-level wobble on every option: unpredictable from prior windows but
  // persistent across adjacent days (AR(1)), so the best option does not
  // reshuffle every midnight.
  const double level = wobble_level(hash_mix(seed_, kTagWobble, pair, opt_key), day);
  auto wobble = [&](double cv) {
    if (cv <= 0.0) return 1.0;
    const double sigma = std::sqrt(std::log(1.0 + cv * cv));
    return std::exp(sigma * level - 0.5 * sigma * sigma);
  };
  p.rtt_ms *= wobble(config_.wobble_cv_rtt);
  p.loss_pct *= wobble(config_.wobble_cv_loss);
  p.jitter_ms *= wobble(config_.wobble_cv_jitter);
  return p;
}

PathPerformance GroundTruth::sample_call(CallId id, AsId s, AsId d, OptionId option,
                                         TimeSec t) {
  const PathPerformance mean = day_mean(s, d, option, day_of(t));

  // The congestion-driven part of the metric breathes with the hour of day;
  // approximate by mildly scaling the whole daily mean.
  const std::uint64_t link = options_.get(option).kind == RelayKind::Direct
                                 ? path_model_.direct_link_key(s, d)
                                 : path_model_.segment_link_key(s, options_.get(option).a);
  const double diurnal = 1.0 + 0.5 * (dynamics_.diurnal_factor(link, t) - 1.0);

  const std::uint64_t call_key =
      hash_mix(seed_, kTagCallNoise, static_cast<std::uint64_t>(id),
               static_cast<std::uint64_t>(static_cast<std::uint32_t>(option)));

  auto noisy = [&](double value, double cv, std::uint64_t salt) {
    if (value <= 0.0) return 0.0;
    // Log-normal multiplicative noise with unit mean, hashed per metric.
    const double sigma2 = std::log(1.0 + cv * cv);
    const double g = hashed_gaussian(hash_mix(call_key, salt));
    return value * std::exp(-0.5 * sigma2 + std::sqrt(sigma2) * g);
  };

  PathPerformance p;
  p.rtt_ms = noisy(mean.rtt_ms * diurnal, config_.call_cv_rtt, 1);
  p.loss_pct = noisy(mean.loss_pct * diurnal, config_.call_cv_loss, 2);
  p.jitter_ms = noisy(mean.jitter_ms * diurnal, config_.call_cv_jitter, 3);

  // Option-independent last-hop impairment (wireless access): keyed on the
  // call alone, so it is identical whichever relay option carries the call.
  const std::uint64_t lh = hash_mix(seed_, kTagLastHop, static_cast<std::uint64_t>(id));
  if (call_is_wireless(id)) {
    p.rtt_ms += config_.wireless_extra_rtt_ms * hashed_uniform(hash_mix(lh, 2));
    p.jitter_ms += config_.wireless_extra_jitter_ms *
                   -std::log(std::max(1e-12, hashed_uniform(hash_mix(lh, 3))));
    if (hashed_uniform(hash_mix(lh, 4)) < config_.wireless_loss_prob) {
      p.loss_pct += config_.wireless_extra_loss_pct *
                    -std::log(std::max(1e-12, hashed_uniform(hash_mix(lh, 5))));
    }
  }

  if (hashed_uniform(hash_mix(lh, 6)) < config_.bad_lasthop_prob) {
    auto expo = [&](double mean, std::uint64_t salt) {
      return -mean * std::log(std::max(1e-12, hashed_uniform(hash_mix(lh, salt))));
    };
    p.rtt_ms += expo(config_.bad_lasthop_rtt_ms, 7);
    p.loss_pct += expo(config_.bad_lasthop_loss_pct, 8);
    p.jitter_ms += expo(config_.bad_lasthop_jitter_ms, 9);
  }

  p.rtt_ms = std::min(p.rtt_ms, 2000.0);
  p.loss_pct = std::min(p.loss_pct, 50.0);
  p.jitter_ms = std::min(p.jitter_ms, 300.0);
  return p;
}

double GroundTruth::wobble_level(std::uint64_t path_key, int day) {
  if (day < 0) return 0.0;
  const auto idx = static_cast<std::size_t>(day);

  struct Hit {
    bool found = false;
    double level = 0.0;
  };
  const Hit hit =
      wobble_series_.with_shared(path_key, [&](const FlatMap<std::vector<float>>& map) {
        const std::vector<float>* series = map.find(path_key);
        if (series != nullptr && series->size() > idx) {
          return Hit{true, static_cast<double>((*series)[idx])};
        }
        return Hit{};
      });
  if (hit.found) return hit.level;

  // The AR(1) recurrence needs the previous element, so extension happens
  // in place under the unique lock (re-checking length: another thread may
  // have extended the series while we waited).
  return wobble_series_.with_unique(path_key, [&](FlatMap<std::vector<float>>& map) {
    std::vector<float>& series = map[path_key];
    if (series.size() <= idx) {
      const double rho = config_.wobble_rho;
      const double innov = std::sqrt(1.0 - rho * rho);
      double prev = series.empty() ? hashed_gaussian(hash_mix(path_key, 0xFFFF))
                                   : static_cast<double>(series.back());
      for (int d = static_cast<int>(series.size()); d <= day; ++d) {
        // Round through the stored float each step so series[d] is a pure
        // function of (path_key, d), independent of how many days a single
        // call extends: days queried one-by-one and in a batch must agree
        // bit-for-bit for warm() to reproduce a lazy serial run.
        prev = static_cast<float>(
            rho * prev +
            innov * hashed_gaussian(hash_mix(path_key, static_cast<std::uint64_t>(d))));
        series.push_back(static_cast<float>(prev));
      }
    }
    return static_cast<double>(series[idx]);
  });
}

RelayId GroundTruth::transit_ingress(AsId src, OptionId option) const {
  const RelayOption& o = options_.get(option);
  if (o.kind != RelayKind::Transit) return -1;
  return orient_transit(src, o).first;
}

bool GroundTruth::call_is_wireless(CallId id) const {
  const std::uint64_t lh = hash_mix(seed_, kTagLastHop, static_cast<std::uint64_t>(id));
  return hashed_uniform(hash_mix(lh, 1)) < config_.wireless_fraction;
}

std::span<const RelayId> GroundTruth::nearest_relays(AsId a) {
  const auto key = static_cast<std::uint64_t>(static_cast<std::uint32_t>(a));
  const std::span<const RelayId> cached =
      nearest_.with_shared(key, [&](const FlatMap<std::vector<RelayId>>& map) {
        const std::vector<RelayId>* order = map.find(key);
        return order != nullptr ? std::span<const RelayId>(*order)
                                : std::span<const RelayId>();
      });
  if (cached.data() != nullptr) return cached;

  std::vector<RelayId> order;
  order.reserve(static_cast<std::size_t>(world_->num_relays()));
  for (RelayId r = 0; r < world_->num_relays(); ++r) {
    if (allowed_relays_[static_cast<std::size_t>(r)]) order.push_back(r);
  }
  std::sort(order.begin(), order.end(), [&](RelayId x, RelayId y) {
    return path_model_.segment_base(a, x).rtt_ms < path_model_.segment_base(a, y).rtt_ms;
  });
  return nearest_.with_unique(key, [&](FlatMap<std::vector<RelayId>>& map) {
    std::vector<RelayId>& stored = map[key];
    if (stored.empty()) stored = std::move(order);  // lost races keep the winner
    return std::span<const RelayId>(stored);
  });
}

std::span<const OptionId> GroundTruth::candidate_options(AsId s, AsId d) {
  const std::uint64_t key = as_pair_key(s, d);
  const std::span<const OptionId> cached =
      candidates_.with_shared(key, [&](const FlatMap<std::vector<OptionId>>& map) {
        const std::vector<OptionId>* opts = map.find(key);
        return opts != nullptr ? std::span<const OptionId>(*opts)
                               : std::span<const OptionId>();
      });
  if (cached.data() != nullptr) return cached;

  // Canonicalize so both directions of the pair see the same option set.
  const AsId lo = std::min(s, d);
  const AsId hi = std::max(s, d);

  std::vector<OptionId> opts;
  opts.push_back(RelayOptionTable::direct_id());

  const auto near_lo = nearest_relays(lo);
  const auto near_hi = nearest_relays(hi);

  auto take = [](std::span<const RelayId> v, int k) {
    return v.subspan(0, std::min<std::size_t>(v.size(), static_cast<std::size_t>(k)));
  };

  // Bounce candidates: relays near either endpoint.
  for (const RelayId r : take(near_lo, config_.bounce_candidates_per_side)) {
    const OptionId id = options_.intern_bounce(r);
    if (std::find(opts.begin(), opts.end(), id) == opts.end()) opts.push_back(id);
  }
  for (const RelayId r : take(near_hi, config_.bounce_candidates_per_side)) {
    const OptionId id = options_.intern_bounce(r);
    if (std::find(opts.begin(), opts.end(), id) == opts.end()) opts.push_back(id);
  }

  // Transit candidates: ingress near one endpoint, egress near the other.
  for (const RelayId r1 : take(near_lo, config_.transit_candidates_per_side)) {
    for (const RelayId r2 : take(near_hi, config_.transit_candidates_per_side)) {
      if (r1 == r2) continue;
      const OptionId id = options_.intern_transit(r1, r2);
      if (std::find(opts.begin(), opts.end(), id) == opts.end()) opts.push_back(id);
    }
  }

  return candidates_.with_unique(key, [&](FlatMap<std::vector<OptionId>>& map) {
    std::vector<OptionId>& stored = map[key];
    if (stored.empty()) stored = std::move(opts);  // lost races keep the winner
    return std::span<const OptionId>(stored);
  });
}

void GroundTruth::set_allowed_relays(std::vector<bool> allowed) {
  assert(allowed.size() == static_cast<std::size_t>(world_->num_relays()));
  allowed_relays_ = std::move(allowed);
  candidates_.clear();
  nearest_.clear();
}

void GroundTruth::warm(std::span<const CallArrival> arrivals, int max_day) {
  // Directed pairs, first-seen order.  The order matters: candidate_options
  // interns relay options lazily, and OptionId assignment order is the only
  // order-dependent state in GroundTruth.  Walking arrivals serially here
  // reproduces exactly the interning order of a serial first run, so a
  // replay fanned out afterwards is bit-identical to a serial one.
  FlatMap<char> seen;
  seen.reserve(4096);
  for (const CallArrival& call : arrivals) {
    const std::uint64_t directed =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(call.src_as)) << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(call.dst_as));
    if (seen.find(directed) != nullptr) continue;
    seen.insert(directed, 1);
    const std::span<const OptionId> opts = candidate_options(call.src_as, call.dst_as);
    // day_mean memoizes per *directed* (s, d): warm both the direction the
    // replay samples and every day a probe at a refresh boundary can touch.
    for (const OptionId opt : opts) {
      for (int day = 0; day <= max_day; ++day) {
        (void)day_mean(call.src_as, call.dst_as, opt, day);
      }
    }
  }
}

}  // namespace via
