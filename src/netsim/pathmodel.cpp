#include "netsim/pathmodel.h"

#include <algorithm>
#include <cmath>

#include "util/geo.h"
#include "util/rng.h"

namespace via {

namespace {
// Domain-separation tags for hashed draws.
constexpr std::uint64_t kTagDirect = 0xD1EC7;
constexpr std::uint64_t kTagSegment = 0x5E63E;
}  // namespace

PathModel::PathModel(const World& world, PathModelParams params)
    : world_(&world), params_(params), seed_(hash_mix(world.config().seed, 0x9a7405)) {}

std::uint64_t PathModel::direct_link_key(AsId a, AsId b) const noexcept {
  return hash_mix(seed_, kTagDirect, as_pair_key(a, b));
}

std::uint64_t PathModel::segment_link_key(AsId a, RelayId r) const noexcept {
  return hash_mix(seed_, kTagSegment, static_cast<std::uint64_t>(a),
                  static_cast<std::uint64_t>(static_cast<std::uint16_t>(r)));
}

PathPerformance PathModel::direct_base(AsId a, AsId b) const {
  const AsNode& na = world_->as_node(a);
  const AsNode& nb = world_->as_node(b);
  const std::uint64_t key = direct_link_key(a, b);

  const double u_circ = hashed_uniform(hash_mix(key, 1));
  const double u_loss = hashed_uniform(hash_mix(key, 2));
  const double u_jit = hashed_uniform(hash_mix(key, 3));

  const double worst_peering = 1.0 - std::min(na.peering_quality, nb.peering_quality);
  const bool intl = na.country != nb.country;

  double circ = params_.direct_circuitousness_min +
                params_.direct_circuitousness_spread * u_circ * u_circ +
                params_.poor_peering_penalty * worst_peering * u_circ;
  if (intl) circ += params_.direct_intl_penalty;

  const double km = haversine_km(na.pos, nb.pos);
  // Long paths traverse more interconnects: WAN loss/jitter scale with
  // distance up to a saturation point.
  const double dist_factor = 0.35 + 0.65 * std::min(1.0, km / params_.wan_full_scale_km);
  PathPerformance p;
  p.rtt_ms = na.lastmile_rtt_ms + nb.lastmile_rtt_ms + 2.0 * fiber_delay_ms(km) * circ;
  p.loss_pct = na.lastmile_loss_pct + nb.lastmile_loss_pct +
               params_.direct_wan_loss_pct * worst_peering * u_loss * dist_factor *
                   (intl ? 1.4 : 1.0);
  p.jitter_ms = na.lastmile_jitter_ms + nb.lastmile_jitter_ms +
                params_.direct_wan_jitter_ms * (0.25 + worst_peering) * u_jit * dist_factor;
  return p;
}

PathPerformance PathModel::segment_base(AsId a, RelayId r) const {
  const AsNode& na = world_->as_node(a);
  const RelaySite& site = world_->relay(r);
  const std::uint64_t key = segment_link_key(a, r);

  const double u_circ = hashed_uniform(hash_mix(key, 1));
  const double u_loss = hashed_uniform(hash_mix(key, 2));
  const double u_jit = hashed_uniform(hash_mix(key, 3));

  const double poor = 1.0 - na.peering_quality;
  const double circ = params_.segment_circuitousness_min +
                      params_.segment_circuitousness_spread * u_circ +
                      params_.segment_poor_peering_penalty * poor * u_circ;

  const double km = haversine_km(na.pos, site.pos);
  PathPerformance p;
  p.rtt_ms = na.lastmile_rtt_ms + 2.0 * fiber_delay_ms(km) * circ;
  p.loss_pct = na.lastmile_loss_pct + params_.segment_wan_loss_pct * poor * u_loss;
  p.jitter_ms = na.lastmile_jitter_ms + params_.segment_wan_jitter_ms * (0.15 + poor) * u_jit;
  return p;
}

double PathModel::direct_congestion_exposure(AsId a, AsId b) const {
  const double km = haversine_km(world_->as_node(a).pos, world_->as_node(b).pos);
  return 0.25 + 0.75 * std::min(1.0, km / params_.wan_full_scale_km);
}

double PathModel::segment_congestion_exposure(AsId a, RelayId r) const {
  const double km = haversine_km(world_->as_node(a).pos, world_->relay(r).pos);
  return 0.25 + 0.75 * std::min(1.0, km / params_.wan_full_scale_km);
}

PathPerformance PathModel::backbone(RelayId r1, RelayId r2) const {
  if (r1 == r2) return PathPerformance{};
  const double km = haversine_km(world_->relay(r1).pos, world_->relay(r2).pos);
  PathPerformance p;
  p.rtt_ms = params_.backbone_fixed_rtt_ms +
             2.0 * fiber_delay_ms(km) * params_.backbone_circuitousness;
  p.loss_pct = params_.backbone_loss_pct;
  p.jitter_ms = params_.backbone_jitter_ms;
  return p;
}

}  // namespace via
