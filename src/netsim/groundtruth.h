// GroundTruth: the queryable "real Internet" of the simulation.
//
// For any (source AS, destination AS, relaying option, day) it yields the
// option's daily-average performance — which is what the paper's oracle
// knows — and it samples per-call performance around that daily average,
// which is how the paper's trace-driven replay assigns performance to a
// call routed over an option (Section 5.1).
//
// Per-call draws are keyed on (call id, option), so different policies that
// route the same call the same way observe identical performance: policy
// comparisons are paired.  Last-hop (wireless) impairments are keyed on the
// call id alone — they hit every relaying option equally, reproducing the
// paper's observation that no relay choice can fix a bad last hop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/call.h"
#include "common/relay_option.h"
#include "common/types.h"
#include "netsim/dynamics.h"
#include "netsim/pathmodel.h"
#include "netsim/world.h"
#include "util/sharded_map.h"
#include "trace/arrival.h"

namespace via {

struct GroundTruthConfig {
  int bounce_candidates_per_side = 4;   ///< nearest relays per endpoint for bounces
  int transit_candidates_per_side = 3;  ///< nearest relays per endpoint for transits

  // Congestion-to-metric conversion scales (per congestion unit).
  double congestion_rtt_ms = 55.0;
  double congestion_loss_pct = 0.9;
  double congestion_jitter_ms = 6.0;

  // Within-day per-call noise (coefficient of variation per metric).
  double call_cv_rtt = 0.10;
  double call_cv_loss = 0.55;
  double call_cv_jitter = 0.30;

  // Relay paths deviate from the clean segment-composition model (routing
  // asymmetries, relay processing, queueing at the DC edge): a *stable*
  // per-(pair, option) multiplicative quirk.  This is the tomography model
  // error that makes pure prediction fallible (paper §5.3: 14% of
  // predictions are >= 50% off).
  double quirk_cv_rtt = 0.08;
  double quirk_cv_loss = 0.25;
  double quirk_cv_jitter = 0.15;
  /// Some relay paths are *badly* mismodeled (tunnelled routing, overloaded
  /// DC edge): with this probability a path gets a large one-sided
  /// inflation, producing the paper's fat tail of >=50% prediction errors.
  double quirk_outlier_prob = 0.10;
  double quirk_outlier_scale_rtt = 0.6;
  double quirk_outlier_scale_loss = 1.5;
  double quirk_outlier_scale_jitter = 0.8;

  // Day-level wobble no history can predict (applies to every option,
  // including direct): yesterday's window mispredicts today by this much,
  // which is what makes within-day exploration (the bandit) worthwhile.
  // The wobble follows a per-(pair, option) AR(1) in log space, so the
  // oracle's best option persists for a realistic number of days
  // (Figure 9) instead of reshuffling every midnight.
  double wobble_cv_rtt = 0.06;
  double wobble_cv_loss = 0.25;
  double wobble_cv_jitter = 0.15;
  double wobble_rho = 0.55;  ///< day-to-day correlation of the wobble

  // Last-hop (access network) per-call impairments, option-independent.
  double wireless_fraction = 0.83;
  double wireless_extra_rtt_ms = 8.0;
  double wireless_extra_jitter_ms = 2.5;
  double wireless_loss_prob = 0.15;
  double wireless_extra_loss_pct = 0.8;

  // A fraction of calls has a badly degraded access link (congested Wi-Fi,
  // cellular edge).  No relaying option can help these calls — this is the
  // unfixable residue that caps the oracle's improvement (paper §2.2/§3).
  double bad_lasthop_prob = 0.07;
  double bad_lasthop_rtt_ms = 110.0;    ///< mean of exponential extra RTT
  double bad_lasthop_loss_pct = 1.3;    ///< mean of exponential extra loss
  double bad_lasthop_jitter_ms = 8.0;   ///< mean of exponential extra jitter

  DynamicsParams dynamics;
  PathModelParams path_model;
};

/// Threading: GroundTruth is safe for concurrent readers.  Every query is a
/// pure function of its key; the lazily-filled memo caches (day means,
/// wobble series, candidate sets, nearest-relay orders) sit behind striped
/// shared_mutex shards (util/sharded_map.h), so concurrent misses compute
/// the same value and race only on who inserts it.  warm() pre-fills the
/// caches for a workload serially — after it, parallel replay reads hit
/// warm entries under uncontended shared locks and, crucially, relay-option
/// ids were interned in the deterministic warm order, making parallel runs
/// bit-identical to serial ones.  set_allowed_relays() is the exception: it
/// clears caches and must not run concurrently with any reader.
class GroundTruth {
 public:
  GroundTruth(const World& world, GroundTruthConfig config = {});

  /// Daily-average performance of an option between two ASes.  This is the
  /// quantity the oracle optimizes and the replay samples around.
  [[nodiscard]] PathPerformance day_mean(AsId s, AsId d, OptionId option, int day);

  /// Samples the performance one specific call would observe on an option.
  [[nodiscard]] PathPerformance sample_call(CallId id, AsId s, AsId d, OptionId option,
                                            TimeSec t);

  /// Candidate relaying options for an AS pair: the direct path plus
  /// bounce/transit options off relays near either endpoint.  Cached; the
  /// returned span stays valid for the lifetime of this object.
  [[nodiscard]] std::span<const OptionId> candidate_options(AsId s, AsId d);

  /// Daily-average performance of the public AS<->relay segment (used for
  /// validating tomography against truth).
  [[nodiscard]] PathPerformance segment_day_mean(AsId a, RelayId r, int day) const;

  /// Private backbone performance (known to the overlay operator).
  [[nodiscard]] PathPerformance backbone(RelayId r1, RelayId r2) const {
    return path_model_.backbone(r1, r2);
  }

  /// Whether this call's access network is wireless (per-call property,
  /// independent of the relaying option; ~83% of calls in the paper).
  [[nodiscard]] bool call_is_wireless(CallId id) const;

  /// The relay the *source* client connects to for a transit option (the
  /// nearer of the pair); -1 for direct/bounce options.
  [[nodiscard]] RelayId transit_ingress(AsId src, OptionId option) const;

  /// Relays sorted by proximity (base segment RTT) to an AS.
  [[nodiscard]] std::span<const RelayId> nearest_relays(AsId a);

  /// Restricts the relay fleet (Figure 17c's deployment sensitivity);
  /// clears candidate caches.
  void set_allowed_relays(std::vector<bool> allowed);

  /// Serially pre-fills every cache a trace replay can touch: candidate
  /// sets and daily means for each directed pair in `arrivals` (as-seen
  /// order, which fixes relay-option interning order) over days
  /// [0, max_day].  After warm() returns, concurrent replays of this
  /// workload perform no cache writes.
  void warm(std::span<const CallArrival> arrivals, int max_day);

  [[nodiscard]] const World& world() const noexcept { return *world_; }
  [[nodiscard]] const PathModel& path_model() const noexcept { return path_model_; }
  [[nodiscard]] const Dynamics& dynamics() const noexcept { return dynamics_; }
  [[nodiscard]] const RelayOptionTable& option_table() const noexcept { return options_; }
  [[nodiscard]] const GroundTruthConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] PathPerformance direct_day_mean(AsId s, AsId d, int day) const;
  /// Orders a transit pair so the first relay is nearest the source.
  [[nodiscard]] std::pair<RelayId, RelayId> orient_transit(AsId s, const RelayOption& o) const;
  [[nodiscard]] static std::uint64_t memo_key(AsId s, AsId d, OptionId o, int day) noexcept;

  const World* world_;
  GroundTruthConfig config_;
  PathModel path_model_;
  Dynamics dynamics_;
  RelayOptionTable options_;
  std::uint64_t seed_;
  std::vector<bool> allowed_relays_;

  /// AR(1) wobble level for a (pair, option) path on a day; memoized.
  [[nodiscard]] double wobble_level(std::uint64_t path_key, int day);
  [[nodiscard]] PathPerformance compute_day_mean(AsId s, AsId d, OptionId option, int day);

  // Memo caches, striped for concurrent readers (see class comment).
  ShardedMap<PathPerformance> day_mean_cache_;
  ShardedMap<std::vector<float>> wobble_series_;
  ShardedMap<std::vector<OptionId>> candidates_;
  ShardedMap<std::vector<RelayId>> nearest_;
};

}  // namespace via
