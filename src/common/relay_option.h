// Relaying options (Section 3.1 of the paper): a call either takes the
// default Internet path, bounces off one relay, or transits through a pair
// of relays connected by the managed backbone.  Options are interned in a
// global table so that the rest of the system can refer to them by a dense
// OptionId.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace via {

enum class RelayKind : std::uint8_t { Direct = 0, Bounce = 1, Transit = 2 };

[[nodiscard]] constexpr std::string_view relay_kind_name(RelayKind k) noexcept {
  switch (k) {
    case RelayKind::Direct:
      return "direct";
    case RelayKind::Bounce:
      return "bounce";
    case RelayKind::Transit:
      return "transit";
  }
  return "?";
}

/// One relaying option.  For Bounce, `a` is the relay and `b` is unused.
/// For Transit, {a, b} is an unordered relay pair, stored with a <= b.
struct RelayOption {
  RelayKind kind = RelayKind::Direct;
  RelayId a = -1;
  RelayId b = -1;

  friend constexpr bool operator==(const RelayOption&, const RelayOption&) = default;
};

/// Interning table for relaying options.  OptionId 0 is always the direct
/// path.
///
/// Threading: interning is serialized by an internal mutex; get() is
/// lock-free.  Options live in append-only fixed-size chunks published with
/// release stores, so a reader may call get() for any id it learned through
/// a synchronizing channel (e.g. a candidate span published under a lock,
/// or plain program order on one thread) while other threads intern new
/// options.  Ids are assigned in interning order, which makes them
/// deterministic exactly when first-intern order is deterministic — the
/// parallel runner warms all candidate sets serially before fanning out for
/// this reason (see DESIGN.md "Threading model").
class RelayOptionTable {
 public:
  RelayOptionTable();
  ~RelayOptionTable();

  RelayOptionTable(const RelayOptionTable&) = delete;
  RelayOptionTable& operator=(const RelayOptionTable&) = delete;

  /// The direct path's id (always 0).
  [[nodiscard]] static constexpr OptionId direct_id() noexcept { return 0; }

  /// Interns a bounce option off relay r.
  OptionId intern_bounce(RelayId r);

  /// Interns a transit option through the unordered pair {r1, r2}.
  /// r1 != r2 is required; a transit through one relay is a bounce.
  OptionId intern_transit(RelayId r1, RelayId r2);

  [[nodiscard]] const RelayOption& get(OptionId id) const noexcept {
    assert(id >= 0 && static_cast<std::size_t>(id) <
                          size_.load(std::memory_order_acquire));
    const auto i = static_cast<std::size_t>(id);
    const RelayOption* chunk =
        chunks_[i >> kChunkShift].load(std::memory_order_acquire);
    return chunk[i & (kChunkSize - 1)];
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  /// Human-readable label, e.g. "direct", "bounce(7)", "transit(3,12)".
  [[nodiscard]] std::string label(OptionId id) const;

  /// All interned option ids (0 .. size-1); handy for "Random(R)" draws.
  [[nodiscard]] std::vector<OptionId> all_ids() const;

 private:
  // 512 options per chunk, 2048 chunks: room for ~1M options, far beyond
  // any fleet (37 relays in the paper => 1 + 37 + C(37,2) = 704 options).
  static constexpr std::size_t kChunkShift = 9;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kMaxChunks = 2048;

  [[nodiscard]] static std::uint64_t key_of(const RelayOption& o) noexcept;
  OptionId intern(const RelayOption& o);

  std::array<std::atomic<RelayOption*>, kMaxChunks> chunks_{};
  std::atomic<std::size_t> size_{0};
  mutable std::mutex mutex_;  ///< guards interning (index_ + appends)
  std::unordered_map<std::uint64_t, OptionId> index_;
};

}  // namespace via
