// Relaying options (Section 3.1 of the paper): a call either takes the
// default Internet path, bounces off one relay, or transits through a pair
// of relays connected by the managed backbone.  Options are interned in a
// global table so that the rest of the system can refer to them by a dense
// OptionId.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace via {

enum class RelayKind : std::uint8_t { Direct = 0, Bounce = 1, Transit = 2 };

[[nodiscard]] constexpr std::string_view relay_kind_name(RelayKind k) noexcept {
  switch (k) {
    case RelayKind::Direct:
      return "direct";
    case RelayKind::Bounce:
      return "bounce";
    case RelayKind::Transit:
      return "transit";
  }
  return "?";
}

/// One relaying option.  For Bounce, `a` is the relay and `b` is unused.
/// For Transit, {a, b} is an unordered relay pair, stored with a <= b.
struct RelayOption {
  RelayKind kind = RelayKind::Direct;
  RelayId a = -1;
  RelayId b = -1;

  friend constexpr bool operator==(const RelayOption&, const RelayOption&) = default;
};

/// Interning table for relaying options.  OptionId 0 is always the direct
/// path.  Thread-compatible (callers synchronize if shared across threads).
class RelayOptionTable {
 public:
  RelayOptionTable();

  /// The direct path's id (always 0).
  [[nodiscard]] static constexpr OptionId direct_id() noexcept { return 0; }

  /// Interns a bounce option off relay r.
  OptionId intern_bounce(RelayId r);

  /// Interns a transit option through the unordered pair {r1, r2}.
  /// r1 != r2 is required; a transit through one relay is a bounce.
  OptionId intern_transit(RelayId r1, RelayId r2);

  [[nodiscard]] const RelayOption& get(OptionId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return options_.size(); }

  /// Human-readable label, e.g. "direct", "bounce(7)", "transit(3,12)".
  [[nodiscard]] std::string label(OptionId id) const;

  /// All interned option ids (0 .. size-1); handy for "Random(R)" draws.
  [[nodiscard]] std::vector<OptionId> all_ids() const;

 private:
  [[nodiscard]] static std::uint64_t key_of(const RelayOption& o) noexcept;
  OptionId intern(const RelayOption& o);

  std::vector<RelayOption> options_;
  std::unordered_map<std::uint64_t, OptionId> index_;
};

}  // namespace via
