// Core domain vocabulary shared by every Via module: entity identifiers,
// the three network metrics the paper studies, and per-call performance.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace via {

using AsId = std::int32_t;       ///< index into the world's AS table
using CountryId = std::int16_t;  ///< index into the world's country table
using RelayId = std::int16_t;    ///< index into the world's relay-site table
using OptionId = std::int32_t;   ///< index into the RelayOptionTable
using PrefixId = std::int32_t;   ///< finer-than-AS client grouping (/24-like)
using CallId = std::int64_t;
using TimeSec = std::int64_t;    ///< seconds since trace epoch

inline constexpr AsId kInvalidAs = -1;
inline constexpr OptionId kInvalidOption = -1;
inline constexpr std::int64_t kSecondsPerDay = 86400;

/// The three network performance metrics the paper analyzes.  Lower is
/// better for all of them.
enum class Metric : std::uint8_t { Rtt = 0, Loss = 1, Jitter = 2 };

inline constexpr std::array<Metric, 3> kAllMetrics{Metric::Rtt, Metric::Loss, Metric::Jitter};
inline constexpr std::size_t kNumMetrics = 3;

[[nodiscard]] constexpr std::size_t metric_index(Metric m) noexcept {
  return static_cast<std::size_t>(m);
}

[[nodiscard]] constexpr std::string_view metric_name(Metric m) noexcept {
  switch (m) {
    case Metric::Rtt:
      return "RTT";
    case Metric::Loss:
      return "loss";
    case Metric::Jitter:
      return "jitter";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view metric_unit(Metric m) noexcept {
  switch (m) {
    case Metric::Rtt:
      return "ms";
    case Metric::Loss:
      return "%";
    case Metric::Jitter:
      return "ms";
  }
  return "?";
}

/// Average network performance of one call, as reported by the clients in
/// accordance with RTP (paper Section 2.1): RTT in ms, loss rate in percent,
/// jitter in ms.
struct PathPerformance {
  double rtt_ms = 0.0;
  double loss_pct = 0.0;
  double jitter_ms = 0.0;

  [[nodiscard]] constexpr double get(Metric m) const noexcept {
    switch (m) {
      case Metric::Rtt:
        return rtt_ms;
      case Metric::Loss:
        return loss_pct;
      case Metric::Jitter:
        return jitter_ms;
    }
    return 0.0;
  }

  constexpr void set(Metric m, double v) noexcept {
    switch (m) {
      case Metric::Rtt:
        rtt_ms = v;
        break;
      case Metric::Loss:
        loss_pct = v;
        break;
      case Metric::Jitter:
        jitter_ms = v;
        break;
    }
  }

  friend constexpr bool operator==(const PathPerformance&, const PathPerformance&) = default;
};

/// Poor-network thresholds chosen in Section 2.2 of the paper: a call's
/// metric is "poor" when it is at or beyond the ~85th percentile values
/// RTT >= 320 ms, loss >= 1.2 %, jitter >= 12 ms.
struct PoorThresholds {
  double rtt_ms = 320.0;
  double loss_pct = 1.2;
  double jitter_ms = 12.0;

  [[nodiscard]] constexpr double get(Metric m) const noexcept {
    switch (m) {
      case Metric::Rtt:
        return rtt_ms;
      case Metric::Loss:
        return loss_pct;
      case Metric::Jitter:
        return jitter_ms;
    }
    return 0.0;
  }

  [[nodiscard]] constexpr bool poor(Metric m, const PathPerformance& p) const noexcept {
    return p.get(m) >= get(m);
  }

  /// True when at least one of the three metrics is poor ("at least one
  /// bad", the collective PNR of Section 2.2).
  [[nodiscard]] constexpr bool any_poor(const PathPerformance& p) const noexcept {
    return poor(Metric::Rtt, p) || poor(Metric::Loss, p) || poor(Metric::Jitter, p);
  }
};

/// Canonical undirected AS-pair key (order-independent).
[[nodiscard]] constexpr std::uint64_t as_pair_key(AsId a, AsId b) noexcept {
  const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
  const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
  return (hi << 32) | lo;
}

/// Day index (0-based) of a timestamp.
[[nodiscard]] constexpr int day_of(TimeSec t) noexcept {
  return static_cast<int>(t / kSecondsPerDay);
}

/// Hour of day in [0, 24).
[[nodiscard]] constexpr int hour_of(TimeSec t) noexcept {
  return static_cast<int>((t % kSecondsPerDay) / 3600);
}

}  // namespace via
