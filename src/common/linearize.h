// Linearization of the three metrics so that per-segment values compose
// additively along a path (paper Section 4.4):
//   - RTT adds directly.
//   - Loss: with independent segment losses, 1-p = prod(1-p_i), so
//     -ln(1-p) is additive.
//   - Jitter: treating per-segment delay variation as independent, variances
//     add, so jitter^2 is additive.
// Both the ground-truth path composer (netsim) and the tomography solver
// (core) must use the same transform, which is why it lives in common/.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/types.h"

namespace via {

/// Largest loss percentage we linearize; beyond this the call is unusable
/// anyway and log(0) must be avoided.
inline constexpr double kMaxLossPct = 99.0;

[[nodiscard]] inline double linearize(Metric m, double value) noexcept {
  switch (m) {
    case Metric::Rtt:
      return value;
    case Metric::Loss: {
      const double p = std::clamp(value, 0.0, kMaxLossPct) / 100.0;
      return -std::log1p(-p);
    }
    case Metric::Jitter:
      return value * value;
  }
  return value;
}

[[nodiscard]] inline double delinearize(Metric m, double value) noexcept {
  switch (m) {
    case Metric::Rtt:
      return std::max(0.0, value);
    case Metric::Loss:
      return std::clamp(100.0 * (-std::expm1(-std::max(0.0, value))), 0.0, kMaxLossPct);
    case Metric::Jitter:
      return std::sqrt(std::max(0.0, value));
  }
  return value;
}

/// Composes two path segments into one end-to-end performance value, using
/// the linearization above for each metric.
[[nodiscard]] inline PathPerformance compose_segments(const PathPerformance& a,
                                                      const PathPerformance& b) noexcept {
  PathPerformance out;
  for (const Metric m : kAllMetrics) {
    out.set(m, delinearize(m, linearize(m, a.get(m)) + linearize(m, b.get(m))));
  }
  return out;
}

[[nodiscard]] inline PathPerformance compose_segments(const PathPerformance& a,
                                                      const PathPerformance& b,
                                                      const PathPerformance& c) noexcept {
  return compose_segments(compose_segments(a, b), c);
}

}  // namespace via
