#include "common/relay_option.h"

#include <stdexcept>
#include <utility>

namespace via {

RelayOptionTable::RelayOptionTable() {
  const RelayOption direct{};  // kind == Direct
  intern(direct);
}

RelayOptionTable::~RelayOptionTable() {
  for (auto& chunk : chunks_) {
    delete[] chunk.load(std::memory_order_relaxed);
  }
}

std::uint64_t RelayOptionTable::key_of(const RelayOption& o) noexcept {
  return (static_cast<std::uint64_t>(o.kind) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(o.a)) << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint16_t>(o.b));
}

OptionId RelayOptionTable::intern(const RelayOption& o) {
  std::lock_guard lock(mutex_);
  const auto key = key_of(o);
  if (const auto it = index_.find(key); it != index_.end()) return it->second;

  const std::size_t i = size_.load(std::memory_order_relaxed);
  const std::size_t chunk_index = i >> kChunkShift;
  if (chunk_index >= kMaxChunks) throw std::length_error("relay option table full");
  RelayOption* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new RelayOption[kChunkSize];
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  chunk[i & (kChunkSize - 1)] = o;
  const auto id = static_cast<OptionId>(i);
  index_.emplace(key, id);
  // Publish: get() acquire-loads size_/chunk, so the element write above is
  // visible to any reader that learned `id` through a synchronizing channel.
  size_.store(i + 1, std::memory_order_release);
  return id;
}

OptionId RelayOptionTable::intern_bounce(RelayId r) {
  assert(r >= 0);
  return intern(RelayOption{RelayKind::Bounce, r, -1});
}

OptionId RelayOptionTable::intern_transit(RelayId r1, RelayId r2) {
  assert(r1 >= 0 && r2 >= 0);
  if (r1 == r2) throw std::invalid_argument("transit requires two distinct relays");
  if (r1 > r2) std::swap(r1, r2);
  return intern(RelayOption{RelayKind::Transit, r1, r2});
}

std::string RelayOptionTable::label(OptionId id) const {
  const RelayOption& o = get(id);
  switch (o.kind) {
    case RelayKind::Direct:
      return "direct";
    case RelayKind::Bounce:
      return "bounce(" + std::to_string(o.a) + ")";
    case RelayKind::Transit:
      return "transit(" + std::to_string(o.a) + "," + std::to_string(o.b) + ")";
  }
  return "?";
}

std::vector<OptionId> RelayOptionTable::all_ids() const {
  std::vector<OptionId> ids(size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<OptionId>(i);
  return ids;
}

}  // namespace via
