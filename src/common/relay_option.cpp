#include "common/relay_option.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace via {

RelayOptionTable::RelayOptionTable() {
  const RelayOption direct{};  // kind == Direct
  options_.push_back(direct);
  index_.emplace(key_of(direct), 0);
}

std::uint64_t RelayOptionTable::key_of(const RelayOption& o) noexcept {
  return (static_cast<std::uint64_t>(o.kind) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(o.a)) << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint16_t>(o.b));
}

OptionId RelayOptionTable::intern(const RelayOption& o) {
  const auto key = key_of(o);
  if (const auto it = index_.find(key); it != index_.end()) return it->second;
  const auto id = static_cast<OptionId>(options_.size());
  options_.push_back(o);
  index_.emplace(key, id);
  return id;
}

OptionId RelayOptionTable::intern_bounce(RelayId r) {
  assert(r >= 0);
  return intern(RelayOption{RelayKind::Bounce, r, -1});
}

OptionId RelayOptionTable::intern_transit(RelayId r1, RelayId r2) {
  assert(r1 >= 0 && r2 >= 0);
  if (r1 == r2) throw std::invalid_argument("transit requires two distinct relays");
  if (r1 > r2) std::swap(r1, r2);
  return intern(RelayOption{RelayKind::Transit, r1, r2});
}

const RelayOption& RelayOptionTable::get(OptionId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < options_.size());
  return options_[static_cast<std::size_t>(id)];
}

std::string RelayOptionTable::label(OptionId id) const {
  const RelayOption& o = get(id);
  switch (o.kind) {
    case RelayKind::Direct:
      return "direct";
    case RelayKind::Bounce:
      return "bounce(" + std::to_string(o.a) + ")";
    case RelayKind::Transit:
      return "transit(" + std::to_string(o.a) + "," + std::to_string(o.b) + ")";
  }
  return "?";
}

std::vector<OptionId> RelayOptionTable::all_ids() const {
  std::vector<OptionId> ids(options_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<OptionId>(i);
  return ids;
}

}  // namespace via
