// Call records and call contexts.  A CallRecord is the unit of the trace —
// the per-call tuple the Skype clients report (Section 2.1); a CallContext
// is what a routing policy sees when asked for a decision.
#pragma once

#include <span>

#include "common/types.h"

namespace via {

/// One completed call as recorded in the trace.
struct CallRecord {
  CallId id = 0;
  TimeSec start = 0;
  AsId src_as = kInvalidAs;
  AsId dst_as = kInvalidAs;
  CountryId src_country = -1;
  CountryId dst_country = -1;
  PrefixId src_prefix = -1;
  PrefixId dst_prefix = -1;
  OptionId option = 0;  ///< relaying option the call actually used
  PathPerformance perf;
  float duration_min = 0.0F;
  std::int8_t rating = -1;  ///< 1..5 user star rating; -1 if the user was not asked

  [[nodiscard]] bool international() const noexcept { return src_country != dst_country; }
  [[nodiscard]] bool inter_as() const noexcept { return src_as != dst_as; }
  [[nodiscard]] bool rated() const noexcept { return rating >= 1; }
  /// "Poor" user rating per the paper's operational practice: 1 or 2 stars.
  [[nodiscard]] bool rated_poor() const noexcept { return rating >= 1 && rating <= 2; }
  [[nodiscard]] int day() const noexcept { return day_of(start); }
  [[nodiscard]] std::uint64_t pair_key() const noexcept { return as_pair_key(src_as, dst_as); }
};

/// What a policy knows when choosing a relaying option for a new call:
/// endpoints, time, and the candidate option set for this AS pair.
///
/// `key_src` / `key_dst` are the endpoint *grouping* ids a policy keys its
/// state by.  They default to the AS ids; the simulation engine substitutes
/// country or prefix ids when studying spatial decision granularity
/// (the paper's Figure 17a).
struct CallContext {
  CallId id = 0;
  TimeSec time = 0;
  AsId src_as = kInvalidAs;
  AsId dst_as = kInvalidAs;
  AsId key_src = kInvalidAs;
  AsId key_dst = kInvalidAs;
  CountryId src_country = -1;
  CountryId dst_country = -1;
  PrefixId src_prefix = -1;
  PrefixId dst_prefix = -1;
  /// Candidate relaying options for this AS pair, always including the
  /// direct path (id 0) first.
  std::span<const OptionId> options;

  /// Request tracing (obs/span.h): the distributed trace this decision
  /// belongs to and the caller's span to parent under.  0/0 (the default)
  /// means "not traced by the caller" — a policy with a tracer attached
  /// derives a deterministic trace id from the call id instead, so head
  /// sampling still works for untraced hosts.  Ignored entirely when no
  /// tracer is attached.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  [[nodiscard]] std::uint64_t pair_key() const noexcept {
    return as_pair_key(key_src, key_dst);
  }
  [[nodiscard]] int day() const noexcept { return day_of(time); }
};

}  // namespace via
