#include "rpc/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/export.h"
#include "obs/span.h"
#include "rpc/reactor.h"
#include "rpc/uring_reactor.h"
#include "util/rng.h"

namespace via {

namespace {
/// Wire overhead per frame: u32 payload length + u8 message type.
constexpr std::int64_t kFrameHeaderBytes = 5;

/// Estimated wire size of one DecisionResponse (call_id + option +
/// replica_id + ring_epoch payload plus the frame header, rounded up).
/// Used only to clamp batch runs to a write-capped connection's headroom,
/// so an overestimate is safe.
constexpr std::size_t kDecisionResponseEstimate = 32;

/// Admin dump size cap: the client's request, clamped so the response
/// frame (string length prefix included) stays under kMaxPayload.
[[nodiscard]] std::size_t dump_cap(const DumpRequest& req) {
  constexpr std::size_t kDefault = kMaxPayload - 4096;
  return req.max_bytes == 0 ? kDefault : std::min<std::size_t>(req.max_bytes, kDefault);
}

/// Locks a shared_mutex shared or exclusive depending on the hosted
/// policy's concurrency capability, so the request switch reads the same
/// either way.
class PolicyLock {
 public:
  PolicyLock(std::shared_mutex& mutex, bool shared) : mutex_(mutex), shared_(shared) {
    if (shared_) {
      mutex_.lock_shared();
    } else {
      mutex_.lock();
    }
  }
  ~PolicyLock() {
    if (shared_) {
      mutex_.unlock_shared();
    } else {
      mutex_.unlock();
    }
  }
  PolicyLock(const PolicyLock&) = delete;
  PolicyLock& operator=(const PolicyLock&) = delete;

 private:
  std::shared_mutex& mutex_;
  const bool shared_;
};
}  // namespace

/// Destination-agnostic reply channel shared by both serving modes: the
/// legacy path writes frames straight to the socket, the reactor path
/// queues them on the connection's WriteBuffer.
struct ControllerServer::ReplySink {
  virtual void send(MsgType type, std::span<const std::byte> payload) = 0;

 protected:
  ~ReplySink() = default;
};

ControllerServer::ControllerServer(RoutingPolicy& policy, std::uint16_t port, ServerConfig config)
    : policy_(&policy),
      config_(config),
      telemetry_(4096,
                 obs::TraceConfig{.sample_rate = config.trace_sample,
                                  .buffer_capacity = config.trace_buffer},
                 config.flight_capacity),
      tel_accepted_(&telemetry_.registry.counter("rpc.server.accepted_connections")),
      tel_conn_errors_(&telemetry_.registry.counter("rpc.server.connection_errors")),
      tel_bytes_in_(&telemetry_.registry.counter("rpc.server.bytes_in")),
      tel_bytes_out_(&telemetry_.registry.counter("rpc.server.bytes_out")),
      tel_decisions_(&telemetry_.registry.counter("rpc.server.decisions")),
      tel_reports_(&telemetry_.registry.counter("rpc.server.reports")),
      tel_busy_(&telemetry_.registry.counter("rpc.server.busy_rejected")),
      tel_protocol_errors_(&telemetry_.registry.counter("rpc.server.protocol_errors")),
      tel_dup_reports_(&telemetry_.registry.counter("rpc.server.duplicate_reports")),
      tel_dup_refreshes_(&telemetry_.registry.counter("rpc.server.duplicate_refreshes")),
      tel_forced_closes_(&telemetry_.registry.counter("rpc.server.drain_forced_closes")),
      tel_bp_paused_(&telemetry_.registry.gauge("rpc.server.backpressure.paused_conns")),
      tel_bp_pauses_(&telemetry_.registry.counter("rpc.server.backpressure.paused_total")),
      tel_bp_queued_(&telemetry_.registry.gauge("rpc.server.backpressure.bytes_queued")),
      tel_uring_fallbacks_(&telemetry_.registry.counter("rpc.server.uring_fallbacks")),
      tel_pings_(&telemetry_.registry.counter("rpc.server.pings")),
      tel_gossip_updates_(&telemetry_.registry.counter("rpc.server.gossip_updates")),
      tel_request_us_(
          &telemetry_.registry.histogram("rpc.server.request_us", obs::kLatencyBoundsUs)),
      tel_inflight_(&telemetry_.registry.gauge("rpc.server.inflight")),
      tel_refresh_stall_us_(
          &telemetry_.registry.histogram("rpc.server.refresh_stall_us", obs::kLatencyBoundsUs)),
      tracer_(telemetry_.tracer_if_enabled()),
      flight_(telemetry_.flight_if_enabled()),
      policy_concurrent_(policy.concurrent_safe()),
      listener_(port),
      timeseries_recorder_(&telemetry_.registry,
                           static_cast<double>(config.timeseries_window_ms) / 1000.0) {
  policy_->attach_telemetry(&telemetry_);
}

ControllerServer::~ControllerServer() {
  stop();
  policy_->attach_telemetry(nullptr);
}

void ControllerServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  {
    const std::lock_guard lock(refresh_mutex_);
    builder_stop_ = false;
  }
  if (policy_concurrent_) {
    builder_thread_ = std::thread([this] { builder_loop(); });
  }
  if (config_.timeseries_window_ms > 0) {
    {
      const std::lock_guard lock(timeseries_mutex_);
      timeseries_stop_ = false;
    }
    timeseries_thread_ = std::thread([this] { timeseries_loop(); });
  }
  // Backend resolution (§6j): an explicit backend wins; reactor_threads >
  // 0 with the default kLegacy keeps meaning "epoll", preserving the §6h
  // knob's behavior.  kUring degrades to epoll when the kernel can't run
  // it, with a counter and a flight note so the fallback is observable.
  ServingBackend want = config_.backend;
  if (want == ServingBackend::kLegacy && config_.reactor_threads > 0) {
    want = ServingBackend::kEpoll;
  }
  if (want == ServingBackend::kUring && !UringReactor::supported()) {
    tel_uring_fallbacks_->inc();
    if (flight_ != nullptr) {
      flight_->record(obs::FlightEventKind::Note,
                      "io_uring backend unsupported on this kernel; serving via epoll");
    }
    want = ServingBackend::kEpoll;
  }
  active_backend_ = want;
  if (want != ServingBackend::kLegacy) {
    ReactorConfig rconfig;
    rconfig.workers = config_.reactor_threads > 0 ? config_.reactor_threads : 2;
    rconfig.drain_timeout_ms = config_.drain_timeout_ms;
    rconfig.write_buffer_cap = config_.write_buffer_cap;
    rconfig.worker_write_cap = config_.worker_write_cap;
    ReactorHooks hooks;
    hooks.on_accept = [this] { tel_accepted_->inc(); };
    // Decoded-but-unanswered frames count as inflight (§6h): charging them
    // here, before any dispatch, is what lets the shed check see a burst
    // that arrived within a single readiness event.
    hooks.on_decoded = [this](std::size_t n) {
      const std::int64_t now =
          inflight_.fetch_add(static_cast<std::int64_t>(n)) + static_cast<std::int64_t>(n);
      tel_inflight_->set(static_cast<double>(now));
    };
    // Frames the reactor dropped without dispatching (connection closed
    // while paused) settle the same accounting.
    hooks.on_dropped = [this](std::size_t n) { note_requests_done(n); };
    hooks.on_forced_close = [this](int fd) {
      tel_forced_closes_->inc();
      if (flight_ != nullptr) {
        flight_->record(obs::FlightEventKind::DrainForcedClose,
                        "drain timeout: connection forced shut", fd);
      }
    };
    hooks.on_conn_error = [this] { tel_conn_errors_->inc(); };
    hooks.on_pause = [this](int fd, std::size_t queued) {
      tel_bp_pauses_->inc();
      tel_bp_paused_->set(static_cast<double>(reactor_->paused_connections()));
      tel_bp_queued_->set(static_cast<double>(reactor_->queued_bytes()));
      if (flight_ != nullptr) {
        flight_->record(obs::FlightEventKind::BackpressurePause, "write queue over cap", fd,
                        static_cast<std::int64_t>(queued));
      }
    };
    hooks.on_resume = [this](int fd, std::size_t queued) {
      tel_bp_paused_->set(static_cast<double>(reactor_->paused_connections()));
      tel_bp_queued_->set(static_cast<double>(reactor_->queued_bytes()));
      if (flight_ != nullptr) {
        flight_->record(obs::FlightEventKind::BackpressureResume, "write queue drained", fd,
                        static_cast<std::int64_t>(queued));
      }
    };
    auto on_frames = [this](ReactorConn& conn, std::span<Frame> frames) {
      return handle_reactor_frames(conn, frames);
    };
    auto on_error = [this](ReactorConn& conn, const ProtocolError& e) {
      reactor_protocol_error(conn, e);
    };
    if (want == ServingBackend::kUring) {
      reactor_ = std::make_unique<UringReactor>(listener_, on_frames, on_error, rconfig, hooks);
    } else {
      reactor_ = std::make_unique<Reactor>(listener_, on_frames, on_error, rconfig, hooks);
    }
    reactor_->start();
  } else {
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
}

std::size_t ControllerServer::backpressure_paused_conns() const noexcept {
  return reactor_ != nullptr ? reactor_->paused_connections() : 0;
}

std::uint64_t ControllerServer::backpressure_pauses_total() const noexcept {
  return reactor_ != nullptr ? reactor_->pauses_total() : 0;
}

std::size_t ControllerServer::backpressure_queued_bytes() const noexcept {
  return reactor_ != nullptr ? reactor_->queued_bytes() : 0;
}

std::size_t ControllerServer::peak_conn_queued_bytes() const noexcept {
  return reactor_ != nullptr ? reactor_->peak_conn_queued_bytes() : 0;
}

std::vector<std::size_t> ControllerServer::reactor_worker_connections() const {
  return reactor_ != nullptr ? reactor_->worker_connection_counts() : std::vector<std::size_t>{};
}

void ControllerServer::timeseries_loop() {
  const auto t0 = std::chrono::steady_clock::now();
  double prev_close = 0.0;
  std::unique_lock lock(timeseries_mutex_);
  while (!timeseries_stop_) {
    timeseries_cv_.wait_for(lock, std::chrono::milliseconds(config_.timeseries_window_ms),
                            [this] { return timeseries_stop_; });
    const double now_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    // Close the final (partial) window on stop too, so short-lived servers
    // still leave at least one window behind.
    if (now_s > prev_close) {
      timeseries_recorder_.close_window(prev_close, now_s);
      prev_close = now_s;
    }
  }
}

obs::TimeSeries ControllerServer::timeseries() const {
  const std::lock_guard lock(timeseries_mutex_);
  return timeseries_recorder_.series();
}

void ControllerServer::stop() {
  if (!running_.exchange(false)) return;
  if (reactor_ != nullptr) {
    // Reactor drains first, while the builder is still alive: a worker may
    // be blocked in run_refresh() waiting on its builder ticket, and
    // stopping the builder before that ticket completes would deadlock the
    // drain.
    reactor_->stop();
    ::shutdown(listener_.fd(), SHUT_RDWR);
  } else {
    // Unblock accept() by shutting the listening socket down.
    ::shutdown(listener_.fd(), SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
  }
  // Tell the builder to drain outstanding refresh tickets and exit; any
  // handler still waiting on a ticket is released by the drain, and new
  // Refresh requests fall back to the inline-exclusive path from here on.
  {
    const std::lock_guard lock(refresh_mutex_);
    builder_stop_ = true;
  }
  refresh_work_cv_.notify_all();
  {
    const std::lock_guard lock(timeseries_mutex_);
    timeseries_stop_ = true;
  }
  timeseries_cv_.notify_all();
  if (timeseries_thread_.joinable()) timeseries_thread_.join();
  // Handlers splice themselves onto finished_ as their last act; drain
  // until every live handler has come through, then join them all.
  // Graceful drain (§6f): give in-flight requests drain_timeout_ms to
  // finish on their own, then force the remaining connections' sockets
  // shut — their handlers wake with a read error and exit.
  std::list<std::thread> done;
  {
    std::unique_lock lock(handlers_mutex_);
    const bool drained =
        handlers_cv_.wait_for(lock, std::chrono::milliseconds(config_.drain_timeout_ms),
                              [this] { return handlers_.empty(); });
    if (!drained) {
      for (const int fd : conn_fds_) {
        ::shutdown(fd, SHUT_RDWR);
        tel_forced_closes_->inc();
        if (flight_ != nullptr) {
          flight_->record(obs::FlightEventKind::DrainForcedClose,
                          "drain timeout: connection forced shut", fd);
        }
      }
      handlers_cv_.wait(lock, [this] { return handlers_.empty(); });
    }
    done.splice(done.end(), finished_);
  }
  if (builder_thread_.joinable()) builder_thread_.join();
  for (auto& t : done) {
    if (t.joinable()) t.join();
  }
}

void ControllerServer::builder_loop() {
  for (;;) {
    TimeSec now = 0;
    {
      std::unique_lock lock(refresh_mutex_);
      refresh_work_cv_.wait(lock, [this] { return builder_stop_ || !refresh_queue_.empty(); });
      if (refresh_queue_.empty()) return;  // builder_stop_ and drained
      now = refresh_queue_.front();
      refresh_queue_.pop_front();
    }
    // Build the next model while decisions keep flowing (shared lock)...
    {
      std::shared_lock lock(policy_mutex_);
      policy_->prepare_refresh(now);
    }
    // ...then stall serving only for the publish.
    {
      const obs::ScopedTimer stall_timer(*tel_refresh_stall_us_);
      const std::unique_lock lock(policy_mutex_);
      policy_->commit_refresh(now);
    }
    {
      const std::lock_guard lock(refresh_mutex_);
      ++refresh_completed_;
    }
    refresh_done_cv_.notify_all();
  }
}

void ControllerServer::run_refresh(TimeSec now) {
  if (policy_concurrent_) {
    std::uint64_t ticket = 0;
    bool queued = false;
    {
      const std::lock_guard lock(refresh_mutex_);
      if (!builder_stop_) {
        refresh_queue_.push_back(now);
        ticket = ++refresh_requested_;
        queued = true;
      }
    }
    if (queued) {
      refresh_work_cv_.notify_one();
      std::unique_lock lock(refresh_mutex_);
      refresh_done_cv_.wait(lock, [this, ticket] { return refresh_completed_ >= ticket; });
      return;
    }
    // Server shutting down: fall through to the inline path so the client
    // still gets its ack.
  }
  // Model rebuilds are always exclusive for policies without the
  // concurrent-safe capability (see RoutingPolicy contract).
  const obs::ScopedTimer stall_timer(*tel_refresh_stall_us_);
  const std::unique_lock lock(policy_mutex_);
  policy_->refresh(now);
}

std::size_t ControllerServer::active_handlers() const {
  if (reactor_ != nullptr) return reactor_->connection_count();
  const std::lock_guard lock(handlers_mutex_);
  return handlers_.size();
}

void ControllerServer::reap_finished() {
  std::list<std::thread> done;
  {
    const std::lock_guard lock(handlers_mutex_);
    done.splice(done.end(), finished_);
  }
  for (auto& t : done) {
    if (t.joinable()) t.join();
  }
}

void ControllerServer::accept_loop() {
  while (running_.load()) {
    TcpConnection conn;
    try {
      conn = listener_.accept();
    } catch (const std::exception&) {
      break;  // listener shut down
    }
    if (!running_.load()) break;
    tel_accepted_->inc();
    // Join handlers whose clients already disconnected, so the
    // bookkeeping tracks live connections rather than growing with every
    // connection ever accepted.
    reap_finished();
    const std::lock_guard lock(handlers_mutex_);
    handlers_.emplace_back();
    const auto self = std::prev(handlers_.end());
    *self = std::thread([this, self, c = std::move(conn)]() mutable {
      handle_connection(std::move(c));
      const std::lock_guard relock(handlers_mutex_);
      finished_.splice(finished_.end(), handlers_, self);
      handlers_cv_.notify_all();
    });
  }
}

bool ControllerServer::note_report_seen(const Observation& obs) {
  const std::uint64_t key = hash_mix(static_cast<std::uint64_t>(obs.id),
                                     static_cast<std::uint64_t>(obs.option),
                                     static_cast<std::uint64_t>(obs.time));
  const std::lock_guard lock(dedup_mutex_);
  if (!dedup_set_.insert(key).second) return false;
  dedup_fifo_.push_back(key);
  if (dedup_fifo_.size() > config_.report_dedup_window) {
    dedup_set_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
  return true;
}

void ControllerServer::handle_connection(TcpConnection conn) {
  // Register the live socket so a drain timeout can force it shut; the
  // guard unregisters while `conn` is still open (destroyed before the
  // parameter), so a forced ::shutdown never hits a recycled fd.
  {
    const std::lock_guard lock(handlers_mutex_);
    conn_fds_.insert(conn.fd());
  }
  struct FdGuard {
    ControllerServer* server;
    int fd;
    ~FdGuard() {
      const std::lock_guard lock(server->handlers_mutex_);
      server->conn_fds_.erase(fd);
    }
  } fd_guard{this, conn.fd()};
  // Writes reply frames straight to the client socket (legacy mode).
  struct SocketSink final : ReplySink {
    explicit SocketSink(ControllerServer* s, TcpConnection* c) : server(s), conn(c) {}
    void send(MsgType type, std::span<const std::byte> payload) override {
      send_frame(*conn, static_cast<std::uint8_t>(type), payload);
    }
    ControllerServer* server;
    TcpConnection* conn;
  };
  SocketSink sink(this, &conn);
  Frame frame;
  try {
    while (recv_frame(conn, frame)) {
      tel_bytes_in_->inc(static_cast<std::int64_t>(frame.payload.size()) + kFrameHeaderBytes);
      const obs::ScopedTimer request_timer(*tel_request_us_);
      // Requests currently being served across all handler threads; the
      // gauge tracks it so GetStats shows live server pressure.
      const std::int64_t inflight_now = inflight_.fetch_add(1) + 1;
      tel_inflight_->set(static_cast<double>(inflight_now));
      struct InflightGuard {
        ControllerServer* server;
        ~InflightGuard() {
          server->tel_inflight_->set(
              static_cast<double>(server->inflight_.fetch_sub(1) - 1));
        }
      } inflight_guard{this};
      // Overload shedding (§6f): past the inflight cap, work-generating
      // requests get an immediate Busy instead of queueing on the policy
      // lock; the client backs off and retries.  GetStats/Shutdown always
      // go through — operators need visibility and control most when the
      // server is drowning.
      const auto msg_type = static_cast<MsgType>(frame.type);
      const bool sheddable = msg_type == MsgType::DecisionRequest ||
                             msg_type == MsgType::Report || msg_type == MsgType::Refresh;
      if (config_.max_inflight > 0 && sheddable && inflight_now > config_.max_inflight) {
        send_busy(sink, frame.type, inflight_now);
        continue;
      }
      if (!dispatch_frame(frame, sink)) return;
    }
  } catch (const ProtocolError& e) {
    // Malformed frame (§6f): tell the client what broke, then drop the
    // connection — after a framing violation the stream can't be trusted.
    try {
      send_protocol_error(sink, frame.type, e);
    } catch (const std::exception&) {
      // The socket may already be gone; closing is all that's left.
    }
  } catch (const std::exception&) {
    // A broken client connection only terminates its own handler.
    tel_conn_errors_->inc();
  }
}

bool ControllerServer::dispatch_frame(const Frame& frame, ReplySink& sink) {
  WireReader reader(frame.payload);
  WireWriter writer;
  auto reply = [&](MsgType type) {
    tel_bytes_out_->inc(static_cast<std::int64_t>(writer.bytes().size()) + kFrameHeaderBytes);
    sink.send(type, writer.bytes());
  };
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::DecisionRequest: {
      const DecisionRequest req = DecisionRequest::decode(reader);
      CallContext ctx;
      ctx.id = req.call_id;
      ctx.time = req.time;
      ctx.src_as = req.src_as;
      ctx.dst_as = req.dst_as;
      ctx.key_src = req.src_as;
      ctx.key_dst = req.dst_as;
      ctx.options = req.options;
      // Request tracing (§6g): adopt the client's trace id (or derive a
      // deterministic one) and parent the policy's choose sub-spans
      // under this handler's rpc.decide span.
      std::uint64_t trace_id = req.trace_id;
      if (tracer_ != nullptr && trace_id == 0) {
        trace_id = obs::derive_trace_id(static_cast<std::uint64_t>(req.call_id));
      }
      obs::ScopedSpan srv_span(tracer_, trace_id, 0, "rpc.decide");
      ctx.trace_id = trace_id;
      ctx.parent_span = srv_span.span_id();
      DecisionResponse resp;
      resp.call_id = req.call_id;
      resp.replica_id = config_.replica_id;
      resp.ring_epoch = config_.ring_epoch;
      {
        const PolicyLock lock(policy_mutex_, policy_concurrent_);
        resp.option = policy_->choose(ctx);
      }
      ++decisions_;
      tel_decisions_->inc();
      resp.encode(writer);
      reply(MsgType::DecisionResponse);
      break;
    }
    case MsgType::Report: {
      const ReportMsg msg = ReportMsg::decode(reader);
      // Idempotency (§6f): a client that timed out and resent gets its
      // ack, but the observation feeds the policy only once.
      if (config_.report_dedup_window > 0 && !note_report_seen(msg.obs)) {
        tel_dup_reports_->inc();
        reply(MsgType::ReportAck);
        break;
      }
      {
        const PolicyLock lock(policy_mutex_, policy_concurrent_);
        policy_->observe(msg.obs);
      }
      ++reports_;
      tel_reports_->inc();
      reply(MsgType::ReportAck);
      break;
    }
    case MsgType::Refresh: {
      const RefreshMsg msg = RefreshMsg::decode(reader);
      // A retried Refresh (same or older timestamp) is acked without
      // rebuilding: refresh(now) is not idempotent — it advances decay
      // and re-randomizes exploration — so the dedup is what makes
      // client-side Refresh retries safe.
      if (msg.now <= last_refresh_now_.load()) {
        tel_dup_refreshes_->inc();
        reply(MsgType::RefreshAck);
        break;
      }
      run_refresh(msg.now);
      TimeSec prev = last_refresh_now_.load();
      while (msg.now > prev && !last_refresh_now_.compare_exchange_weak(prev, msg.now)) {
      }
      reply(MsgType::RefreshAck);
      break;
    }
    case MsgType::GetStats: {
      const StatsRequest req = StatsRequest::decode(reader);
      const auto format = req.format <= static_cast<std::uint8_t>(obs::StatsFormat::Table)
                              ? static_cast<obs::StatsFormat>(req.format)
                              : obs::StatsFormat::Json;
      StatsResponse resp;
      resp.text = obs::render_stats(telemetry_.registry.snapshot(), format);
      resp.replica_id = config_.replica_id;
      resp.encode(writer);
      reply(MsgType::GetStatsResponse);
      break;
    }
    case MsgType::GetTrace: {
      const DumpRequest req = DumpRequest::decode(reader);
      StatsResponse resp;
      resp.text = obs::chrome_trace_json(telemetry_.tracer.buffer(), dump_cap(req));
      resp.replica_id = config_.replica_id;
      resp.encode(writer);
      reply(MsgType::GetTraceResponse);
      break;
    }
    case MsgType::GetFlightRecord: {
      const DumpRequest req = DumpRequest::decode(reader);
      std::ostringstream jsonl;
      telemetry_.flight.export_jsonl(jsonl);
      StatsResponse resp;
      resp.text = std::move(jsonl).str();
      const std::size_t cap = dump_cap(req);
      if (resp.text.size() > cap) {
        // Keep the newest events: cut at the first line boundary that
        // leaves the tail within the cap.
        const std::size_t cut = resp.text.find('\n', resp.text.size() - cap);
        resp.text = cut == std::string::npos ? std::string{} : resp.text.substr(cut + 1);
      }
      resp.replica_id = config_.replica_id;
      resp.encode(writer);
      reply(MsgType::GetFlightRecordResponse);
      break;
    }
    case MsgType::Ping: {
      // Liveness probe (§6k): no request payload, exempt from shedding
      // like the other control-plane frames — probes must answer exactly
      // when the data plane is overloaded or recovering.
      PongMsg pong;
      pong.replica_id = config_.replica_id;
      pong.ring_epoch = config_.ring_epoch;
      tel_pings_->inc();
      pong.encode(writer);
      reply(MsgType::Pong);
      break;
    }
    case MsgType::GossipSegments: {
      const GossipSegmentsMsg msg = GossipSegmentsMsg::decode(reader);
      GossipSegmentsAckMsg ack;
      ack.replica_id = config_.replica_id;
      ack.ring_epoch = config_.ring_epoch;
      if (gossip_handler_) {
        ack.accepted = static_cast<std::uint32_t>(gossip_handler_(msg));
      }
      tel_gossip_updates_->inc();
      ack.encode(writer);
      reply(MsgType::GossipSegmentsAck);
      break;
    }
    case MsgType::Shutdown:
      return false;
    default:
      throw ProtocolError("unexpected message type");
  }
  return true;
}

void ControllerServer::send_busy(ReplySink& sink, std::uint8_t frame_type,
                                 std::int64_t inflight_now) {
  tel_busy_->inc();
  if (flight_ != nullptr) {
    flight_->record(obs::FlightEventKind::Shed, "over inflight cap; request shed",
                    static_cast<std::int64_t>(frame_type), inflight_now);
  }
  tel_bytes_out_->inc(kFrameHeaderBytes);
  sink.send(MsgType::Busy, {});
}

void ControllerServer::send_protocol_error(ReplySink& sink, std::uint8_t frame_type,
                                           const ProtocolError& e) {
  tel_protocol_errors_->inc();
  if (flight_ != nullptr) {
    flight_->record(obs::FlightEventKind::ProtocolError, e.what(),
                    static_cast<std::int64_t>(frame_type));
  }
  WireWriter writer;
  ErrorMsg{frame_type, e.what()}.encode(writer);
  tel_bytes_out_->inc(static_cast<std::int64_t>(writer.bytes().size()) + kFrameHeaderBytes);
  sink.send(MsgType::Error, writer.bytes());
}

void ControllerServer::note_requests_done(std::size_t n) {
  const std::int64_t now =
      inflight_.fetch_sub(static_cast<std::int64_t>(n)) - static_cast<std::int64_t>(n);
  tel_inflight_->set(static_cast<double>(now));
}

std::size_t ControllerServer::handle_reactor_frames(ReactorConn& conn, std::span<Frame> frames) {
  struct ReactorSink final : ReplySink {
    explicit ReactorSink(ReactorConn* c) : conn(c) {}
    void send(MsgType type, std::span<const std::byte> payload) override {
      conn->send(static_cast<std::uint8_t>(type), payload);
    }
    ReactorConn* conn;
  };
  ReactorSink sink(&conn);
  // Inflight was charged when these frames were decoded (the on_decoded
  // hook).  The return value tells the reactor how many frames this call
  // disposed of; frames it kept (write-capped partial return) stay charged
  // and come back in a later call.  Every disposing exit path — including
  // exceptions and an early Shutdown close — settles the unserved
  // remainder through this guard.
  struct PendingGuard {
    ControllerServer* server;
    std::size_t remaining;
    ~PendingGuard() {
      if (remaining > 0) server->note_requests_done(remaining);
    }
  } pending{this, frames.size()};

  std::size_t i = 0;
  while (i < frames.size()) {
    // Backpressure (§6j): once this connection's write queue is at its
    // cap, stop producing replies.  The unserved tail stays with the
    // reactor (still inflight-charged) and is redispatched after the
    // queue drains under the low-water mark.
    if (conn.write_capped()) {
      pending.remaining = 0;
      return i;
    }
    // Batched decision path (§6h): a run of DecisionRequests decoded from
    // one readiness event is served under one policy-lock acquire and one
    // model-snapshot pin.  Tracing keeps the per-frame path (exact spans),
    // and so does a configured inflight cap (exact shed accounting).
    if (tracer_ == nullptr && config_.max_inflight <= 0 &&
        frames[i].type == static_cast<std::uint8_t>(MsgType::DecisionRequest)) {
      std::size_t j = i + 1;
      while (j < frames.size() &&
             frames[j].type == static_cast<std::uint8_t>(MsgType::DecisionRequest)) {
        ++j;
      }
      // A DecisionResponse frame is ~24 bytes on the wire; clamping the
      // run to the queue's headroom keeps one batch from overshooting the
      // cap by more than the final response.
      const std::size_t headroom_frames =
          std::max<std::size_t>(1, conn.write_headroom() / kDecisionResponseEstimate);
      const std::size_t run = std::min(j - i, headroom_frames);
      if (run >= 2) {
        bool keep_open = true;
        try {
          process_decision_batch(frames.subspan(i, run), sink);
        } catch (const ProtocolError& e) {
          send_protocol_error(sink, static_cast<std::uint8_t>(MsgType::DecisionRequest), e);
          keep_open = false;
        }
        note_requests_done(run);
        pending.remaining -= run;
        i += run;
        if (!keep_open) {
          conn.close_after_flush();
          return frames.size();
        }
        continue;
      }
    }
    const Frame& frame = frames[i];
    tel_bytes_in_->inc(static_cast<std::int64_t>(frame.payload.size()) + kFrameHeaderBytes);
    bool keep_open = true;
    {
      const obs::ScopedTimer request_timer(*tel_request_us_);
      const auto msg_type = static_cast<MsgType>(frame.type);
      const bool sheddable = msg_type == MsgType::DecisionRequest ||
                             msg_type == MsgType::Report || msg_type == MsgType::Refresh;
      const std::int64_t inflight_now = inflight_.load();
      if (config_.max_inflight > 0 && sheddable && inflight_now > config_.max_inflight) {
        send_busy(sink, frame.type, inflight_now);
      } else {
        try {
          keep_open = dispatch_frame(frame, sink);
        } catch (const ProtocolError& e) {
          send_protocol_error(sink, frame.type, e);
          keep_open = false;
        }
      }
    }
    note_requests_done(1);
    pending.remaining -= 1;
    ++i;
    if (!keep_open) {
      conn.close_after_flush();
      return frames.size();
    }
  }
  return frames.size();
}

void ControllerServer::process_decision_batch(std::span<Frame> frames, ReplySink& sink) {
  // One histogram observation for the whole run: request_us then reflects
  // per-wakeup serving cost instead of synthetic per-frame slices.
  const obs::ScopedTimer request_timer(*tel_request_us_);
  std::vector<DecisionRequest> reqs;
  reqs.reserve(frames.size());
  std::exception_ptr decode_error;
  for (const Frame& frame : frames) {
    tel_bytes_in_->inc(static_cast<std::int64_t>(frame.payload.size()) + kFrameHeaderBytes);
    try {
      WireReader reader(frame.payload);
      reqs.push_back(DecisionRequest::decode(reader));
    } catch (const ProtocolError&) {
      // Serve the cleanly decoded prefix, then surface the violation so
      // the connection closes exactly as the sequential path would.
      decode_error = std::current_exception();
      break;
    }
  }
  const std::size_t n = reqs.size();
  std::vector<CallContext> ctxs(n);
  for (std::size_t i = 0; i < n; ++i) {
    CallContext& ctx = ctxs[i];
    ctx.id = reqs[i].call_id;
    ctx.time = reqs[i].time;
    ctx.src_as = reqs[i].src_as;
    ctx.dst_as = reqs[i].dst_as;
    ctx.key_src = reqs[i].src_as;
    ctx.key_dst = reqs[i].dst_as;
    ctx.options = reqs[i].options;
  }
  std::vector<OptionId> picks(n);
  {
    const PolicyLock lock(policy_mutex_, policy_concurrent_);
    policy_->choose_batch(ctxs, picks);
  }
  decisions_ += static_cast<std::int64_t>(n);
  tel_decisions_->inc(static_cast<std::int64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    WireWriter writer;
    DecisionResponse resp;
    resp.call_id = reqs[i].call_id;
    resp.option = picks[i];
    resp.replica_id = config_.replica_id;
    resp.ring_epoch = config_.ring_epoch;
    resp.encode(writer);
    tel_bytes_out_->inc(static_cast<std::int64_t>(writer.bytes().size()) + kFrameHeaderBytes);
    sink.send(MsgType::DecisionResponse, writer.bytes());
  }
  if (decode_error) std::rethrow_exception(decode_error);
}

void ControllerServer::reactor_protocol_error(ReactorConn& conn, const ProtocolError& e) {
  struct ReactorSink final : ReplySink {
    explicit ReactorSink(ReactorConn* c) : conn(c) {}
    void send(MsgType type, std::span<const std::byte> payload) override {
      conn->send(static_cast<std::uint8_t>(type), payload);
    }
    ReactorConn* conn;
  };
  ReactorSink sink(&conn);
  // Decode-level violation (oversized frame): there is no decoded request
  // type to echo back.
  send_protocol_error(sink, 0, e);
}

}  // namespace via
