#include "rpc/server.h"

#include <sys/socket.h>

#include <stdexcept>

namespace via {

ControllerServer::ControllerServer(RoutingPolicy& policy, std::uint16_t port)
    : policy_(&policy), listener_(port) {}

ControllerServer::~ControllerServer() { stop(); }

void ControllerServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ControllerServer::stop() {
  if (!running_.exchange(false)) return;
  // Unblock accept() by shutting the listening socket down.
  ::shutdown(listener_.fd(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    const std::lock_guard lock(handlers_mutex_);
    handlers.swap(handlers_);
  }
  for (auto& t : handlers) {
    if (t.joinable()) t.join();
  }
}

void ControllerServer::accept_loop() {
  while (running_.load()) {
    TcpConnection conn;
    try {
      conn = listener_.accept();
    } catch (const std::exception&) {
      break;  // listener shut down
    }
    if (!running_.load()) break;
    const std::lock_guard lock(handlers_mutex_);
    handlers_.emplace_back(
        [this, c = std::move(conn)]() mutable { handle_connection(std::move(c)); });
  }
}

void ControllerServer::handle_connection(TcpConnection conn) {
  Frame frame;
  try {
    while (recv_frame(conn, frame)) {
      WireReader reader(frame.payload);
      WireWriter writer;
      switch (static_cast<MsgType>(frame.type)) {
        case MsgType::DecisionRequest: {
          const DecisionRequest req = DecisionRequest::decode(reader);
          CallContext ctx;
          ctx.id = req.call_id;
          ctx.time = req.time;
          ctx.src_as = req.src_as;
          ctx.dst_as = req.dst_as;
          ctx.key_src = req.src_as;
          ctx.key_dst = req.dst_as;
          ctx.options = req.options;
          DecisionResponse resp;
          resp.call_id = req.call_id;
          {
            const std::lock_guard lock(policy_mutex_);
            resp.option = policy_->choose(ctx);
          }
          ++decisions_;
          resp.encode(writer);
          send_frame(conn, static_cast<std::uint8_t>(MsgType::DecisionResponse),
                     writer.bytes());
          break;
        }
        case MsgType::Report: {
          const ReportMsg msg = ReportMsg::decode(reader);
          {
            const std::lock_guard lock(policy_mutex_);
            policy_->observe(msg.obs);
          }
          ++reports_;
          send_frame(conn, static_cast<std::uint8_t>(MsgType::ReportAck), {});
          break;
        }
        case MsgType::Refresh: {
          const RefreshMsg msg = RefreshMsg::decode(reader);
          {
            const std::lock_guard lock(policy_mutex_);
            policy_->refresh(msg.now);
          }
          send_frame(conn, static_cast<std::uint8_t>(MsgType::RefreshAck), {});
          break;
        }
        case MsgType::Shutdown:
          return;
        default:
          throw std::runtime_error("unexpected message type");
      }
    }
  } catch (const std::exception&) {
    // A broken client connection only terminates its own handler.
  }
}

}  // namespace via
