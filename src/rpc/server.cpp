#include "rpc/server.h"

#include <sys/socket.h>

#include <stdexcept>

#include "obs/export.h"

namespace via {

namespace {
/// Wire overhead per frame: u32 payload length + u8 message type.
constexpr std::int64_t kFrameHeaderBytes = 5;
}  // namespace

ControllerServer::ControllerServer(RoutingPolicy& policy, std::uint16_t port)
    : policy_(&policy),
      tel_accepted_(&telemetry_.registry.counter("rpc.server.accepted_connections")),
      tel_conn_errors_(&telemetry_.registry.counter("rpc.server.connection_errors")),
      tel_bytes_in_(&telemetry_.registry.counter("rpc.server.bytes_in")),
      tel_bytes_out_(&telemetry_.registry.counter("rpc.server.bytes_out")),
      tel_decisions_(&telemetry_.registry.counter("rpc.server.decisions")),
      tel_reports_(&telemetry_.registry.counter("rpc.server.reports")),
      tel_request_us_(
          &telemetry_.registry.histogram("rpc.server.request_us", obs::kLatencyBoundsUs)),
      listener_(port) {
  policy_->attach_telemetry(&telemetry_);
}

ControllerServer::~ControllerServer() {
  stop();
  policy_->attach_telemetry(nullptr);
}

void ControllerServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ControllerServer::stop() {
  if (!running_.exchange(false)) return;
  // Unblock accept() by shutting the listening socket down.
  ::shutdown(listener_.fd(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    const std::lock_guard lock(handlers_mutex_);
    handlers.swap(handlers_);
  }
  for (auto& t : handlers) {
    if (t.joinable()) t.join();
  }
}

void ControllerServer::accept_loop() {
  while (running_.load()) {
    TcpConnection conn;
    try {
      conn = listener_.accept();
    } catch (const std::exception&) {
      break;  // listener shut down
    }
    if (!running_.load()) break;
    tel_accepted_->inc();
    const std::lock_guard lock(handlers_mutex_);
    handlers_.emplace_back(
        [this, c = std::move(conn)]() mutable { handle_connection(std::move(c)); });
  }
}

void ControllerServer::handle_connection(TcpConnection conn) {
  Frame frame;
  try {
    while (recv_frame(conn, frame)) {
      tel_bytes_in_->inc(static_cast<std::int64_t>(frame.payload.size()) + kFrameHeaderBytes);
      const obs::ScopedTimer request_timer(*tel_request_us_);
      WireReader reader(frame.payload);
      WireWriter writer;
      auto reply = [&](MsgType type) {
        tel_bytes_out_->inc(static_cast<std::int64_t>(writer.bytes().size()) +
                            kFrameHeaderBytes);
        send_frame(conn, static_cast<std::uint8_t>(type), writer.bytes());
      };
      switch (static_cast<MsgType>(frame.type)) {
        case MsgType::DecisionRequest: {
          const DecisionRequest req = DecisionRequest::decode(reader);
          CallContext ctx;
          ctx.id = req.call_id;
          ctx.time = req.time;
          ctx.src_as = req.src_as;
          ctx.dst_as = req.dst_as;
          ctx.key_src = req.src_as;
          ctx.key_dst = req.dst_as;
          ctx.options = req.options;
          DecisionResponse resp;
          resp.call_id = req.call_id;
          {
            const std::lock_guard lock(policy_mutex_);
            resp.option = policy_->choose(ctx);
          }
          ++decisions_;
          tel_decisions_->inc();
          resp.encode(writer);
          reply(MsgType::DecisionResponse);
          break;
        }
        case MsgType::Report: {
          const ReportMsg msg = ReportMsg::decode(reader);
          {
            const std::lock_guard lock(policy_mutex_);
            policy_->observe(msg.obs);
          }
          ++reports_;
          tel_reports_->inc();
          reply(MsgType::ReportAck);
          break;
        }
        case MsgType::Refresh: {
          const RefreshMsg msg = RefreshMsg::decode(reader);
          {
            const std::lock_guard lock(policy_mutex_);
            policy_->refresh(msg.now);
          }
          reply(MsgType::RefreshAck);
          break;
        }
        case MsgType::GetStats: {
          const StatsRequest req = StatsRequest::decode(reader);
          const auto format = req.format <= static_cast<std::uint8_t>(obs::StatsFormat::Table)
                                  ? static_cast<obs::StatsFormat>(req.format)
                                  : obs::StatsFormat::Json;
          StatsResponse resp;
          resp.text = obs::render_stats(telemetry_.registry.snapshot(), format);
          resp.encode(writer);
          reply(MsgType::GetStatsResponse);
          break;
        }
        case MsgType::Shutdown:
          return;
        default:
          throw std::runtime_error("unexpected message type");
      }
    }
  } catch (const std::exception&) {
    // A broken client connection only terminates its own handler.
    tel_conn_errors_->inc();
  }
}

}  // namespace via
