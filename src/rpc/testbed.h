// The Section 5.5 controlled-deployment experiment, reproduced on
// localhost: a cloud controller (ControllerServer + ViaPolicy) and a fleet
// of instrumented client pairs talking to it over TCP.
//
// Phase 1 (orchestrated measurement): each client pair makes short
// back-to-back calls over each of its candidate relaying options several
// times, pushing measurements to the controller — the paper's "9-20
// relaying options, 4-5 times each" regime.  The direct path is omitted,
// as in the paper.
//
// Phase 2 (evaluation): after a controller refresh, each pair places
// evaluation calls, letting the controller choose the relay.  Per call we
// record the sub-optimality (Perf_VIA - Perf_oracle) / Perf_oracle against
// the oracle's choice on the same call (paired sampling).
#pragma once

#include <cstdint>
#include <vector>

#include "core/via_policy.h"
#include "netsim/groundtruth.h"
#include "netsim/world.h"

namespace via {

struct TestbedConfig {
  int client_pairs = 18;
  int measurement_rounds = 4;  ///< back-to-back calls per option in phase 1
  int eval_calls_per_pair = 30;
  Metric target = Metric::Rtt;
  WorldConfig world{.num_ases = 20, .num_relays = 10, .seed = 2016};
  std::uint64_t seed = 55;
  ViaConfig via;  ///< epsilon/top-k settings for the controller under test
};

struct TestbedResult {
  std::vector<double> suboptimality;  ///< one entry per evaluation call
  std::int64_t eval_calls = 0;
  std::int64_t measurement_calls = 0;
  std::int64_t picked_best = 0;  ///< evaluation calls where Via picked the oracle option

  [[nodiscard]] double fraction_best() const noexcept {
    return eval_calls > 0 ? static_cast<double>(picked_best) / static_cast<double>(eval_calls)
                          : 0.0;
  }
  /// Fraction of calls with sub-optimality <= x.
  [[nodiscard]] double fraction_within(double x) const noexcept;
};

/// Runs the full experiment (starts a real TCP server on an ephemeral
/// port, one client thread per pair).
[[nodiscard]] TestbedResult run_testbed(const TestbedConfig& config);

}  // namespace via
