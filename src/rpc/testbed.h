// The Section 5.5 controlled-deployment experiment, reproduced on
// localhost: a cloud controller (ControllerServer + ViaPolicy) and a fleet
// of instrumented client pairs talking to it over TCP.
//
// Phase 1 (orchestrated measurement): each client pair makes short
// back-to-back calls over each of its candidate relaying options several
// times, pushing measurements to the controller — the paper's "9-20
// relaying options, 4-5 times each" regime.  The direct path is omitted,
// as in the paper.
//
// Phase 2 (evaluation): after a controller refresh, each pair places
// evaluation calls, letting the controller choose the relay.  Per call we
// record the sub-optimality (Perf_VIA - Perf_oracle) / Perf_oracle against
// the oracle's choice on the same call (paired sampling).
#pragma once

#include <cstdint>
#include <vector>

#include "core/via_policy.h"
#include "netsim/groundtruth.h"
#include "netsim/world.h"
#include "rpc/client.h"
#include "rpc/faulty_connection.h"
#include "rpc/server.h"
#include "sim/faults.h"

namespace via {

struct TestbedConfig {
  int client_pairs = 18;
  int measurement_rounds = 4;  ///< back-to-back calls per option in phase 1
  int eval_calls_per_pair = 30;
  Metric target = Metric::Rtt;
  WorldConfig world{.num_ases = 20, .num_relays = 10, .seed = 2016};
  std::uint64_t seed = 55;
  ViaConfig via;  ///< epsilon/top-k settings for the controller under test
  /// Robustness plumbing (§6f), all inert by default.
  ServerConfig server;      ///< overload shedding / drain / dedup knobs
  ClientConfig client_rpc;  ///< deadlines, retries, fallback-to-direct
  /// Frame-level chaos: when any probability is nonzero, every client's
  /// transport is wrapped in a FaultyConnection (seed decorrelated per
  /// client pair).
  FaultScheduleConfig chaos;
  /// Ground-truth fault plan applied to every testbed sample (may be
  /// null; must outlive the run).
  const FaultPlan* faults = nullptr;
};

struct TestbedResult {
  std::vector<double> suboptimality;  ///< one entry per evaluation call
  std::int64_t eval_calls = 0;
  std::int64_t measurement_calls = 0;
  std::int64_t picked_best = 0;  ///< evaluation calls where Via picked the oracle option
  /// Degradation accounting (§6f), summed over all clients.
  std::int64_t client_retries = 0;
  std::int64_t client_reconnects = 0;
  std::int64_t client_fallbacks = 0;
  std::int64_t faults_injected = 0;  ///< frames the chaos schedules faulted
  std::int64_t fault_impaired_samples = 0;  ///< ground-truth samples the FaultPlan touched

  [[nodiscard]] double fraction_best() const noexcept {
    return eval_calls > 0 ? static_cast<double>(picked_best) / static_cast<double>(eval_calls)
                          : 0.0;
  }
  /// Fraction of calls with sub-optimality <= x.
  [[nodiscard]] double fraction_within(double x) const noexcept;
};

/// Runs the full experiment (starts a real TCP server on an ephemeral
/// port, one client thread per pair).
[[nodiscard]] TestbedResult run_testbed(const TestbedConfig& config);

}  // namespace via
