// Controller server: hosts a RoutingPolicy behind the TCP protocol.  One
// handler thread per client connection (the testbed has tens of clients),
// with the policy guarded by a mutex — the same logical architecture as
// the paper's cloud controller, scaled to a prototype.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/policy.h"
#include "rpc/messages.h"
#include "rpc/socket.h"

namespace via {

class ControllerServer {
 public:
  /// Binds to 127.0.0.1:`port` (0 = ephemeral).  The policy must outlive
  /// the server.
  ControllerServer(RoutingPolicy& policy, std::uint16_t port = 0);
  ~ControllerServer();

  ControllerServer(const ControllerServer&) = delete;
  ControllerServer& operator=(const ControllerServer&) = delete;

  /// Starts the accept loop in a background thread.
  void start();

  /// Stops accepting, closes connections, and joins all threads.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }
  [[nodiscard]] std::int64_t decisions_served() const noexcept { return decisions_.load(); }
  [[nodiscard]] std::int64_t reports_received() const noexcept { return reports_.load(); }

 private:
  void accept_loop();
  void handle_connection(TcpConnection conn);

  RoutingPolicy* policy_;
  std::mutex policy_mutex_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::mutex handlers_mutex_;
  std::vector<std::thread> handlers_;
  std::atomic<bool> running_{false};
  std::atomic<std::int64_t> decisions_{0};
  std::atomic<std::int64_t> reports_{0};
};

}  // namespace via
