// Controller server: hosts a RoutingPolicy behind the TCP protocol.  One
// handler thread per client connection (the testbed has tens of clients),
// with the policy guarded by a mutex — the same logical architecture as
// the paper's cloud controller, scaled to a prototype.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/policy.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "rpc/messages.h"
#include "rpc/socket.h"

namespace via {

class ControllerServer {
 public:
  /// Binds to 127.0.0.1:`port` (0 = ephemeral).  The policy must outlive
  /// the server.  The server owns an obs::Telemetry for its lifetime and
  /// attaches it to the policy, so GetStats sees both the RPC-layer
  /// instruments and the policy's decision counters in one registry.
  ControllerServer(RoutingPolicy& policy, std::uint16_t port = 0);
  ~ControllerServer();

  ControllerServer(const ControllerServer&) = delete;
  ControllerServer& operator=(const ControllerServer&) = delete;

  /// Starts the accept loop in a background thread.
  void start();

  /// Stops accepting, closes connections, and joins all threads.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }
  [[nodiscard]] std::int64_t decisions_served() const noexcept { return decisions_.load(); }
  [[nodiscard]] std::int64_t reports_received() const noexcept { return reports_.load(); }

  /// The server's (and hosted policy's) telemetry.
  [[nodiscard]] obs::Telemetry& telemetry() noexcept { return telemetry_; }

 private:
  void accept_loop();
  void handle_connection(TcpConnection conn);

  RoutingPolicy* policy_;
  obs::Telemetry telemetry_;
  obs::Counter* tel_accepted_;
  obs::Counter* tel_conn_errors_;
  obs::Counter* tel_bytes_in_;
  obs::Counter* tel_bytes_out_;
  obs::Counter* tel_decisions_;
  obs::Counter* tel_reports_;
  obs::LatencyHistogram* tel_request_us_;
  std::mutex policy_mutex_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::mutex handlers_mutex_;
  std::vector<std::thread> handlers_;
  std::atomic<bool> running_{false};
  std::atomic<std::int64_t> decisions_{0};
  std::atomic<std::int64_t> reports_{0};
};

}  // namespace via
