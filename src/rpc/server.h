// Controller server: hosts a RoutingPolicy behind the TCP protocol, in one
// of two serving modes.  The legacy mode spawns one handler thread per
// client connection (fine for tens of clients), reaped as clients
// disconnect.  The reactor mode (§6h, ServerConfig::reactor_threads > 0)
// serves all connections from a small epoll worker pool with per-connection
// buffers and incremental frame decode — runs of DecisionRequests decoded
// from one readiness event are answered through RoutingPolicy::choose_batch
// under a single policy-lock acquire.  Either way the policy sits behind a
// reader-writer lock: when the policy declares itself concurrent-safe
// (ViaPolicy does — see RoutingPolicy::concurrent_safe()), decision and
// report handlers take the lock shared, so clients are served in parallel.
//
// The periodic model rebuild runs off the serving path (DESIGN.md §6e): a
// Refresh message is handed to a dedicated builder thread that drives the
// policy's split protocol — prepare_refresh() under the *shared* lock
// (decisions keep flowing while tomography solves and the predictor
// trains), then commit_refresh() under the exclusive lock, which is just
// the RCU pointer swap.  The exclusive-section duration is exported as the
// rpc.server.refresh_stall_us histogram, so the serving stall a refresh
// actually causes is visible in GetStats.  A policy without the
// concurrent-safe capability keeps the classic coarse exclusive refresh()
// in the handler thread (still timed into the same histogram).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/policy.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "obs/timer.h"
#include "rpc/messages.h"
#include "rpc/socket.h"

namespace via {

/// Serving backend (§6h, §6j).  Legacy is thread-per-connection; Epoll and
/// Uring are the event-driven reactors sharing one dispatch seam.
enum class ServingBackend : std::uint8_t {
  kLegacy = 0,
  kEpoll = 1,
  kUring = 2,
};

[[nodiscard]] constexpr const char* serving_backend_name(ServingBackend b) noexcept {
  switch (b) {
    case ServingBackend::kEpoll:
      return "epoll";
    case ServingBackend::kUring:
      return "uring";
    default:
      return "legacy";
  }
}

/// Robustness knobs (DESIGN.md §6f).  The defaults keep the legacy
/// behavior except for dedup, which is invisible to well-behaved clients.
struct ServerConfig {
  /// Overload shedding: when more than this many requests are being served
  /// at once, new DecisionRequest/Report/Refresh frames get an immediate
  /// Busy reply instead of queueing on the policy lock.  GetStats and
  /// Shutdown are always served (operators need them most under load).
  /// 0 disables shedding.
  std::int64_t max_inflight = 0;
  /// stop() lets in-flight connections finish for this long, then forces
  /// the stragglers' sockets shut (their handlers exit on the read error).
  int drain_timeout_ms = 5000;
  /// Report idempotency window: the ids of the most recent N distinct
  /// observations; a retried Report whose observation is still in the
  /// window is acked without a second policy_->observe().  0 disables.
  std::size_t report_dedup_window = 8192;

  /// Request tracing (§6g): record 1 in `trace_sample` decision traces
  /// (0 disables tracing entirely; 1 records everything).  Sampled traces
  /// cover the rpc.decide span plus the policy's choose sub-stages, held
  /// in a ring of `trace_buffer` spans, dumpable via GetTrace.
  std::uint32_t trace_sample = 0;
  std::size_t trace_buffer = 4096;
  /// Flight recorder ring capacity (0 disables).  Fed by rare structural
  /// events only — shed requests, protocol errors, forced drain closes,
  /// refresh ticks, plus whatever the hosted policy records.
  std::size_t flight_capacity = 4096;
  /// Wall-clock windowed time series: every `timeseries_window_ms` a
  /// ticker closes a window of counter/histogram deltas over the server's
  /// registry.  0 disables the ticker.
  int timeseries_window_ms = 0;

  /// Serving mode (§6h).  > 0: event-driven reactor with this many
  /// worker threads (connections pinned to the least-loaded worker at
  /// accept); 0 (the default): legacy thread-per-connection unless
  /// `backend` selects a reactor (which then defaults to 2 workers).
  /// The controller daemon defaults to the reactor (`--reactor-threads`);
  /// `--legacy-threads` keeps the old model for one release.
  int reactor_threads = 0;

  /// Which serving backend to run (§6j).  kLegacy with reactor_threads >
  /// 0 means epoll, preserving the pre-backend-knob behavior.  kUring
  /// falls back to epoll at start() when the kernel lacks io_uring
  /// (serving_backend() reports what actually runs).
  ServingBackend backend = ServingBackend::kLegacy;
  /// Per-connection queued-reply byte cap for the event-driven backends
  /// (0 disables backpressure): a connection at the cap stops being read
  /// until its socket drains below half the cap.  The queue can overshoot
  /// by at most one reply frame.
  std::size_t write_buffer_cap = 4 * 1024 * 1024;
  /// Aggregate queued-reply cap per reactor worker (0 disables); bounds
  /// total reply RSS when many connections stall at once.
  std::size_t worker_write_cap = 64 * 1024 * 1024;

  /// Federation identity (§6k): stamped into DecisionResponse, the
  /// stats/trace/flightrecord dumps, and the Pong payload so replies are
  /// attributable and a client can detect a stale ring.  0/0 (the
  /// default) reads as an unfederated controller on the wire.
  std::uint32_t replica_id = 0;
  std::uint64_t ring_epoch = 0;
};

class ReactorBase;
class ReactorConn;
struct Frame;

class ControllerServer {
 public:
  /// Binds to 127.0.0.1:`port` (0 = ephemeral).  The policy must outlive
  /// the server.  The server owns an obs::Telemetry for its lifetime and
  /// attaches it to the policy, so GetStats sees both the RPC-layer
  /// instruments and the policy's decision counters in one registry.
  ControllerServer(RoutingPolicy& policy, std::uint16_t port = 0, ServerConfig config = {});
  ~ControllerServer();

  ControllerServer(const ControllerServer&) = delete;
  ControllerServer& operator=(const ControllerServer&) = delete;

  /// Starts the accept loop in a background thread.
  void start();

  /// Stops accepting, closes connections, and joins all threads.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }
  [[nodiscard]] std::int64_t decisions_served() const noexcept { return decisions_.load(); }
  [[nodiscard]] std::int64_t reports_received() const noexcept { return reports_.load(); }
  /// Degradation accounting (§6f), readable without parsing GetStats.
  [[nodiscard]] std::int64_t busy_rejections() const noexcept { return tel_busy_->value(); }
  [[nodiscard]] std::int64_t protocol_errors() const noexcept {
    return tel_protocol_errors_->value();
  }
  [[nodiscard]] std::int64_t duplicate_reports() const noexcept {
    return tel_dup_reports_->value();
  }
  [[nodiscard]] std::int64_t duplicate_refreshes() const noexcept {
    return tel_dup_refreshes_->value();
  }
  /// Live handler threads (connections not yet reaped); for tests and
  /// diagnostics.
  [[nodiscard]] std::size_t active_handlers() const;

  /// Backend actually serving after start(): reflects the epoll fallback
  /// when kUring was requested on a kernel without io_uring.
  [[nodiscard]] ServingBackend serving_backend() const noexcept { return active_backend_; }

  /// Backpressure observability (§6j); all zero under the legacy backend
  /// or before start().
  [[nodiscard]] std::size_t backpressure_paused_conns() const noexcept;
  [[nodiscard]] std::uint64_t backpressure_pauses_total() const noexcept;
  [[nodiscard]] std::size_t backpressure_queued_bytes() const noexcept;
  /// High-water mark of any single connection's write queue — the bound
  /// the soak asserts against (cap + one reply frame).
  [[nodiscard]] std::size_t peak_conn_queued_bytes() const noexcept;
  /// Live connections per reactor worker (least-connections pinning).
  [[nodiscard]] std::vector<std::size_t> reactor_worker_connections() const;

  /// The server's (and hosted policy's) telemetry.
  [[nodiscard]] obs::Telemetry& telemetry() noexcept { return telemetry_; }

  /// Federation (§6k): invoked for every GossipSegments frame with the
  /// decoded peer update; returns how many segment estimates were
  /// accepted (echoed in the ack).  Set before start(); unset means
  /// gossip frames are acked with accepted = 0.
  using GossipHandler = std::function<std::size_t(const GossipSegmentsMsg&)>;
  void set_gossip_handler(GossipHandler handler) { gossip_handler_ = std::move(handler); }
  [[nodiscard]] std::int64_t gossip_updates() const noexcept {
    return tel_gossip_updates_->value();
  }
  [[nodiscard]] std::int64_t pings_served() const noexcept { return tel_pings_->value(); }

  /// Copy of the windowed time series closed so far (empty unless
  /// ServerConfig::timeseries_window_ms is set).
  [[nodiscard]] obs::TimeSeries timeseries() const;

 private:
  /// Destination-agnostic reply channel: the legacy path writes frames
  /// straight to the socket, the reactor path queues them on the
  /// connection's WriteBuffer.  Lets both serving modes share one request
  /// switch (dispatch_frame).
  struct ReplySink;

  void accept_loop();
  void handle_connection(TcpConnection conn);
  /// Serves one decoded request frame (the protocol switch shared by both
  /// serving modes).  Returns false on Shutdown — the caller closes the
  /// connection.  Throws ProtocolError on malformed payloads.
  bool dispatch_frame(const Frame& frame, ReplySink& sink);
  /// Reactor frame handler: serves a connection's decoded batch, shedding
  /// past the inflight cap and batching runs of DecisionRequests through
  /// choose_batch when tracing and shedding are off.  Returns the number
  /// of frames disposed of; a partial count means the connection's write
  /// queue hit its cap and the reactor must redispatch the rest after
  /// drain (those frames stay charged as inflight).
  std::size_t handle_reactor_frames(ReactorConn& conn, std::span<Frame> frames);
  /// One policy-lock acquire and one snapshot pin for a whole run of
  /// DecisionRequests decoded from a single readiness event (§6h).
  void process_decision_batch(std::span<Frame> frames, ReplySink& sink);
  /// Decode-time protocol violation on a reactor connection (oversized
  /// frame): error reply + accounting; the reactor closes after flushing.
  void reactor_protocol_error(ReactorConn& conn, const ProtocolError& e);
  void send_busy(ReplySink& sink, std::uint8_t frame_type, std::int64_t inflight_now);
  void send_protocol_error(ReplySink& sink, std::uint8_t frame_type, const ProtocolError& e);
  /// Settles inflight accounting for `n` requests decoded by the reactor.
  void note_requests_done(std::size_t n);
  /// Joins handler threads whose connections have finished.
  void reap_finished();
  /// Records an observation's idempotency key; returns false when the key
  /// is already in the dedup window (a retried Report).
  [[nodiscard]] bool note_report_seen(const Observation& obs);
  /// Builder thread: pops refresh tickets and runs prepare (shared lock) /
  /// commit (exclusive lock) against the policy; drains the queue before
  /// exiting on stop so no Refresh handler is left waiting.
  void builder_loop();
  /// Runs one refresh for a Refresh request: via the builder for a
  /// concurrent-safe policy, inline-exclusive otherwise.  Blocks until the
  /// refresh is committed (the RefreshAck contract).
  void run_refresh(TimeSec now);
  /// Ticker thread closing wall-clock time-series windows (§6g); runs only
  /// while ServerConfig::timeseries_window_ms > 0.
  void timeseries_loop();

  RoutingPolicy* policy_;
  ServerConfig config_;
  obs::Telemetry telemetry_;
  obs::Counter* tel_accepted_;
  obs::Counter* tel_conn_errors_;
  obs::Counter* tel_bytes_in_;
  obs::Counter* tel_bytes_out_;
  obs::Counter* tel_decisions_;
  obs::Counter* tel_reports_;
  obs::Counter* tel_busy_;
  obs::Counter* tel_protocol_errors_;
  obs::Counter* tel_dup_reports_;
  obs::Counter* tel_dup_refreshes_;
  obs::Counter* tel_forced_closes_;
  /// §6j backpressure instruments: gauges track the reactor's live state
  /// (refreshed at every pause/resume edge), the counter is cumulative.
  obs::Gauge* tel_bp_paused_;
  obs::Counter* tel_bp_pauses_;
  obs::Gauge* tel_bp_queued_;
  /// kUring requested but unsupported: the start()-time epoll fallback.
  obs::Counter* tel_uring_fallbacks_;
  /// Federation plane (§6k): liveness probes answered and gossip updates
  /// received.
  obs::Counter* tel_pings_;
  obs::Counter* tel_gossip_updates_;
  obs::LatencyHistogram* tel_request_us_;
  obs::Gauge* tel_inflight_;
  /// Duration the policy lock is held *exclusively* per refresh — the span
  /// during which no decision can be served.  With the split pipeline this
  /// is pointer-swap scale (µs); the monolithic fallback shows the full
  /// model rebuild here.
  obs::LatencyHistogram* tel_refresh_stall_us_;
  /// §6g: null unless the respective ServerConfig knob enables them, so
  /// disabled tracing/flight-recording cost one pointer test per site.
  obs::Tracer* tracer_;
  obs::FlightRecorder* flight_;

  /// Federation gossip sink (§6k); immutable after start().
  GossipHandler gossip_handler_;

  /// Reader-writer policy guard; `policy_concurrent_` (sampled once at
  /// construction) decides whether choose/observe may share it.
  std::shared_mutex policy_mutex_;
  const bool policy_concurrent_;

  TcpListener listener_;
  std::thread accept_thread_;
  /// Event-driven serving mode (§6h/§6j); built fresh on each start()
  /// when an event-driven backend is selected, stopped (and kept for
  /// inspection) on stop().
  std::unique_ptr<ReactorBase> reactor_;
  ServingBackend active_backend_ = ServingBackend::kLegacy;

  /// Handler bookkeeping: live threads sit on `handlers_`; a handler
  /// splices its own node onto `finished_` as its last act, and the accept
  /// loop joins finished threads before each accept (stop() drains both
  /// lists).  Bounds thread bookkeeping by live connections instead of
  /// total connections ever accepted.
  mutable std::mutex handlers_mutex_;
  std::condition_variable handlers_cv_;  ///< signaled on each handler finish
  std::list<std::thread> handlers_;
  std::list<std::thread> finished_;
  /// File descriptors of live client connections (guarded by
  /// handlers_mutex_).  A handler registers its fd on entry and removes it
  /// *before* the socket closes, so stop()'s forced drain can ::shutdown
  /// stragglers without racing fd reuse.
  std::unordered_set<int> conn_fds_;

  /// Report idempotency window (§6f): set for O(1) lookup, FIFO for
  /// eviction.  Guarded by dedup_mutex_.
  std::mutex dedup_mutex_;
  std::unordered_set<std::uint64_t> dedup_set_;
  std::deque<std::uint64_t> dedup_fifo_;
  /// Largest refresh timestamp committed so far; a retried Refresh whose
  /// `now` is not newer is acked without rebuilding the model.
  std::atomic<TimeSec> last_refresh_now_{std::numeric_limits<TimeSec>::min()};

  /// Background refresh pipeline (concurrent-safe policies only).  Refresh
  /// handlers enqueue a (ticketed) request and wait for its completion;
  /// the builder processes tickets in order, one prepare+commit per
  /// ticket.  All fields guarded by refresh_mutex_.
  std::thread builder_thread_;
  std::mutex refresh_mutex_;
  std::condition_variable refresh_work_cv_;  ///< wakes the builder
  std::condition_variable refresh_done_cv_;  ///< wakes waiting handlers
  std::deque<TimeSec> refresh_queue_;
  std::uint64_t refresh_requested_ = 0;
  std::uint64_t refresh_completed_ = 0;
  bool builder_stop_ = false;

  /// Wall-clock time-series ticker (§6g); all fields guarded by
  /// timeseries_mutex_ except the thread itself.
  mutable std::mutex timeseries_mutex_;
  std::condition_variable timeseries_cv_;  ///< wakes the ticker for stop
  obs::TimeSeriesRecorder timeseries_recorder_;
  std::thread timeseries_thread_;
  bool timeseries_stop_ = false;

  std::atomic<bool> running_{false};
  std::atomic<std::int64_t> decisions_{0};
  std::atomic<std::int64_t> reports_{0};
  std::atomic<std::int64_t> inflight_{0};
};

}  // namespace via
