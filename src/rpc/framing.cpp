#include "rpc/framing.h"

namespace via {

void send_frame(TcpConnection& conn, std::uint8_t type, std::span<const std::byte> payload) {
  if (payload.size() > kMaxPayload) throw ProtocolError("payload too large");
  // Header and payload go out as ONE send_all call: besides saving a
  // syscall, this is what lets the fault injector (faulty_connection.h)
  // drop/delay/truncate at whole-frame granularity.
  std::vector<std::byte> frame(5 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (std::size_t i = 0; i < 4; ++i) {
    frame[i] = static_cast<std::byte>((len >> (8 * i)) & 0xFF);
  }
  frame[4] = static_cast<std::byte>(type);
  if (!payload.empty()) std::memcpy(frame.data() + 5, payload.data(), payload.size());
  conn.send_all(frame);
}

bool recv_frame(TcpConnection& conn, Frame& out) {
  std::byte header[5];
  if (!conn.recv_all(header)) return false;
  std::uint32_t len = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxPayload) throw ProtocolError("frame too large");
  out.type = static_cast<std::uint8_t>(header[4]);
  out.payload.resize(len);
  if (len > 0 && !conn.recv_all(out.payload)) {
    throw std::runtime_error("connection closed mid-frame");
  }
  return true;
}

}  // namespace via
