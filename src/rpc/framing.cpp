#include "rpc/framing.h"

namespace via {

void send_frame(TcpConnection& conn, std::uint8_t type, std::span<const std::byte> payload) {
  if (payload.size() > kMaxPayload) throw std::runtime_error("payload too large");
  std::vector<std::byte> header(5);
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (std::size_t i = 0; i < 4; ++i) {
    header[i] = static_cast<std::byte>((len >> (8 * i)) & 0xFF);
  }
  header[4] = static_cast<std::byte>(type);
  conn.send_all(header);
  if (!payload.empty()) conn.send_all(payload);
}

bool recv_frame(TcpConnection& conn, Frame& out) {
  std::byte header[5];
  if (!conn.recv_all(header)) return false;
  std::uint32_t len = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxPayload) throw std::runtime_error("frame too large");
  out.type = static_cast<std::uint8_t>(header[4]);
  out.payload.resize(len);
  if (len > 0 && !conn.recv_all(out.payload)) {
    throw std::runtime_error("connection closed mid-frame");
  }
  return true;
}

}  // namespace via
