#include "rpc/testbed.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <thread>

#include "rpc/client.h"
#include "rpc/faulty_connection.h"
#include "rpc/server.h"
#include "util/rng.h"

namespace via {

double TestbedResult::fraction_within(double x) const noexcept {
  if (suboptimality.empty()) return 0.0;
  const auto n = static_cast<double>(
      std::count_if(suboptimality.begin(), suboptimality.end(),
                    [x](double v) { return v <= x; }));
  return n / static_cast<double>(suboptimality.size());
}

TestbedResult run_testbed(const TestbedConfig& config) {
  World world(config.world);
  GroundTruth gt(world, {});
  Rng rng(hash_mix(config.seed, 0xbed));

  // Pick distinct caller/callee AS pairs.
  struct Pair {
    AsId src, dst;
    std::vector<OptionId> options;  ///< relayed candidates (direct omitted)
  };
  std::vector<Pair> pairs;
  while (static_cast<int>(pairs.size()) < config.client_pairs) {
    const auto s = static_cast<AsId>(rng.uniform_index(
        static_cast<std::uint64_t>(world.num_ases())));
    const auto d = static_cast<AsId>(rng.uniform_index(
        static_cast<std::uint64_t>(world.num_ases())));
    if (s == d) continue;
    if (std::any_of(pairs.begin(), pairs.end(), [&](const Pair& p) {
          return as_pair_key(p.src, p.dst) == as_pair_key(s, d);
        })) {
      continue;
    }
    Pair p{s, d, {}};
    for (const OptionId opt : gt.candidate_options(s, d)) {
      if (opt != RelayOptionTable::direct_id()) p.options.push_back(opt);
    }
    if (p.options.size() >= 5) pairs.push_back(std::move(p));
  }

  // Controller: a real ViaPolicy behind a real TCP server.
  ViaConfig via_config = config.via;
  via_config.target = config.target;
  ViaPolicy policy(gt.option_table(), [&gt](RelayId a, RelayId b) { return gt.backbone(a, b); },
                   via_config);
  ControllerServer server(policy, 0, config.server);
  server.start();

  TestbedResult result;
  std::mutex result_mutex;
  std::atomic<CallId> next_call{1};

  // Frame-level chaos (§6f): with any nonzero probability, each client's
  // transport is a FaultyConnection on a per-pair-decorrelated schedule.
  const bool chaos_enabled = config.chaos.drop_prob > 0.0 || config.chaos.delay_prob > 0.0 ||
                             config.chaos.truncate_prob > 0.0 || config.chaos.reset_prob > 0.0;
  auto make_client = [&](FaultSchedule& schedule) {
    if (!chaos_enabled) return ControllerClient(server.port(), config.client_rpc);
    return ControllerClient(
        [port = server.port(), &schedule]() -> std::unique_ptr<TcpConnection> {
          return std::make_unique<FaultyConnection>(TcpConnection::connect_local(port),
                                                    &schedule);
        },
        config.client_rpc);
  };
  auto chaos_for = [&](std::uint64_t salt) {
    FaultScheduleConfig c = config.chaos;
    c.seed = hash_mix(config.chaos.seed, salt);
    return c;
  };

  // GroundTruth memoizes lazily and is not thread-safe; the "network" is
  // shared by all client threads, so serialize access to it.  Ground-truth
  // faults apply here, after the draw — same contract as the engine.
  std::mutex gt_mutex;
  std::int64_t fault_impaired = 0;  // guarded by gt_mutex
  auto sample = [&](CallId id, AsId s, AsId d, OptionId opt, TimeSec t) {
    const std::lock_guard lock(gt_mutex);
    PathPerformance perf = gt.sample_call(id, s, d, opt, t);
    if (config.faults != nullptr && !config.faults->empty() &&
        config.faults->apply(gt.option_table().get(opt), t, perf)) {
      ++fault_impaired;
    }
    return perf;
  };
  auto mean_of = [&](AsId s, AsId d, OptionId opt, int day) {
    const std::lock_guard lock(gt_mutex);
    return gt.day_mean(s, d, opt, day);
  };
  auto ingress_of = [&](AsId s, OptionId opt) {
    const std::lock_guard lock(gt_mutex);
    return gt.transit_ingress(s, opt);
  };

  // ---- Phase 1: orchestrated back-to-back measurement calls (day 0).
  {
    std::vector<std::thread> clients;
    clients.reserve(pairs.size());
    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
      clients.emplace_back([&, pair = pairs[pi], pi] {
        FaultSchedule schedule(chaos_for(pi));
        ControllerClient client = make_client(schedule);
        std::int64_t made = 0;
        for (int round = 0; round < config.measurement_rounds; ++round) {
          for (const OptionId opt : pair.options) {
            const CallId id = next_call.fetch_add(1);
            const TimeSec t = 1000 + id;  // within day 0
            Observation obs;
            obs.id = id;
            obs.time = t;
            obs.src_as = pair.src;
            obs.dst_as = pair.dst;
            obs.option = opt;
            obs.ingress = ingress_of(pair.src, opt);
            obs.perf = sample(id, pair.src, pair.dst, opt, t);
            client.report(obs);
            ++made;
          }
        }
        client.shutdown();
        const std::lock_guard lock(result_mutex);
        result.measurement_calls += made;
        result.client_retries += client.retries();
        result.client_reconnects += client.reconnects();
        result.faults_injected += schedule.faults_injected();
      });
    }
    for (auto& t : clients) t.join();
  }

  // Controller refresh: the measurement window becomes the training window.
  // The admin client shares the resilience config but not the chaos
  // transport — it is the orchestrator, not the system under test.
  {
    ControllerClient admin(server.port(), config.client_rpc);
    admin.refresh(kSecondsPerDay);
    admin.shutdown();
  }

  // ---- Phase 2: evaluation calls (day 1), controller decides.
  {
    std::vector<std::thread> clients;
    clients.reserve(pairs.size());
    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
      clients.emplace_back([&, pair = pairs[pi], pi] {
        FaultSchedule schedule(chaos_for(0x1000 + pi));  // decorrelate from phase 1
        ControllerClient client = make_client(schedule);
        std::vector<double> subopt;
        std::int64_t best_hits = 0;
        for (int i = 0; i < config.eval_calls_per_pair; ++i) {
          const CallId id = next_call.fetch_add(1);
          const TimeSec t = kSecondsPerDay + 1000 + id;

          DecisionRequest req;
          req.call_id = id;
          req.time = t;
          req.src_as = pair.src;
          req.dst_as = pair.dst;
          req.options = pair.options;
          const OptionId chosen = client.request_decision(req);

          // Oracle choice on this call's day, over the same candidates.
          OptionId best = pair.options.front();
          double best_mean = std::numeric_limits<double>::infinity();
          for (const OptionId opt : pair.options) {
            const double v = mean_of(pair.src, pair.dst, opt, day_of(t)).get(config.target);
            if (v < best_mean) {
              best_mean = v;
              best = opt;
            }
          }

          const PathPerformance perf_via = sample(id, pair.src, pair.dst, chosen, t);
          const PathPerformance perf_best = sample(id, pair.src, pair.dst, best, t);

          const double oracle_value = perf_best.get(config.target);
          const double via_value = perf_via.get(config.target);
          subopt.push_back(oracle_value > 0.0
                               ? std::max(0.0, (via_value - oracle_value) / oracle_value)
                               : 0.0);
          if (chosen == best) ++best_hits;

          Observation obs;
          obs.id = id;
          obs.time = t;
          obs.src_as = pair.src;
          obs.dst_as = pair.dst;
          obs.option = chosen;
          obs.ingress = ingress_of(pair.src, chosen);
          obs.perf = perf_via;
          client.report(obs);
        }
        client.shutdown();
        const std::lock_guard lock(result_mutex);
        result.suboptimality.insert(result.suboptimality.end(), subopt.begin(), subopt.end());
        result.eval_calls += static_cast<std::int64_t>(subopt.size());
        result.picked_best += best_hits;
        result.client_retries += client.retries();
        result.client_reconnects += client.reconnects();
        result.client_fallbacks += client.fallback_decisions();
        result.faults_injected += schedule.faults_injected();
      });
    }
    for (auto& t : clients) t.join();
  }

  server.stop();
  result.fault_impaired_samples = fault_impaired;
  return result;
}

}  // namespace via
