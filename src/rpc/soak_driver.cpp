#include "rpc/soak_driver.h"

#include <spawn.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/export.h"
#include "rpc/framing.h"
#include "rpc/messages.h"
#include "rpc/socket.h"

extern char** environ;

namespace via {

namespace {

/// Serializes one whole frame (u32 payload_len + u8 msg_type + payload)
/// into `out`, so each burst goes out in one send_all and lands on the
/// server within one readiness event.
void append_frame(std::vector<std::byte>& out, MsgType type, const WireWriter& w) {
  const auto payload = w.bytes();
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xFF));
  }
  out.push_back(static_cast<std::byte>(type));
  out.insert(out.end(), payload.begin(), payload.end());
}

/// call_id for connection `c`, burst slot `k`: unique per connection so a
/// reply can be matched back to the request it answers.
[[nodiscard]] CallId decision_call_id(int c, int k) {
  return static_cast<CallId>(c) * 1'000'000 + k;
}

void encode_decision_burst(std::vector<std::byte>& out, const SoakConfig& config, int c) {
  const auto as_count = static_cast<AsId>(std::max(2, config.as_count));
  for (int k = 0; k < config.depth; ++k) {
    DecisionRequest req;
    req.call_id = decision_call_id(c, k);
    req.time = 1000 + k;
    req.src_as = static_cast<AsId>(c) % as_count;
    req.dst_as = static_cast<AsId>(c + 1 + k) % as_count;
    if (req.dst_as == req.src_as) req.dst_as = (req.dst_as + 1) % as_count;
    req.options.assign(config.options.begin(), config.options.end());
    WireWriter w;
    req.encode(w);
    append_frame(out, MsgType::DecisionRequest, w);
  }
}

void encode_report_burst(std::vector<std::byte>& out, const SoakConfig& config, int c, int round) {
  const auto as_count = static_cast<AsId>(std::max(2, config.as_count));
  for (int k = 0; k < config.depth; ++k) {
    ReportMsg msg;
    // Unique per (connection, round, slot): the server's report dedup
    // window keys on (id, option, time), so every frame must count.
    msg.obs.id = (static_cast<CallId>(c) * config.rounds + round) * config.depth + k;
    msg.obs.time = 1000 + round;
    msg.obs.src_as = static_cast<AsId>(c) % as_count;
    msg.obs.dst_as = static_cast<AsId>(c + 1 + k) % as_count;
    if (msg.obs.dst_as == msg.obs.src_as) msg.obs.dst_as = (msg.obs.dst_as + 1) % as_count;
    msg.obs.option = config.options.empty()
                         ? 0
                         : config.options[static_cast<std::size_t>(k) % config.options.size()];
    msg.obs.perf.rtt_ms = 50.0 + k;
    msg.obs.perf.loss_pct = 0.5;
    msg.obs.perf.jitter_ms = 2.0;
    WireWriter w;
    msg.encode(w);
    append_frame(out, MsgType::Report, w);
  }
}

void append_json_number(std::string& out, std::string_view key, double v) {
  std::ostringstream os;
  os << v;
  out += "\"";
  out += key;
  out += "\":";
  out += std::move(os).str();
}

/// Finds `"key":` in a single-object JSON line and returns the raw value
/// text up to the next ',' or '}' outside a string.
std::optional<std::string_view> raw_json_value(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view rest = line.substr(pos + needle.size());
  std::size_t end = 0;
  bool in_string = false;
  bool escaped = false;
  for (; end < rest.size(); ++end) {
    const char c = rest[end];
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string && c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') in_string = !in_string;
    if (!in_string && (c == ',' || c == '}')) break;
  }
  return rest.substr(0, end);
}

template <typename T>
std::optional<T> json_int(std::string_view line, std::string_view key) {
  const auto raw = raw_json_value(line, key);
  if (!raw) return std::nullopt;
  T v{};
  const auto [ptr, ec] = std::from_chars(raw->data(), raw->data() + raw->size(), v);
  if (ec != std::errc{}) return std::nullopt;
  return v;
}

std::optional<double> json_double(std::string_view line, std::string_view key) {
  const auto raw = raw_json_value(line, key);
  if (!raw) return std::nullopt;
  try {
    return std::stod(std::string(*raw));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

std::string SoakResult::to_json() const {
  std::string out = "{\"ok\":";
  out += ok ? "true" : "false";
  out += ",\"connected\":" + std::to_string(connected);
  out += ",\"sent\":" + std::to_string(sent);
  out += ",\"received\":" + std::to_string(received);
  out += ",\"mismatched\":" + std::to_string(mismatched);
  out += ",";
  append_json_number(out, "seconds", seconds);
  out += ",";
  append_json_number(out, "rps", rps);
  out += ",\"error\":\"" + obs::json_escape(error) + "\"}";
  return out;
}

std::optional<SoakResult> SoakResult::from_json(std::string_view line) {
  const auto ok_raw = raw_json_value(line, "ok");
  const auto connected = json_int<std::int64_t>(line, "connected");
  const auto sent = json_int<std::int64_t>(line, "sent");
  const auto received = json_int<std::int64_t>(line, "received");
  const auto mismatched = json_int<std::int64_t>(line, "mismatched");
  const auto seconds = json_double(line, "seconds");
  const auto rps = json_double(line, "rps");
  const auto error_raw = raw_json_value(line, "error");
  if (!ok_raw || !connected || !sent || !received || !mismatched || !seconds || !rps ||
      !error_raw) {
    return std::nullopt;
  }
  if (*ok_raw != "true" && *ok_raw != "false") return std::nullopt;
  if (error_raw->size() < 2 || error_raw->front() != '"' || error_raw->back() != '"') {
    return std::nullopt;
  }
  SoakResult r;
  r.ok = *ok_raw == "true";
  r.connected = *connected;
  r.sent = *sent;
  r.received = *received;
  r.mismatched = *mismatched;
  r.seconds = *seconds;
  r.rps = *rps;
  r.error = obs::json_unescape(error_raw->substr(1, error_raw->size() - 2));
  return r;
}

void raise_fd_limit() noexcept {
  struct rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur >= lim.rlim_max) return;
  lim.rlim_cur = lim.rlim_max;
  (void)::setrlimit(RLIMIT_NOFILE, &lim);
}

SoakResult run_soak(const SoakConfig& config) {
  raise_fd_limit();
  SoakResult result;
  const int conns = std::max(1, config.connections);
  const int threads = std::clamp(config.threads, 1, conns);
  const int rounds = std::max(1, config.rounds);
  const int depth = std::max(1, config.depth);
  SoakConfig cfg = config;
  cfg.connections = conns;
  cfg.threads = threads;
  cfg.rounds = rounds;
  cfg.depth = depth;

  std::mutex err_mutex;
  auto fail = [&](const std::string& msg) {
    const std::lock_guard lock(err_mutex);
    if (result.error.empty()) result.error = msg;
  };

  // Phase 1: connect.  The listen backlog is finite, so transient refusals
  // at high connection counts get a short retry loop instead of a verdict.
  std::vector<TcpConnection> sockets(static_cast<std::size_t>(conns));
  std::vector<std::vector<std::byte>> bursts(static_cast<std::size_t>(conns));
  std::atomic<std::int64_t> connected{0};
  {
    std::vector<std::thread> ts;
    ts.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        for (int c = t; c < conns; c += threads) {
          const auto i = static_cast<std::size_t>(c);
          for (int attempt = 0;; ++attempt) {
            try {
              sockets[i] = TcpConnection::connect_local(cfg.port);
              sockets[i].set_recv_timeout_ms(cfg.recv_timeout_ms);
              connected.fetch_add(1, std::memory_order_relaxed);
              break;
            } catch (const std::exception& e) {
              if (attempt >= 200) {
                fail(std::string("connect: ") + e.what());
                return;
              }
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
          }
          // Decision bursts are identical every round; encode them once,
          // outside the timed phase, so rps measures serving throughput.
          if (!cfg.reports) encode_decision_burst(bursts[i], cfg, c);
        }
      });
    }
    for (auto& th : ts) th.join();
  }
  result.connected = connected.load();
  if (!result.error.empty()) return result;

  // Phase 2: timed request/reply rounds.  Each driver thread writes a
  // depth-deep burst on every connection it owns, then drains the replies,
  // keeping `depth * connections` frames pipelined across the server.
  std::atomic<std::int64_t> sent{0};
  std::atomic<std::int64_t> received{0};
  std::atomic<std::int64_t> mismatched{0};
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> ts;
    ts.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        std::vector<std::byte> reply;
        try {
          for (int r = 0; r < rounds; ++r) {
            for (int c = t; c < conns; c += threads) {
              const auto i = static_cast<std::size_t>(c);
              if (cfg.reports) {
                bursts[i].clear();
                encode_report_burst(bursts[i], cfg, c, r);
              }
              sockets[i].send_all(bursts[i]);
              sent.fetch_add(depth, std::memory_order_relaxed);
            }
            for (int c = t; c < conns; c += threads) {
              auto& conn = sockets[static_cast<std::size_t>(c)];
              for (int k = 0; k < depth; ++k) {
                std::byte header[5];
                if (!conn.recv_all(header)) {
                  fail("server closed connection mid-soak");
                  return;
                }
                std::uint32_t len = 0;
                for (int b = 0; b < 4; ++b) {
                  len |= static_cast<std::uint32_t>(header[b]) << (8 * b);
                }
                if (len > kMaxPayload) {
                  fail("oversized reply frame");
                  return;
                }
                reply.resize(len);
                if (len > 0 && !conn.recv_all(reply)) {
                  fail("server closed connection mid-frame");
                  return;
                }
                received.fetch_add(1, std::memory_order_relaxed);
                const auto type = static_cast<MsgType>(header[4]);
                if (cfg.reports) {
                  if (type != MsgType::ReportAck) {
                    mismatched.fetch_add(1, std::memory_order_relaxed);
                  }
                } else if (type != MsgType::DecisionResponse) {
                  mismatched.fetch_add(1, std::memory_order_relaxed);
                } else {
                  WireReader rd(reply);
                  if (DecisionResponse::decode(rd).call_id != decision_call_id(c, k)) {
                    mismatched.fetch_add(1, std::memory_order_relaxed);
                  }
                }
              }
            }
          }
        } catch (const std::exception& e) {
          fail(std::string("soak I/O: ") + e.what());
        }
      });
    }
    for (auto& th : ts) th.join();
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  result.sent = sent.load();
  result.received = received.load();
  result.mismatched = mismatched.load();
  result.rps = result.seconds > 0.0 ? static_cast<double>(result.received) / result.seconds : 0.0;
  if (result.error.empty() && result.received != result.sent) {
    result.error = "lost replies: sent " + std::to_string(result.sent) + ", received " +
                   std::to_string(result.received);
  }
  if (result.error.empty() && result.mismatched > 0) {
    result.error = std::to_string(result.mismatched) + " mismatched replies";
  }
  result.ok = result.error.empty();
  return result;
}

std::string soak_driver_path() {
  if (const char* env = std::getenv("VIA_SOAK_DRIVER"); env != nullptr && *env != '\0') {
    return ::access(env, X_OK) == 0 ? std::string(env) : std::string{};
  }
#ifdef VIA_SOAK_DRIVER_PATH
  if (::access(VIA_SOAK_DRIVER_PATH, X_OK) == 0) return VIA_SOAK_DRIVER_PATH;
#endif
  return {};
}

std::optional<SoakResult> spawn_soak(const SoakConfig& config, std::string* error) {
  auto set_error = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
  };
  const std::string path = soak_driver_path();
  if (path.empty()) {
    set_error("via_soak_driver binary not found (set VIA_SOAK_DRIVER or build apps/)");
    return std::nullopt;
  }

  std::vector<std::string> args = {
      path,
      "--port", std::to_string(config.port),
      "--conns", std::to_string(config.connections),
      "--rounds", std::to_string(config.rounds),
      "--depth", std::to_string(config.depth),
      "--threads", std::to_string(config.threads),
      "--recv-timeout-ms", std::to_string(config.recv_timeout_ms),
      "--as-count", std::to_string(config.as_count),
  };
  if (config.reports) args.emplace_back("--reports");
  if (!config.options.empty()) {
    std::string joined;
    for (const std::int32_t o : config.options) {
      if (!joined.empty()) joined += ',';
      joined += std::to_string(o);
    }
    args.emplace_back("--options");
    args.push_back(std::move(joined));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  int fds[2];
  if (::pipe(fds) != 0) {
    set_error("pipe failed");
    return std::nullopt;
  }
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, fds[1], STDOUT_FILENO);
  posix_spawn_file_actions_addclose(&actions, fds[0]);
  posix_spawn_file_actions_addclose(&actions, fds[1]);
  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, path.c_str(), &actions, nullptr, argv.data(), environ);
  posix_spawn_file_actions_destroy(&actions);
  ::close(fds[1]);
  if (rc != 0) {
    ::close(fds[0]);
    set_error("posix_spawn failed: " + std::string(std::strerror(rc)));
    return std::nullopt;
  }

  std::string output;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n > 0) {
      output.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fds[0]);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }

  // The result is the last line that parses; anything else the child
  // printed (diagnostics on stderr never reach us) is ignored.
  std::optional<SoakResult> parsed;
  std::size_t pos = 0;
  while (pos <= output.size()) {
    const std::size_t eol = output.find('\n', pos);
    const std::string_view line(output.data() + pos,
                                (eol == std::string::npos ? output.size() : eol) - pos);
    if (auto r = SoakResult::from_json(line)) parsed = std::move(r);
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  if (!parsed) {
    std::string detail = "soak driver produced no result";
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      detail += " (abnormal exit, status " + std::to_string(status) + ")";
    }
    if (!output.empty()) {
      detail += ": " + output.substr(0, 200);
    }
    set_error(detail);
    return std::nullopt;
  }
  return parsed;
}

int soak_driver_main(int argc, char** argv) {
  SoakConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--port") {
        config.port = static_cast<std::uint16_t>(std::stoi(next()));
      } else if (arg == "--conns") {
        config.connections = std::stoi(next());
      } else if (arg == "--rounds") {
        config.rounds = std::stoi(next());
      } else if (arg == "--depth") {
        config.depth = std::stoi(next());
      } else if (arg == "--threads") {
        config.threads = std::stoi(next());
      } else if (arg == "--recv-timeout-ms") {
        config.recv_timeout_ms = std::stoi(next());
      } else if (arg == "--as-count") {
        config.as_count = std::stoi(next());
      } else if (arg == "--reports") {
        config.reports = true;
      } else if (arg == "--options") {
        std::istringstream ss(next());
        std::string cell;
        while (std::getline(ss, cell, ',')) {
          config.options.push_back(std::stoi(cell));
        }
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }
  if (config.port == 0) {
    std::cerr << "usage: via_soak_driver --port N [--conns N] [--rounds N] [--depth N]\n"
                 "                       [--threads N] [--reports] [--options a,b,c]\n"
                 "                       [--recv-timeout-ms N] [--as-count N]\n";
    return 2;
  }
  const SoakResult result = run_soak(config);
  std::cout << result.to_json() << "\n" << std::flush;
  return 0;
}

}  // namespace via
