// Shard-aware controller client with replica failover (DESIGN.md §6k).
//
// A FederatedClient fronts one ControllerClient per controller replica and
// routes every request by its AS-pair key through the consistent-hash ring:
// the pair's shard home gets the traffic, the ring successors are the
// failover order.  Per-replica health is a three-state machine:
//
//   Up ──(fail_threshold consecutive timeouts/resets)──> Down
//   Down ──(probe_period elapsed)──> probation Ping
//   probe ok ──> Up (recovered; buffered reports flush)
//   probe fail ──> Down (next probe after another probe_period)
//
// While a pair's home is down its traffic re-homes to the ring successor
// (flight-recorder narrative: replica_down → replica_rehomed → eventually
// replica_recovered).  Probation means a flapping replica gets traffic
// back only after a successful Ping, never mid-flap — one probe per
// probe_period bounds the thrash.  When *every* replica is unreachable the
// client falls back to the direct path (the paper's fail-safe story) and
// parks its observation reports in a bounded queue, flushed on the first
// recovery — a full-controller outage loses calls' relay gain, not their
// measurements.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "fed/federation.h"
#include "fed/shard_ring.h"
#include "rpc/client.h"

namespace via {

struct FedClientConfig {
  /// Per-replica transport policy (timeouts, per-attempt retries, backoff).
  /// `fallback_direct` here is ignored — failover owns the fallback
  /// decision; inner clients always surface their errors.
  ClientConfig rpc;
  /// With every replica down/unreachable, request_decision() answers the
  /// direct path instead of throwing, and report() buffers.
  bool fallback_direct = true;
  /// Observations parked while no replica is reachable (oldest dropped —
  /// and counted lost — past the cap; the chaos tests assert the cap is
  /// never the binding constraint).
  std::size_t max_pending_reports = 65536;
};

class FederatedClient {
 public:
  /// Connects to the fleet described by `fed` (loopback ports, index ==
  /// replica id).  Lazy per-replica connections: a dead replica degrades
  /// instead of failing construction.
  explicit FederatedClient(fed::FederationConfig fed, FedClientConfig config = {});

  /// Chaos-test hook: one transport factory per replica (index-aligned
  /// with fed.replica_ports).
  FederatedClient(fed::FederationConfig fed,
                  std::vector<ControllerClient::ConnectionFactory> factories,
                  FedClientConfig config = {});

  FederatedClient(const FederatedClient&) = delete;
  FederatedClient& operator=(const FederatedClient&) = delete;

  /// fed.client.* counters plus the per-replica rpc.client.* instruments
  /// (shared registry; caller-owned, must outlive the client).
  void attach_metrics(obs::MetricsRegistry* registry);
  void attach_flight(obs::FlightRecorder* flight) noexcept;

  /// Shard-routed decision with failover; direct fallback once every
  /// replica has failed this request (throws instead when
  /// FedClientConfig::fallback_direct is false, and always on Protocol
  /// errors — those are bugs, not outages).
  [[nodiscard]] OptionId request_decision(const DecisionRequest& request);

  /// Shard-routed measurement push.  Never throws on outage: undeliverable
  /// observations queue (bounded) and flush on the next successful send or
  /// probe recovery — the zero-lost-observations contract.
  void report(const Observation& obs);

  /// Drives the periodic refresh on every replica currently in rotation
  /// (down replicas catch up via segment gossip once they return).
  void refresh(TimeSec now);

  /// Attempts to deliver queued reports (home shard first, failover like
  /// any other send).  Returns the number delivered; called internally on
  /// recovery, public so tests/harnesses can force a flush point.
  std::size_t flush_pending_reports();

  /// Forces one probation probe of `replica` if it is down and its probe
  /// period has elapsed; true when the replica returned to rotation.
  bool probe_replica(std::uint32_t replica);

  enum class ReplicaState : std::uint8_t { kUp = 0, kDown = 1 };
  [[nodiscard]] ReplicaState replica_state(std::uint32_t replica) const noexcept {
    return replicas_[replica].state;
  }
  [[nodiscard]] const fed::ShardRing& ring() const noexcept { return ring_; }
  [[nodiscard]] const fed::FederationConfig& federation() const noexcept { return fed_; }

  /// Degradation accounting, readable without a metrics registry.
  [[nodiscard]] std::int64_t rehomed_requests() const noexcept { return rehomed_requests_; }
  [[nodiscard]] std::int64_t replicas_marked_down() const noexcept { return marked_down_; }
  [[nodiscard]] std::int64_t replicas_recovered() const noexcept { return recovered_; }
  [[nodiscard]] std::int64_t ring_epoch_bumps() const noexcept { return epoch_bumps_; }
  [[nodiscard]] std::int64_t fallback_decisions() const noexcept { return fallbacks_; }
  [[nodiscard]] std::size_t pending_reports() const noexcept { return pending_.size(); }
  [[nodiscard]] std::int64_t reports_buffered() const noexcept { return buffered_; }
  [[nodiscard]] std::int64_t reports_flushed() const noexcept { return flushed_; }
  /// Observations dropped because the pending queue overflowed (the chaos
  /// suites assert this stays 0).
  [[nodiscard]] std::int64_t reports_lost() const noexcept { return lost_; }

  /// Direct access to one replica's client (tests/diagnostics).
  [[nodiscard]] ControllerClient& client(std::uint32_t replica) noexcept {
    return *replicas_[replica].client;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Replica {
    std::unique_ptr<ControllerClient> client;
    ReplicaState state = ReplicaState::kUp;
    int consecutive_failures = 0;
    Clock::time_point next_probe{};  ///< earliest next probation Ping while down
    /// One replica_rehomed flight event per down episode (the per-request
    /// rehome count stays in rehomed_requests_).
    bool rehome_logged = false;
  };

  /// True when `replica` may carry traffic right now: Up, or Down with an
  /// elapsed probe period *and* a probation Ping that just succeeded.
  bool admit(std::uint32_t replica);
  void note_success(std::uint32_t replica);
  void note_failure(std::uint32_t replica);
  void check_ring_epoch(std::uint32_t replica);
  /// Delivery core shared by report() and the flush: tries the ring order,
  /// returns true when some replica acked the observation.
  bool try_deliver(const Observation& obs);

  fed::FederationConfig fed_;
  FedClientConfig config_;
  fed::ShardRing ring_;
  std::vector<Replica> replicas_;
  std::deque<Observation> pending_;
  bool flushing_ = false;  ///< re-entrancy guard: recovery inside a flush
  obs::FlightRecorder* flight_ = nullptr;

  std::int64_t rehomed_requests_ = 0;
  std::int64_t marked_down_ = 0;
  std::int64_t recovered_ = 0;
  std::int64_t epoch_bumps_ = 0;
  std::int64_t fallbacks_ = 0;
  std::int64_t buffered_ = 0;
  std::int64_t flushed_ = 0;
  std::int64_t lost_ = 0;

  obs::Counter* tel_rehomed_ = nullptr;
  obs::Counter* tel_down_ = nullptr;
  obs::Counter* tel_recovered_ = nullptr;
  obs::Counter* tel_epoch_bumps_ = nullptr;
  obs::Counter* tel_fallback_ = nullptr;
  obs::Counter* tel_buffered_ = nullptr;
  obs::Counter* tel_flushed_ = nullptr;
  obs::Counter* tel_lost_ = nullptr;
  obs::Gauge* tel_pending_ = nullptr;
};

}  // namespace via
