// Thin RAII wrappers over POSIX TCP sockets for the deployment prototype
// (Section 5.5): a controller server on localhost and instrumented-client
// connections.  Blocking I/O with full-message send/recv helpers; the
// server multiplexes connections with poll(2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

namespace via {

/// Owning file descriptor.  Move-only; closes on destruction.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// A connected TCP stream.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(FdHandle fd) noexcept : fd_(std::move(fd)) {}

  /// Connects to 127.0.0.1:port.  Throws std::system_error on failure.
  static TcpConnection connect_local(std::uint16_t port);

  /// Sends the whole buffer (loops over partial writes).  Throws on error.
  void send_all(std::span<const std::byte> data);

  /// Receives exactly data.size() bytes.  Returns false on clean EOF at a
  /// message boundary (nothing read); throws on mid-message EOF or error.
  [[nodiscard]] bool recv_all(std::span<std::byte> data);

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }
  void close() noexcept { fd_.reset(); }

 private:
  FdHandle fd_;
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens; port 0 picks an ephemeral port.  Throws on failure.
  explicit TcpListener(std::uint16_t port);

  /// Accepts one connection (blocking).  Throws on error.
  [[nodiscard]] TcpConnection accept();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

 private:
  FdHandle fd_;
  std::uint16_t port_ = 0;
};

}  // namespace via
