// Thin RAII wrappers over POSIX TCP sockets for the deployment prototype
// (Section 5.5): a controller server on localhost and instrumented-client
// connections.  Blocking I/O with full-message send/recv helpers; the
// server multiplexes connections with poll(2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

namespace via {

/// Owning file descriptor.  Move-only; closes on destruction.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// A connected TCP stream.  send_all/recv_all are virtual so a fault
/// injector (rpc/faulty_connection.h) can interpose on whole-frame I/O.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(FdHandle fd) noexcept : fd_(std::move(fd)) {}
  virtual ~TcpConnection() = default;

  TcpConnection(TcpConnection&&) noexcept = default;
  TcpConnection& operator=(TcpConnection&&) noexcept = default;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connects to 127.0.0.1:port.  Throws std::system_error on failure.
  static TcpConnection connect_local(std::uint16_t port);

  /// Sends the whole buffer (loops over partial writes).  Throws on error.
  virtual void send_all(std::span<const std::byte> data);

  /// Receives exactly data.size() bytes.  Returns false on clean EOF at a
  /// message boundary (nothing read); throws on mid-message EOF or error.
  /// With a receive deadline set, throws RpcError(Timeout) when no bytes
  /// arrive within the deadline.
  [[nodiscard]] virtual bool recv_all(std::span<std::byte> data);

  /// Receive deadline in milliseconds for each recv_all call, enforced
  /// with poll(2) before every read.  0 (the default) blocks forever.
  void set_recv_timeout_ms(int timeout_ms) noexcept { recv_timeout_ms_ = timeout_ms; }
  [[nodiscard]] int recv_timeout_ms() const noexcept { return recv_timeout_ms_; }

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }
  void close() noexcept { fd_.reset(); }

 private:
  FdHandle fd_;
  int recv_timeout_ms_ = 0;
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens; port 0 picks an ephemeral port.  Throws on failure.
  explicit TcpListener(std::uint16_t port);

  /// Accepts one connection (blocking).  Throws on error.
  [[nodiscard]] TcpConnection accept();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

 private:
  FdHandle fd_;
  std::uint16_t port_ = 0;
};

}  // namespace via
