// Deterministic frame-level fault injection for chaos tests (DESIGN.md
// §6f).  A FaultyConnection wraps a real TcpConnection and, per *sent*
// frame, consults a shared FaultSchedule to decide whether to pass the
// frame through, drop it (the peer never sees the request — the client's
// deadline fires), delay it, truncate it mid-frame and close (the peer
// sees a mid-frame EOF), or reset the connection outright.
//
// Faults are per *frame*, not per send_all call: the injector tracks frame
// boundaries in the outbound stream (reassembling the 5-byte header across
// calls when needed), so it composes with callers that hand bytes over in
// arbitrary chunks — a peer on non-blocking sockets (§6h) as much as
// send_frame's one-call-per-frame.  For whole-frame senders the injected
// byte stream is identical to the historical per-call behavior.
//
// The schedule is hash-driven off a seed and a monotone frame counter, so
// a given (seed, probabilities) pair injects the exact same fault sequence
// on every run — chaos tests are reproducible.  One schedule is shared
// across all reconnects of a client (and across clients, if desired), so
// the fault density is a property of the run, not of any one connection.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "rpc/socket.h"

namespace via {

enum class FaultAction : std::uint8_t { Pass = 0, Drop = 1, Delay = 2, Truncate = 3, Reset = 4 };

struct FaultScheduleConfig {
  std::uint64_t seed = 0xFA017;
  double drop_prob = 0.0;      ///< swallow the frame (peer sees nothing)
  double delay_prob = 0.0;     ///< sleep delay_ms, then deliver
  double truncate_prob = 0.0;  ///< send half the frame, then close
  double reset_prob = 0.0;     ///< close the socket and fail the call
  int delay_ms = 20;
  /// Stop injecting after this many faults (-1 = unlimited); lets a chaos
  /// test guarantee forward progress even with aggressive probabilities.
  int max_faults = -1;
};

/// Thread-safe, deterministic per-frame fault decider.
class FaultSchedule {
 public:
  explicit FaultSchedule(FaultScheduleConfig config = {}) : config_(config) {}

  /// The action for the next outbound frame.
  [[nodiscard]] FaultAction next_action();

  [[nodiscard]] const FaultScheduleConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::int64_t frames() const noexcept { return frames_.load(); }
  [[nodiscard]] std::int64_t faults_injected() const noexcept { return injected_.load(); }

 private:
  FaultScheduleConfig config_;
  std::atomic<std::int64_t> frames_{0};
  std::atomic<std::int64_t> injected_{0};
};

/// A TcpConnection whose outbound frames suffer the schedule's faults.
/// Inbound I/O passes through untouched (a dropped request already implies
/// a missing response).
class FaultyConnection final : public TcpConnection {
 public:
  /// Takes over the transport of `base`; `schedule` must outlive the
  /// connection and may be shared across connections.
  FaultyConnection(TcpConnection base, FaultSchedule* schedule)
      : TcpConnection(std::move(base)), schedule_(schedule) {}

  void send_all(std::span<const std::byte> data) override;

 private:
  /// Starts a new frame once its header is complete: parses the length,
  /// draws the frame's action (sleeping for Delay, throwing for Reset),
  /// and emits the header bytes under that action.
  void begin_frame();
  /// Routes `chunk` (never crossing a frame boundary) per the current
  /// frame's action; throws once Truncate reaches its cut point.
  void emit(std::span<const std::byte> chunk);

  FaultSchedule* schedule_;
  /// Outbound-stream frame tracking, so faults stay per-frame under
  /// partial writes.  frame_sent_ == frame_size_ means "at a boundary".
  std::array<std::byte, 5> header_{};  ///< header bytes seen so far
  std::size_t header_have_ = 0;
  std::size_t frame_size_ = 0;  ///< total frame bytes, header included
  std::size_t frame_sent_ = 0;  ///< frame bytes already routed
  FaultAction action_ = FaultAction::Pass;
};

}  // namespace via
