#include "rpc/admin_http.h"

#include <sys/socket.h>

#include <cstddef>
#include <sstream>
#include <utility>

#include "obs/export.h"
#include "obs/span.h"

namespace via {

namespace {

/// Largest admin request we will read before giving up on the client.
constexpr std::size_t kMaxRequestBytes = 8192;

/// Reads until the end of the HTTP header block ("\r\n\r\n" or "\n\n") or
/// the size cap.  Byte-at-a-time is fine here: requests are one line from
/// a scraper or a human's curl, and the reply dwarfs the request.
bool read_request(TcpConnection& conn, std::string& request) {
  request.clear();
  std::byte b{};
  while (request.size() < kMaxRequestBytes) {
    if (!conn.recv_all({&b, 1})) return !request.empty();
    request.push_back(static_cast<char>(b));
    if (request.size() >= 4 && request.ends_with("\r\n\r\n")) return true;
    if (request.size() >= 2 && request.ends_with("\n\n")) return true;
  }
  return true;
}

/// "GET /path HTTP/1.1" -> "/path" (query string stripped); empty on
/// anything that is not a GET.
std::string parse_path(const std::string& request) {
  if (!request.starts_with("GET ")) return {};
  const std::size_t start = 4;
  const std::size_t end = request.find(' ', start);
  if (end == std::string::npos) return {};
  std::string path = request.substr(start, end - start);
  if (const std::size_t q = path.find('?'); q != std::string::npos) path.resize(q);
  return path;
}

void send_response(TcpConnection& conn, int status, const std::string& reason,
                   const std::string& content_type, const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  const std::string text = std::move(os).str();
  conn.send_all(std::as_bytes(std::span(text.data(), text.size())));
}

}  // namespace

AdminHttpServer::AdminHttpServer(obs::Telemetry& telemetry, std::uint16_t port)
    : telemetry_(&telemetry), listener_(port) {}

AdminHttpServer::~AdminHttpServer() { stop(); }

void AdminHttpServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  serve_thread_ = std::thread([this] { serve_loop(); });
}

void AdminHttpServer::stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listener_.fd(), SHUT_RDWR);
  if (serve_thread_.joinable()) serve_thread_.join();
}

void AdminHttpServer::serve_loop() {
  while (running_.load()) {
    TcpConnection conn;
    try {
      conn = listener_.accept();
    } catch (const std::exception&) {
      break;  // listener shut down
    }
    if (!running_.load()) break;
    try {
      handle(std::move(conn));
    } catch (const std::exception&) {
      // A broken admin client never takes the sidecar down.
    }
  }
}

bool AdminHttpServer::route(const std::string& path, std::string& body,
                            std::string& content_type) {
  if (path == "/metrics") {
    body = obs::render_stats(telemetry_->registry.snapshot(), obs::StatsFormat::Prometheus);
    content_type = "text/plain; version=0.0.4";
    return true;
  }
  if (path == "/healthz") {
    body = "ok\n";
    content_type = "text/plain";
    return true;
  }
  if (path == "/varz") {
    const obs::MetricsSnapshot snap = telemetry_->registry.snapshot();
    std::ostringstream os;
    os << "{\"tracing_enabled\":" << (telemetry_->tracer.enabled() ? "true" : "false")
       << ",\"spans_recorded\":" << telemetry_->tracer.buffer().recorded()
       << ",\"flight_enabled\":" << (telemetry_->flight.enabled() ? "true" : "false")
       << ",\"flight_recorded\":" << telemetry_->flight.recorded();
    if (varz_extra_) {
      const std::string extra = varz_extra_();
      if (!extra.empty()) os << ',' << extra;
    }
    os << ",\"counters\":{";
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      if (i != 0) os << ',';
      os << '"' << obs::json_escape(snap.counters[i].name) << "\":" << snap.counters[i].value;
    }
    os << "}}";
    body = std::move(os).str();
    content_type = "application/json";
    return true;
  }
  if (path == "/trace") {
    body = obs::chrome_trace_json(telemetry_->tracer.buffer());
    content_type = "application/json";
    return true;
  }
  if (path == "/flightrecord") {
    std::ostringstream os;
    telemetry_->flight.export_jsonl(os);
    body = std::move(os).str();
    content_type = "application/x-ndjson";
    return true;
  }
  return false;
}

void AdminHttpServer::handle(TcpConnection conn) {
  std::string request;
  if (!read_request(conn, request)) return;
  const std::string path = parse_path(request);
  if (path.empty()) {
    send_response(conn, 405, "Method Not Allowed", "text/plain", "GET only\n");
    return;
  }
  std::string body;
  std::string content_type;
  if (!route(path, body, content_type)) {
    send_response(conn, 404, "Not Found", "text/plain",
                  "unknown path; try /metrics /healthz /varz /trace /flightrecord\n");
    return;
  }
  send_response(conn, 200, "OK", content_type, body);
}

}  // namespace via
