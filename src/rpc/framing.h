// Wire framing and serialization for the controller protocol.
//
// Frame layout:  [u32 payload_len][u8 msg_type][payload bytes]
// All integers little-endian; doubles as IEEE-754 bit patterns.  Payloads
// are bounded (kMaxPayload) so a corrupt peer cannot force huge
// allocations.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "rpc/socket.h"

namespace via {

inline constexpr std::size_t kMaxPayload = 1 << 20;

/// The peer sent bytes that violate the protocol: an oversized frame, a
/// truncated message body, or an unexpected message type.  Distinct from
/// I/O failures (std::system_error / runtime_error) so the server can
/// answer with an explicit Error frame instead of just dropping the
/// connection, and so the client can classify it as non-retryable.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends primitive values to a byte buffer (little-endian).
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    append_le(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept { return buf_; }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
  }
  std::vector<std::byte> buf_;
};

/// Reads primitive values from a byte buffer; throws on underrun.
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  [[nodiscard]] std::uint16_t u16() { return read_le<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return read_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_le<std::uint64_t>(); }
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(read_le<std::uint32_t>()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(read_le<std::uint64_t>()); }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = read_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    if (n > kMaxPayload) throw ProtocolError("string too large");
    const auto bytes = take(n);
    return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
  }
  [[nodiscard]] bool exhausted() const noexcept { return data_.empty(); }
  /// Unconsumed bytes; lets message decoders bounds-check declared element
  /// counts against what the frame can actually hold.
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size(); }

 private:
  std::span<const std::byte> take(std::size_t n) {
    if (data_.size() < n) throw ProtocolError("message underrun");
    const auto out = data_.first(n);
    data_ = data_.subspan(n);
    return out;
  }
  template <typename T>
  [[nodiscard]] T read_le() {
    const auto bytes = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(bytes[i]) << (8 * i)));
    }
    return v;
  }
  std::span<const std::byte> data_;
};

/// A decoded frame.
struct Frame {
  std::uint8_t type = 0;
  std::vector<std::byte> payload;
};

/// Sends one frame.  Throws on I/O error.
void send_frame(TcpConnection& conn, std::uint8_t type, std::span<const std::byte> payload);

/// Receives one frame.  Returns false on clean EOF before a frame starts;
/// throws on protocol violation or I/O error.
[[nodiscard]] bool recv_frame(TcpConnection& conn, Frame& out);

}  // namespace via
