#include "rpc/messages.h"

namespace via {

void DecisionRequest::encode(WireWriter& w) const {
  w.i64(call_id);
  w.i64(time);
  w.i32(src_as);
  w.i32(dst_as);
  w.u32(static_cast<std::uint32_t>(options.size()));
  for (const OptionId o : options) w.i32(o);
  w.u64(trace_id);
}

DecisionRequest DecisionRequest::decode(WireReader& r) {
  DecisionRequest m;
  m.call_id = r.i64();
  m.time = r.i64();
  m.src_as = r.i32();
  m.dst_as = r.i32();
  const std::uint32_t n = r.u32();
  // A count the frame cannot possibly hold (4 bytes per option) is a
  // malformed message, not an allocation request.
  if (n > 100'000 || n * sizeof(std::int32_t) > r.remaining()) {
    throw ProtocolError("too many options");
  }
  m.options.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.options.push_back(r.i32());
  // Appended in a later protocol revision; frames from older clients end
  // here and decode as untraced.
  m.trace_id = r.exhausted() ? 0 : r.u64();
  return m;
}

void DecisionResponse::encode(WireWriter& w) const {
  w.i64(call_id);
  w.i32(option);
  w.u32(replica_id);
  w.u64(ring_epoch);
}

DecisionResponse DecisionResponse::decode(WireReader& r) {
  DecisionResponse m;
  m.call_id = r.i64();
  m.option = r.i32();
  // Appended by the federation revision (§6k); frames from unfederated
  // controllers end here and decode as replica 0 / epoch 0.
  if (!r.exhausted()) {
    m.replica_id = r.u32();
    m.ring_epoch = r.u64();
  }
  return m;
}

void ReportMsg::encode(WireWriter& w) const {
  w.i64(obs.id);
  w.i64(obs.time);
  w.i32(obs.src_as);
  w.i32(obs.dst_as);
  w.i32(obs.option);
  w.i32(obs.ingress);
  w.f64(obs.perf.rtt_ms);
  w.f64(obs.perf.loss_pct);
  w.f64(obs.perf.jitter_ms);
}

ReportMsg ReportMsg::decode(WireReader& r) {
  ReportMsg m;
  m.obs.id = r.i64();
  m.obs.time = r.i64();
  m.obs.src_as = r.i32();
  m.obs.dst_as = r.i32();
  m.obs.option = r.i32();
  m.obs.ingress = static_cast<RelayId>(r.i32());
  m.obs.perf.rtt_ms = r.f64();
  m.obs.perf.loss_pct = r.f64();
  m.obs.perf.jitter_ms = r.f64();
  return m;
}

void RefreshMsg::encode(WireWriter& w) const { w.i64(now); }

RefreshMsg RefreshMsg::decode(WireReader& r) {
  RefreshMsg m;
  m.now = r.i64();
  return m;
}

void StatsRequest::encode(WireWriter& w) const { w.u8(format); }

StatsRequest StatsRequest::decode(WireReader& r) {
  StatsRequest m;
  m.format = r.u8();
  return m;
}

void StatsResponse::encode(WireWriter& w) const {
  w.str(text);
  w.u32(replica_id);
}

StatsResponse StatsResponse::decode(WireReader& r) {
  StatsResponse m;
  m.text = r.str();
  m.replica_id = r.exhausted() ? 0 : r.u32();
  return m;
}

void DumpRequest::encode(WireWriter& w) const { w.u32(max_bytes); }

DumpRequest DumpRequest::decode(WireReader& r) {
  DumpRequest m;
  m.max_bytes = r.u32();
  return m;
}

void PongMsg::encode(WireWriter& w) const {
  w.u32(replica_id);
  w.u64(ring_epoch);
}

PongMsg PongMsg::decode(WireReader& r) {
  PongMsg m;
  m.replica_id = r.u32();
  m.ring_epoch = r.u64();
  return m;
}

void GossipSegmentsMsg::encode(WireWriter& w) const {
  w.u32(replica_id);
  w.u64(ring_epoch);
  w.u32(static_cast<std::uint32_t>(segments.size()));
  for (const PeerSegment& s : segments) {
    w.u64(s.key);
    for (std::size_t m = 0; m < kNumMetrics; ++m) w.f64(s.est.lin_mean[m]);
    for (std::size_t m = 0; m < kNumMetrics; ++m) w.f64(s.est.lin_sem[m]);
    w.i64(s.est.evidence);
  }
}

GossipSegmentsMsg GossipSegmentsMsg::decode(WireReader& r) {
  GossipSegmentsMsg m;
  m.replica_id = r.u32();
  m.ring_epoch = r.u64();
  const std::uint32_t n = r.u32();
  // 64 bytes per entry on the wire; a count the remaining payload cannot
  // hold is a malformed frame, not an allocation request.
  constexpr std::size_t kEntryBytes = 8 + 2 * kNumMetrics * 8 + 8;
  if (static_cast<std::size_t>(n) * kEntryBytes > r.remaining()) {
    throw ProtocolError("gossip segment count exceeds payload");
  }
  m.segments.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    PeerSegment s;
    s.key = r.u64();
    for (std::size_t k = 0; k < kNumMetrics; ++k) s.est.lin_mean[k] = r.f64();
    for (std::size_t k = 0; k < kNumMetrics; ++k) s.est.lin_sem[k] = r.f64();
    s.est.evidence = r.i64();
    m.segments.push_back(s);
  }
  return m;
}

void GossipSegmentsAckMsg::encode(WireWriter& w) const {
  w.u32(replica_id);
  w.u64(ring_epoch);
  w.u32(accepted);
}

GossipSegmentsAckMsg GossipSegmentsAckMsg::decode(WireReader& r) {
  GossipSegmentsAckMsg m;
  m.replica_id = r.u32();
  m.ring_epoch = r.u64();
  m.accepted = r.u32();
  return m;
}

void ErrorMsg::encode(WireWriter& w) const {
  w.u8(request_type);
  w.str(text);
}

ErrorMsg ErrorMsg::decode(WireReader& r) {
  ErrorMsg m;
  m.request_type = r.u8();
  m.text = r.str();
  return m;
}

}  // namespace via
