#include "rpc/messages.h"

namespace via {

void DecisionRequest::encode(WireWriter& w) const {
  w.i64(call_id);
  w.i64(time);
  w.i32(src_as);
  w.i32(dst_as);
  w.u32(static_cast<std::uint32_t>(options.size()));
  for (const OptionId o : options) w.i32(o);
  w.u64(trace_id);
}

DecisionRequest DecisionRequest::decode(WireReader& r) {
  DecisionRequest m;
  m.call_id = r.i64();
  m.time = r.i64();
  m.src_as = r.i32();
  m.dst_as = r.i32();
  const std::uint32_t n = r.u32();
  // A count the frame cannot possibly hold (4 bytes per option) is a
  // malformed message, not an allocation request.
  if (n > 100'000 || n * sizeof(std::int32_t) > r.remaining()) {
    throw ProtocolError("too many options");
  }
  m.options.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.options.push_back(r.i32());
  // Appended in a later protocol revision; frames from older clients end
  // here and decode as untraced.
  m.trace_id = r.exhausted() ? 0 : r.u64();
  return m;
}

void DecisionResponse::encode(WireWriter& w) const {
  w.i64(call_id);
  w.i32(option);
}

DecisionResponse DecisionResponse::decode(WireReader& r) {
  DecisionResponse m;
  m.call_id = r.i64();
  m.option = r.i32();
  return m;
}

void ReportMsg::encode(WireWriter& w) const {
  w.i64(obs.id);
  w.i64(obs.time);
  w.i32(obs.src_as);
  w.i32(obs.dst_as);
  w.i32(obs.option);
  w.i32(obs.ingress);
  w.f64(obs.perf.rtt_ms);
  w.f64(obs.perf.loss_pct);
  w.f64(obs.perf.jitter_ms);
}

ReportMsg ReportMsg::decode(WireReader& r) {
  ReportMsg m;
  m.obs.id = r.i64();
  m.obs.time = r.i64();
  m.obs.src_as = r.i32();
  m.obs.dst_as = r.i32();
  m.obs.option = r.i32();
  m.obs.ingress = static_cast<RelayId>(r.i32());
  m.obs.perf.rtt_ms = r.f64();
  m.obs.perf.loss_pct = r.f64();
  m.obs.perf.jitter_ms = r.f64();
  return m;
}

void RefreshMsg::encode(WireWriter& w) const { w.i64(now); }

RefreshMsg RefreshMsg::decode(WireReader& r) {
  RefreshMsg m;
  m.now = r.i64();
  return m;
}

void StatsRequest::encode(WireWriter& w) const { w.u8(format); }

StatsRequest StatsRequest::decode(WireReader& r) {
  StatsRequest m;
  m.format = r.u8();
  return m;
}

void StatsResponse::encode(WireWriter& w) const { w.str(text); }

StatsResponse StatsResponse::decode(WireReader& r) {
  StatsResponse m;
  m.text = r.str();
  return m;
}

void DumpRequest::encode(WireWriter& w) const { w.u32(max_bytes); }

DumpRequest DumpRequest::decode(WireReader& r) {
  DumpRequest m;
  m.max_bytes = r.u32();
  return m;
}

void ErrorMsg::encode(WireWriter& w) const {
  w.u8(request_type);
  w.str(text);
}

ErrorMsg ErrorMsg::decode(WireReader& r) {
  ErrorMsg m;
  m.request_type = r.u8();
  m.text = r.str();
  return m;
}

}  // namespace via
