// Instrumented-client stub: the piece that lives inside the (modified)
// VoIP client.  Before a call it asks the controller which relaying option
// to use; after the call it pushes its network measurements.
#pragma once

#include <cstdint>

#include "core/policy.h"
#include "rpc/messages.h"
#include "rpc/socket.h"

namespace via {

class ControllerClient {
 public:
  /// Connects to a local controller.  Throws on failure.
  explicit ControllerClient(std::uint16_t port);

  /// Round trip: returns the relaying option to use for this call.
  [[nodiscard]] OptionId request_decision(const DecisionRequest& request);

  /// Pushes a completed call's measurements (waits for the ack).
  void report(const Observation& obs);

  /// Asks the controller to run its periodic refresh (testbed-driven time).
  void refresh(TimeSec now);

  /// Politely ends the session.
  void shutdown();

 private:
  TcpConnection conn_;
};

}  // namespace via
