// Instrumented-client stub: the piece that lives inside the (modified)
// VoIP client.  Before a call it asks the controller which relaying option
// to use; after the call it pushes its network measurements.
#pragma once

#include <cstdint>
#include <string>

#include "core/policy.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "rpc/messages.h"
#include "rpc/socket.h"

namespace via {

class ControllerClient {
 public:
  /// Connects to a local controller.  Throws on failure.
  explicit ControllerClient(std::uint16_t port);

  /// Optional telemetry: request latency histogram, bytes in/out, and
  /// request-error counters are recorded into `registry` (caller-owned,
  /// must outlive the client).  nullptr detaches.
  void attach_metrics(obs::MetricsRegistry* registry);

  /// Round trip: returns the relaying option to use for this call.
  [[nodiscard]] OptionId request_decision(const DecisionRequest& request);

  /// Pushes a completed call's measurements (waits for the ack).
  void report(const Observation& obs);

  /// Asks the controller to run its periodic refresh (testbed-driven time).
  void refresh(TimeSec now);

  /// Fetches the controller's telemetry snapshot, rendered server-side.
  [[nodiscard]] std::string get_stats(obs::StatsFormat format = obs::StatsFormat::Json);

  /// Politely ends the session.
  void shutdown();

 private:
  /// Sends one frame and waits for the expected response type, recording
  /// latency/bytes/errors when metrics are attached.
  [[nodiscard]] Frame round_trip(MsgType type, const WireWriter& w, MsgType expected);

  TcpConnection conn_;
  obs::Counter* tel_bytes_in_ = nullptr;
  obs::Counter* tel_bytes_out_ = nullptr;
  obs::Counter* tel_errors_ = nullptr;
  obs::LatencyHistogram* tel_request_us_ = nullptr;
};

}  // namespace via
