// Instrumented-client stub: the piece that lives inside the (modified)
// VoIP client.  Before a call it asks the controller which relaying option
// to use; after the call it pushes its network measurements.
//
// Robustness (DESIGN.md §6f): every round trip can run under a request
// deadline (poll-based socket timeout), with bounded retries under
// exponential backoff + deterministic jitter.  Timeouts and resets drop
// the connection and reconnect before retrying (a late response on the old
// stream would desynchronize framing); Busy retries on the same
// connection; Protocol errors never retry.  Report retries are safe end to
// end because the observation id is an idempotency key the server dedups
// on.  With `fallback_direct`, a controller that stays unreachable costs
// the caller nothing but relay gain: request_decision() returns the direct
// path instead of throwing — the paper's fail-safe deployment story.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/policy.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "rpc/errors.h"
#include "rpc/messages.h"
#include "rpc/socket.h"

namespace via {

struct ClientConfig {
  /// Per-request response deadline in ms; 0 waits forever (legacy).
  int request_timeout_ms = 0;
  /// Extra attempts after the first (0 = fail fast, legacy).
  int max_retries = 0;
  int backoff_base_ms = 5;   ///< first retry delay; doubles per attempt
  int backoff_max_ms = 250;  ///< backoff ceiling
  std::uint64_t jitter_seed = 0x5eed;  ///< deterministic backoff jitter
  /// request_decision() answers "direct" instead of throwing when the
  /// controller stays unreachable through all retries.
  bool fallback_direct = false;
};

class ControllerClient {
 public:
  /// Produces a fresh transport; called on connect and every reconnect.
  /// May return a subclass (e.g. FaultyConnection) for chaos tests.
  using ConnectionFactory = std::function<std::unique_ptr<TcpConnection>()>;

  /// Connects to a local controller.  With a default config this connects
  /// eagerly and throws on failure (legacy contract); a config with
  /// retries or fallback connects lazily on first use, so a dead
  /// controller degrades instead of aborting construction.
  explicit ControllerClient(std::uint16_t port, ClientConfig config = {});

  /// Custom transport factory (chaos tests inject faults here).
  ControllerClient(ConnectionFactory factory, ClientConfig config = {});

  /// Optional telemetry: request latency histogram, bytes in/out, and
  /// request-error counters (total + per RpcErrorKind) are recorded into
  /// `registry` (caller-owned, must outlive the client).  nullptr detaches.
  void attach_metrics(obs::MetricsRegistry* registry);

  /// Optional flight recorder (§6g): RPC errors, retries, reconnects, and
  /// direct fallbacks are recorded as structured events (caller-owned,
  /// must outlive the client).  nullptr detaches.
  void attach_flight(obs::FlightRecorder* flight) noexcept { flight_ = flight; }

  /// Round trip: returns the relaying option to use for this call.  With
  /// fallback_direct, returns the direct option when the controller is
  /// unreachable (never for Protocol errors — those indicate a bug, not an
  /// outage).
  [[nodiscard]] OptionId request_decision(const DecisionRequest& request);

  /// Pushes a completed call's measurements (waits for the ack).  Safe to
  /// retry: the observation id is the idempotency key.
  void report(const Observation& obs);

  /// Asks the controller to run its periodic refresh (testbed-driven time).
  /// Safe to retry: the server dedups on the refresh timestamp.
  void refresh(TimeSec now);

  /// Fetches the controller's telemetry snapshot, rendered server-side.
  [[nodiscard]] std::string get_stats(obs::StatsFormat format = obs::StatsFormat::Json);

  /// Fetches the controller's span buffer as Chrome trace-event JSON
  /// (§6g).  `max_bytes` 0 = server default (just under the frame cap).
  [[nodiscard]] std::string get_trace(std::uint32_t max_bytes = 0);

  /// Fetches the controller's flight recorder as JSONL (newest events kept
  /// when the dump exceeds `max_bytes`).
  [[nodiscard]] std::string get_flight_record(std::uint32_t max_bytes = 0);

  /// Liveness probe (§6k): one Ping round trip; the Pong carries the
  /// replica's identity.  Throws RpcError when the replica is unreachable.
  [[nodiscard]] PongMsg ping();

  /// Pushes a segment-estimate update to a peer replica (§6k); returns the
  /// receiver's ack.  Used by the controller's gossip loop and the
  /// in-process fleet harness, not by call clients.
  [[nodiscard]] GossipSegmentsAckMsg gossip_segments(const GossipSegmentsMsg& msg);

  /// Politely ends the session (best-effort; never throws).
  void shutdown();

  [[nodiscard]] const ClientConfig& config() const noexcept { return config_; }
  /// Degradation accounting, readable without a metrics registry.
  [[nodiscard]] std::int64_t retries() const noexcept { return retries_; }
  [[nodiscard]] std::int64_t reconnects() const noexcept { return reconnects_; }
  [[nodiscard]] std::int64_t fallback_decisions() const noexcept { return fallbacks_; }

  /// Identity stamped on the most recent reply that carried one (§6k):
  /// 0/0 until a federated controller has answered.  Lets a caller
  /// attribute decisions/dumps and detect a stale ring config.
  [[nodiscard]] std::uint32_t last_replica_id() const noexcept { return last_replica_id_; }
  [[nodiscard]] std::uint64_t last_ring_epoch() const noexcept { return last_ring_epoch_; }

 private:
  /// Sends one frame and waits for the expected response type under the
  /// configured deadline/retry policy, recording latency/bytes/errors when
  /// metrics are attached.
  [[nodiscard]] Frame round_trip(MsgType type, const WireWriter& w, MsgType expected);
  /// One attempt; every failure surfaces as a typed RpcError.
  [[nodiscard]] Frame attempt(MsgType type, const WireWriter& w, MsgType expected);
  void ensure_connected();
  void note_error(RpcErrorKind kind);
  void backoff_sleep(int attempt_index);

  ConnectionFactory factory_;
  ClientConfig config_;
  std::unique_ptr<TcpConnection> conn_;
  bool ever_connected_ = false;
  std::int64_t retries_ = 0;
  std::int64_t reconnects_ = 0;
  std::int64_t fallbacks_ = 0;
  std::uint32_t last_replica_id_ = 0;
  std::uint64_t last_ring_epoch_ = 0;
  std::uint64_t backoff_draws_ = 0;
  obs::FlightRecorder* flight_ = nullptr;

  obs::Counter* tel_bytes_in_ = nullptr;
  obs::Counter* tel_bytes_out_ = nullptr;
  obs::Counter* tel_errors_ = nullptr;
  obs::Counter* tel_errors_timeout_ = nullptr;
  obs::Counter* tel_errors_reset_ = nullptr;
  obs::Counter* tel_errors_protocol_ = nullptr;
  obs::Counter* tel_errors_busy_ = nullptr;
  obs::Counter* tel_retries_ = nullptr;
  obs::Counter* tel_reconnects_ = nullptr;
  obs::Counter* tel_fallback_direct_ = nullptr;
  obs::LatencyHistogram* tel_request_us_ = nullptr;
};

}  // namespace via
