#include "rpc/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "rpc/errors.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace via {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void enable_nodelay(int fd) {
  const int one = 1;
  // Latency matters more than throughput for small control messages.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

void FdHandle::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpConnection TcpConnection::connect_local(std::uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("connect");
  }
  enable_nodelay(fd.get());
  return TcpConnection(std::move(fd));
}

void TcpConnection::send_all(std::span<const std::byte> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_.get(), data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool TcpConnection::recv_all(std::span<std::byte> data) {
  std::size_t got = 0;
  while (got < data.size()) {
    if (recv_timeout_ms_ > 0) {
      // Deadline first: a request that never gets its response must not
      // wedge the caller.  A partially received message that stalls is a
      // timeout too — the caller drops the connection either way.
      pollfd pfd{};
      pfd.fd = fd_.get();
      pfd.events = POLLIN;
      int r;
      do {
        r = ::poll(&pfd, 1, recv_timeout_ms_);
      } while (r < 0 && errno == EINTR);
      if (r < 0) throw_errno("poll");
      if (r == 0) throw RpcError(RpcErrorKind::Timeout, "recv deadline expired");
    }
    const ssize_t n = ::recv(fd_.get(), data.data() + got, data.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw std::runtime_error("connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = FdHandle(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) throw_errno("socket");

  const int one = 1;
  (void)::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind");
  }
  // Deep enough that a 10k-connection soak's connect storm (§6j) mostly
  // rides the backlog instead of retrying; the kernel clamps to
  // net.core.somaxconn anyway.
  if (::listen(fd_.get(), 4096) != 0) throw_errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpConnection TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) {
      enable_nodelay(fd);
      return TcpConnection(FdHandle(fd));
    }
    if (errno != EINTR) throw_errno("accept");
  }
}

}  // namespace via
