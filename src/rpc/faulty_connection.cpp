#include "rpc/faulty_connection.h"

#include <chrono>
#include <thread>

#include "rpc/errors.h"
#include "util/rng.h"

namespace via {

FaultAction FaultSchedule::next_action() {
  const std::int64_t frame = frames_.fetch_add(1, std::memory_order_relaxed);
  if (config_.max_faults >= 0 &&
      injected_.load(std::memory_order_relaxed) >= config_.max_faults) {
    return FaultAction::Pass;
  }
  // One deterministic draw per frame; the cumulative-probability ladder
  // mirrors how the config reads.
  const double u = hashed_uniform(hash_mix(config_.seed, static_cast<std::uint64_t>(frame)));
  double edge = config_.drop_prob;
  FaultAction action = FaultAction::Pass;
  if (u < edge) {
    action = FaultAction::Drop;
  } else if (u < (edge += config_.delay_prob)) {
    action = FaultAction::Delay;
  } else if (u < (edge += config_.truncate_prob)) {
    action = FaultAction::Truncate;
  } else if (u < (edge += config_.reset_prob)) {
    action = FaultAction::Reset;
  }
  if (action != FaultAction::Pass) injected_.fetch_add(1, std::memory_order_relaxed);
  return action;
}

void FaultyConnection::send_all(std::span<const std::byte> data) {
  switch (schedule_->next_action()) {
    case FaultAction::Pass:
      TcpConnection::send_all(data);
      return;
    case FaultAction::Drop:
      // The peer never sees the request; the caller's recv deadline fires.
      return;
    case FaultAction::Delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(schedule_->config().delay_ms));
      TcpConnection::send_all(data);
      return;
    case FaultAction::Truncate:
      // Half a frame, then a close: the peer sees a mid-frame EOF.
      TcpConnection::send_all(data.first(data.size() / 2));
      close();
      throw RpcError(RpcErrorKind::Reset, "injected truncation");
    case FaultAction::Reset:
      close();
      throw RpcError(RpcErrorKind::Reset, "injected reset");
  }
}

}  // namespace via
