#include "rpc/faulty_connection.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "rpc/errors.h"
#include "util/rng.h"

namespace via {

FaultAction FaultSchedule::next_action() {
  const std::int64_t frame = frames_.fetch_add(1, std::memory_order_relaxed);
  if (config_.max_faults >= 0 &&
      injected_.load(std::memory_order_relaxed) >= config_.max_faults) {
    return FaultAction::Pass;
  }
  // One deterministic draw per frame; the cumulative-probability ladder
  // mirrors how the config reads.
  const double u = hashed_uniform(hash_mix(config_.seed, static_cast<std::uint64_t>(frame)));
  double edge = config_.drop_prob;
  FaultAction action = FaultAction::Pass;
  if (u < edge) {
    action = FaultAction::Drop;
  } else if (u < (edge += config_.delay_prob)) {
    action = FaultAction::Delay;
  } else if (u < (edge += config_.truncate_prob)) {
    action = FaultAction::Truncate;
  } else if (u < (edge += config_.reset_prob)) {
    action = FaultAction::Reset;
  }
  if (action != FaultAction::Pass) injected_.fetch_add(1, std::memory_order_relaxed);
  return action;
}

void FaultyConnection::begin_frame() {
  std::uint32_t len = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header_[i]) << (8 * i);
  }
  frame_size_ = header_.size() + len;
  frame_sent_ = 0;
  header_have_ = 0;
  // One action per frame, drawn exactly when the legacy whole-frame path
  // drew it, so (seed, probabilities) still injects the same sequence.
  action_ = schedule_->next_action();
  if (action_ == FaultAction::Delay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(schedule_->config().delay_ms));
  }
  if (action_ == FaultAction::Reset) {
    close();
    frame_size_ = frame_sent_ = 0;
    throw RpcError(RpcErrorKind::Reset, "injected reset");
  }
  emit(header_);
}

void FaultyConnection::emit(std::span<const std::byte> chunk) {
  switch (action_) {
    case FaultAction::Pass:
    case FaultAction::Delay:
      TcpConnection::send_all(chunk);
      frame_sent_ += chunk.size();
      return;
    case FaultAction::Drop:
      // The peer never sees the request; the caller's recv deadline fires.
      frame_sent_ += chunk.size();
      return;
    case FaultAction::Truncate: {
      // Half a frame (byte-identical to the legacy `data.first(size / 2)`),
      // then a close: the peer sees a mid-frame EOF.
      const std::size_t half = frame_size_ / 2;
      if (frame_sent_ < half) {
        const std::size_t n = std::min(chunk.size(), half - frame_sent_);
        TcpConnection::send_all(chunk.first(n));
        frame_sent_ += n;
        if (frame_sent_ < half) return;  // still under the cut point
      }
      close();
      frame_size_ = frame_sent_ = 0;
      header_have_ = 0;
      throw RpcError(RpcErrorKind::Reset, "injected truncation");
    }
    case FaultAction::Reset:
      return;  // unreachable: Reset throws in begin_frame()
  }
}

void FaultyConnection::send_all(std::span<const std::byte> data) {
  while (!data.empty()) {
    if (frame_sent_ == frame_size_) {
      // At a frame boundary: reassemble the header, possibly across calls.
      const std::size_t take = std::min(header_.size() - header_have_, data.size());
      std::memcpy(header_.data() + header_have_, data.data(), take);
      header_have_ += take;
      data = data.subspan(take);
      if (header_have_ < header_.size()) return;  // partial header buffered
      begin_frame();
      continue;
    }
    const std::size_t take = std::min(frame_size_ - frame_sent_, data.size());
    emit(data.first(take));
    data = data.subspan(take);
  }
}

}  // namespace via
