#include "rpc/client.h"

#include <stdexcept>

namespace via {

namespace {

Frame expect_frame(TcpConnection& conn, MsgType expected) {
  Frame frame;
  if (!recv_frame(conn, frame)) throw std::runtime_error("controller closed connection");
  if (frame.type != static_cast<std::uint8_t>(expected)) {
    throw std::runtime_error("unexpected response type");
  }
  return frame;
}

}  // namespace

ControllerClient::ControllerClient(std::uint16_t port)
    : conn_(TcpConnection::connect_local(port)) {}

OptionId ControllerClient::request_decision(const DecisionRequest& request) {
  WireWriter w;
  request.encode(w);
  send_frame(conn_, static_cast<std::uint8_t>(MsgType::DecisionRequest), w.bytes());
  Frame frame = expect_frame(conn_, MsgType::DecisionResponse);
  WireReader r(frame.payload);
  const DecisionResponse resp = DecisionResponse::decode(r);
  if (resp.call_id != request.call_id) throw std::runtime_error("response call-id mismatch");
  return resp.option;
}

void ControllerClient::report(const Observation& obs) {
  WireWriter w;
  ReportMsg{obs}.encode(w);
  send_frame(conn_, static_cast<std::uint8_t>(MsgType::Report), w.bytes());
  (void)expect_frame(conn_, MsgType::ReportAck);
}

void ControllerClient::refresh(TimeSec now) {
  WireWriter w;
  RefreshMsg{now}.encode(w);
  send_frame(conn_, static_cast<std::uint8_t>(MsgType::Refresh), w.bytes());
  (void)expect_frame(conn_, MsgType::RefreshAck);
}

void ControllerClient::shutdown() {
  send_frame(conn_, static_cast<std::uint8_t>(MsgType::Shutdown), {});
  conn_.close();
}

}  // namespace via
