#include "rpc/client.h"

#include <stdexcept>

#include "obs/timer.h"

namespace via {

namespace {

constexpr std::int64_t kFrameHeaderBytes = 5;  ///< u32 length + u8 type

Frame expect_frame(TcpConnection& conn, MsgType expected) {
  Frame frame;
  if (!recv_frame(conn, frame)) throw std::runtime_error("controller closed connection");
  if (frame.type != static_cast<std::uint8_t>(expected)) {
    throw std::runtime_error("unexpected response type");
  }
  return frame;
}

}  // namespace

ControllerClient::ControllerClient(std::uint16_t port)
    : conn_(TcpConnection::connect_local(port)) {}

void ControllerClient::attach_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    tel_bytes_in_ = nullptr;
    tel_bytes_out_ = nullptr;
    tel_errors_ = nullptr;
    tel_request_us_ = nullptr;
    return;
  }
  tel_bytes_in_ = &registry->counter("rpc.client.bytes_in");
  tel_bytes_out_ = &registry->counter("rpc.client.bytes_out");
  tel_errors_ = &registry->counter("rpc.client.request_errors");
  tel_request_us_ = &registry->histogram("rpc.client.request_us", obs::kLatencyBoundsUs);
}

Frame ControllerClient::round_trip(MsgType type, const WireWriter& w, MsgType expected) {
  const obs::ScopedTimer timer(tel_request_us_);
  try {
    if (tel_bytes_out_ != nullptr) {
      tel_bytes_out_->inc(static_cast<std::int64_t>(w.bytes().size()) + kFrameHeaderBytes);
    }
    send_frame(conn_, static_cast<std::uint8_t>(type), w.bytes());
    Frame frame = expect_frame(conn_, expected);
    if (tel_bytes_in_ != nullptr) {
      tel_bytes_in_->inc(static_cast<std::int64_t>(frame.payload.size()) + kFrameHeaderBytes);
    }
    return frame;
  } catch (...) {
    if (tel_errors_ != nullptr) tel_errors_->inc();
    throw;
  }
}

OptionId ControllerClient::request_decision(const DecisionRequest& request) {
  WireWriter w;
  request.encode(w);
  Frame frame = round_trip(MsgType::DecisionRequest, w, MsgType::DecisionResponse);
  WireReader r(frame.payload);
  const DecisionResponse resp = DecisionResponse::decode(r);
  if (resp.call_id != request.call_id) throw std::runtime_error("response call-id mismatch");
  return resp.option;
}

void ControllerClient::report(const Observation& obs) {
  WireWriter w;
  ReportMsg{obs}.encode(w);
  (void)round_trip(MsgType::Report, w, MsgType::ReportAck);
}

void ControllerClient::refresh(TimeSec now) {
  WireWriter w;
  RefreshMsg{now}.encode(w);
  (void)round_trip(MsgType::Refresh, w, MsgType::RefreshAck);
}

std::string ControllerClient::get_stats(obs::StatsFormat format) {
  WireWriter w;
  StatsRequest{static_cast<std::uint8_t>(format)}.encode(w);
  Frame frame = round_trip(MsgType::GetStats, w, MsgType::GetStatsResponse);
  WireReader r(frame.payload);
  return StatsResponse::decode(r).text;
}

void ControllerClient::shutdown() {
  send_frame(conn_, static_cast<std::uint8_t>(MsgType::Shutdown), {});
  conn_.close();
}

}  // namespace via
