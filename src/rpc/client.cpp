#include "rpc/client.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/relay_option.h"
#include "obs/timer.h"
#include "util/rng.h"

namespace via {

namespace {

constexpr std::int64_t kFrameHeaderBytes = 5;  ///< u32 length + u8 type

}  // namespace

ControllerClient::ControllerClient(std::uint16_t port, ClientConfig config)
    : ControllerClient(
          [port]() -> std::unique_ptr<TcpConnection> {
            return std::make_unique<TcpConnection>(TcpConnection::connect_local(port));
          },
          config) {}

ControllerClient::ControllerClient(ConnectionFactory factory, ClientConfig config)
    : factory_(std::move(factory)), config_(config) {
  // Legacy contract: a plain client connects in the constructor and throws
  // on failure.  A resilient config connects lazily so a dead controller
  // degrades (retry/fallback) instead of aborting construction.
  if (config_.max_retries == 0 && !config_.fallback_direct) ensure_connected();
}

void ControllerClient::attach_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    tel_bytes_in_ = nullptr;
    tel_bytes_out_ = nullptr;
    tel_errors_ = nullptr;
    tel_errors_timeout_ = nullptr;
    tel_errors_reset_ = nullptr;
    tel_errors_protocol_ = nullptr;
    tel_errors_busy_ = nullptr;
    tel_retries_ = nullptr;
    tel_reconnects_ = nullptr;
    tel_fallback_direct_ = nullptr;
    tel_request_us_ = nullptr;
    return;
  }
  tel_bytes_in_ = &registry->counter("rpc.client.bytes_in");
  tel_bytes_out_ = &registry->counter("rpc.client.bytes_out");
  tel_errors_ = &registry->counter("rpc.client.request_errors");
  tel_errors_timeout_ = &registry->counter("rpc.client.errors.timeout");
  tel_errors_reset_ = &registry->counter("rpc.client.errors.reset");
  tel_errors_protocol_ = &registry->counter("rpc.client.errors.protocol");
  tel_errors_busy_ = &registry->counter("rpc.client.errors.busy");
  tel_retries_ = &registry->counter("rpc.client.retries");
  tel_reconnects_ = &registry->counter("rpc.client.reconnects");
  tel_fallback_direct_ = &registry->counter("rpc.client.fallback_direct");
  tel_request_us_ = &registry->histogram("rpc.client.request_us", obs::kLatencyBoundsUs);
}

void ControllerClient::ensure_connected() {
  if (conn_ != nullptr && conn_->valid()) return;
  conn_ = factory_();
  conn_->set_recv_timeout_ms(config_.request_timeout_ms);
  if (ever_connected_) {
    ++reconnects_;
    if (tel_reconnects_ != nullptr) tel_reconnects_->inc();
    if (flight_ != nullptr) {
      flight_->record(obs::FlightEventKind::RpcReconnect, "reconnected to controller");
    }
  }
  ever_connected_ = true;
}

void ControllerClient::note_error(RpcErrorKind kind) {
  if (tel_errors_ != nullptr) tel_errors_->inc();
  obs::Counter* by_kind = nullptr;
  switch (kind) {
    case RpcErrorKind::Timeout:
      by_kind = tel_errors_timeout_;
      break;
    case RpcErrorKind::Reset:
      by_kind = tel_errors_reset_;
      break;
    case RpcErrorKind::Protocol:
      by_kind = tel_errors_protocol_;
      break;
    case RpcErrorKind::Busy:
      by_kind = tel_errors_busy_;
      break;
  }
  if (by_kind != nullptr) by_kind->inc();
  if (flight_ != nullptr) {
    flight_->record(obs::FlightEventKind::RpcError, rpc_error_kind_name(kind));
  }
}

void ControllerClient::backoff_sleep(int attempt_index) {
  if (config_.backoff_base_ms <= 0) return;
  const double base = static_cast<double>(config_.backoff_base_ms) *
                      static_cast<double>(1 << std::min(attempt_index, 16));
  const double capped = std::min(base, static_cast<double>(config_.backoff_max_ms));
  // Deterministic jitter in [0.5, 1.5): decorrelates a retrying fleet
  // without giving up run-to-run reproducibility.
  const double jitter =
      0.5 + hashed_uniform(hash_mix(config_.jitter_seed, ++backoff_draws_));
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(capped * jitter));
}

Frame ControllerClient::attempt(MsgType type, const WireWriter& w, MsgType expected) {
  try {
    ensure_connected();
    if (tel_bytes_out_ != nullptr) {
      tel_bytes_out_->inc(static_cast<std::int64_t>(w.bytes().size()) + kFrameHeaderBytes);
    }
    send_frame(*conn_, static_cast<std::uint8_t>(type), w.bytes());
    Frame frame;
    if (!recv_frame(*conn_, frame)) {
      throw RpcError(RpcErrorKind::Reset, "controller closed connection");
    }
    if (frame.type == static_cast<std::uint8_t>(MsgType::Busy)) {
      throw RpcError(RpcErrorKind::Busy, "server shed request under overload");
    }
    if (frame.type == static_cast<std::uint8_t>(MsgType::Error)) {
      std::string text = "server reported a protocol error";
      try {
        WireReader r(frame.payload);
        text = ErrorMsg::decode(r).text;
      } catch (const std::exception&) {
        // Even the error payload was malformed; keep the generic text.
      }
      throw RpcError(RpcErrorKind::Protocol, text);
    }
    if (frame.type != static_cast<std::uint8_t>(expected)) {
      throw RpcError(RpcErrorKind::Protocol, "unexpected response type");
    }
    if (tel_bytes_in_ != nullptr) {
      tel_bytes_in_->inc(static_cast<std::int64_t>(frame.payload.size()) + kFrameHeaderBytes);
    }
    return frame;
  } catch (const RpcError&) {
    throw;
  } catch (const ProtocolError& e) {
    throw RpcError(RpcErrorKind::Protocol, e.what());
  } catch (const std::exception& e) {
    // connect/send/recv failures (system_error, mid-message EOF): the
    // connection is gone or poisoned either way.
    throw RpcError(RpcErrorKind::Reset, e.what());
  }
}

Frame ControllerClient::round_trip(MsgType type, const WireWriter& w, MsgType expected) {
  const obs::ScopedTimer timer(tel_request_us_);
  for (int attempt_index = 0;; ++attempt_index) {
    try {
      return attempt(type, w, expected);
    } catch (const RpcError& e) {
      note_error(e.kind());
      // Timeout/reset poison the stream (a late response would arrive as
      // the *next* request's reply) — drop the connection; the retry
      // reconnects.  Busy keeps the healthy connection.
      if (e.kind() != RpcErrorKind::Busy) conn_.reset();
      if (!e.retryable() || attempt_index >= config_.max_retries) throw;
      ++retries_;
      if (tel_retries_ != nullptr) tel_retries_->inc();
      if (flight_ != nullptr) {
        flight_->record(obs::FlightEventKind::RpcRetry, e.what(), attempt_index + 1);
      }
      backoff_sleep(attempt_index);
    }
  }
}

OptionId ControllerClient::request_decision(const DecisionRequest& request) {
  WireWriter w;
  request.encode(w);
  try {
    Frame frame = round_trip(MsgType::DecisionRequest, w, MsgType::DecisionResponse);
    WireReader r(frame.payload);
    const DecisionResponse resp = DecisionResponse::decode(r);
    if (resp.call_id != request.call_id) {
      throw RpcError(RpcErrorKind::Protocol, "response call-id mismatch");
    }
    if (resp.ring_epoch != 0) {
      last_replica_id_ = resp.replica_id;
      last_ring_epoch_ = resp.ring_epoch;
    }
    return resp.option;
  } catch (const RpcError& e) {
    // Fail safe (§6f): an unreachable controller must not drop the call —
    // the client takes the default Internet path on its own.  Protocol
    // errors are bugs, not outages; they still propagate.
    if (config_.fallback_direct && e.kind() != RpcErrorKind::Protocol) {
      ++fallbacks_;
      if (tel_fallback_direct_ != nullptr) tel_fallback_direct_->inc();
      if (flight_ != nullptr) {
        flight_->record(obs::FlightEventKind::RpcFallback,
                        "controller unreachable; call served direct", request.call_id);
      }
      return RelayOptionTable::direct_id();
    }
    throw;
  }
}

void ControllerClient::report(const Observation& obs) {
  WireWriter w;
  ReportMsg{obs}.encode(w);
  (void)round_trip(MsgType::Report, w, MsgType::ReportAck);
}

void ControllerClient::refresh(TimeSec now) {
  WireWriter w;
  RefreshMsg{now}.encode(w);
  (void)round_trip(MsgType::Refresh, w, MsgType::RefreshAck);
}

std::string ControllerClient::get_stats(obs::StatsFormat format) {
  WireWriter w;
  StatsRequest{static_cast<std::uint8_t>(format)}.encode(w);
  Frame frame = round_trip(MsgType::GetStats, w, MsgType::GetStatsResponse);
  WireReader r(frame.payload);
  StatsResponse resp = StatsResponse::decode(r);
  last_replica_id_ = resp.replica_id;
  return std::move(resp.text);
}

PongMsg ControllerClient::ping() {
  const WireWriter w;  // Ping has no payload
  Frame frame = round_trip(MsgType::Ping, w, MsgType::Pong);
  WireReader r(frame.payload);
  const PongMsg pong = PongMsg::decode(r);
  last_replica_id_ = pong.replica_id;
  if (pong.ring_epoch != 0) last_ring_epoch_ = pong.ring_epoch;
  return pong;
}

GossipSegmentsAckMsg ControllerClient::gossip_segments(const GossipSegmentsMsg& msg) {
  WireWriter w;
  msg.encode(w);
  Frame frame = round_trip(MsgType::GossipSegments, w, MsgType::GossipSegmentsAck);
  WireReader r(frame.payload);
  return GossipSegmentsAckMsg::decode(r);
}

std::string ControllerClient::get_trace(std::uint32_t max_bytes) {
  WireWriter w;
  DumpRequest{max_bytes}.encode(w);
  Frame frame = round_trip(MsgType::GetTrace, w, MsgType::GetTraceResponse);
  WireReader r(frame.payload);
  return StatsResponse::decode(r).text;
}

std::string ControllerClient::get_flight_record(std::uint32_t max_bytes) {
  WireWriter w;
  DumpRequest{max_bytes}.encode(w);
  Frame frame = round_trip(MsgType::GetFlightRecord, w, MsgType::GetFlightRecordResponse);
  WireReader r(frame.payload);
  return StatsResponse::decode(r).text;
}

void ControllerClient::shutdown() {
  if (conn_ != nullptr && conn_->valid()) {
    try {
      send_frame(*conn_, static_cast<std::uint8_t>(MsgType::Shutdown), {});
    } catch (const std::exception&) {
      // Best effort: the server reaps the connection either way.
    }
  }
  conn_.reset();
}

}  // namespace via
