// Per-connection byte buffers for the event-driven reactor (DESIGN.md §6h).
//
// A non-blocking socket hands the reactor arbitrary byte chunks, so frame
// boundaries no longer line up with read/write calls.  ReadBuffer
// accumulates inbound bytes and yields complete frames incrementally —
// one readiness event can surface many frames (the batched-decode path) or
// none (a partial frame waiting for its tail).  WriteBuffer queues encoded
// reply frames and flushes as much as the socket accepts, leaving the rest
// for the next EPOLLOUT.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rpc/framing.h"

namespace via {

/// Inbound byte accumulator with incremental frame decode.
class ReadBuffer {
 public:
  /// A span of at least `min_size` writable bytes at the buffer's tail;
  /// recv(2) directly into it, then commit() the byte count actually read.
  /// Compacts the consumed prefix away when it dominates the buffer.
  [[nodiscard]] std::span<std::byte> writable(std::size_t min_size);
  void commit(std::size_t n) noexcept { end_ += n; }

  /// Extracts the next complete frame.  Returns false when more bytes are
  /// needed.  Throws ProtocolError when the buffered header declares a
  /// payload over kMaxPayload — the stream can't be resynchronized after
  /// that, so the caller must close the connection.
  [[nodiscard]] bool next_frame(Frame& out);

  /// Bytes received but not yet consumed as frames; nonzero at EOF means
  /// the peer died mid-frame.
  [[nodiscard]] std::size_t buffered() const noexcept { return end_ - begin_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t begin_ = 0;  ///< first unconsumed byte
  std::size_t end_ = 0;    ///< one past the last received byte
};

/// Outbound frame queue with partial-write draining.
class WriteBuffer {
 public:
  /// Encodes one frame (header + payload) onto the queue.
  void frame(std::uint8_t type, std::span<const std::byte> payload);

  [[nodiscard]] bool empty() const noexcept { return begin_ == buf_.size(); }
  [[nodiscard]] std::size_t pending() const noexcept { return buf_.size() - begin_; }

  /// Writes to `fd` until the queue drains or the socket would block.
  /// Returns true when drained (the caller can disarm EPOLLOUT).  Throws
  /// std::system_error on a hard write error.
  [[nodiscard]] bool flush(int fd);

 private:
  std::vector<std::byte> buf_;
  std::size_t begin_ = 0;  ///< first unsent byte
};

}  // namespace via
