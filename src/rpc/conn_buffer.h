// Per-connection byte buffers for the event-driven reactors (DESIGN.md §6h/§6j).
//
// A non-blocking socket hands the reactor arbitrary byte chunks, so frame
// boundaries no longer line up with read/write calls.  ReadBuffer
// accumulates inbound bytes and yields complete frames incrementally —
// one readiness event can surface many frames (the batched-decode path) or
// none (a partial frame waiting for its tail).  WriteBuffer queues encoded
// reply frames and flushes as much as the socket accepts, leaving the rest
// for the next EPOLLOUT (epoll backend) or send-CQE (io_uring backend).
//
// The io_uring backend hands buffer pointers to the kernel and the op
// completes asynchronously, so the bytes it references must not move while
// the op is in flight.  WriteBuffer therefore keeps two vectors: `buf_`
// accepts new frames (and may reallocate freely), while `staged_` holds the
// bytes currently offered to the kernel and is never touched until
// consume() retires them.  stage() promotes queued bytes into the staged
// vector with a swap (zero copy when the staged side is empty).  The epoll
// flush(fd) path is built on the same stage/consume pair so both backends
// share one accounting model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rpc/framing.h"

namespace via {

/// Inbound byte accumulator with incremental frame decode.
class ReadBuffer {
 public:
  /// A span of at least `min_size` writable bytes at the buffer's tail;
  /// recv(2) directly into it, then commit() the byte count actually read.
  /// Compacts the consumed prefix away when it dominates the buffer.
  [[nodiscard]] std::span<std::byte> writable(std::size_t min_size);
  void commit(std::size_t n) noexcept { end_ += n; }

  /// Extracts the next complete frame.  Returns false when more bytes are
  /// needed.  Throws ProtocolError when the buffered header declares a
  /// payload over kMaxPayload — the stream can't be resynchronized after
  /// that, so the caller must close the connection.
  [[nodiscard]] bool next_frame(Frame& out);

  /// Bytes received but not yet consumed as frames; nonzero at EOF means
  /// the peer died mid-frame.
  [[nodiscard]] std::size_t buffered() const noexcept { return end_ - begin_; }

  /// Heap bytes currently held (capacity, not live bytes) — RSS accounting.
  [[nodiscard]] std::size_t approx_bytes() const noexcept { return buf_.capacity(); }

 private:
  std::vector<std::byte> buf_;
  std::size_t begin_ = 0;  ///< first unconsumed byte
  std::size_t end_ = 0;    ///< one past the last received byte
};

/// Outbound frame queue with partial-write draining and a kernel-stable
/// staged region for asynchronous (io_uring) sends.
class WriteBuffer {
 public:
  /// Encodes one frame (header + payload) onto the queue.
  void frame(std::uint8_t type, std::span<const std::byte> payload);

  [[nodiscard]] bool empty() const noexcept {
    return buf_.empty() && staged_pos_ == staged_.size();
  }
  /// Unsent bytes across both the queued and staged regions.
  [[nodiscard]] std::size_t pending() const noexcept {
    return buf_.size() + (staged_.size() - staged_pos_);
  }
  /// Same as pending(); the name the backpressure caps read against.
  [[nodiscard]] std::size_t approx_bytes() const noexcept { return pending(); }

  /// Heap bytes currently held (capacity across both vectors), making the
  /// full-drain capacity reclaim observable.
  [[nodiscard]] std::size_t reserve_bytes() const noexcept {
    return buf_.capacity() + staged_.capacity();
  }

  /// Promotes queued bytes into the staged region and returns the
  /// contiguous unsent span.  The returned bytes are pointer-stable until
  /// consume() retires them — frame() appends go to the other vector.
  /// When the staged region still has unsent bytes, no promotion happens
  /// (an async op may reference them); the remaining staged span is
  /// returned as-is.  Empty span means nothing to send.
  [[nodiscard]] std::span<const std::byte> stage();

  /// True when stage() would promote or there are already staged unsent
  /// bytes — i.e. a send op should be (re)issued.
  [[nodiscard]] bool has_unsent() const noexcept { return !empty(); }

  /// Retires `n` bytes of the span last returned by stage() (the kernel
  /// wrote them).  On full drain of the staged region, reclaims its
  /// capacity when it outgrew the retain threshold, so a burst does not
  /// pin its high-water allocation for the connection's lifetime.
  void consume(std::size_t n) noexcept;

  /// Writes to `fd` until the queue drains or the socket would block.
  /// Returns true when drained (the caller can disarm EPOLLOUT).  Throws
  /// std::system_error on a hard write error.  Built on stage()/consume()
  /// so epoll and io_uring share one accounting model; must not be mixed
  /// with an in-flight async send on the same buffer.
  [[nodiscard]] bool flush(int fd);

 private:
  /// Staged capacity above this is released on full drain instead of
  /// being kept for reuse.  64 KiB ≈ one read-chunk's worth of replies.
  static constexpr std::size_t kRetainCapacity = 64 * 1024;

  std::vector<std::byte> buf_;      ///< accepts new frames; may reallocate
  std::vector<std::byte> staged_;   ///< offered to the kernel; pointer-stable
  std::size_t staged_pos_ = 0;      ///< first unsent byte within staged_
};

}  // namespace via
