// Typed RPC failure taxonomy.  Every failure a ControllerClient round trip
// can hit maps onto one of four kinds, which is what the retry policy and
// the per-kind telemetry counters key on:
//
//   Timeout  — the request deadline expired (poll-based socket timeout).
//              Retryable; the connection must be dropped first, because a
//              late response would desynchronize the stream.
//   Reset    — the peer closed or reset the connection (including injected
//              resets from FaultyConnection).  Retryable after reconnect.
//   Protocol — the bytes were delivered but wrong: malformed frame, an
//              explicit Error reply, or an unexpected response type.  NOT
//              retryable — the same request would fail the same way.
//   Busy     — the server shed the request under overload (explicit Busy
//              frame).  Retryable after backoff on the same connection.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace via {

enum class RpcErrorKind : std::uint8_t { Timeout = 0, Reset = 1, Protocol = 2, Busy = 3 };

[[nodiscard]] constexpr std::string_view rpc_error_kind_name(RpcErrorKind k) noexcept {
  switch (k) {
    case RpcErrorKind::Timeout:
      return "timeout";
    case RpcErrorKind::Reset:
      return "reset";
    case RpcErrorKind::Protocol:
      return "protocol";
    case RpcErrorKind::Busy:
      return "busy";
  }
  return "?";
}

class RpcError : public std::runtime_error {
 public:
  RpcError(RpcErrorKind kind, const std::string& what)
      : std::runtime_error(std::string(rpc_error_kind_name(kind)) + ": " + what),
        kind_(kind) {}

  [[nodiscard]] RpcErrorKind kind() const noexcept { return kind_; }
  /// Whether a retry of the same request could plausibly succeed.
  [[nodiscard]] bool retryable() const noexcept { return kind_ != RpcErrorKind::Protocol; }

 private:
  RpcErrorKind kind_;
};

}  // namespace via
