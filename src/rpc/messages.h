// Controller protocol messages.  One round trip per call: the client asks
// for a relaying decision before dialing and pushes its measurements after
// hanging up — exactly the per-call controller exchange the paper
// describes in Section 7 ("one measurement update and one control message
// exchange per call").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "core/policy.h"
#include "rpc/framing.h"

namespace via {

enum class MsgType : std::uint8_t {
  DecisionRequest = 1,
  DecisionResponse = 2,
  Report = 3,
  ReportAck = 4,
  Refresh = 5,      ///< testbed drives controller refresh explicitly
  RefreshAck = 6,
  Shutdown = 7,
  GetStats = 8,       ///< live telemetry query (src/obs/ registry snapshot)
  GetStatsResponse = 9,
  /// Server-to-client failure replies (graceful degradation, DESIGN.md
  /// §6f): Error reports a protocol violation before the server closes the
  /// connection; Busy (empty payload) sheds a request under overload — the
  /// client backs off and retries.
  Error = 10,
  Busy = 11,
};

struct DecisionRequest {
  CallId call_id = 0;
  TimeSec time = 0;
  AsId src_as = kInvalidAs;
  AsId dst_as = kInvalidAs;
  /// Candidate options the client pair can use (the testbed registers
  /// these; empty means "controller decides from its own option table").
  std::vector<OptionId> options;

  void encode(WireWriter& w) const;
  [[nodiscard]] static DecisionRequest decode(WireReader& r);
};

struct DecisionResponse {
  CallId call_id = 0;
  OptionId option = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static DecisionResponse decode(WireReader& r);
};

struct ReportMsg {
  Observation obs;

  void encode(WireWriter& w) const;
  [[nodiscard]] static ReportMsg decode(WireReader& r);
};

struct RefreshMsg {
  TimeSec now = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static RefreshMsg decode(WireReader& r);
};

/// Telemetry query: the server renders its metrics registry in the
/// requested format (wire values match obs::StatsFormat: 0 = JSON,
/// 1 = Prometheus text, 2 = human-readable table).
struct StatsRequest {
  std::uint8_t format = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static StatsRequest decode(WireReader& r);
};

struct StatsResponse {
  std::string text;

  void encode(WireWriter& w) const;
  [[nodiscard]] static StatsResponse decode(WireReader& r);
};

/// Payload of an MsgType::Error reply: the request frame type that failed
/// and a short human-readable reason.  The server closes the connection
/// right after sending one.
struct ErrorMsg {
  std::uint8_t request_type = 0;
  std::string text;

  void encode(WireWriter& w) const;
  [[nodiscard]] static ErrorMsg decode(WireReader& r);
};

}  // namespace via
