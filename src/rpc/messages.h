// Controller protocol messages.  One round trip per call: the client asks
// for a relaying decision before dialing and pushes its measurements after
// hanging up — exactly the per-call controller exchange the paper
// describes in Section 7 ("one measurement update and one control message
// exchange per call").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "core/policy.h"
#include "core/tomography.h"
#include "rpc/framing.h"

namespace via {

enum class MsgType : std::uint8_t {
  DecisionRequest = 1,
  DecisionResponse = 2,
  Report = 3,
  ReportAck = 4,
  Refresh = 5,      ///< testbed drives controller refresh explicitly
  RefreshAck = 6,
  Shutdown = 7,
  GetStats = 8,       ///< live telemetry query (src/obs/ registry snapshot)
  GetStatsResponse = 9,
  /// Server-to-client failure replies (graceful degradation, DESIGN.md
  /// §6f): Error reports a protocol violation before the server closes the
  /// connection; Busy (empty payload) sheds a request under overload — the
  /// client backs off and retries.
  Error = 10,
  Busy = 11,
  /// Admin-plane dumps (§6g): the server's span buffer as Chrome
  /// trace-event JSON and its flight recorder as JSONL.  Exempt from
  /// shedding, like GetStats — operators need them most under duress.
  GetTrace = 12,
  GetTraceResponse = 13,
  GetFlightRecord = 14,
  GetFlightRecordResponse = 15,
  /// Federation plane (§6k).  Ping is the lightweight liveness probe (no
  /// request payload; the Pong carries the replica's identity) used by
  /// client health probes and `via_call_client ping`.  GossipSegments is
  /// the replica-to-replica segment-estimate push.  Both are exempt from
  /// shedding: probes and exchange must work exactly when the fleet is
  /// under duress.
  Ping = 16,
  Pong = 17,
  GossipSegments = 18,
  GossipSegmentsAck = 19,
};

struct DecisionRequest {
  CallId call_id = 0;
  TimeSec time = 0;
  AsId src_as = kInvalidAs;
  AsId dst_as = kInvalidAs;
  /// Candidate options the client pair can use (the testbed registers
  /// these; empty means "controller decides from its own option table").
  std::vector<OptionId> options;
  /// Request-tracing id (§6g), appended after the original fields so old
  /// peers interoperate: absent on the wire decodes as 0 ("untraced").
  std::uint64_t trace_id = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static DecisionRequest decode(WireReader& r);
};

struct DecisionResponse {
  CallId call_id = 0;
  OptionId option = 0;
  /// Which replica answered, and under which ring configuration epoch —
  /// appended after the original fields (absent decodes as 0/0, meaning an
  /// unfederated controller), so a client can both attribute the decision
  /// and detect that its own ring config has gone stale (§6k).
  std::uint32_t replica_id = 0;
  std::uint64_t ring_epoch = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static DecisionResponse decode(WireReader& r);
};

struct ReportMsg {
  Observation obs;

  void encode(WireWriter& w) const;
  [[nodiscard]] static ReportMsg decode(WireReader& r);
};

struct RefreshMsg {
  TimeSec now = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static RefreshMsg decode(WireReader& r);
};

/// Telemetry query: the server renders its metrics registry in the
/// requested format (wire values match obs::StatsFormat: 0 = JSON,
/// 1 = Prometheus text, 2 = human-readable table).
struct StatsRequest {
  std::uint8_t format = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static StatsRequest decode(WireReader& r);
};

struct StatsResponse {
  std::string text;
  /// Replica that rendered the dump (appended field; absent decodes as 0)
  /// so multi-replica stats/trace/flightrecord dumps are attributable.
  std::uint32_t replica_id = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static StatsResponse decode(WireReader& r);
};

/// Admin-plane dump request (GetTrace / GetFlightRecord share the shape):
/// `max_bytes` caps the rendered dump so the response stays under the
/// frame payload limit; 0 means "server default" (kMaxPayload minus frame
/// overhead).  The response reuses StatsResponse's single-string payload.
struct DumpRequest {
  std::uint32_t max_bytes = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static DumpRequest decode(WireReader& r);
};

/// Pong payload: the replying replica's identity (§6k).  The Ping request
/// itself carries no payload.
struct PongMsg {
  std::uint32_t replica_id = 0;
  std::uint64_t ring_epoch = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static PongMsg decode(WireReader& r);
};

/// Replica-to-replica segment push (§6k): the sender's identity plus its
/// solver's current segment estimates.  64 bytes per entry on the wire, so
/// the frame-size cap bounds a push to ~16k segments; senders truncate to
/// FederationConfig::exchange_max_segments before encoding.
struct GossipSegmentsMsg {
  std::uint32_t replica_id = 0;
  std::uint64_t ring_epoch = 0;
  std::vector<PeerSegment> segments;

  void encode(WireWriter& w) const;
  [[nodiscard]] static GossipSegmentsMsg decode(WireReader& r);
};

struct GossipSegmentsAckMsg {
  std::uint32_t replica_id = 0;  ///< receiver's identity
  std::uint64_t ring_epoch = 0;
  std::uint32_t accepted = 0;  ///< segment estimates stored by the receiver

  void encode(WireWriter& w) const;
  [[nodiscard]] static GossipSegmentsAckMsg decode(WireReader& r);
};

/// Payload of an MsgType::Error reply: the request frame type that failed
/// and a short human-readable reason.  The server closes the connection
/// right after sending one.
struct ErrorMsg {
  std::uint8_t request_type = 0;
  std::string text;

  void encode(WireWriter& w) const;
  [[nodiscard]] static ErrorMsg decode(WireReader& r);
};

}  // namespace via
