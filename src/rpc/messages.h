// Controller protocol messages.  One round trip per call: the client asks
// for a relaying decision before dialing and pushes its measurements after
// hanging up — exactly the per-call controller exchange the paper
// describes in Section 7 ("one measurement update and one control message
// exchange per call").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "core/policy.h"
#include "rpc/framing.h"

namespace via {

enum class MsgType : std::uint8_t {
  DecisionRequest = 1,
  DecisionResponse = 2,
  Report = 3,
  ReportAck = 4,
  Refresh = 5,      ///< testbed drives controller refresh explicitly
  RefreshAck = 6,
  Shutdown = 7,
  GetStats = 8,       ///< live telemetry query (src/obs/ registry snapshot)
  GetStatsResponse = 9,
  /// Server-to-client failure replies (graceful degradation, DESIGN.md
  /// §6f): Error reports a protocol violation before the server closes the
  /// connection; Busy (empty payload) sheds a request under overload — the
  /// client backs off and retries.
  Error = 10,
  Busy = 11,
  /// Admin-plane dumps (§6g): the server's span buffer as Chrome
  /// trace-event JSON and its flight recorder as JSONL.  Exempt from
  /// shedding, like GetStats — operators need them most under duress.
  GetTrace = 12,
  GetTraceResponse = 13,
  GetFlightRecord = 14,
  GetFlightRecordResponse = 15,
};

struct DecisionRequest {
  CallId call_id = 0;
  TimeSec time = 0;
  AsId src_as = kInvalidAs;
  AsId dst_as = kInvalidAs;
  /// Candidate options the client pair can use (the testbed registers
  /// these; empty means "controller decides from its own option table").
  std::vector<OptionId> options;
  /// Request-tracing id (§6g), appended after the original fields so old
  /// peers interoperate: absent on the wire decodes as 0 ("untraced").
  std::uint64_t trace_id = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static DecisionRequest decode(WireReader& r);
};

struct DecisionResponse {
  CallId call_id = 0;
  OptionId option = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static DecisionResponse decode(WireReader& r);
};

struct ReportMsg {
  Observation obs;

  void encode(WireWriter& w) const;
  [[nodiscard]] static ReportMsg decode(WireReader& r);
};

struct RefreshMsg {
  TimeSec now = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static RefreshMsg decode(WireReader& r);
};

/// Telemetry query: the server renders its metrics registry in the
/// requested format (wire values match obs::StatsFormat: 0 = JSON,
/// 1 = Prometheus text, 2 = human-readable table).
struct StatsRequest {
  std::uint8_t format = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static StatsRequest decode(WireReader& r);
};

struct StatsResponse {
  std::string text;

  void encode(WireWriter& w) const;
  [[nodiscard]] static StatsResponse decode(WireReader& r);
};

/// Admin-plane dump request (GetTrace / GetFlightRecord share the shape):
/// `max_bytes` caps the rendered dump so the response stays under the
/// frame payload limit; 0 means "server default" (kMaxPayload minus frame
/// overhead).  The response reuses StatsResponse's single-string payload.
struct DumpRequest {
  std::uint32_t max_bytes = 0;

  void encode(WireWriter& w) const;
  [[nodiscard]] static DumpRequest decode(WireReader& r);
};

/// Payload of an MsgType::Error reply: the request frame type that failed
/// and a short human-readable reason.  The server closes the connection
/// right after sending one.
struct ErrorMsg {
  std::uint8_t request_type = 0;
  std::string text;

  void encode(WireWriter& w) const;
  [[nodiscard]] static ErrorMsg decode(WireReader& r);
};

}  // namespace via
