// In-process controller fleet (DESIGN.md §6k): the harness the federation
// chaos suites and the apps drive.  Each replica bundles its own ViaPolicy,
// a ControllerServer bound to a stable loopback port, and a SegmentExchange
// wired into the policy's peer-segment source, so a refresh on any replica
// folds whatever its peers last gossiped.  kill()/restart() stop and
// re-bind one replica's server mid-run (the policy and its accumulated
// state survive, like a process that crashed and recovered its port), and
// gossip_once() runs one deterministic push round — every live replica
// renders its solver's segments and pushes them to every live peer — so
// tests control exchange timing explicitly instead of racing a timer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/via_policy.h"
#include "fed/federation.h"
#include "fed/segment_exchange.h"
#include "rpc/server.h"

namespace via {

struct FedFleetConfig {
  std::uint32_t replicas = 3;
  fed::FederationConfig fed;  ///< ports are filled in by start()
  ViaConfig via;              ///< per-replica policy configuration
  ServerConfig server;        ///< base server config (identity filled per replica)
};

class FedFleet {
 public:
  /// The option table and backbone must outlive the fleet.
  FedFleet(const RelayOptionTable& options, BackboneFn backbone, FedFleetConfig config);
  ~FedFleet();

  FedFleet(const FedFleet&) = delete;
  FedFleet& operator=(const FedFleet&) = delete;

  /// Binds every replica to an ephemeral port and starts serving; the
  /// assigned ports land in federation().replica_ports.
  void start();
  void stop();

  /// Stops replica `r`'s server (connections reset; its port is kept for
  /// restart).  The policy and exchange state survive, like a recovered
  /// process.  No-op if already down.
  void kill(std::uint32_t r);
  /// Re-binds replica `r` on its original port and resumes serving.
  void restart(std::uint32_t r);
  [[nodiscard]] bool alive(std::uint32_t r) const noexcept { return servers_[r] != nullptr; }

  /// One synchronous gossip round: every live replica pushes its solver's
  /// segment estimates to every live peer.  Returns the number of
  /// successful pushes.  Unreachable peers are skipped, not fatal.
  std::size_t gossip_once();

  /// The fleet layout for building FederatedClients (ports valid after
  /// start()).
  [[nodiscard]] const fed::FederationConfig& federation() const noexcept { return cfg_.fed; }

  [[nodiscard]] ViaPolicy& policy(std::uint32_t r) noexcept { return *policies_[r]; }
  [[nodiscard]] ControllerServer& server(std::uint32_t r) noexcept { return *servers_[r]; }
  [[nodiscard]] fed::SegmentExchange& exchange(std::uint32_t r) noexcept {
    return *exchanges_[r];
  }
  [[nodiscard]] std::uint32_t replicas() const noexcept { return cfg_.replicas; }

  /// Observations landed across the whole fleet (survivors + the killed
  /// replica's pre-kill count): what the zero-lost-observations assertions
  /// compare against the client-side send count.
  [[nodiscard]] std::int64_t total_reports() const noexcept;
  [[nodiscard]] std::int64_t total_decisions() const noexcept;

 private:
  [[nodiscard]] ServerConfig server_config_for(std::uint32_t r) const;
  void wire(std::uint32_t r);

  const RelayOptionTable* options_;
  BackboneFn backbone_;
  FedFleetConfig cfg_;
  std::vector<std::unique_ptr<ViaPolicy>> policies_;
  std::vector<std::unique_ptr<fed::SegmentExchange>> exchanges_;
  std::vector<std::unique_ptr<ControllerServer>> servers_;
  /// Reports/decisions a replica had served when it was last killed, so
  /// fleet totals survive server teardown.
  std::vector<std::int64_t> reports_before_kill_;
  std::vector<std::int64_t> decisions_before_kill_;
  bool started_ = false;
};

}  // namespace via
