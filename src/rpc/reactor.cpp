#include "rpc/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <system_error>
#include <utility>

namespace via {

// ---------------------------------------------------------------------------
// ReactorBase: machinery shared by the epoll and io_uring backends.

ReactorBase::ReactorBase(TcpListener& listener, FrameHandler on_frames,
                         ProtocolErrorHandler on_protocol_error, ReactorConfig config,
                         ReactorHooks hooks)
    : listener_(&listener),
      on_frames_(std::move(on_frames)),
      on_protocol_error_(std::move(on_protocol_error)),
      config_(config),
      hooks_(std::move(hooks)) {}

std::size_t ReactorBase::queued_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& q : worker_queued_) total += q.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::size_t> ReactorBase::worker_connection_counts() const {
  std::vector<std::size_t> counts;
  counts.reserve(worker_loads_.size());
  for (const auto& load : worker_loads_) counts.push_back(load.load(std::memory_order_relaxed));
  return counts;
}

std::size_t ReactorBase::pick_worker() {
  // Only the acceptor thread picks, so a plain scan is race-free; the
  // loads themselves are atomics because workers decrement them on close.
  std::size_t best = 0;
  std::size_t best_load = worker_loads_[0].load(std::memory_order_relaxed);
  for (std::size_t i = 1; i < worker_loads_.size(); ++i) {
    const std::size_t load = worker_loads_[i].load(std::memory_order_relaxed);
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  worker_loads_[best].fetch_add(1, std::memory_order_relaxed);
  return best;
}

void ReactorBase::sync_queued(ReactorConn& conn) {
  const std::size_t now = conn.out_.approx_bytes();
  if (now != conn.accounted_out_) {
    auto& agg = worker_queued_[conn.worker_idx_];
    if (now > conn.accounted_out_) {
      agg.fetch_add(now - conn.accounted_out_, std::memory_order_relaxed);
    } else {
      agg.fetch_sub(conn.accounted_out_ - now, std::memory_order_relaxed);
    }
    conn.accounted_out_ = now;
  }
  std::size_t peak = peak_conn_queued_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_conn_queued_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

bool ReactorBase::over_high_water(const ReactorConn& conn) const noexcept {
  if (config_.write_buffer_cap > 0 && conn.out_.approx_bytes() >= config_.write_buffer_cap) {
    return true;
  }
  return config_.worker_write_cap > 0 &&
         worker_queued_[conn.worker_idx_].load(std::memory_order_relaxed) >=
             config_.worker_write_cap;
}

bool ReactorBase::under_low_water(const ReactorConn& conn) const noexcept {
  if (config_.write_buffer_cap > 0 && conn.out_.approx_bytes() > config_.write_buffer_cap / 2) {
    return false;
  }
  return config_.worker_write_cap == 0 ||
         worker_queued_[conn.worker_idx_].load(std::memory_order_relaxed) <=
             config_.worker_write_cap / 2;
}

bool ReactorBase::aggregate_wants_sweep(std::size_t worker_idx) const noexcept {
  return config_.worker_write_cap == 0 ||
         worker_queued_[worker_idx].load(std::memory_order_relaxed) <=
             config_.worker_write_cap / 2;
}

void ReactorBase::mark_paused(ReactorConn& conn) {
  if (conn.paused_) return;
  conn.paused_ = true;
  paused_conns_.fetch_add(1, std::memory_order_relaxed);
  pauses_total_.fetch_add(1, std::memory_order_relaxed);
  if (hooks_.on_pause) hooks_.on_pause(conn.fd(), conn.out_.approx_bytes());
}

void ReactorBase::mark_resumed(ReactorConn& conn) {
  if (!conn.paused_) return;
  conn.paused_ = false;
  paused_conns_.fetch_sub(1, std::memory_order_relaxed);
  if (hooks_.on_resume) hooks_.on_resume(conn.fd(), conn.out_.approx_bytes());
}

bool ReactorBase::decode_frames(ReactorConn& conn) {
  const std::size_t before = conn.batch_.size();
  bool ok = true;
  try {
    Frame frame;
    while (conn.in_.next_frame(frame)) conn.batch_.push_back(std::move(frame));
  } catch (const ProtocolError& e) {
    // Oversized header: serve what decoded cleanly, then report and
    // close.  closing_ also stops further reads right away.
    conn.pending_error_ = e.what();
    conn.has_pending_error_ = true;
    conn.closing_ = true;
    ok = false;
  }
  const std::size_t added = conn.batch_.size() - before;
  if (added > 0 && hooks_.on_decoded) hooks_.on_decoded(added);
  return ok;
}

ReactorBase::ServeStatus ReactorBase::serve_batch(ReactorConn& conn) {
  while (conn.batch_pos_ < conn.batch_.size()) {
    const std::span<Frame> rest(conn.batch_.data() + conn.batch_pos_,
                                conn.batch_.size() - conn.batch_pos_);
    std::size_t consumed = 0;
    try {
      consumed = on_frames_(conn, rest);
    } catch (const ProtocolError& e) {
      if (on_protocol_error_) on_protocol_error_(conn, e);
      conn.closing_ = true;
      // The handler's accounting disposed of the whole remainder (it will
      // never be served); nothing left for on_dropped.
      conn.batch_pos_ = conn.batch_.size();
      break;
    } catch (const std::exception&) {
      conn.batch_.clear();
      conn.batch_pos_ = 0;
      return ServeStatus::kError;
    }
    conn.batch_pos_ += std::min(consumed, rest.size());
    if (conn.closing_) {
      // A handler that requests close has disposed of the remainder too.
      conn.batch_pos_ = conn.batch_.size();
      break;
    }
    if (consumed < rest.size()) {
      // Write queue at cap: keep the remainder for redispatch after drain.
      return ServeStatus::kCapped;
    }
  }
  conn.batch_.clear();
  conn.batch_pos_ = 0;
  if (conn.has_pending_error_) {
    conn.has_pending_error_ = false;
    if (on_protocol_error_) on_protocol_error_(conn, ProtocolError(conn.pending_error_));
    conn.closing_ = true;
  }
  if (conn.eof_) conn.closing_ = true;
  return ServeStatus::kDone;
}

void ReactorBase::conn_closed(ReactorConn& conn) {
  const std::size_t dropped = conn.batch_.size() - conn.batch_pos_;
  if (dropped > 0 && hooks_.on_dropped) hooks_.on_dropped(dropped);
  conn.batch_.clear();
  conn.batch_pos_ = 0;
  if (conn.paused_) {
    // Closed while paused: clear the gauge without firing on_resume — the
    // connection never resumed.
    conn.paused_ = false;
    paused_conns_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (conn.accounted_out_ > 0) {
    worker_queued_[conn.worker_idx_].fetch_sub(conn.accounted_out_, std::memory_order_relaxed);
    conn.accounted_out_ = 0;
  }
  worker_loads_[conn.worker_idx_].fetch_sub(1, std::memory_order_relaxed);
  conn_count_.fetch_sub(1, std::memory_order_relaxed);
  {
    const std::lock_guard lock(stop_mutex_);
  }
  stop_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Reactor: the epoll backend.

Reactor::Reactor(TcpListener& listener, FrameHandler on_frames,
                 ProtocolErrorHandler on_protocol_error, ReactorConfig config, ReactorHooks hooks)
    : ReactorBase(listener, std::move(on_frames), std::move(on_protocol_error), config,
                  std::move(hooks)) {}

Reactor::~Reactor() { stop(); }

void Reactor::start() {
  if (started_) return;
  draining_.store(false);
  force_close_.store(false);
  stopping_.store(false);
  conn_count_.store(0);

  const int lfd = listener_->fd();
  const int flags = ::fcntl(lfd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(lfd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw std::system_error(errno, std::generic_category(), "fcntl(O_NONBLOCK)");
  }

  const int nworkers = std::max(1, config_.workers);
  worker_loads_ = std::vector<std::atomic<std::size_t>>(static_cast<std::size_t>(nworkers));
  worker_queued_ = std::vector<std::atomic<std::size_t>>(static_cast<std::size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = static_cast<std::size_t>(i);
    worker->epoll = FdHandle(::epoll_create1(EPOLL_CLOEXEC));
    if (!worker->epoll.valid()) {
      workers_.clear();
      throw std::system_error(errno, std::generic_category(), "epoll_create1");
    }
    worker->wake = FdHandle(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (!worker->wake.valid()) {
      workers_.clear();
      throw std::system_error(errno, std::generic_category(), "eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = worker->wake.get();
    (void)::epoll_ctl(worker->epoll.get(), EPOLL_CTL_ADD, worker->wake.get(), &ev);
    workers_.push_back(std::move(worker));
  }
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = lfd;
    (void)::epoll_ctl(workers_.front()->epoll.get(), EPOLL_CTL_ADD, lfd, &ev);
    workers_.front()->listener_registered = true;
  }
  started_ = true;
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { worker_loop(*w); });
  }
}

void Reactor::wake_all() {
  const std::uint64_t one = 1;
  for (auto& worker : workers_) {
    (void)!::write(worker->wake.get(), &one, sizeof(one));
  }
}

void Reactor::stop() {
  if (!started_) return;
  draining_.store(true);
  wake_all();
  {
    std::unique_lock lock(stop_mutex_);
    (void)stop_cv_.wait_for(lock,
                            std::chrono::milliseconds(std::max(0, config_.drain_timeout_ms)),
                            [this] { return conn_count_.load() == 0; });
  }
  if (conn_count_.load() != 0) {
    force_close_.store(true);
    wake_all();
    // Force-closing is worker-local and fast; the generous bound only
    // covers a worker wedged inside a frame handler, in which case we
    // proceed to join (the handler's return lets the worker exit).
    std::unique_lock lock(stop_mutex_);
    (void)stop_cv_.wait_for(lock, std::chrono::seconds(10),
                            [this] { return conn_count_.load() == 0; });
  }
  stopping_.store(true);
  wake_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  workers_.clear();
  started_ = false;
}

void Reactor::register_conn(Worker& worker, int fd) {
  std::unique_ptr<ReactorConn> conn(new ReactorConn(FdHandle(fd)));
  conn->worker_idx_ = worker.index;
  conn->write_cap_ = config_.write_buffer_cap;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(worker.epoll.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    // conn dtor closes the fd; undo the accept-time load charge.
    worker_loads_[worker.index].fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  conn->interest_ = EPOLLIN;
  worker.conns.emplace(fd, std::move(conn));
  conn_count_.fetch_add(1, std::memory_order_relaxed);
}

void Reactor::accept_ready(Worker& worker) {
  for (;;) {
    const int fd = ::accept4(listener_->fd(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Listener shut down or hard failure: stop watching it.
      if (worker.listener_registered) {
        (void)::epoll_ctl(worker.epoll.get(), EPOLL_CTL_DEL, listener_->fd(), nullptr);
        worker.listener_registered = false;
      }
      return;
    }
    if (draining_.load()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (hooks_.on_accept) hooks_.on_accept();
    // Least-connections pinning: fd churn under a connect storm skews a
    // modulo pick badly; the emptiest worker is the right home.  The pick
    // charges the target's load counter, pin-for-life as before.
    Worker& target = *workers_[pick_worker()];
    if (&target == &worker) {
      register_conn(worker, fd);
    } else {
      {
        const std::lock_guard lock(target.pending_mutex);
        target.pending.push_back(fd);
      }
      const std::uint64_t tick = 1;
      (void)!::write(target.wake.get(), &tick, sizeof(tick));
    }
  }
}

void Reactor::adopt_pending(Worker& worker) {
  std::vector<int> fds;
  {
    const std::lock_guard lock(worker.pending_mutex);
    fds.swap(worker.pending);
  }
  for (const int fd : fds) {
    if (draining_.load()) {
      ::close(fd);
      worker_loads_[worker.index].fetch_sub(1, std::memory_order_relaxed);
    } else {
      register_conn(worker, fd);
    }
  }
}

void Reactor::close_conn(Worker& worker, ReactorConn& conn) {
  if (conn.dead_) return;
  const int fd = conn.fd();
  (void)::epoll_ctl(worker.epoll.get(), EPOLL_CTL_DEL, fd, nullptr);
  conn.dead_ = true;
  const auto it = worker.conns.find(fd);
  if (it != worker.conns.end() && it->second.get() == &conn) {
    // Park the object until the end of the round: the ready list may still
    // hold a pointer to it (the dead_ flag skips it).
    worker.graveyard.push_back(std::move(it->second));
    worker.conns.erase(it);
  }
  conn.fd_.reset();
  conn_closed(conn);
}

void Reactor::conn_failure(Worker& worker, ReactorConn& conn) {
  if (hooks_.on_conn_error) hooks_.on_conn_error();
  close_conn(worker, conn);
}

void Reactor::update_interest(Worker& worker, ReactorConn& conn, bool want_write) {
  // A closing connection is never read again — dropping EPOLLIN is what
  // keeps a still-talking peer from spinning the level-triggered loop.
  // A paused connection is not read either: that is the backpressure.
  std::uint32_t events = 0;
  if (!conn.closing_ && !conn.paused_) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  if (events == conn.interest_) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = conn.fd();
  (void)::epoll_ctl(worker.epoll.get(), EPOLL_CTL_MOD, conn.fd(), &ev);
  conn.interest_ = events;
}

void Reactor::finish_io(Worker& worker, ReactorConn& conn) {
  if (conn.dead_) return;
  bool drained = false;
  try {
    drained = conn.out_.flush(conn.fd());
  } catch (const std::system_error&) {
    conn_failure(worker, conn);
    return;
  }
  sync_queued(conn);
  if (drained && conn.closing_) {
    close_conn(worker, conn);
    return;
  }
  if (!conn.closing_ && !conn.paused_ &&
      (conn.batch_pos_ < conn.batch_.size() || over_high_water(conn))) {
    // Backpressure: stop reading until the socket drains below low water.
    // A kept batch remainder implies the per-connection cap was hit; a
    // drained connection can still pause on the worker-aggregate cap, and
    // with no EPOLLOUT to wake it, the sweep list resumes it later.
    mark_paused(conn);
    if (drained) list_for_sweep(worker, conn);
  }
  update_interest(worker, conn, !drained);
}

void Reactor::dispatch(Worker& worker, ReactorConn& conn) {
  if (serve_batch(conn) == ServeStatus::kError) {
    conn_failure(worker, conn);
    return;
  }
  finish_io(worker, conn);
}

void Reactor::list_for_sweep(Worker& worker, ReactorConn& conn) {
  if (conn.agg_listed_) return;
  conn.agg_listed_ = true;
  worker.agg_paused_fds.push_back(conn.fd());
}

void Reactor::maybe_resume(Worker& worker, ReactorConn& conn) {
  if (conn.dead_ || !conn.paused_ || conn.closing_) return;
  if (!under_low_water(conn)) {
    // Still over the aggregate low-water mark.  A connection that paused
    // with socket bytes pending can reach here on its final EPOLLOUT fully
    // drained; nothing will ever wake it again, so park it for the sweep.
    if (conn.out_.empty()) list_for_sweep(worker, conn);
    return;
  }
  mark_resumed(conn);
  if (conn.batch_pos_ < conn.batch_.size()) {
    // Serve the batch remainder kept at pause time; this may re-pause.
    dispatch(worker, conn);
  } else {
    update_interest(worker, conn, !conn.out_.empty());
  }
}

void Reactor::sweep_paused(Worker& worker) {
  if (worker.agg_paused_fds.empty() || !aggregate_wants_sweep(worker.index)) return;
  // Swap the list out: maybe_resume can re-list a still-stuck connection
  // (via list_for_sweep) while we iterate.
  std::vector<int> current;
  current.swap(worker.agg_paused_fds);
  for (const int fd : current) {
    const auto it = worker.conns.find(fd);
    if (it == worker.conns.end()) continue;  // closed; fd may have been reused
    ReactorConn& conn = *it->second;
    conn.agg_listed_ = false;
    if (!conn.paused_) continue;
    maybe_resume(worker, conn);
    if (!conn.dead_ && conn.paused_) list_for_sweep(worker, conn);
  }
}

void Reactor::read_and_decode(Worker& worker, ReactorConn& conn) {
  if (conn.closing_ || conn.paused_) return;
  const std::span<std::byte> dst = conn.in_.writable(config_.read_chunk);
  const ssize_t r = ::recv(conn.fd(), dst.data(), dst.size(), 0);
  if (r > 0) {
    conn.in_.commit(static_cast<std::size_t>(r));
    (void)decode_frames(conn);
    return;
  }
  if (r == 0) {
    if (conn.in_.buffered() > 0) {
      // Mid-frame EOF: the peer died partway through a frame.
      conn_failure(worker, conn);
      return;
    }
    conn.eof_ = true;
    if (conn.batch_.empty()) {
      // Nothing left to serve; flush any pending replies and close.
      conn.closing_ = true;
      finish_io(worker, conn);
    }
    return;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
  conn_failure(worker, conn);
}

void Reactor::worker_loop(Worker& worker) {
  const bool acceptor = (&worker == workers_.front().get());
  std::array<epoll_event, 64> events{};
  std::vector<ReactorConn*> ready;
  for (;;) {
    const int n =
        ::epoll_wait(worker.epoll.get(), events.data(), static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    bool woken = false;
    ready.clear();
    // Phase 1: drain sockets and decode frames (on_decoded fires per
    // connection, before anything is served — the burst-shedding window).
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == worker.wake.get()) {
        std::uint64_t tick = 0;
        (void)!::read(fd, &tick, sizeof(tick));
        woken = true;
        continue;
      }
      if (acceptor && fd == listener_->fd()) {
        accept_ready(worker);
        continue;
      }
      const auto it = worker.conns.find(fd);
      if (it == worker.conns.end()) continue;
      ReactorConn& conn = *it->second;
      if (conn.dead_) continue;
      if ((ev & EPOLLOUT) != 0) {
        finish_io(worker, conn);
        if (conn.dead_) continue;
        maybe_resume(worker, conn);
        if (conn.dead_) continue;
      }
      if ((ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        if (conn.paused_) {
          // EPOLLIN is disarmed while paused; HUP/ERR still surface.  The
          // peer is gone, so the queued replies can never drain — fail it.
          if ((ev & (EPOLLHUP | EPOLLERR)) != 0) conn_failure(worker, conn);
          continue;
        }
        read_and_decode(worker, conn);
        if (!conn.dead_) ready.push_back(&conn);
      }
    }
    // Phase 2: dispatch each connection's decoded batch and flush replies.
    for (ReactorConn* conn : ready) {
      if (!conn->dead_) dispatch(worker, *conn);
    }
    // Aggregate-cap recovery: resume connections that paused while fully
    // drained (no EPOLLOUT will ever wake them).
    sweep_paused(worker);
    if (woken) {
      adopt_pending(worker);
      if (draining_.load() && acceptor && worker.listener_registered) {
        (void)::epoll_ctl(worker.epoll.get(), EPOLL_CTL_DEL, listener_->fd(), nullptr);
        worker.listener_registered = false;
      }
      if (force_close_.load()) {
        std::vector<ReactorConn*> all;
        all.reserve(worker.conns.size());
        for (auto& [cfd, conn] : worker.conns) all.push_back(conn.get());
        for (ReactorConn* conn : all) {
          if (conn->dead_) continue;
          if (hooks_.on_forced_close) hooks_.on_forced_close(conn->fd());
          close_conn(worker, *conn);
        }
      }
    }
    worker.graveyard.clear();
    if (stopping_.load()) return;
  }
}

}  // namespace via
