#include "rpc/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <system_error>
#include <utility>

namespace via {

Reactor::Reactor(TcpListener& listener, FrameHandler on_frames,
                 ProtocolErrorHandler on_protocol_error, ReactorConfig config, ReactorHooks hooks)
    : listener_(&listener),
      on_frames_(std::move(on_frames)),
      on_protocol_error_(std::move(on_protocol_error)),
      config_(config),
      hooks_(std::move(hooks)) {}

Reactor::~Reactor() { stop(); }

void Reactor::start() {
  if (started_) return;
  draining_.store(false);
  force_close_.store(false);
  stopping_.store(false);
  conn_count_.store(0);

  const int lfd = listener_->fd();
  const int flags = ::fcntl(lfd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(lfd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw std::system_error(errno, std::generic_category(), "fcntl(O_NONBLOCK)");
  }

  const int nworkers = std::max(1, config_.workers);
  for (int i = 0; i < nworkers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->epoll = FdHandle(::epoll_create1(EPOLL_CLOEXEC));
    if (!worker->epoll.valid()) {
      workers_.clear();
      throw std::system_error(errno, std::generic_category(), "epoll_create1");
    }
    worker->wake = FdHandle(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (!worker->wake.valid()) {
      workers_.clear();
      throw std::system_error(errno, std::generic_category(), "eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = worker->wake.get();
    (void)::epoll_ctl(worker->epoll.get(), EPOLL_CTL_ADD, worker->wake.get(), &ev);
    workers_.push_back(std::move(worker));
  }
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = lfd;
    (void)::epoll_ctl(workers_.front()->epoll.get(), EPOLL_CTL_ADD, lfd, &ev);
    workers_.front()->listener_registered = true;
  }
  started_ = true;
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { worker_loop(*w); });
  }
}

void Reactor::wake_all() {
  const std::uint64_t one = 1;
  for (auto& worker : workers_) {
    (void)!::write(worker->wake.get(), &one, sizeof(one));
  }
}

void Reactor::stop() {
  if (!started_) return;
  draining_.store(true);
  wake_all();
  {
    std::unique_lock lock(stop_mutex_);
    (void)stop_cv_.wait_for(lock,
                            std::chrono::milliseconds(std::max(0, config_.drain_timeout_ms)),
                            [this] { return conn_count_.load() == 0; });
  }
  if (conn_count_.load() != 0) {
    force_close_.store(true);
    wake_all();
    // Force-closing is worker-local and fast; the generous bound only
    // covers a worker wedged inside a frame handler, in which case we
    // proceed to join (the handler's return lets the worker exit).
    std::unique_lock lock(stop_mutex_);
    (void)stop_cv_.wait_for(lock, std::chrono::seconds(10),
                            [this] { return conn_count_.load() == 0; });
  }
  stopping_.store(true);
  wake_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  workers_.clear();
  started_ = false;
}

void Reactor::register_conn(Worker& worker, int fd) {
  std::unique_ptr<ReactorConn> conn(new ReactorConn(FdHandle(fd)));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(worker.epoll.get(), EPOLL_CTL_ADD, fd, &ev) != 0) return;  // conn dtor closes
  conn->interest_ = EPOLLIN;
  worker.conns.emplace(fd, std::move(conn));
  conn_count_.fetch_add(1, std::memory_order_relaxed);
}

void Reactor::accept_ready(Worker& worker) {
  for (;;) {
    const int fd = ::accept4(listener_->fd(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Listener shut down or hard failure: stop watching it.
      if (worker.listener_registered) {
        (void)::epoll_ctl(worker.epoll.get(), EPOLL_CTL_DEL, listener_->fd(), nullptr);
        worker.listener_registered = false;
      }
      return;
    }
    if (draining_.load()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (hooks_.on_accept) hooks_.on_accept();
    Worker& target = *workers_[static_cast<std::size_t>(fd) % workers_.size()];
    if (&target == &worker) {
      register_conn(worker, fd);
    } else {
      {
        const std::lock_guard lock(target.pending_mutex);
        target.pending.push_back(fd);
      }
      const std::uint64_t tick = 1;
      (void)!::write(target.wake.get(), &tick, sizeof(tick));
    }
  }
}

void Reactor::adopt_pending(Worker& worker) {
  std::vector<int> fds;
  {
    const std::lock_guard lock(worker.pending_mutex);
    fds.swap(worker.pending);
  }
  for (const int fd : fds) {
    if (draining_.load()) {
      ::close(fd);
    } else {
      register_conn(worker, fd);
    }
  }
}

void Reactor::close_conn(Worker& worker, ReactorConn& conn) {
  if (conn.dead_) return;
  const int fd = conn.fd();
  (void)::epoll_ctl(worker.epoll.get(), EPOLL_CTL_DEL, fd, nullptr);
  conn.dead_ = true;
  const auto it = worker.conns.find(fd);
  if (it != worker.conns.end() && it->second.get() == &conn) {
    // Park the object until the end of the round: the ready list may still
    // hold a pointer to it (the dead_ flag skips it).
    worker.graveyard.push_back(std::move(it->second));
    worker.conns.erase(it);
  }
  conn.fd_.reset();
  conn_count_.fetch_sub(1, std::memory_order_relaxed);
  {
    const std::lock_guard lock(stop_mutex_);
  }
  stop_cv_.notify_all();
}

void Reactor::conn_failure(Worker& worker, ReactorConn& conn) {
  if (hooks_.on_conn_error) hooks_.on_conn_error();
  close_conn(worker, conn);
}

void Reactor::update_interest(Worker& worker, ReactorConn& conn, bool want_write) {
  // A closing connection is never read again — dropping EPOLLIN is what
  // keeps a still-talking peer from spinning the level-triggered loop.
  std::uint32_t events = 0;
  if (!conn.closing_) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  if (events == conn.interest_) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = conn.fd();
  (void)::epoll_ctl(worker.epoll.get(), EPOLL_CTL_MOD, conn.fd(), &ev);
  conn.interest_ = events;
}

void Reactor::finish_io(Worker& worker, ReactorConn& conn) {
  if (conn.dead_) return;
  bool drained = false;
  try {
    drained = conn.out_.flush(conn.fd());
  } catch (const std::system_error&) {
    conn_failure(worker, conn);
    return;
  }
  if (drained && conn.closing_) {
    close_conn(worker, conn);
    return;
  }
  update_interest(worker, conn, !drained);
}

void Reactor::read_and_decode(Worker& worker, ReactorConn& conn) {
  if (conn.closing_) return;
  const std::span<std::byte> dst = conn.in_.writable(config_.read_chunk);
  const ssize_t r = ::recv(conn.fd(), dst.data(), dst.size(), 0);
  if (r > 0) {
    conn.in_.commit(static_cast<std::size_t>(r));
    try {
      Frame frame;
      while (conn.in_.next_frame(frame)) conn.batch_.push_back(std::move(frame));
    } catch (const ProtocolError& e) {
      // Oversized header: serve what decoded cleanly, then report and
      // close.  closing_ also stops further reads right away.
      conn.pending_error_ = e.what();
      conn.has_pending_error_ = true;
      conn.closing_ = true;
    }
    if (!conn.batch_.empty() && hooks_.on_decoded) hooks_.on_decoded(conn.batch_.size());
    return;
  }
  if (r == 0) {
    if (conn.in_.buffered() > 0) {
      // Mid-frame EOF: the peer died partway through a frame.
      conn_failure(worker, conn);
      return;
    }
    conn.eof_ = true;
    if (conn.batch_.empty()) {
      // Nothing left to serve; flush any pending replies and close.
      conn.closing_ = true;
      finish_io(worker, conn);
    }
    return;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
  conn_failure(worker, conn);
}

void Reactor::dispatch(Worker& worker, ReactorConn& conn) {
  if (!conn.batch_.empty()) {
    try {
      on_frames_(conn, conn.batch_);
    } catch (const ProtocolError& e) {
      if (on_protocol_error_) on_protocol_error_(conn, e);
      conn.closing_ = true;
    } catch (const std::exception&) {
      conn_failure(worker, conn);
      return;
    }
    conn.batch_.clear();
  }
  if (conn.dead_) return;
  if (conn.has_pending_error_) {
    conn.has_pending_error_ = false;
    if (on_protocol_error_) on_protocol_error_(conn, ProtocolError(conn.pending_error_));
    conn.closing_ = true;
  }
  if (conn.eof_) conn.closing_ = true;
  finish_io(worker, conn);
}

void Reactor::worker_loop(Worker& worker) {
  const bool acceptor = (&worker == workers_.front().get());
  std::array<epoll_event, 64> events{};
  std::vector<ReactorConn*> ready;
  for (;;) {
    const int n =
        ::epoll_wait(worker.epoll.get(), events.data(), static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    bool woken = false;
    ready.clear();
    // Phase 1: drain sockets and decode frames (on_decoded fires per
    // connection, before anything is served — the burst-shedding window).
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == worker.wake.get()) {
        std::uint64_t tick = 0;
        (void)!::read(fd, &tick, sizeof(tick));
        woken = true;
        continue;
      }
      if (acceptor && fd == listener_->fd()) {
        accept_ready(worker);
        continue;
      }
      const auto it = worker.conns.find(fd);
      if (it == worker.conns.end()) continue;
      ReactorConn& conn = *it->second;
      if (conn.dead_) continue;
      if ((ev & EPOLLOUT) != 0) {
        finish_io(worker, conn);
        if (conn.dead_) continue;
      }
      if ((ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        read_and_decode(worker, conn);
        if (!conn.dead_) ready.push_back(&conn);
      }
    }
    // Phase 2: dispatch each connection's decoded batch and flush replies.
    for (ReactorConn* conn : ready) {
      if (!conn->dead_) dispatch(worker, *conn);
    }
    if (woken) {
      adopt_pending(worker);
      if (draining_.load() && acceptor && worker.listener_registered) {
        (void)::epoll_ctl(worker.epoll.get(), EPOLL_CTL_DEL, listener_->fd(), nullptr);
        worker.listener_registered = false;
      }
      if (force_close_.load()) {
        std::vector<ReactorConn*> all;
        all.reserve(worker.conns.size());
        for (auto& [cfd, conn] : worker.conns) all.push_back(conn.get());
        for (ReactorConn* conn : all) {
          if (conn->dead_) continue;
          if (hooks_.on_forced_close) hooks_.on_forced_close(conn->fd());
          close_conn(worker, *conn);
        }
      }
    }
    worker.graveyard.clear();
    if (stopping_.load()) return;
  }
}

}  // namespace via
