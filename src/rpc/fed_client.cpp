#include "rpc/fed_client.h"

#include <utility>

#include "common/relay_option.h"
#include "common/types.h"

namespace via {

namespace {

/// Inner clients must surface every error to the failover layer; the
/// direct-fallback decision belongs to the FederatedClient.
ClientConfig inner_config(ClientConfig rpc) {
  rpc.fallback_direct = false;
  return rpc;
}

}  // namespace

FederatedClient::FederatedClient(fed::FederationConfig fed, FedClientConfig config)
    : fed_(std::move(fed)),
      config_(config),
      ring_(fed_.replicas(), fed_.ring_seed, fed_.ring_vnodes) {
  replicas_.resize(fed_.replicas());
  for (std::uint32_t r = 0; r < fed_.replicas(); ++r) {
    replicas_[r].client = std::make_unique<ControllerClient>(fed_.replica_ports[r],
                                                             inner_config(config_.rpc));
  }
}

FederatedClient::FederatedClient(fed::FederationConfig fed,
                                 std::vector<ControllerClient::ConnectionFactory> factories,
                                 FedClientConfig config)
    : fed_(std::move(fed)),
      config_(config),
      ring_(fed_.replicas(), fed_.ring_seed, fed_.ring_vnodes) {
  replicas_.resize(fed_.replicas());
  for (std::uint32_t r = 0; r < fed_.replicas(); ++r) {
    replicas_[r].client = std::make_unique<ControllerClient>(std::move(factories[r]),
                                                             inner_config(config_.rpc));
  }
}

void FederatedClient::attach_metrics(obs::MetricsRegistry* registry) {
  for (Replica& rep : replicas_) rep.client->attach_metrics(registry);
  if (registry == nullptr) {
    tel_rehomed_ = nullptr;
    tel_down_ = nullptr;
    tel_recovered_ = nullptr;
    tel_epoch_bumps_ = nullptr;
    tel_fallback_ = nullptr;
    tel_buffered_ = nullptr;
    tel_flushed_ = nullptr;
    tel_lost_ = nullptr;
    tel_pending_ = nullptr;
    return;
  }
  tel_rehomed_ = &registry->counter("fed.client.rehomed_requests");
  tel_down_ = &registry->counter("fed.client.replica_down");
  tel_recovered_ = &registry->counter("fed.client.replica_recovered");
  tel_epoch_bumps_ = &registry->counter("fed.client.ring_epoch_bumps");
  tel_fallback_ = &registry->counter("fed.client.fallback_direct");
  tel_buffered_ = &registry->counter("fed.client.reports_buffered");
  tel_flushed_ = &registry->counter("fed.client.reports_flushed");
  tel_lost_ = &registry->counter("fed.client.reports_lost");
  tel_pending_ = &registry->gauge("fed.client.pending_reports");
}

void FederatedClient::attach_flight(obs::FlightRecorder* flight) noexcept {
  flight_ = flight;
  for (Replica& rep : replicas_) rep.client->attach_flight(flight);
}

bool FederatedClient::admit(std::uint32_t replica) {
  Replica& rep = replicas_[replica];
  if (rep.state == ReplicaState::kUp) return true;
  // Probation (§6k): a down replica gets no traffic until a Ping proves it
  // back, and at most one probe per probe_period — a flapping replica
  // cannot thrash traffic back and forth between probes.
  const auto now = Clock::now();
  if (now < rep.next_probe) return false;
  try {
    (void)rep.client->ping();
  } catch (const RpcError&) {
    rep.next_probe = Clock::now() + std::chrono::milliseconds(fed_.probe_period_ms);
    return false;
  }
  rep.state = ReplicaState::kUp;
  rep.consecutive_failures = 0;
  ++recovered_;
  if (tel_recovered_ != nullptr) tel_recovered_->inc();
  if (flight_ != nullptr) {
    flight_->record(obs::FlightEventKind::ReplicaRecovered,
                    "probation probe succeeded; replica back in rotation",
                    static_cast<std::int64_t>(replica));
  }
  (void)flush_pending_reports();
  return true;
}

void FederatedClient::note_success(std::uint32_t replica) {
  replicas_[replica].consecutive_failures = 0;
}

void FederatedClient::note_failure(std::uint32_t replica) {
  Replica& rep = replicas_[replica];
  ++rep.consecutive_failures;
  if (rep.state == ReplicaState::kUp && rep.consecutive_failures >= fed_.fail_threshold) {
    rep.state = ReplicaState::kDown;
    rep.next_probe = Clock::now() + std::chrono::milliseconds(fed_.probe_period_ms);
    rep.rehome_logged = false;
    ++marked_down_;
    if (tel_down_ != nullptr) tel_down_->inc();
    if (flight_ != nullptr) {
      flight_->record(obs::FlightEventKind::ReplicaDown,
                      "consecutive failures tripped health threshold",
                      static_cast<std::int64_t>(replica), rep.consecutive_failures);
    }
  }
}

void FederatedClient::check_ring_epoch(std::uint32_t replica) {
  const std::uint64_t theirs = replicas_[replica].client->last_ring_epoch();
  if (theirs == 0 || theirs == fed_.ring_epoch) return;
  ++epoch_bumps_;
  if (tel_epoch_bumps_ != nullptr) tel_epoch_bumps_->inc();
  if (flight_ != nullptr) {
    flight_->record(obs::FlightEventKind::RingEpochBump,
                    "reply carried a different ring epoch; client config is stale",
                    static_cast<std::int64_t>(fed_.ring_epoch),
                    static_cast<std::int64_t>(theirs));
  }
  // Adopt the observed epoch so a steady-state mismatch records once per
  // change instead of once per request.
  fed_.ring_epoch = theirs;
}

OptionId FederatedClient::request_decision(const DecisionRequest& request) {
  const std::vector<std::uint32_t> order =
      ring_.route(as_pair_key(request.src_as, request.dst_as));
  const std::uint32_t owner = order.front();
  for (const std::uint32_t r : order) {
    if (!admit(r)) continue;
    try {
      const OptionId option = replicas_[r].client->request_decision(request);
      note_success(r);
      check_ring_epoch(r);
      if (r != owner && replicas_[owner].state == ReplicaState::kDown) {
        ++rehomed_requests_;
        if (tel_rehomed_ != nullptr) tel_rehomed_->inc();
        if (!replicas_[owner].rehome_logged) {
          replicas_[owner].rehome_logged = true;
          if (flight_ != nullptr) {
            flight_->record(obs::FlightEventKind::ReplicaRehomed,
                            "shard traffic re-homed to ring successor",
                            static_cast<std::int64_t>(owner), static_cast<std::int64_t>(r));
          }
        }
      }
      return option;
    } catch (const RpcError& e) {
      if (e.kind() == RpcErrorKind::Protocol) throw;  // a bug, not an outage
      note_failure(r);
    }
  }
  // Every replica refused or is down: the full-outage path.
  if (!config_.fallback_direct) {
    throw RpcError(RpcErrorKind::Timeout, "every controller replica unreachable");
  }
  ++fallbacks_;
  if (tel_fallback_ != nullptr) tel_fallback_->inc();
  if (flight_ != nullptr) {
    flight_->record(obs::FlightEventKind::RpcFallback,
                    "all replicas unreachable; call served direct", request.call_id);
  }
  return RelayOptionTable::direct_id();
}

bool FederatedClient::try_deliver(const Observation& obs) {
  const std::vector<std::uint32_t> order = ring_.route(as_pair_key(obs.src_as, obs.dst_as));
  for (const std::uint32_t r : order) {
    if (!admit(r)) continue;
    try {
      replicas_[r].client->report(obs);
      note_success(r);
      return true;
    } catch (const RpcError& e) {
      if (e.kind() == RpcErrorKind::Protocol) throw;
      note_failure(r);
    }
  }
  return false;
}

void FederatedClient::report(const Observation& obs) {
  // Oldest first: queued observations from the outage window land before
  // this call's, preserving arrival order per client.
  (void)flush_pending_reports();
  if (try_deliver(obs)) return;
  if (pending_.size() >= config_.max_pending_reports && !pending_.empty()) {
    pending_.pop_front();
    ++lost_;
    if (tel_lost_ != nullptr) tel_lost_->inc();
  }
  pending_.push_back(obs);
  ++buffered_;
  if (tel_buffered_ != nullptr) tel_buffered_->inc();
  if (tel_pending_ != nullptr) tel_pending_->set(static_cast<std::int64_t>(pending_.size()));
}

std::size_t FederatedClient::flush_pending_reports() {
  if (flushing_ || pending_.empty()) return 0;
  flushing_ = true;
  std::size_t delivered = 0;
  while (!pending_.empty()) {
    if (!try_deliver(pending_.front())) break;
    pending_.pop_front();
    ++delivered;
  }
  flushing_ = false;
  flushed_ += static_cast<std::int64_t>(delivered);
  if (delivered > 0 && tel_flushed_ != nullptr) {
    tel_flushed_->inc(static_cast<std::int64_t>(delivered));
  }
  if (tel_pending_ != nullptr) tel_pending_->set(static_cast<std::int64_t>(pending_.size()));
  return delivered;
}

bool FederatedClient::probe_replica(std::uint32_t replica) {
  if (replicas_[replica].state == ReplicaState::kUp) return true;
  return admit(replica);
}

void FederatedClient::refresh(TimeSec now) {
  for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
    if (replicas_[r].state != ReplicaState::kUp) continue;
    try {
      replicas_[r].client->refresh(now);
      note_success(r);
    } catch (const RpcError& e) {
      if (e.kind() == RpcErrorKind::Protocol) throw;
      note_failure(r);
    }
  }
}

}  // namespace via
