// Admin-plane HTTP sidecar (§6g): a minimal HTTP/1.0 server exposing the
// controller's observability surface to standard tooling —
//
//   /metrics       Prometheus exposition (scrapeable as-is)
//   /healthz       liveness ("ok\n", 200)
//   /varz          JSON vitals (uptime, counters snapshot, host extras)
//   /trace         span buffer as Chrome trace-event JSON (Perfetto)
//   /flightrecord  flight recorder as JSONL (newest events)
//
// One accept thread, one connection at a time, bounded request read:
// admin traffic is a human or a scraper, never the data path, so the
// implementation favors smallness over throughput.  Binds 127.0.0.1 only
// (via TcpListener), like the RPC plane.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/telemetry.h"
#include "rpc/socket.h"

namespace via {

class AdminHttpServer {
 public:
  /// Extra JSON fields ("\"k\":v,..." without braces) appended to /varz by
  /// the host; empty string adds nothing.
  using VarzFn = std::function<std::string()>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral).  `telemetry` must outlive the
  /// server; it is read-snapshotted per request, never mutated.
  explicit AdminHttpServer(obs::Telemetry& telemetry, std::uint16_t port = 0);
  ~AdminHttpServer();

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }
  void set_varz(VarzFn fn) { varz_extra_ = std::move(fn); }

 private:
  void serve_loop();
  void handle(TcpConnection conn);
  /// Routes one request path to its response body + content type; returns
  /// false for unknown paths (404).
  [[nodiscard]] bool route(const std::string& path, std::string& body,
                           std::string& content_type);

  obs::Telemetry* telemetry_;
  VarzFn varz_extra_;
  TcpListener listener_;
  std::thread serve_thread_;
  std::atomic<bool> running_{false};
};

}  // namespace via
