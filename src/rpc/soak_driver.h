// Out-of-process soak client for the event-driven serving backends
// (DESIGN.md §6j).  A soak at 10k connections needs the client-side fds
// in a *different* process than the server under test: with both ends in
// one process, 10240 server fds + 10240 client fds blow straight through
// RLIMIT_NOFILE.  run_soak() drives the pipelined client workload
// in-process; spawn_soak() runs the same workload in a child
// (apps/via_soak_driver) and reads the SoakResult back as one JSON line
// over a stdout pipe, so the parent only spends a single pipe fd.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace via {

struct SoakConfig {
  std::uint16_t port = 0;    ///< controller port on 127.0.0.1
  int connections = 64;      ///< concurrent client connections
  int rounds = 8;            ///< pipelined bursts per connection
  int depth = 8;             ///< frames per burst (inflight per connection)
  int threads = 8;           ///< client driver threads
  bool reports = false;      ///< send Reports (soak) instead of DecisionRequests (bench)
  int recv_timeout_ms = 30000;  ///< per-recv deadline; a stuck soak fails, not hangs
  int as_count = 100;        ///< synthetic src/dst AS id range [0, as_count)
  /// Candidate option ids attached to every DecisionRequest (the parent
  /// knows which ids its policy's table holds).  Empty = "controller
  /// decides from its own option table".
  std::vector<std::int32_t> options;
};

struct SoakResult {
  bool ok = false;           ///< all connections served every frame
  std::int64_t connected = 0;
  std::int64_t sent = 0;     ///< request frames written
  std::int64_t received = 0; ///< reply frames read back
  std::int64_t mismatched = 0;  ///< replies of the wrong type / wrong call_id
  double seconds = 0.0;      ///< timed span of the request/reply rounds
  double rps = 0.0;          ///< received / seconds
  std::string error;         ///< first failure, empty when ok

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static std::optional<SoakResult> from_json(std::string_view line);
};

/// Raises RLIMIT_NOFILE's soft limit to the hard limit (best effort) so a
/// high-connection run is not capped by a conservative default soft limit.
void raise_fd_limit() noexcept;

/// Drives the workload from this process.  Never throws: failures come
/// back as ok == false with `error` set.
[[nodiscard]] SoakResult run_soak(const SoakConfig& config);

/// Path to the spawnable driver binary: $VIA_SOAK_DRIVER when set, else
/// the build-time location of apps/via_soak_driver.  Empty when neither
/// resolves to an executable file.
[[nodiscard]] std::string soak_driver_path();

/// Runs the workload in a posix_spawn'd child so its client fds count
/// against the child's RLIMIT_NOFILE, not this process's.  Returns
/// nullopt (and sets *error when given) if the driver binary is missing
/// or the child dies without producing a parseable result line.
[[nodiscard]] std::optional<SoakResult> spawn_soak(const SoakConfig& config,
                                                   std::string* error = nullptr);

/// main() body of apps/via_soak_driver: parses --port/--conns/... flags,
/// runs run_soak, prints SoakResult::to_json() on stdout.  Exit 0 when
/// the soak ran to completion (even with ok == false — the parent reads
/// the verdict from the JSON), 2 on bad usage.
int soak_driver_main(int argc, char** argv);

}  // namespace via
