#include "rpc/uring_reactor.h"

#include <linux/io_uring.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <system_error>
#include <utility>

namespace via {

namespace {

// The image ships linux/io_uring.h but not liburing, so the three syscalls
// are invoked directly.
int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, ring_fd, to_submit, min_complete, flags, nullptr, 0));
}

int sys_io_uring_register(int ring_fd, unsigned opcode, void* arg, unsigned nr_args) {
  return static_cast<int>(::syscall(__NR_io_uring_register, ring_fd, opcode, arg, nr_args));
}

// user_data layout: kind in bits 0..7, fd in bits 8..39, a 24-bit
// generation tag in bits 40..63.  The generation guards against a CQE
// landing after its connection died and the fd number was reused.
enum class OpKind : std::uint8_t {
  kAccept = 1,
  kRecv = 2,
  kSend = 3,
  kWake = 4,
  kCancel = 5,
};

constexpr std::uint64_t make_user_data(OpKind kind, int fd, std::uint32_t gen) {
  return static_cast<std::uint64_t>(kind) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(fd)) << 8) |
         (static_cast<std::uint64_t>(gen & 0xFFFFFFU) << 40);
}

constexpr OpKind user_data_kind(std::uint64_t ud) {
  return static_cast<OpKind>(ud & 0xFFU);
}

constexpr int user_data_fd(std::uint64_t ud) {
  return static_cast<int>((ud >> 8) & 0xFFFFFFFFU);
}

constexpr std::uint32_t user_data_gen(std::uint64_t ud) {
  return static_cast<std::uint32_t>(ud >> 40);
}

constexpr unsigned kSqEntries = 4096;
constexpr unsigned kCqEntries = 8192;
constexpr unsigned kReapBatch = 256;

}  // namespace

// ---------------------------------------------------------------------------
// Ring: raw SQ/CQ management.

void UringReactor::Ring::init(unsigned sq_entries, unsigned cq_entries) {
  io_uring_params params{};
  params.flags = IORING_SETUP_CQSIZE;
  params.cq_entries = cq_entries;
  fd = sys_io_uring_setup(sq_entries, &params);
  if (fd < 0) throw std::system_error(errno, std::generic_category(), "io_uring_setup");
  entries = params.sq_entries;

  sq_map_size = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_map_size = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  if ((params.features & IORING_FEAT_SINGLE_MMAP) != 0) {
    sq_map_size = cq_map_size = std::max(sq_map_size, cq_map_size);
  }
  sq_ptr = ::mmap(nullptr, sq_map_size, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE, fd,
                  IORING_OFF_SQ_RING);
  if (sq_ptr == MAP_FAILED) {
    sq_ptr = nullptr;
    throw std::system_error(errno, std::generic_category(), "mmap(sq_ring)");
  }
  if ((params.features & IORING_FEAT_SINGLE_MMAP) != 0) {
    cq_ptr = sq_ptr;
  } else {
    cq_ptr = ::mmap(nullptr, cq_map_size, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE, fd,
                    IORING_OFF_CQ_RING);
    if (cq_ptr == MAP_FAILED) {
      cq_ptr = nullptr;
      throw std::system_error(errno, std::generic_category(), "mmap(cq_ring)");
    }
  }
  sqe_map_size = params.sq_entries * sizeof(io_uring_sqe);
  sqe_ptr = ::mmap(nullptr, sqe_map_size, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE, fd,
                   IORING_OFF_SQES);
  if (sqe_ptr == MAP_FAILED) {
    sqe_ptr = nullptr;
    throw std::system_error(errno, std::generic_category(), "mmap(sqes)");
  }

  auto* sq_base = static_cast<std::uint8_t*>(sq_ptr);
  auto* cq_base = static_cast<std::uint8_t*>(cq_ptr);
  sq_head = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  sq_tail = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  sq_mask = reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  cq_head = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  cq_tail = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  cq_mask = reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  sqes = static_cast<io_uring_sqe*>(sqe_ptr);
  cqes = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);
  // Identity submission-index array: slot i of the SQ always names SQE i,
  // so publishing is just a tail bump.
  auto* sq_array = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
  for (unsigned i = 0; i < params.sq_entries; ++i) sq_array[i] = i;
  local_tail = submitted = __atomic_load_n(sq_tail, __ATOMIC_RELAXED);
}

UringReactor::Ring::~Ring() {
  if (sqe_ptr != nullptr) ::munmap(sqe_ptr, sqe_map_size);
  if (cq_ptr != nullptr && cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_map_size);
  if (sq_ptr != nullptr) ::munmap(sq_ptr, sq_map_size);
  if (fd >= 0) ::close(fd);
}

io_uring_sqe* UringReactor::Ring::get_sqe() {
  const unsigned head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
  if (local_tail - head >= entries) {
    // SQ full: flush what we have (non-SQPOLL enter consumes the whole
    // queue synchronously, so one submit always frees room).
    submit(0);
  }
  io_uring_sqe* sqe = &sqes[local_tail & *sq_mask];
  std::memset(sqe, 0, sizeof(*sqe));
  ++local_tail;
  return sqe;
}

void UringReactor::Ring::submit(unsigned wait_n) {
  __atomic_store_n(sq_tail, local_tail, __ATOMIC_RELEASE);
  unsigned to_submit = local_tail - submitted;
  if (wait_n > 0 && spill_pos < spill.size()) wait_n = 0;  // completions already in hand
  for (;;) {
    const unsigned flags = (wait_n > 0) ? IORING_ENTER_GETEVENTS : 0;
    if (to_submit == 0 && wait_n == 0) return;
    const int ret = sys_io_uring_enter(fd, to_submit, wait_n, flags);
    if (ret >= 0) {
      submitted += static_cast<unsigned>(ret);
      to_submit -= static_cast<unsigned>(ret);
      if (to_submit == 0) return;
      continue;  // partial submit (CQ pressure): push the rest
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EBUSY) {
      // Completion-side pressure: the kernel refuses SQEs until the CQ
      // drains, and the caller cannot reap until submit returns.  Move
      // posted CQEs into the spill buffer (reap() replays them first) so
      // the retry makes forward progress; merely waiting would return
      // immediately with the CQ still full and livelock this loop.
      const std::size_t before = spill.size();
      spill_cq();
      if (spill.size() > before) {
        wait_n = 0;  // completions in hand satisfy any wait
        continue;
      }
      // CQ empty yet still pressured: completions are in flight, not
      // posted.  Wait for one to land, then loop to spill it.
      const int r2 = sys_io_uring_enter(fd, 0, 1, IORING_ENTER_GETEVENTS);
      if (r2 < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) {
        throw std::system_error(errno, std::generic_category(), "io_uring_enter");
      }
      continue;
    }
    throw std::system_error(errno, std::generic_category(), "io_uring_enter");
  }
}

void UringReactor::Ring::spill_cq() {
  unsigned head = *cq_head;  // only this thread advances it
  const unsigned tail = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
  if (head == tail) return;
  while (head != tail) {
    spill.push_back(cqes[head & *cq_mask]);
    ++head;
  }
  __atomic_store_n(cq_head, head, __ATOMIC_RELEASE);
}

unsigned UringReactor::Ring::reap(io_uring_cqe* out, unsigned max) {
  unsigned n = 0;
  // Replay CQEs spilled while a full CQ blocked submit(); they predate
  // anything still in the ring.
  while (spill_pos < spill.size() && n < max) out[n++] = spill[spill_pos++];
  if (spill_pos == spill.size() && spill_pos > 0) {
    spill.clear();
    spill_pos = 0;
  }
  unsigned head = *cq_head;  // only this thread advances it
  const unsigned tail = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
  const unsigned from_ring = n;
  while (head != tail && n < max) {
    out[n++] = cqes[head & *cq_mask];
    ++head;
  }
  if (n > from_ring) __atomic_store_n(cq_head, head, __ATOMIC_RELEASE);
  return n;
}

// ---------------------------------------------------------------------------
// UringReactor.

UringReactor::UringReactor(TcpListener& listener, FrameHandler on_frames,
                           ProtocolErrorHandler on_protocol_error, ReactorConfig config,
                           ReactorHooks hooks)
    : ReactorBase(listener, std::move(on_frames), std::move(on_protocol_error), config,
                  std::move(hooks)) {}

UringReactor::~UringReactor() { stop(); }

bool UringReactor::supported() noexcept {
  const char* disabled = std::getenv("VIA_NO_URING");
  if (disabled != nullptr && disabled[0] != '\0' && disabled[0] != '0') return false;
  io_uring_params params{};
  const int fd = sys_io_uring_setup(2, &params);
  if (fd < 0) return false;
  constexpr unsigned kProbeOps = 64;
  // io_uring_probe ends in a flexible array member; give it room manually.
  alignas(io_uring_probe) unsigned char raw[sizeof(io_uring_probe) +
                                            kProbeOps * sizeof(io_uring_probe_op)] = {};
  auto* probe = reinterpret_cast<io_uring_probe*>(raw);
  bool ok = sys_io_uring_register(fd, IORING_REGISTER_PROBE, probe, kProbeOps) == 0;
  if (ok) {
    const auto have = [probe](unsigned op) {
      return op < probe->ops_len && (probe->ops[op].flags & IO_URING_OP_SUPPORTED) != 0;
    };
    ok = have(IORING_OP_ACCEPT) && have(IORING_OP_RECV) && have(IORING_OP_SEND) &&
         have(IORING_OP_POLL_ADD) && have(IORING_OP_ASYNC_CANCEL);
  }
  ::close(fd);
  return ok;
}

void UringReactor::start() {
  if (started_) return;
  draining_.store(false);
  force_close_.store(false);
  stopping_.store(false);
  conn_count_.store(0);

  const int nworkers = std::max(1, config_.workers);
  worker_loads_ = std::vector<std::atomic<std::size_t>>(static_cast<std::size_t>(nworkers));
  worker_queued_ = std::vector<std::atomic<std::size_t>>(static_cast<std::size_t>(nworkers));
  try {
    for (int i = 0; i < nworkers; ++i) {
      auto worker = std::make_unique<Worker>();
      worker->index = static_cast<std::size_t>(i);
      worker->ring.init(kSqEntries, kCqEntries);
      worker->wake = FdHandle(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
      if (!worker->wake.valid()) {
        throw std::system_error(errno, std::generic_category(), "eventfd");
      }
      workers_.push_back(std::move(worker));
    }
  } catch (...) {
    // Partial construction (e.g. ring.init for worker i>0): a retried
    // start() must not stack fresh workers onto stale ones.
    workers_.clear();
    throw;
  }
  started_ = true;
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { worker_loop(*w); });
  }
}

void UringReactor::wake_all() {
  const std::uint64_t one = 1;
  for (auto& worker : workers_) {
    (void)!::write(worker->wake.get(), &one, sizeof(one));
  }
}

void UringReactor::stop() {
  if (!started_) return;
  draining_.store(true);
  wake_all();
  {
    std::unique_lock lock(stop_mutex_);
    (void)stop_cv_.wait_for(lock,
                            std::chrono::milliseconds(std::max(0, config_.drain_timeout_ms)),
                            [this] { return conn_count_.load() == 0; });
  }
  if (conn_count_.load() != 0) {
    force_close_.store(true);
    wake_all();
    std::unique_lock lock(stop_mutex_);
    (void)stop_cv_.wait_for(lock, std::chrono::seconds(10),
                            [this] { return conn_count_.load() == 0; });
  }
  stopping_.store(true);
  wake_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  workers_.clear();
  started_ = false;
}

void UringReactor::arm_accept(Worker& worker) {
  if (worker.accept_stopped || draining_.load()) return;
  io_uring_sqe* sqe = worker.ring.get_sqe();
  sqe->opcode = IORING_OP_ACCEPT;
  sqe->fd = listener_->fd();
  if (worker.accept_multishot) sqe->ioprio = IORING_ACCEPT_MULTISHOT;
  sqe->accept_flags = SOCK_CLOEXEC;
  sqe->user_data = make_user_data(OpKind::kAccept, listener_->fd(), 0);
  ++worker.accept_inflight;
}

void UringReactor::arm_wake(Worker& worker) {
  // Single-shot and re-armed after every firing: the eventfd counter is
  // level-readable, so a write landing between the read and the re-arm
  // completes the fresh poll immediately — no lost wakeups.
  io_uring_sqe* sqe = worker.ring.get_sqe();
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = worker.wake.get();
  sqe->poll32_events = POLLIN;
  sqe->user_data = make_user_data(OpKind::kWake, worker.wake.get(), 0);
  ++worker.wake_inflight;
}

void UringReactor::arm_recv(Worker& worker, ReactorConn& conn) {
  if (conn.recv_armed_ || conn.dead_ || conn.closing_ || conn.paused_) return;
  // No recv op is in flight, so the ReadBuffer is free to compact or grow.
  const std::span<std::byte> dst = conn.in_.writable(config_.read_chunk);
  io_uring_sqe* sqe = worker.ring.get_sqe();
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = conn.fd();
  sqe->addr = reinterpret_cast<std::uint64_t>(dst.data());
  sqe->len = static_cast<std::uint32_t>(dst.size());
  sqe->user_data = make_user_data(OpKind::kRecv, conn.fd(), conn.gen_);
  conn.recv_armed_ = true;
  ++conn.inflight_ops_;
}

void UringReactor::stage_send(Worker& worker, ReactorConn& conn) {
  if (conn.send_armed_ || conn.dead_) return;
  const std::span<const std::byte> span = conn.out_.stage();
  if (span.empty()) return;
  io_uring_sqe* sqe = worker.ring.get_sqe();
  sqe->opcode = IORING_OP_SEND;
  sqe->fd = conn.fd();
  sqe->addr = reinterpret_cast<std::uint64_t>(span.data());
  sqe->len = static_cast<std::uint32_t>(span.size());
  sqe->msg_flags = MSG_NOSIGNAL;
  sqe->user_data = make_user_data(OpKind::kSend, conn.fd(), conn.gen_);
  conn.send_armed_ = true;
  ++conn.inflight_ops_;
}

void UringReactor::cancel_fd_ops(Worker& worker, int fd) {
  io_uring_sqe* sqe = worker.ring.get_sqe();
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = fd;
  sqe->cancel_flags = IORING_ASYNC_CANCEL_FD | IORING_ASYNC_CANCEL_ALL;
  // The cancel op's own CQE is deliberately untracked: it targets ops by
  // fd, and every targeted op already accounts for itself.
  sqe->user_data = make_user_data(OpKind::kCancel, fd, 0);
}

void UringReactor::begin_close(Worker& worker, ReactorConn& conn) {
  if (conn.dead_) return;
  conn.dead_ = true;
  if (conn.inflight_ops_ > 0) {
    // In-flight ops hold kernel references to this connection's buffers;
    // cancel them and destroy only when the last CQE is reaped.  The fd
    // must stay open until then (cancel keys off it).
    cancel_fd_ops(worker, conn.fd());
    return;
  }
  maybe_destroy(worker, conn);
}

void UringReactor::maybe_destroy(Worker& worker, ReactorConn& conn) {
  if (!conn.dead_ || conn.inflight_ops_ > 0) return;
  const int fd = conn.fd();
  const auto it = worker.conns.find(fd);
  if (it == worker.conns.end() || it->second.get() != &conn) return;
  // Park the object until the end of the round; closing the fd here (and
  // only here) means the fd number cannot be reused while ops are live.
  worker.graveyard.push_back(std::move(it->second));
  worker.conns.erase(it);
  conn.fd_.reset();
  conn_closed(conn);
}

void UringReactor::conn_failure(Worker& worker, ReactorConn& conn) {
  if (conn.dead_) return;
  if (hooks_.on_conn_error) hooks_.on_conn_error();
  begin_close(worker, conn);
}

void UringReactor::register_conn(Worker& worker, int fd) {
  std::unique_ptr<ReactorConn> conn(new ReactorConn(FdHandle(fd)));
  conn->worker_idx_ = worker.index;
  conn->write_cap_ = config_.write_buffer_cap;
  conn->gen_ = ++worker.gen_counter;
  ReactorConn* raw = conn.get();
  worker.conns.emplace(fd, std::move(conn));
  conn_count_.fetch_add(1, std::memory_order_relaxed);
  arm_recv(worker, *raw);
}

void UringReactor::adopt_pending(Worker& worker) {
  std::vector<int> fds;
  {
    const std::lock_guard lock(worker.pending_mutex);
    fds.swap(worker.pending);
  }
  for (const int fd : fds) {
    if (draining_.load()) {
      ::close(fd);
      worker_loads_[worker.index].fetch_sub(1, std::memory_order_relaxed);
    } else {
      register_conn(worker, fd);
    }
  }
}

void UringReactor::settle(Worker& worker, ReactorConn& conn) {
  if (conn.dead_) {
    maybe_destroy(worker, conn);
    return;
  }
  sync_queued(conn);
  stage_send(worker, conn);
  if (conn.closing_) {
    if (conn.out_.empty() && !conn.send_armed_) begin_close(worker, conn);
    return;
  }
  if (!conn.paused_ && (conn.batch_pos_ < conn.batch_.size() || over_high_water(conn))) {
    // Backpressure: withhold the recv resubmission until low water.  A
    // paused connection with nothing in flight has no CQE coming to wake
    // it; the sweep list covers it.
    mark_paused(conn);
    if (!conn.send_armed_ && conn.out_.empty()) list_for_sweep(worker, conn);
  } else if (conn.paused_) {
    if (under_low_water(conn)) {
      mark_resumed(conn);
      if (conn.batch_pos_ < conn.batch_.size()) {
        if (serve_batch(conn) == ServeStatus::kError) {
          conn_failure(worker, conn);
          return;
        }
        settle(worker, conn);  // depth ≤ 2: either re-pauses or batch is done
        return;
      }
    } else if (!conn.send_armed_ && conn.out_.empty()) {
      // Fully drained by its final send CQE while the aggregate is still
      // high: this was the last completion for the connection, so only
      // the sweep can revive it.
      list_for_sweep(worker, conn);
    }
  }
  arm_recv(worker, conn);
}

void UringReactor::list_for_sweep(Worker& worker, ReactorConn& conn) {
  if (conn.agg_listed_) return;
  conn.agg_listed_ = true;
  worker.agg_paused_fds.push_back(conn.fd());
}

void UringReactor::sweep_paused(Worker& worker) {
  if (worker.agg_paused_fds.empty() || !aggregate_wants_sweep(worker.index)) return;
  // Swap the list out: settle can re-list a still-stuck connection (via
  // list_for_sweep) while we iterate.
  std::vector<int> current;
  current.swap(worker.agg_paused_fds);
  for (const int fd : current) {
    const auto it = worker.conns.find(fd);
    if (it == worker.conns.end()) continue;  // closed; fd may have been reused
    ReactorConn& conn = *it->second;
    conn.agg_listed_ = false;
    if (conn.dead_ || !conn.paused_) continue;
    settle(worker, conn);
    if (!conn.dead_ && conn.paused_) list_for_sweep(worker, conn);
  }
}

void UringReactor::handle_accept(Worker& worker, const io_uring_cqe& cqe) {
  if ((cqe.flags & IORING_CQE_F_MORE) == 0) {
    --worker.accept_inflight;
  }
  const auto res = cqe.res;
  if (res >= 0) {
    const int fd = res;
    if (draining_.load()) {
      ::close(fd);
    } else {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (hooks_.on_accept) hooks_.on_accept();
      Worker& target = *workers_[pick_worker()];
      if (&target == &worker) {
        register_conn(worker, fd);
      } else {
        {
          const std::lock_guard lock(target.pending_mutex);
          target.pending.push_back(fd);
        }
        const std::uint64_t tick = 1;
        (void)!::write(target.wake.get(), &tick, sizeof(tick));
      }
    }
    if ((cqe.flags & IORING_CQE_F_MORE) == 0 && worker.accept_inflight == 0) arm_accept(worker);
    return;
  }
  if (res == -EINVAL && worker.accept_multishot) {
    // Kernel predates multishot accept: fall back to one-shot re-arming.
    worker.accept_multishot = false;
    if (worker.accept_inflight == 0) arm_accept(worker);
    return;
  }
  if (res == -ECANCELED) return;  // drain/teardown canceled the op
  // Transient accept failure (EMFILE, ECONNABORTED, …): keep accepting.
  if (worker.accept_inflight == 0) arm_accept(worker);
}

void UringReactor::handle_recv(Worker& worker, ReactorConn& conn, std::int32_t res) {
  --conn.inflight_ops_;
  conn.recv_armed_ = false;
  if (conn.dead_) {
    maybe_destroy(worker, conn);
    return;
  }
  if (res > 0) {
    conn.in_.commit(static_cast<std::size_t>(res));
    (void)decode_frames(conn);
    if (serve_batch(conn) == ServeStatus::kError) {
      conn_failure(worker, conn);
      return;
    }
    settle(worker, conn);
    return;
  }
  if (res == 0) {
    if (conn.in_.buffered() > 0) {
      // Mid-frame EOF: the peer died partway through a frame.
      conn_failure(worker, conn);
      return;
    }
    conn.eof_ = true;
    conn.closing_ = true;  // a paused conn never has a recv armed, so batch_ is empty here
    settle(worker, conn);
    return;
  }
  if (res == -EAGAIN || res == -EINTR) {
    settle(worker, conn);  // re-arms the recv
    return;
  }
  if (res == -ECANCELED) return;  // close already in progress
  conn_failure(worker, conn);
}

void UringReactor::handle_send(Worker& worker, ReactorConn& conn, std::int32_t res) {
  --conn.inflight_ops_;
  conn.send_armed_ = false;
  if (res > 0) conn.out_.consume(static_cast<std::size_t>(res));
  if (conn.dead_) {
    maybe_destroy(worker, conn);
    return;
  }
  if (res < 0) {
    if (res == -EAGAIN || res == -EINTR) {
      settle(worker, conn);  // restages the same span
      return;
    }
    conn_failure(worker, conn);
    return;
  }
  settle(worker, conn);
}

void UringReactor::handle_cqe(Worker& worker, const io_uring_cqe& cqe, bool& woken) {
  const OpKind kind = user_data_kind(cqe.user_data);
  if (kind == OpKind::kWake) {
    --worker.wake_inflight;
    std::uint64_t tick = 0;
    (void)!::read(worker.wake.get(), &tick, sizeof(tick));
    woken = true;
    if (!worker.teardown) arm_wake(worker);
    return;
  }
  if (kind == OpKind::kAccept) {
    handle_accept(worker, cqe);
    return;
  }
  if (kind == OpKind::kCancel) return;
  const int fd = user_data_fd(cqe.user_data);
  const auto it = worker.conns.find(fd);
  if (it == worker.conns.end()) return;  // stale completion for a destroyed conn
  ReactorConn& conn = *it->second;
  if ((conn.gen_ & 0xFFFFFFU) != user_data_gen(cqe.user_data)) return;  // fd reused
  if (kind == OpKind::kRecv) {
    handle_recv(worker, conn, cqe.res);
  } else if (kind == OpKind::kSend) {
    handle_send(worker, conn, cqe.res);
  }
}

void UringReactor::worker_loop(Worker& worker) {
  // A throw below is a catastrophic ring failure (io_uring_enter/mmap level);
  // returning lets stop() time out, force-close, and join cleanly.
  try {
    run_worker(worker);
  } catch (const std::exception&) {
  }
}

void UringReactor::run_worker(Worker& worker) {
  const bool acceptor = (&worker == workers_.front().get());
  arm_wake(worker);
  if (acceptor) arm_accept(worker);
  std::array<io_uring_cqe, kReapBatch> cqes;
  for (;;) {
    worker.ring.submit(worker.teardown ? 0 : 1);
    bool woken = false;
    for (;;) {
      const unsigned n = worker.ring.reap(cqes.data(), static_cast<unsigned>(cqes.size()));
      if (n == 0) break;
      for (unsigned i = 0; i < n; ++i) handle_cqe(worker, cqes[i], woken);
    }
    if (woken) {
      adopt_pending(worker);
      if (draining_.load() && acceptor && !worker.accept_stopped) {
        worker.accept_stopped = true;
        if (worker.accept_inflight > 0) cancel_fd_ops(worker, listener_->fd());
      }
      if (force_close_.load()) {
        std::vector<ReactorConn*> all;
        all.reserve(worker.conns.size());
        for (auto& [cfd, conn] : worker.conns) all.push_back(conn.get());
        for (ReactorConn* conn : all) {
          if (conn->dead_) continue;
          if (hooks_.on_forced_close) hooks_.on_forced_close(conn->fd());
          begin_close(worker, *conn);
        }
      }
    }
    sweep_paused(worker);
    if (stopping_.load() && !worker.teardown) {
      worker.teardown = true;
      worker.accept_stopped = true;
      std::vector<ReactorConn*> all;
      all.reserve(worker.conns.size());
      for (auto& [cfd, conn] : worker.conns) all.push_back(conn.get());
      for (ReactorConn* conn : all) {
        if (!conn->dead_) begin_close(worker, *conn);
      }
      if (acceptor && worker.accept_inflight > 0) cancel_fd_ops(worker, listener_->fd());
      if (worker.wake_inflight > 0) cancel_fd_ops(worker, worker.wake.get());
    }
    worker.graveyard.clear();
    if (worker.teardown && worker.conns.empty() && worker.accept_inflight <= 0 &&
        worker.wake_inflight <= 0) {
      return;
    }
    if (worker.teardown) {
      // Every outstanding op has a cancel chasing it; wait for the CQEs
      // without risking an indefinite block on a quiet ring.
      worker.ring.submit(0);
      const int r = sys_io_uring_enter(worker.ring.fd, 0, 1, IORING_ENTER_GETEVENTS);
      if (r < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) return;
    }
  }
}

}  // namespace via
