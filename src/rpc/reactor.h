// Event-driven connection reactors (DESIGN.md §6h, §6j): the epoll backend
// and the shared machinery it splits with the io_uring backend
// (uring_reactor.h).
//
// A small fixed pool of event-loop workers each owns an event instance
// (epoll fd or io_uring ring); accepted connections are pinned at accept
// time to the worker with the fewest live connections and stay pinned for
// their whole life, so every connection's reads, handler calls, and writes
// happen on exactly one thread and per-connection state needs no locking.
// Worker 0 additionally owns the (non-blocking) listener.
//
// Each wakeup runs two phases over the ready set:
//   1. drain: recv into every readable connection's ReadBuffer and decode
//      complete frames (on_decoded fires per connection batch, letting the
//      host count queued work *before* any of it is served — what makes
//      burst shedding possible in an event loop), then
//   2. dispatch: hand each connection's decoded batch to the frame handler
//      (replies queue on the connection's WriteBuffer) and flush; EPOLLOUT
//      is armed only while a flush leaves bytes behind.
//
// Backpressure: when a connection's queued reply bytes reach
// `write_buffer_cap` (or the worker's aggregate reaches
// `worker_write_cap`), the reactor pauses the connection — read interest is
// disarmed (epoll) or the recv is not resubmitted (io_uring), and the frame
// handler may stop mid-batch by returning a partial consumed count; the
// remainder is redispatched once the socket drains below the low-water
// mark (half the cap).  The queue can still overshoot the cap by at most
// one reply frame, because the cap is checked between frames, never
// mid-frame.
//
// stop() drains gracefully: deregister the listener, keep serving until
// every connection closes or drain_timeout_ms passes, then force-close the
// stragglers (on_forced_close fires per fd) and join the workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rpc/conn_buffer.h"
#include "rpc/socket.h"

namespace via {

class Reactor;
class UringReactor;
class ReactorBase;

/// One reactor-owned client connection.  Frame handlers interact with it
/// only through send(), close_after_flush(), and the write-pressure
/// accessors; everything else belongs to the owning worker thread.
class ReactorConn {
 public:
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

  /// Queues one reply frame; the worker flushes after the handler returns.
  void send(std::uint8_t type, std::span<const std::byte> payload) { out_.frame(type, payload); }

  /// Close once the pending output flushes (Shutdown, protocol errors).
  /// The worker stops reading from the connection immediately.
  void close_after_flush() noexcept { closing_ = true; }

  /// Queued, not-yet-sent reply bytes on this connection.
  [[nodiscard]] std::size_t write_pending() const noexcept { return out_.approx_bytes(); }

  /// True when the per-connection write cap is configured and reached:
  /// the handler should stop serving this connection's batch (return the
  /// frames consumed so far) and let the reactor pause it until drain.
  [[nodiscard]] bool write_capped() const noexcept {
    return write_cap_ > 0 && out_.approx_bytes() >= write_cap_;
  }

  /// Bytes until the per-connection cap; SIZE_MAX when uncapped.  Lets
  /// the handler bound a batched run so one dispatch cannot blow far past
  /// the cap.
  [[nodiscard]] std::size_t write_headroom() const noexcept {
    if (write_cap_ == 0) return static_cast<std::size_t>(-1);
    const std::size_t pending = out_.approx_bytes();
    return pending >= write_cap_ ? 0 : write_cap_ - pending;
  }

 private:
  friend class Reactor;
  friend class UringReactor;
  friend class ReactorBase;
  explicit ReactorConn(FdHandle fd) noexcept : fd_(std::move(fd)) {}

  FdHandle fd_;
  ReadBuffer in_;
  WriteBuffer out_;
  std::vector<Frame> batch_;     ///< frames decoded in phase 1, dispatched in phase 2
  std::size_t batch_pos_ = 0;    ///< frames of batch_ already consumed by the handler
  std::string pending_error_;    ///< decode-time ProtocolError, reported after the batch
  std::size_t write_cap_ = 0;    ///< per-connection cap (0 = uncapped), from ReactorConfig
  std::size_t accounted_out_ = 0;  ///< bytes currently charged to the worker aggregate
  std::size_t worker_idx_ = 0;   ///< owning worker (aggregate accounting, load counter)
  bool has_pending_error_ = false;
  bool closing_ = false;         ///< close after flush
  bool eof_ = false;             ///< peer closed cleanly; close after the batch
  bool dead_ = false;            ///< closed this round; object parked in the graveyard
  bool paused_ = false;          ///< read interest withheld by backpressure
  bool agg_listed_ = false;      ///< on the worker's aggregate sweep list
  std::uint32_t interest_ = 0;   ///< epoll event mask currently registered (epoll backend)
  // io_uring backend bookkeeping (unused by epoll):
  std::uint32_t gen_ = 0;        ///< generation tag carried in op user_data
  int inflight_ops_ = 0;         ///< kernel ops referencing this conn's buffers
  bool recv_armed_ = false;      ///< a recv op is in flight
  bool send_armed_ = false;      ///< a send op is in flight
};

struct ReactorConfig {
  int workers = 2;
  /// stop(): grace period before stragglers are force-closed.
  int drain_timeout_ms = 5000;
  /// recv(2) size per readiness event (level-triggered epoll re-arms when
  /// more is buffered, so one bounded read keeps connections fair).
  std::size_t read_chunk = 64 * 1024;
  /// Per-connection queued-reply byte cap; 0 disables backpressure.  A
  /// connection at or over the cap stops being read (and served) until
  /// its socket drains below cap/2.
  std::size_t write_buffer_cap = 0;
  /// Aggregate queued-reply cap across one worker's connections; 0
  /// disables.  Guards total RSS when many connections stall at once.
  std::size_t worker_write_cap = 0;
};

/// Host callbacks, all optional and all invoked from worker threads.
struct ReactorHooks {
  std::function<void()> on_accept;
  /// Complete frames decoded from one connection in phase 1 (before any of
  /// them is dispatched); hosts use it to account queued work for shedding.
  std::function<void(std::size_t)> on_decoded;
  /// Decoded-but-never-dispatched frames discarded because the connection
  /// closed; hosts settle the on_decoded accounting with it.
  std::function<void(std::size_t)> on_dropped;
  /// A straggler force-closed by the drain deadline.
  std::function<void(int fd)> on_forced_close;
  /// Hard connection failure: I/O error, mid-frame EOF, or a handler
  /// exception that is not a ProtocolError.
  std::function<void()> on_conn_error;
  /// Backpressure transitions: the connection was paused (stopped being
  /// read) / resumed.  `queued` is its write-queue depth at the edge.
  std::function<void(int fd, std::size_t queued)> on_pause;
  std::function<void(int fd, std::size_t queued)> on_resume;
};

/// Machinery shared by the epoll and io_uring backends: configuration,
/// dispatch with partial consumption, least-connections pinning, and the
/// backpressure/stat accounting.  Backends implement the event loop.
class ReactorBase {
 public:
  /// Invoked with the not-yet-consumed suffix of a connection's decoded
  /// batch; returns how many frames it consumed (replies go through
  /// conn.send()).  Returning less than frames.size() signals the reactor
  /// to stop serving this connection (its write queue hit the cap) and
  /// redispatch the remainder after drain.  A thrown ProtocolError is
  /// routed to `on_protocol_error` and the connection closes after
  /// flushing.
  using FrameHandler = std::function<std::size_t(ReactorConn&, std::span<Frame>)>;
  /// The peer violated the protocol (oversized frame at decode, or a
  /// handler throw): send the error reply through conn.send(); the reactor
  /// closes the connection after flushing it.
  using ProtocolErrorHandler = std::function<void(ReactorConn&, const ProtocolError&)>;

  virtual ~ReactorBase() = default;

  ReactorBase(const ReactorBase&) = delete;
  ReactorBase& operator=(const ReactorBase&) = delete;

  virtual void start() = 0;
  /// Graceful drain (idempotent): stop accepting, serve until every
  /// connection closes or drain_timeout_ms passes, force-close the rest,
  /// join the workers.
  virtual void stop() = 0;

  /// Live connections across all workers.
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return conn_count_.load(std::memory_order_relaxed);
  }

  /// Queued reply bytes across every connection (backpressure gauge).
  [[nodiscard]] std::size_t queued_bytes() const noexcept;
  /// Connections currently paused by backpressure.
  [[nodiscard]] std::size_t paused_connections() const noexcept {
    return paused_conns_.load(std::memory_order_relaxed);
  }
  /// Cumulative pause transitions since start().
  [[nodiscard]] std::uint64_t pauses_total() const noexcept {
    return pauses_total_.load(std::memory_order_relaxed);
  }
  /// High-water mark of any single connection's write queue (bytes).
  [[nodiscard]] std::size_t peak_conn_queued_bytes() const noexcept {
    return peak_conn_queued_.load(std::memory_order_relaxed);
  }
  /// Live connections per worker (least-connections pinning visibility).
  [[nodiscard]] std::vector<std::size_t> worker_connection_counts() const;

 protected:
  ReactorBase(TcpListener& listener, FrameHandler on_frames,
              ProtocolErrorHandler on_protocol_error, ReactorConfig config, ReactorHooks hooks);

  enum class ServeStatus {
    kDone,     ///< batch fully consumed (conn may still be closing)
    kCapped,   ///< handler stopped early: write queue at cap, remainder kept
    kError,    ///< handler threw a non-protocol exception: fail the conn
  };

  /// Drives on_frames_ over the connection's batch remainder, honoring
  /// partial consumption, then reports pending protocol errors and turns
  /// EOF into closing.  Does not touch sockets.
  ServeStatus serve_batch(ReactorConn& conn);

  /// Decodes every complete frame buffered in conn.in_ into conn.batch_
  /// and fires on_decoded.  Returns false when decode hit a ProtocolError
  /// (conn is flagged closing with the error pending).
  bool decode_frames(ReactorConn& conn);

  /// Least-connections worker pick; increments the winner's load (the
  /// connection must then be pinned there; undo via conn_closed).
  std::size_t pick_worker();

  /// Re-charges the worker aggregate with the connection's current write
  /// queue depth and tracks the per-connection peak.
  void sync_queued(ReactorConn& conn);

  /// True when the connection (or its worker's aggregate) is at/over cap.
  [[nodiscard]] bool over_high_water(const ReactorConn& conn) const noexcept;
  /// True when both the connection and its worker are back under the
  /// low-water mark (half the respective caps).
  [[nodiscard]] bool under_low_water(const ReactorConn& conn) const noexcept;

  void mark_paused(ReactorConn& conn);
  void mark_resumed(ReactorConn& conn);

  /// Shared close-side bookkeeping: drops unserved frames (on_dropped),
  /// resumes pause accounting, uncharges the aggregate, decrements the
  /// worker load and the global count, and signals stop().
  void conn_closed(ReactorConn& conn);

  /// True when the worker's aggregate just fell back under low water while
  /// some of its connections are paused — the backend should sweep them.
  [[nodiscard]] bool aggregate_wants_sweep(std::size_t worker_idx) const noexcept;

  TcpListener* listener_;
  FrameHandler on_frames_;
  ProtocolErrorHandler on_protocol_error_;
  ReactorConfig config_;
  ReactorHooks hooks_;

  std::atomic<std::size_t> conn_count_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> force_close_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;  ///< signaled as connections close
  bool started_ = false;

  /// Per-worker live-connection counters (least-connections pinning) and
  /// queued-reply aggregates; sized by start().
  std::vector<std::atomic<std::size_t>> worker_loads_;
  std::vector<std::atomic<std::size_t>> worker_queued_;

 private:
  std::atomic<std::size_t> paused_conns_{0};
  std::atomic<std::uint64_t> pauses_total_{0};
  std::atomic<std::size_t> peak_conn_queued_{0};
};

/// The epoll backend (DESIGN.md §6h).
class Reactor : public ReactorBase {
 public:
  using FrameHandler = ReactorBase::FrameHandler;
  using ProtocolErrorHandler = ReactorBase::ProtocolErrorHandler;

  /// The listener must outlive the reactor; start() switches it (and every
  /// accepted connection) to non-blocking mode.
  Reactor(TcpListener& listener, FrameHandler on_frames, ProtocolErrorHandler on_protocol_error,
          ReactorConfig config = {}, ReactorHooks hooks = {});
  ~Reactor() override;

  void start() override;
  void stop() override;

 private:
  struct Worker {
    FdHandle epoll;
    FdHandle wake;  ///< eventfd: new pinned connections, drain/stop signals
    std::thread thread;
    std::size_t index = 0;
    /// All of the below are touched only by the worker's own thread.
    std::unordered_map<int, std::unique_ptr<ReactorConn>> conns;
    std::vector<std::unique_ptr<ReactorConn>> graveyard;  ///< cleared at end of round
    /// Connections paused by the worker-aggregate cap while fully drained
    /// (no EPOLLOUT will wake them); sweep_paused() resumes from here.
    std::vector<int> agg_paused_fds;
    bool listener_registered = false;
    /// Connections accepted by worker 0 but pinned here; guarded by mutex.
    std::mutex pending_mutex;
    std::vector<int> pending;
  };

  void worker_loop(Worker& worker);
  void accept_ready(Worker& worker);
  void adopt_pending(Worker& worker);
  void register_conn(Worker& worker, int fd);
  void read_and_decode(Worker& worker, ReactorConn& conn);
  void dispatch(Worker& worker, ReactorConn& conn);
  /// Flushes pending output, arms/disarms EPOLLOUT, applies backpressure
  /// pause/resume, and closes the connection when a requested close has
  /// fully flushed.
  void finish_io(Worker& worker, ReactorConn& conn);
  /// Resumes one paused connection when it is back under low water,
  /// redispatching its kept batch remainder (which may re-pause it).
  void maybe_resume(Worker& worker, ReactorConn& conn);
  /// Resumes paused connections on `worker` that are back under low water
  /// (aggregate-cap recovery); redispatches their kept batch remainders.
  void sweep_paused(Worker& worker);
  /// Parks a paused, fully drained connection on the aggregate sweep list
  /// (deduplicated): with no bytes in flight there is no EPOLLOUT coming,
  /// so only the sweep can resume it once the aggregate drains.
  void list_for_sweep(Worker& worker, ReactorConn& conn);
  void close_conn(Worker& worker, ReactorConn& conn);
  void update_interest(Worker& worker, ReactorConn& conn, bool want_write);
  void conn_failure(Worker& worker, ReactorConn& conn);
  void wake_all();

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace via
