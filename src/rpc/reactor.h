// Epoll-based connection reactor (DESIGN.md §6h): the event-driven
// replacement for the thread-per-connection accept loop.
//
// A small fixed pool of event-loop workers each owns an epoll instance;
// accepted connections are pinned to `worker[fd % workers]` for their whole
// life, so every connection's reads, handler calls, and writes happen on
// exactly one thread and per-connection state needs no locking.  Worker 0
// additionally owns the (non-blocking) listener.
//
// Each wakeup runs two phases over the ready set:
//   1. drain: recv into every readable connection's ReadBuffer and decode
//      complete frames (on_decoded fires per connection batch, letting the
//      host count queued work *before* any of it is served — what makes
//      burst shedding possible in an event loop), then
//   2. dispatch: hand each connection's decoded batch to the frame handler
//      (replies queue on the connection's WriteBuffer) and flush; EPOLLOUT
//      is armed only while a flush leaves bytes behind.
//
// stop() drains gracefully: deregister the listener, keep serving until
// every connection closes or drain_timeout_ms passes, then force-close the
// stragglers (on_forced_close fires per fd) and join the workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rpc/conn_buffer.h"
#include "rpc/socket.h"

namespace via {

/// One reactor-owned client connection.  Frame handlers interact with it
/// only through send() and close_after_flush(); everything else belongs to
/// the owning worker thread.
class ReactorConn {
 public:
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

  /// Queues one reply frame; the worker flushes after the handler returns.
  void send(std::uint8_t type, std::span<const std::byte> payload) { out_.frame(type, payload); }

  /// Close once the pending output flushes (Shutdown, protocol errors).
  /// The worker stops reading from the connection immediately.
  void close_after_flush() noexcept { closing_ = true; }

 private:
  friend class Reactor;
  explicit ReactorConn(FdHandle fd) noexcept : fd_(std::move(fd)) {}

  FdHandle fd_;
  ReadBuffer in_;
  WriteBuffer out_;
  std::vector<Frame> batch_;    ///< frames decoded in phase 1, dispatched in phase 2
  std::string pending_error_;   ///< decode-time ProtocolError, reported after the batch
  bool has_pending_error_ = false;
  bool closing_ = false;        ///< close after flush
  bool eof_ = false;            ///< peer closed cleanly; close after the batch
  bool dead_ = false;           ///< closed this round; object parked in the graveyard
  std::uint32_t interest_ = 0;  ///< epoll event mask currently registered
};

struct ReactorConfig {
  int workers = 2;
  /// stop(): grace period before stragglers are force-closed.
  int drain_timeout_ms = 5000;
  /// recv(2) size per readiness event (level-triggered epoll re-arms when
  /// more is buffered, so one bounded read keeps connections fair).
  std::size_t read_chunk = 64 * 1024;
};

/// Host callbacks, all optional and all invoked from worker threads.
struct ReactorHooks {
  std::function<void()> on_accept;
  /// Complete frames decoded from one connection in phase 1 (before any of
  /// them is dispatched); hosts use it to account queued work for shedding.
  std::function<void(std::size_t)> on_decoded;
  /// A straggler force-closed by the drain deadline.
  std::function<void(int fd)> on_forced_close;
  /// Hard connection failure: I/O error, mid-frame EOF, or a handler
  /// exception that is not a ProtocolError.
  std::function<void()> on_conn_error;
};

class Reactor {
 public:
  /// Invoked with every batch of frames decoded from `conn`; replies go
  /// through conn.send().  A thrown ProtocolError is routed to
  /// `on_protocol_error` and the connection closes after flushing.
  using FrameHandler = std::function<void(ReactorConn&, std::vector<Frame>&)>;
  /// The peer violated the protocol (oversized frame at decode, or a
  /// handler throw): send the error reply through conn.send(); the reactor
  /// closes the connection after flushing it.
  using ProtocolErrorHandler = std::function<void(ReactorConn&, const ProtocolError&)>;

  /// The listener must outlive the reactor; start() switches it (and every
  /// accepted connection) to non-blocking mode.
  Reactor(TcpListener& listener, FrameHandler on_frames, ProtocolErrorHandler on_protocol_error,
          ReactorConfig config = {}, ReactorHooks hooks = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  void start();
  /// Graceful drain (idempotent): stop accepting, serve until every
  /// connection closes or drain_timeout_ms passes, force-close the rest,
  /// join the workers.
  void stop();

  /// Live connections across all workers.
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return conn_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    FdHandle epoll;
    FdHandle wake;  ///< eventfd: new pinned connections, drain/stop signals
    std::thread thread;
    /// All of the below are touched only by the worker's own thread.
    std::unordered_map<int, std::unique_ptr<ReactorConn>> conns;
    std::vector<std::unique_ptr<ReactorConn>> graveyard;  ///< cleared at end of round
    bool listener_registered = false;
    /// Connections accepted by worker 0 but pinned here; guarded by mutex.
    std::mutex pending_mutex;
    std::vector<int> pending;
  };

  void worker_loop(Worker& worker);
  void accept_ready(Worker& worker);
  void adopt_pending(Worker& worker);
  void register_conn(Worker& worker, int fd);
  void read_and_decode(Worker& worker, ReactorConn& conn);
  void dispatch(Worker& worker, ReactorConn& conn);
  /// Flushes pending output, arms/disarms EPOLLOUT, and closes the
  /// connection when a requested close has fully flushed.
  void finish_io(Worker& worker, ReactorConn& conn);
  void close_conn(Worker& worker, ReactorConn& conn);
  void update_interest(Worker& worker, ReactorConn& conn, bool want_write);
  void conn_failure(Worker& worker, ReactorConn& conn);
  void wake_all();

  TcpListener* listener_;
  FrameHandler on_frames_;
  ProtocolErrorHandler on_protocol_error_;
  ReactorConfig config_;
  ReactorHooks hooks_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> conn_count_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> force_close_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;  ///< signaled as connections close
  bool started_ = false;
};

}  // namespace via
