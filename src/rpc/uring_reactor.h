// io_uring connection reactor (DESIGN.md §6j): the completion-driven
// sibling of the epoll backend in reactor.h.
//
// Same shape — a fixed pool of workers, least-connections pin-for-life,
// one dispatch seam — but the event source is one io_uring ring per worker
// driven entirely through raw syscalls (the toolchain image carries
// linux/io_uring.h, not liburing):
//
//   - the acceptor worker arms a multishot accept on the listener (one SQE
//     yields a CQE per connection; falls back to single-shot re-arming when
//     the kernel rejects the flag),
//   - each connection keeps at most one recv and one send op in flight;
//     recv lands directly in the connection's ReadBuffer, sends are staged
//     through WriteBuffer::stage()/consume() so the kernel always sees
//     pointer-stable bytes,
//   - submissions batch naturally: every SQE queued while processing a
//     completion burst is flushed by the single io_uring_enter at the top
//     of the loop,
//   - cross-thread wakeups (pinned handoffs, drain/stop) come from an
//     eventfd watched with a poll op.
//
// Backpressure withholds the recv resubmission instead of disarming
// EPOLLIN; everything else (caps, low-water resume, kept batch
// remainders, the aggregate sweep) is shared ReactorBase machinery.
//
// Lifecycle: ops hold kernel references to connection buffers, so a
// closing connection first cancels its ops (IORING_ASYNC_CANCEL_FD), then
// is destroyed only when its last CQE has been reaped — the fd is closed
// at destroy time, which also guarantees the fd number cannot be reused
// by a new accept while stale completions are still in flight (a
// generation tag in user_data guards the rest).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rpc/reactor.h"

struct io_uring_sqe;
struct io_uring_cqe;

namespace via {

/// The io_uring backend.  Construction is cheap; start() sets up the rings
/// and throws std::system_error when the kernel refuses (callers that want
/// graceful degradation should consult supported() first).
class UringReactor : public ReactorBase {
 public:
  using FrameHandler = ReactorBase::FrameHandler;
  using ProtocolErrorHandler = ReactorBase::ProtocolErrorHandler;

  UringReactor(TcpListener& listener, FrameHandler on_frames,
               ProtocolErrorHandler on_protocol_error, ReactorConfig config = {},
               ReactorHooks hooks = {});
  ~UringReactor() override;

  void start() override;
  void stop() override;

  /// True when this kernel can run the backend: io_uring_setup succeeds
  /// and the probe reports ACCEPT/RECV/SEND/POLL_ADD/ASYNC_CANCEL.
  /// Setting VIA_NO_URING=1 in the environment forces false (CI fallback
  /// and fallback-path tests).
  [[nodiscard]] static bool supported() noexcept;

 private:
  /// Raw ring state: the three mmaps and the userspace-side indices.
  struct Ring {
    Ring() = default;
    ~Ring();
    Ring(const Ring&) = delete;
    Ring& operator=(const Ring&) = delete;

    /// Sets up the ring (throws std::system_error on failure).
    void init(unsigned sq_entries, unsigned cq_entries);

    /// Next free SQE, zeroed; submits pending entries first when the
    /// queue is full.
    io_uring_sqe* get_sqe();
    /// Publishes queued SQEs and optionally blocks for `wait_n`
    /// completions.  When the kernel reports completion-side pressure
    /// (EAGAIN/EBUSY: CQ full), pending CQEs are drained into `spill` so
    /// the retry makes forward progress instead of livelocking.
    void submit(unsigned wait_n);
    /// Copies up to `max` completions out — the spill buffer first (those
    /// are older), then the CQ; advances the head.
    unsigned reap(io_uring_cqe* out, unsigned max);
    /// Moves every posted CQE out of the ring into `spill`.
    void spill_cq();

    int fd = -1;
    unsigned entries = 0;
    void* sq_ptr = nullptr;
    std::size_t sq_map_size = 0;
    void* cq_ptr = nullptr;  ///< aliases sq_ptr under IORING_FEAT_SINGLE_MMAP
    std::size_t cq_map_size = 0;
    void* sqe_ptr = nullptr;
    std::size_t sqe_map_size = 0;
    unsigned* sq_head = nullptr;
    unsigned* sq_tail = nullptr;
    unsigned* sq_mask = nullptr;
    unsigned* cq_head = nullptr;
    unsigned* cq_tail = nullptr;
    unsigned* cq_mask = nullptr;
    io_uring_sqe* sqes = nullptr;
    io_uring_cqe* cqes = nullptr;
    unsigned local_tail = 0;  ///< SQEs handed out, not yet published
    unsigned submitted = 0;   ///< SQEs published to the kernel
    std::vector<io_uring_cqe> spill;  ///< CQEs drained by a pressured submit()
    std::size_t spill_pos = 0;        ///< spill entries already handed to reap()
  };

  struct Worker {
    Ring ring;
    FdHandle wake;  ///< eventfd: new pinned connections, drain/stop signals
    std::thread thread;
    std::size_t index = 0;
    /// All of the below are touched only by the worker's own thread.
    std::unordered_map<int, std::unique_ptr<ReactorConn>> conns;
    std::vector<std::unique_ptr<ReactorConn>> graveyard;  ///< cleared at end of round
    std::vector<int> agg_paused_fds;
    std::uint32_t gen_counter = 0;
    int accept_inflight = 0;  ///< live accept ops on the listener
    int wake_inflight = 0;    ///< live poll ops on the eventfd
    bool accept_multishot = true;  ///< cleared on the first -EINVAL
    bool accept_stopped = false;   ///< draining: never re-arm accept
    bool teardown = false;
    /// Connections accepted by worker 0 but pinned here; guarded by mutex.
    std::mutex pending_mutex;
    std::vector<int> pending;
  };

  void worker_loop(Worker& worker);
  void run_worker(Worker& worker);
  void handle_cqe(Worker& worker, const io_uring_cqe& cqe, bool& woken);
  void handle_accept(Worker& worker, const io_uring_cqe& cqe);
  void handle_recv(Worker& worker, ReactorConn& conn, std::int32_t res);
  void handle_send(Worker& worker, ReactorConn& conn, std::int32_t res);
  void adopt_pending(Worker& worker);
  void register_conn(Worker& worker, int fd);
  /// Post-dispatch bookkeeping shared by every CQE path: stage sends,
  /// begin close when drained, apply pause/resume, re-arm the recv.
  void settle(Worker& worker, ReactorConn& conn);
  void sweep_paused(Worker& worker);
  /// Parks a paused connection with no in-flight ops on the aggregate
  /// sweep list (deduplicated): no CQE is coming to retry its resume, so
  /// only the sweep can revive it once the aggregate drains.
  void list_for_sweep(Worker& worker, ReactorConn& conn);
  void arm_accept(Worker& worker);
  void arm_wake(Worker& worker);
  void arm_recv(Worker& worker, ReactorConn& conn);
  void stage_send(Worker& worker, ReactorConn& conn);
  /// Cancels the connection's in-flight ops and marks it dead; the object
  /// is destroyed once the last CQE is reaped (maybe_destroy).
  void begin_close(Worker& worker, ReactorConn& conn);
  void maybe_destroy(Worker& worker, ReactorConn& conn);
  void conn_failure(Worker& worker, ReactorConn& conn);
  void cancel_fd_ops(Worker& worker, int fd);
  void wake_all();

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace via
