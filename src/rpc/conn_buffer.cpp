#include "rpc/conn_buffer.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace via {

namespace {
constexpr std::size_t kFrameHeaderBytes = 5;  ///< u32 payload_len + u8 msg_type
}  // namespace

std::span<std::byte> ReadBuffer::writable(std::size_t min_size) {
  if (begin_ == end_) {
    begin_ = end_ = 0;
  } else if (begin_ >= buf_.size() / 2) {
    // The consumed prefix dominates: slide the live bytes down so the
    // buffer doesn't grow without bound on a long-lived connection.
    std::memmove(buf_.data(), buf_.data() + begin_, end_ - begin_);
    end_ -= begin_;
    begin_ = 0;
  }
  if (buf_.size() - end_ < min_size) buf_.resize(end_ + min_size);
  return std::span(buf_).subspan(end_, buf_.size() - end_);
}

bool ReadBuffer::next_frame(Frame& out) {
  const std::size_t avail = end_ - begin_;
  if (avail < kFrameHeaderBytes) return false;
  const std::byte* p = buf_.data() + begin_;
  std::uint32_t len = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  if (len > kMaxPayload) throw ProtocolError("frame too large");
  if (avail < kFrameHeaderBytes + len) return false;
  out.type = static_cast<std::uint8_t>(p[4]);
  out.payload.assign(p + kFrameHeaderBytes, p + kFrameHeaderBytes + len);
  begin_ += kFrameHeaderBytes + len;
  return true;
}

void WriteBuffer::frame(std::uint8_t type, std::span<const std::byte> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  buf_.reserve(buf_.size() + kFrameHeaderBytes + payload.size());
  for (std::size_t i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xFF));
  }
  buf_.push_back(static_cast<std::byte>(type));
  buf_.insert(buf_.end(), payload.begin(), payload.end());
}

std::span<const std::byte> WriteBuffer::stage() {
  if (staged_pos_ == staged_.size() && !buf_.empty()) {
    // Staged region fully retired: promote the queued bytes wholesale.
    // swap() keeps the drained staged_ capacity around as the next buf_,
    // so steady-state traffic ping-pongs two allocations with zero copies.
    staged_.clear();
    std::swap(staged_, buf_);
    staged_pos_ = 0;
  }
  return std::span<const std::byte>(staged_).subspan(staged_pos_);
}

void WriteBuffer::consume(std::size_t n) noexcept {
  staged_pos_ += n;
  if (staged_pos_ < staged_.size()) return;
  staged_pos_ = 0;
  staged_.clear();
  if (staged_.capacity() > kRetainCapacity) {
    // Full drain of an oversized staging area: give the pages back.  At
    // 10k connections a transient burst otherwise pins its high-water
    // allocation per connection for the rest of the connection's life.
    staged_.shrink_to_fit();
  }
}

bool WriteBuffer::flush(int fd) {
  for (auto span = stage(); !span.empty(); span = stage()) {
    const ssize_t n = ::send(fd, span.data(), span.size(), MSG_NOSIGNAL);
    if (n > 0) {
      consume(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    throw std::system_error(errno, std::generic_category(), "send");
  }
  return true;
}

}  // namespace via
