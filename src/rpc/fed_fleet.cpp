#include "rpc/fed_fleet.h"

#include <algorithm>
#include <utility>

#include "rpc/client.h"
#include "rpc/errors.h"

namespace via {

FedFleet::FedFleet(const RelayOptionTable& options, BackboneFn backbone, FedFleetConfig config)
    : options_(&options), backbone_(std::move(backbone)), cfg_(std::move(config)) {
  cfg_.replicas = std::max<std::uint32_t>(1, cfg_.replicas);
  cfg_.fed.replica_ports.assign(cfg_.replicas, 0);
  policies_.resize(cfg_.replicas);
  exchanges_.resize(cfg_.replicas);
  servers_.resize(cfg_.replicas);
  reports_before_kill_.assign(cfg_.replicas, 0);
  decisions_before_kill_.assign(cfg_.replicas, 0);
  for (std::uint32_t r = 0; r < cfg_.replicas; ++r) {
    policies_[r] = std::make_unique<ViaPolicy>(*options_, backbone_, cfg_.via);
    exchanges_[r] = std::make_unique<fed::SegmentExchange>();
    // Peer-segment source (§6k): each prepare_refresh folds whatever this
    // replica's peers last gossiped.  Before any gossip the collect is
    // empty, so a quiet fleet stays bit-identical to standalone policies.
    policies_[r]->set_peer_segment_source(
        [ex = exchanges_[r].get()] { return ex->collect(); });
  }
}

FedFleet::~FedFleet() { stop(); }

ServerConfig FedFleet::server_config_for(std::uint32_t r) const {
  ServerConfig sc = cfg_.server;
  sc.replica_id = r;
  sc.ring_epoch = cfg_.fed.ring_epoch;
  return sc;
}

void FedFleet::wire(std::uint32_t r) {
  servers_[r]->set_gossip_handler([ex = exchanges_[r].get()](const GossipSegmentsMsg& msg) {
    return ex->accept(fed::SegmentUpdate{msg.replica_id, msg.ring_epoch, msg.segments});
  });
}

void FedFleet::start() {
  if (started_) return;
  for (std::uint32_t r = 0; r < cfg_.replicas; ++r) {
    servers_[r] = std::make_unique<ControllerServer>(*policies_[r], cfg_.fed.replica_ports[r],
                                                     server_config_for(r));
    wire(r);
    servers_[r]->start();
    cfg_.fed.replica_ports[r] = servers_[r]->port();
  }
  started_ = true;
}

void FedFleet::stop() {
  for (std::uint32_t r = 0; r < cfg_.replicas; ++r) kill(r);
  started_ = false;
}

void FedFleet::kill(std::uint32_t r) {
  if (servers_[r] == nullptr) return;
  reports_before_kill_[r] += servers_[r]->reports_received();
  decisions_before_kill_[r] += servers_[r]->decisions_served();
  servers_[r]->stop();
  servers_[r].reset();
}

void FedFleet::restart(std::uint32_t r) {
  if (servers_[r] != nullptr) return;
  // Same port as before the kill (SO_REUSEADDR on the listener), so
  // clients re-home back without any reconfiguration — a process restart,
  // not a fleet change.
  servers_[r] = std::make_unique<ControllerServer>(*policies_[r], cfg_.fed.replica_ports[r],
                                                   server_config_for(r));
  wire(r);
  servers_[r]->start();
}

std::size_t FedFleet::gossip_once() {
  std::size_t pushes = 0;
  for (std::uint32_t from = 0; from < cfg_.replicas; ++from) {
    if (servers_[from] == nullptr) continue;
    GossipSegmentsMsg msg;
    msg.replica_id = from;
    msg.ring_epoch = cfg_.fed.ring_epoch;
    msg.segments = fed::SegmentExchange::render(
        policies_[from]->model()->predictor().tomography(), cfg_.fed.exchange_max_segments);
    if (msg.segments.empty()) continue;
    for (std::uint32_t to = 0; to < cfg_.replicas; ++to) {
      if (to == from || servers_[to] == nullptr) continue;
      try {
        ClientConfig cc;
        cc.request_timeout_ms = 1000;
        ControllerClient peer(cfg_.fed.replica_ports[to], cc);
        (void)peer.gossip_segments(msg);
        peer.shutdown();
        ++pushes;
      } catch (const std::exception&) {
        // A peer that died between the liveness check and the push just
        // misses this round; the next round covers it.
      }
    }
  }
  return pushes;
}

std::int64_t FedFleet::total_reports() const noexcept {
  std::int64_t total = 0;
  for (std::uint32_t r = 0; r < cfg_.replicas; ++r) {
    total += reports_before_kill_[r];
    if (servers_[r] != nullptr) total += servers_[r]->reports_received();
  }
  return total;
}

std::int64_t FedFleet::total_decisions() const noexcept {
  std::int64_t total = 0;
  for (std::uint32_t r = 0; r < cfg_.replicas; ++r) {
    total += decisions_before_kill_[r];
    if (servers_[r] != nullptr) total += servers_[r]->decisions_served();
  }
  return total;
}

}  // namespace via
