// Flight recorder: a bounded ring of structured "something notable
// happened" events — health-state transitions, RPC errors/retries/
// fallbacks, refresh prepare/commit ticks, shed and drain actions — kept
// resident so the seconds *before* a failure can be reconstructed after
// the fact.  Events are rare by construction (no per-call producers), so
// recording is a mutex-protected ring insert, and every recorder mirrors
// into a process-wide ring whose global sequence numbers give one total
// order across client, server, and policy recorders.
//
// Dumps are JSONL (one self-contained object per line) parseable back via
// FlightEvent::from_jsonl, written on demand (GetFlightRecord RPC, admin
// HTTP), on fault (test failure listeners), or at exit (--flight-recorder).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace via::obs {

enum class FlightEventKind : std::uint8_t {
  HealthQuarantine = 0,  ///< relay entered quarantine (a = relay id)
  HealthReadmit = 1,     ///< relay readmitted from probation (a = relay id)
  RpcError = 2,          ///< client request failed (detail = kind: message)
  RpcRetry = 3,          ///< client retrying after a retryable error
  RpcReconnect = 4,      ///< client re-established its connection
  RpcFallback = 5,       ///< client gave up and used the direct path
  Shed = 6,              ///< server shed a request under overload (Busy)
  ProtocolError = 7,     ///< server received a malformed frame
  DrainForcedClose = 8,  ///< drain timeout forced a connection shut
  RefreshPrepare = 9,    ///< model rebuild started (a = refresh time)
  RefreshCommit = 10,    ///< new model published (a = refresh time)
  OutageFallback = 11,   ///< every candidate quarantined; direct served
  Note = 12,             ///< freeform annotation
  BackpressurePause = 13,   ///< reactor paused a connection (a = fd, b = queued bytes)
  BackpressureResume = 14,  ///< paused connection resumed (a = fd, b = queued bytes)
  ReplicaDown = 15,       ///< fed client marked a controller replica down (a = replica)
  ReplicaRehomed = 16,    ///< traffic re-homed to the ring successor (a = from, b = to)
  ReplicaRecovered = 17,  ///< probation probe succeeded; replica back in rotation (a = replica)
  RingEpochBump = 18,     ///< reply carried a newer ring epoch (a = ours, b = theirs)
};

inline constexpr std::size_t kNumFlightEventKinds = 19;

[[nodiscard]] std::string_view flight_event_kind_name(FlightEventKind k) noexcept;
[[nodiscard]] std::optional<FlightEventKind> flight_event_kind_from(
    std::string_view name) noexcept;

/// One recorded event.  `seq` comes from a process-global counter, so
/// events from different recorders merge into one total order; `wall_us`
/// is steady-clock microseconds since process start; `time` is the domain
/// timestamp (sim/report seconds) when the producer has one, else -1.
struct FlightEvent {
  std::int64_t seq = 0;
  std::int64_t wall_us = 0;
  TimeSec time = -1;
  FlightEventKind kind = FlightEventKind::Note;
  std::string detail;
  std::int64_t a = -1;  ///< kind-specific argument (relay id, refresh time, ...)
  std::int64_t b = -1;

  /// One JSON object, no trailing newline.
  [[nodiscard]] std::string to_jsonl() const;
  /// Parses a to_jsonl() line; nullopt on malformed input.
  [[nodiscard]] static std::optional<FlightEvent> from_jsonl(std::string_view line);
};

/// Bounded, thread-safe event ring.  Capacity 0 disables recording (and
/// the process mirror) for this instance.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096);

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }

  void record(FlightEventKind kind, std::string_view detail = {}, std::int64_t a = -1,
              std::int64_t b = -1, TimeSec time = -1);

  /// Resident events in sequence order (oldest first).
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Writes the resident events as JSONL, oldest first.
  void export_jsonl(std::ostream& os) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::int64_t recorded() const;  ///< total ever recorded

  void clear();

  /// Process-wide recorder; every other recorder mirrors into it.
  [[nodiscard]] static FlightRecorder& process();

 private:
  void store(const FlightEvent& event);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<FlightEvent> ring_;
  std::size_t next_ = 0;
  std::int64_t recorded_ = 0;
};

}  // namespace via::obs
