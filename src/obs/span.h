// Request tracing: spans, a lock-striped bounded span buffer, and a
// Tracer with deterministic head-based sampling.
//
// A trace is identified by a 64-bit trace id that rides the RPC frames
// from the client through the controller into ViaPolicy::choose, so the
// sub-stages of one slow decision line up under one root span.  Sampling
// is head-based and deterministic: whether a trace is recorded is a pure
// function of its id, so every component along the path reaches the same
// verdict without coordination.  Sample rate 0 disables tracing entirely —
// call sites carry a null Tracer* and the hot path pays a single branch.
//
// Spans export as Chrome trace-event JSON ("X" complete events), loadable
// in Perfetto / chrome://tracing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace via::obs {

/// One timed operation inside a trace.  `name` must point at a string
/// literal (every call site does); spans are plain data otherwise.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root of its trace
  const char* name = "";
  std::uint64_t start_ns = 0;  ///< steady-clock ns since process start
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< hashed thread id (Chrome trace lane)
};

struct TraceConfig {
  /// Head sampling: record 1 in N traces (deterministic on trace id).
  /// 0 disables tracing; 1 records everything.
  std::uint32_t sample_rate = 0;
  std::size_t buffer_capacity = 4096;  ///< resident spans (ring, oldest dropped)
  std::size_t stripes = 8;             ///< lock stripes (rounded up to a power of 2)
};

/// Bounded lock-striped span sink.  A trace's spans hash to one stripe so
/// they stay contiguous; each stripe is an independent mutex + ring, so
/// concurrent handler threads rarely contend.
class SpanBuffer {
 public:
  explicit SpanBuffer(std::size_t capacity = 4096, std::size_t stripes = 8);
  ~SpanBuffer();

  SpanBuffer(const SpanBuffer&) = delete;
  SpanBuffer& operator=(const SpanBuffer&) = delete;

  void add(const Span& span);

  /// Resident spans across all stripes, ordered by start time.
  [[nodiscard]] std::vector<Span> snapshot() const;

  [[nodiscard]] std::int64_t recorded() const;  ///< total ever added
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear();

  /// Process-wide sink: every Tracer mirrors its spans here, so one dump
  /// (e.g. the CI failure artifact) sees the whole process regardless of
  /// which Telemetry instance owned the tracer.
  [[nodiscard]] static SpanBuffer& process();

 private:
  struct Stripe;
  [[nodiscard]] Stripe& stripe_for(std::uint64_t trace_id) const;

  std::size_t capacity_;
  std::size_t stripe_mask_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// Deterministic trace id for a call whose caller did not supply one
/// (CallContext::trace_id == 0).  Both the RPC server and a standalone
/// ViaPolicy derive ids through this, so a replayed call id lands in the
/// same sampling bucket everywhere.
[[nodiscard]] inline std::uint64_t derive_trace_id(std::uint64_t call_id) noexcept {
  return hash_mix(0x7aceULL, call_id);
}

/// Span factory + sampling verdict + sink, owned by a Telemetry instance.
class Tracer {
 public:
  explicit Tracer(TraceConfig config = {});

  /// False when constructed with sample_rate 0; callers keep a null
  /// Tracer* in that case so disabled tracing costs one pointer test.
  [[nodiscard]] bool enabled() const noexcept { return config_.sample_rate > 0; }

  /// Deterministic head-sampling verdict for a trace id.
  [[nodiscard]] bool sampled(std::uint64_t trace_id) const noexcept {
    const std::uint32_t rate = config_.sample_rate;
    return rate == 1 || (rate > 1 && hash_mix(trace_id, kSampleSalt) % rate == 0);
  }

  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Monotonic ns since process start (one epoch for every tracer, so
  /// spans from different components line up on one timeline).
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

  void emit(const Span& span);

  [[nodiscard]] const SpanBuffer& buffer() const noexcept { return buffer_; }
  [[nodiscard]] SpanBuffer& buffer() noexcept { return buffer_; }
  [[nodiscard]] const TraceConfig& config() const noexcept { return config_; }

  /// Hashed id of the calling thread, for the Chrome trace `tid` lane.
  [[nodiscard]] static std::uint32_t current_tid() noexcept;

 private:
  static constexpr std::uint64_t kSampleSalt = 0x5a7ace;

  TraceConfig config_;
  SpanBuffer buffer_;
  std::atomic<std::uint64_t> next_span_id_{0};
};

/// RAII single span: allocates its span id up front (so callees can parent
/// under it) and emits on destruction.  Inert when `tracer` is null or the
/// trace is not sampled.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::uint64_t trace_id, std::uint64_t parent_id,
             const char* name) noexcept
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    if (!tracer_->sampled(trace_id)) {
      tracer_ = nullptr;
      return;
    }
    span_.trace_id = trace_id;
    span_.span_id = tracer_->next_span_id();
    span_.parent_id = parent_id;
    span_.name = name;
    span_.tid = Tracer::current_tid();
    span_.start_ns = Tracer::now_ns();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    span_.dur_ns = Tracer::now_ns() - span_.start_ns;
    tracer_->emit(span_);
  }

  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }
  /// 0 when inactive, so it can be passed straight through as a parent id.
  [[nodiscard]] std::uint64_t span_id() const noexcept {
    return tracer_ != nullptr ? span_.span_id : 0;
  }

 private:
  Tracer* tracer_;
  Span span_{};
};

/// RAII multi-stage scope for hot paths like ViaPolicy::choose: records up
/// to kMaxStages sequential stage boundaries with one clock read each and
/// emits a root span plus one child span per stage on destruction.  All
/// bookkeeping lives on the stack; nothing is published until the scope
/// ends, so the traced function's own work is undisturbed.  Inert (single
/// branch per call) when `tracer` is null or the trace is not sampled.
class StagedSpan {
 public:
  static constexpr std::size_t kMaxStages = 8;

  StagedSpan(Tracer* tracer, std::uint64_t trace_id, std::uint64_t parent_id,
             const char* name) noexcept
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    if (!tracer_->sampled(trace_id)) {
      tracer_ = nullptr;
      return;
    }
    trace_id_ = trace_id;
    parent_id_ = parent_id;
    name_ = name;
    start_ns_ = last_ns_ = Tracer::now_ns();
  }

  StagedSpan(const StagedSpan&) = delete;
  StagedSpan& operator=(const StagedSpan&) = delete;

  /// Closes the current stage: everything since the previous boundary (or
  /// the scope start) becomes one child span named `name`.
  void stage(const char* name) noexcept {
    if (tracer_ == nullptr || stage_count_ >= kMaxStages) return;
    const std::uint64_t now = Tracer::now_ns();
    stages_[stage_count_++] = Mark{name, last_ns_, now};
    last_ns_ = now;
  }

  /// Names the remainder (last boundary to scope end); by default the tail
  /// is folded into the root span unnamed.  The latest call wins, so each
  /// exit path of the traced function can label how it finished.
  void name_tail(const char* name) noexcept {
    if (tracer_ != nullptr) tail_name_ = name;
  }

  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

  ~StagedSpan();

 private:
  struct Mark {
    const char* name;
    std::uint64_t begin_ns;
    std::uint64_t end_ns;
  };

  Tracer* tracer_;
  std::uint64_t trace_id_ = 0;
  std::uint64_t parent_id_ = 0;
  const char* name_ = "";
  const char* tail_name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t last_ns_ = 0;
  std::size_t stage_count_ = 0;
  std::array<Mark, kMaxStages> stages_{};
};

// ------------------------------------------------------------ export

/// Writes spans as a Chrome trace-event JSON document ("X" complete
/// events, timestamps in microseconds), loadable in Perfetto.  At most
/// `max_events` spans are written (newest kept) so callers can bound the
/// document size.
void export_chrome_trace(std::span<const Span> spans, std::ostream& os,
                         std::size_t max_events = static_cast<std::size_t>(-1));

/// export_chrome_trace into a string, trimmed (newest spans kept) until it
/// fits `max_bytes` (0 = unbounded).
[[nodiscard]] std::string chrome_trace_json(const SpanBuffer& buffer, std::size_t max_bytes = 0);

}  // namespace via::obs
