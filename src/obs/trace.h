// Per-call decision tracing: one structured event per routed call,
// recording *why* the controller picked the option it picked (§4.4-4.6
// decision taxonomy).  Events live in a bounded ring buffer (old entries
// are overwritten) and export as JSONL, one self-contained object per
// line, parseable back into DecisionEvent for offline analysis.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace via::obs {

/// Why a call was routed the way it was.  Exactly one reason per call.
enum class DecisionReason : std::uint8_t {
  Ucb = 0,             ///< modified-UCB1 pick over the pair's top-k set
  EpsilonExplore = 1,  ///< ε general-exploration pick over all candidates
  BudgetVeto = 2,      ///< relay denied by budget/relay-cap; direct used
  FallbackDirect = 3,  ///< cold start: nothing predictable, direct used
  BackgroundRelay = 4, ///< connectivity-relayed traffic, not a policy pick
  QuarantinedRelay = 5,    ///< pick used a quarantined relay; rerouted
  FallbackDirectOutage = 6,///< all top-k candidates quarantined; direct used
};

inline constexpr std::size_t kNumDecisionReasons = 7;

[[nodiscard]] constexpr std::string_view decision_reason_name(DecisionReason r) noexcept {
  switch (r) {
    case DecisionReason::Ucb:
      return "ucb";
    case DecisionReason::EpsilonExplore:
      return "epsilon_explore";
    case DecisionReason::BudgetVeto:
      return "budget_veto";
    case DecisionReason::FallbackDirect:
      return "fallback_direct";
    case DecisionReason::BackgroundRelay:
      return "background_relay";
    case DecisionReason::QuarantinedRelay:
      return "quarantined_relay";
    case DecisionReason::FallbackDirectOutage:
      return "fallback_direct_outage";
  }
  return "?";
}

[[nodiscard]] std::optional<DecisionReason> decision_reason_from(std::string_view name) noexcept;

/// One routed call's decision record.  `predicted` is the controller's
/// mean prediction for the chosen option on its target metric at decision
/// time; `observed` is the measurement that came back (NaN until the
/// completed call is reported, and serialized as JSON null).
struct DecisionEvent {
  CallId call_id = 0;
  TimeSec time = 0;
  AsId src_as = kInvalidAs;
  AsId dst_as = kInvalidAs;
  OptionId option = kInvalidOption;
  DecisionReason reason = DecisionReason::FallbackDirect;
  double predicted = std::numeric_limits<double>::quiet_NaN();
  double observed = std::numeric_limits<double>::quiet_NaN();
  std::int32_t top_k_size = 0;      ///< size of the pair's top-k set
  std::int64_t bandit_pulls = 0;    ///< pair bandit's total plays at decision time

  /// One JSON object, no trailing newline.
  [[nodiscard]] std::string to_jsonl() const;
  /// Parses a to_jsonl() line; nullopt on malformed input.
  [[nodiscard]] static std::optional<DecisionEvent> from_jsonl(std::string_view line);
};

/// Bounded, thread-safe ring buffer of DecisionEvents.  A call-id index
/// lets the completed-call measurement be filled into its event in O(1)
/// while the event is still resident.  Capacity 0 disables the ring
/// entirely: record()/fill_observed() become no-ops, and callers can (and
/// the policy does) check enabled() to skip building events altogether.
class DecisionTrace {
 public:
  explicit DecisionTrace(std::size_t capacity = 4096);

  /// False when constructed with capacity 0 (tracing turned off).
  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }

  void record(const DecisionEvent& event);

  /// Fills `observed` into the resident event for `call_id`, if any.
  void fill_observed(CallId call_id, double observed);

  /// Resident events, oldest first.
  [[nodiscard]] std::vector<DecisionEvent> snapshot() const;

  /// Writes the resident events as JSONL, oldest first.
  void export_jsonl(std::ostream& os) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::int64_t recorded() const;  ///< total ever recorded
  [[nodiscard]] std::int64_t dropped() const;   ///< overwritten by wraparound

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<DecisionEvent> ring_;
  std::size_t next_ = 0;  ///< slot the next event goes into
  std::int64_t recorded_ = 0;
  std::unordered_map<CallId, std::size_t> index_;  ///< call id -> ring slot
};

}  // namespace via::obs
