#include "obs/flight_recorder.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <ostream>

#include "obs/export.h"

namespace via::obs {

namespace {

std::int64_t wall_us_now() {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               epoch)
      .count();
}

std::atomic<std::int64_t>& global_seq() {
  static std::atomic<std::int64_t> seq{0};
  return seq;
}

constexpr std::string_view kKindNames[kNumFlightEventKinds] = {
    "health_quarantine", "health_readmit", "rpc_error",          "rpc_retry",
    "rpc_reconnect",     "rpc_fallback",   "shed",               "protocol_error",
    "drain_forced_close", "refresh_prepare", "refresh_commit",   "outage_fallback",
    "note",              "backpressure_pause", "backpressure_resume",
    "replica_down",      "replica_rehomed",  "replica_recovered",  "ring_epoch_bump",
};

/// Finds `"key":` and returns the raw value text (up to the next ',' or
/// '}' outside a string), honoring backslash escapes inside strings.
std::optional<std::string_view> raw_value(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view rest = line.substr(pos + needle.size());
  std::size_t end = 0;
  bool in_string = false;
  bool escaped = false;
  for (; end < rest.size(); ++end) {
    const char c = rest[end];
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string && c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') in_string = !in_string;
    if (!in_string && (c == ',' || c == '}')) break;
  }
  return rest.substr(0, end);
}

template <typename T>
std::optional<T> parse_int(std::string_view raw) {
  T v{};
  const auto [ptr, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), v);
  if (ec != std::errc{} || ptr != raw.data() + raw.size()) return std::nullopt;
  return v;
}

}  // namespace

std::string_view flight_event_kind_name(FlightEventKind k) noexcept {
  const auto i = static_cast<std::size_t>(k);
  return i < kNumFlightEventKinds ? kKindNames[i] : "?";
}

std::optional<FlightEventKind> flight_event_kind_from(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNumFlightEventKinds; ++i) {
    if (kKindNames[i] == name) return static_cast<FlightEventKind>(i);
  }
  return std::nullopt;
}

std::string FlightEvent::to_jsonl() const {
  std::string out;
  out.reserve(128 + detail.size());
  out += "{\"seq\":";
  out += std::to_string(seq);
  out += ",\"wall_us\":";
  out += std::to_string(wall_us);
  out += ",\"time\":";
  out += std::to_string(time);
  out += ",\"kind\":\"";
  out += flight_event_kind_name(kind);
  out += "\",\"detail\":\"";
  out += json_escape(detail);
  out += "\",\"a\":";
  out += std::to_string(a);
  out += ",\"b\":";
  out += std::to_string(b);
  out += "}";
  return out;
}

std::optional<FlightEvent> FlightEvent::from_jsonl(std::string_view line) {
  const auto seq_raw = raw_value(line, "seq");
  const auto wall_raw = raw_value(line, "wall_us");
  const auto time_raw = raw_value(line, "time");
  const auto kind_raw = raw_value(line, "kind");
  const auto detail_raw = raw_value(line, "detail");
  const auto a_raw = raw_value(line, "a");
  const auto b_raw = raw_value(line, "b");
  if (!seq_raw || !wall_raw || !time_raw || !kind_raw || !detail_raw || !a_raw || !b_raw) {
    return std::nullopt;
  }
  const auto seq_v = parse_int<std::int64_t>(*seq_raw);
  const auto wall_v = parse_int<std::int64_t>(*wall_raw);
  const auto time_v = parse_int<TimeSec>(*time_raw);
  const auto a_v = parse_int<std::int64_t>(*a_raw);
  const auto b_v = parse_int<std::int64_t>(*b_raw);
  if (!seq_v || !wall_v || !time_v || !a_v || !b_v) return std::nullopt;

  auto unquote = [](std::string_view s) -> std::optional<std::string_view> {
    if (s.size() < 2 || s.front() != '"' || s.back() != '"') return std::nullopt;
    s.remove_prefix(1);
    s.remove_suffix(1);
    return s;
  };
  const auto kind_name = unquote(*kind_raw);
  const auto detail_quoted = unquote(*detail_raw);
  if (!kind_name || !detail_quoted) return std::nullopt;
  const auto kind_v = flight_event_kind_from(*kind_name);
  if (!kind_v) return std::nullopt;

  FlightEvent e;
  e.seq = *seq_v;
  e.wall_us = *wall_v;
  e.time = *time_v;
  e.kind = *kind_v;
  e.detail = json_unescape(*detail_quoted);
  e.a = *a_v;
  e.b = *b_v;
  return e;
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void FlightRecorder::record(FlightEventKind kind, std::string_view detail, std::int64_t a,
                            std::int64_t b, TimeSec time) {
  if (capacity_ == 0) return;
  FlightEvent event;
  event.seq = global_seq().fetch_add(1, std::memory_order_relaxed) + 1;
  event.wall_us = wall_us_now();
  event.time = time;
  event.kind = kind;
  event.detail = std::string(detail);
  event.a = a;
  event.b = b;
  store(event);
  // Mirror (with the same seq) into the process-wide recorder so a single
  // dump totally orders events from every component.
  FlightRecorder& proc = process();
  if (this != &proc && proc.enabled()) proc.store(event);
}

void FlightRecorder::store(const FlightEvent& event) {
  const std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  {
    const std::lock_guard lock(mutex_);
    out.reserve(ring_.size());
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) { return x.seq < y.seq; });
  return out;
}

void FlightRecorder::export_jsonl(std::ostream& os) const {
  for (const FlightEvent& e : snapshot()) os << e.to_jsonl() << '\n';
}

std::int64_t FlightRecorder::recorded() const {
  const std::lock_guard lock(mutex_);
  return recorded_;
}

void FlightRecorder::clear() {
  const std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
}

FlightRecorder& FlightRecorder::process() {
  static FlightRecorder instance(8192);
  return instance;
}

}  // namespace via::obs
