// Snapshot exporters: render a MetricsSnapshot for humans (aligned text
// table), machines (JSON), or scrapers (Prometheus text exposition format,
// with dots in metric names mapped to underscores).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace via::obs {

/// Wire-stable format selector (also used by the GetStats RPC).
enum class StatsFormat : std::uint8_t { Json = 0, Prometheus = 1, Table = 2 };

void render_table(const MetricsSnapshot& snap, std::ostream& os);
void render_json(const MetricsSnapshot& snap, std::ostream& os);
void render_prometheus(const MetricsSnapshot& snap, std::ostream& os);

[[nodiscard]] std::string render_stats(const MetricsSnapshot& snap, StatsFormat format);

}  // namespace via::obs
