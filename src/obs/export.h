// Snapshot exporters: render a MetricsSnapshot for humans (aligned text
// table), machines (JSON), or scrapers (Prometheus text exposition format,
// with dots in metric names mapped to underscores).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace via::obs {

/// Wire-stable format selector (also used by the GetStats RPC).
enum class StatsFormat : std::uint8_t { Json = 0, Prometheus = 1, Table = 2 };

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters (\n, \t, ... and \u00XX for the
/// rest).  Shared by every JSON/JSONL emitter in the subsystem so no
/// exporter can produce unparseable output from a hostile metric name.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Inverse of json_escape (also accepts plain \uXXXX below 0x80).
/// Malformed escapes are passed through verbatim rather than rejected.
[[nodiscard]] std::string json_unescape(std::string_view s);

void render_table(const MetricsSnapshot& snap, std::ostream& os);
void render_json(const MetricsSnapshot& snap, std::ostream& os);
void render_prometheus(const MetricsSnapshot& snap, std::ostream& os);

[[nodiscard]] std::string render_stats(const MetricsSnapshot& snap, StatsFormat format);

}  // namespace via::obs
