#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace via::obs {

LatencyHistogram::LatencyHistogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      counts_(bounds_.size() + 1) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void LatencyHistogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void LatencyHistogram::merge(const HistogramSample& sample) noexcept {
  if (sample.counts.size() != counts_.size() ||
      !std::equal(sample.upper_bounds.begin(), sample.upper_bounds.end(), bounds_.begin(),
                  bounds_.end())) {
    return;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i].fetch_add(sample.counts[i], std::memory_order_relaxed);
  }
  count_.fetch_add(sample.count, std::memory_order_relaxed);
  sum_.fetch_add(sample.sum, std::memory_order_relaxed);
}

std::vector<double> LatencyHistogram::exponential_bounds(double first, double factor,
                                                         std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  double b = first;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

std::vector<double> LatencyHistogram::linear_bounds(double first, double step, std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(first + step * static_cast<double>(i));
  return out;
}

double HistogramSample::quantile(double q) const noexcept {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      // The overflow bucket has no finite bound; report the last edge.
      return i < upper_bounds.size() ? upper_bounds[i] : upper_bounds.back();
    }
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

std::int64_t MetricsSnapshot::counter_value(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double MetricsSnapshot::gauge_value(std::string_view name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

const HistogramSample* MetricsSnapshot::find_histogram(std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name,
                                             std::span<const double> upper_bounds) {
  const std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<LatencyHistogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.upper_bounds.assign(h->upper_bounds().begin(), h->upper_bounds().end());
    s.counts.reserve(h->bucket_count());
    for (std::size_t i = 0; i < h->bucket_count(); ++i) s.counts.push_back(h->bucket(i));
    s.count = h->count();
    s.sum = h->sum();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::merge_into(MetricsRegistry& target) const {
  const MetricsSnapshot snap = snapshot();  // copies under our own lock only
  for (const auto& c : snap.counters) target.counter(c.name).inc(c.value);
  for (const auto& g : snap.gauges) target.gauge(g.name).set(g.value);
  for (const auto& h : snap.histograms) {
    target.histogram(h.name, h.upper_bounds).merge(h);
  }
}

MetricsRegistry& MetricsRegistry::process() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace via::obs
