#include "obs/export.h"

#include <cmath>
#include <ostream>
#include <sstream>

#include "util/table.h"

namespace via::obs {

namespace {

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

void json_number(std::ostream& os, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    os << "null";
  } else {
    os << v;
  }
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '\\' || i + 1 >= s.size()) {
      out.push_back(c);
      continue;
    }
    const char e = s[++i];
    switch (e) {
      case '"':
      case '\\':
      case '/':
        out.push_back(e);
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'b':
        out.push_back('\b');
        break;
      case 'f':
        out.push_back('\f');
        break;
      case 'u': {
        if (i + 4 < s.size()) {
          unsigned v = 0;
          bool ok = true;
          for (std::size_t j = 1; j <= 4; ++j) {
            const char h = s[i + j];
            v <<= 4;
            if (h >= '0' && h <= '9') {
              v |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              v |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              v |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              ok = false;
              break;
            }
          }
          if (ok && v < 0x80) {
            out.push_back(static_cast<char>(v));
            i += 4;
            break;
          }
        }
        out += "\\u";  // malformed or non-ASCII: pass through verbatim
        break;
      }
      default:
        out.push_back('\\');
        out.push_back(e);
    }
  }
  return out;
}

void render_table(const MetricsSnapshot& snap, std::ostream& os) {
  if (!snap.counters.empty()) {
    TextTable t({"counter", "value"});
    for (const auto& c : snap.counters) t.row().cell(c.name).cell_int(c.value);
    t.print(os);
    os << "\n";
  }
  if (!snap.gauges.empty()) {
    TextTable t({"gauge", "value"});
    for (const auto& g : snap.gauges) t.row().cell(g.name).cell(g.value, 3);
    t.print(os);
    os << "\n";
  }
  if (!snap.histograms.empty()) {
    TextTable t({"histogram", "count", "mean", "p50", "p95", "p99"});
    for (const auto& h : snap.histograms) {
      t.row()
          .cell(h.name)
          .cell_int(h.count)
          .cell(h.mean(), 2)
          .cell(h.quantile(0.50), 1)
          .cell(h.quantile(0.95), 1)
          .cell(h.quantile(0.99), 1);
    }
    t.print(os);
  }
}

void render_json(const MetricsSnapshot& snap, std::ostream& os) {
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(snap.counters[i].name) << "\":" << snap.counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(snap.gauges[i].name) << "\":";
    json_number(os, snap.gauges[i].value);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i > 0) os << ",";
    os << "\"" << json_escape(h.name) << "\":{\"count\":" << h.count << ",\"sum\":";
    json_number(os, h.sum);
    os << ",\"bounds\":[";
    for (std::size_t j = 0; j < h.upper_bounds.size(); ++j) {
      if (j > 0) os << ",";
      json_number(os, h.upper_bounds[j]);
    }
    os << "],\"buckets\":[";
    for (std::size_t j = 0; j < h.counts.size(); ++j) {
      if (j > 0) os << ",";
      os << h.counts[j];
    }
    os << "]}";
  }
  os << "}}";
}

void render_prometheus(const MetricsSnapshot& snap, std::ostream& os) {
  // Every metric gets a HELP/TYPE pair (exposition-format grammar; the
  // source name doubles as the help text since registration carries none).
  for (const auto& c : snap.counters) {
    const std::string name = prometheus_name(c.name);
    os << "# HELP " << name << " " << c.name << "\n"
       << "# TYPE " << name << " counter\n"
       << name << " " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    const std::string name = prometheus_name(g.name);
    os << "# HELP " << name << " " << g.name << "\n"
       << "# TYPE " << name << " gauge\n"
       << name << " " << g.value << "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string name = prometheus_name(h.name);
    os << "# HELP " << name << " " << h.name << "\n"
       << "# TYPE " << name << " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t j = 0; j < h.counts.size(); ++j) {
      cumulative += h.counts[j];
      os << name << "_bucket{le=\"";
      if (j < h.upper_bounds.size()) {
        os << h.upper_bounds[j];
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << "\n";
    }
    os << name << "_sum " << h.sum << "\n" << name << "_count " << h.count << "\n";
  }
}

std::string render_stats(const MetricsSnapshot& snap, StatsFormat format) {
  std::ostringstream ss;
  switch (format) {
    case StatsFormat::Json:
      render_json(snap, ss);
      break;
    case StatsFormat::Prometheus:
      render_prometheus(snap, ss);
      break;
    case StatsFormat::Table:
      render_table(snap, ss);
      break;
  }
  return ss.str();
}

}  // namespace via::obs
