// Windowed time-series telemetry: periodic snapshots of a MetricsRegistry
// diffed into per-window deltas, turning cumulative counters into curves
// (choose/sec, per-kind RPC error rates, quarantine transitions per
// window) and histograms into per-window count/mean pairs.  Producers can
// annotate each window with domain values the registry doesn't carry
// (per-window mean PNR, regret), which is what evaluating non-stationary
// learners needs — regret *over time*, not end-of-run totals.
//
// The window unit is whatever the driver uses: the simulation engine
// closes windows on sim seconds, the controller's ticker on wall-clock
// seconds.  Closing a window is snapshot + diff (no hot-path cost); the
// result is plain data that renders as JSON.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace via::obs {

/// One closed window: counter deltas, histogram delta count/mean, and the
/// producer's annotated values.  Deltas of zero are omitted — windows are
/// sparse by construction.
struct TimeSeriesWindow {
  double start = 0.0;
  double end = 0.0;
  std::vector<std::pair<std::string, std::int64_t>> counter_deltas;
  /// name -> {delta count, mean of the values observed this window}.
  std::vector<std::pair<std::string, std::pair<std::int64_t, double>>> histogram_deltas;
  std::vector<std::pair<std::string, double>> values;  ///< annotations

  [[nodiscard]] std::int64_t counter_delta(std::string_view name) const noexcept;
  [[nodiscard]] double value(std::string_view name, double fallback = 0.0) const noexcept;
};

/// A closed-window sequence (plain data; copyable into RunResult).
struct TimeSeries {
  double window = 0.0;  ///< nominal window length (sim or wall seconds)
  std::vector<TimeSeriesWindow> windows;

  [[nodiscard]] bool empty() const noexcept { return windows.empty(); }
  void render_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;
};

/// Accumulates windows over one registry.  Not thread-safe by itself —
/// drivers close windows from a single thread (the sim loop, the ticker) —
/// but snapshotting the registry is safe against concurrent instrument
/// updates, so producers never pause.
class TimeSeriesRecorder {
 public:
  /// `registry` must outlive the recorder.  `window` is the nominal window
  /// length recorded into the series (purely descriptive; close_window
  /// takes explicit bounds).
  TimeSeriesRecorder(const MetricsRegistry* registry, double window);

  /// Annotates the *next* closed window with a named value.
  void annotate(std::string_view name, double value);

  /// Closes [start, end): diffs the registry against the previous close
  /// and appends a window carrying the deltas plus pending annotations.
  void close_window(double start, double end);

  [[nodiscard]] const TimeSeries& series() const noexcept { return series_; }
  [[nodiscard]] TimeSeries take() noexcept { return std::move(series_); }

 private:
  const MetricsRegistry* registry_;
  TimeSeries series_;
  std::map<std::string, std::int64_t, std::less<>> prev_counters_;
  /// name -> {count, sum} at the previous close.
  std::map<std::string, std::pair<std::int64_t, double>, std::less<>> prev_histograms_;
  std::vector<std::pair<std::string, double>> pending_values_;
};

}  // namespace via::obs
