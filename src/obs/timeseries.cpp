#include "obs/timeseries.h"

#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/export.h"

namespace via::obs {

namespace {

void json_number(std::ostream& os, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    os << "null";
  } else {
    os << v;
  }
}

}  // namespace

std::int64_t TimeSeriesWindow::counter_delta(std::string_view name) const noexcept {
  for (const auto& [n, v] : counter_deltas) {
    if (n == name) return v;
  }
  return 0;
}

double TimeSeriesWindow::value(std::string_view name, double fallback) const noexcept {
  for (const auto& [n, v] : values) {
    if (n == name) return v;
  }
  return fallback;
}

void TimeSeries::render_json(std::ostream& os) const {
  os << "{\"window\":";
  json_number(os, window);
  os << ",\"windows\":[";
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const TimeSeriesWindow& w = windows[i];
    if (i > 0) os << ",";
    os << "{\"start\":";
    json_number(os, w.start);
    os << ",\"end\":";
    json_number(os, w.end);
    os << ",\"counters\":{";
    for (std::size_t j = 0; j < w.counter_deltas.size(); ++j) {
      if (j > 0) os << ",";
      os << "\"" << json_escape(w.counter_deltas[j].first)
         << "\":" << w.counter_deltas[j].second;
    }
    os << "},\"histograms\":{";
    for (std::size_t j = 0; j < w.histogram_deltas.size(); ++j) {
      const auto& [name, cm] = w.histogram_deltas[j];
      if (j > 0) os << ",";
      os << "\"" << json_escape(name) << "\":{\"count\":" << cm.first << ",\"mean\":";
      json_number(os, cm.second);
      os << "}";
    }
    os << "},\"values\":{";
    for (std::size_t j = 0; j < w.values.size(); ++j) {
      if (j > 0) os << ",";
      os << "\"" << json_escape(w.values[j].first) << "\":";
      json_number(os, w.values[j].second);
    }
    os << "}}";
  }
  os << "]}";
}

std::string TimeSeries::to_json() const {
  std::ostringstream ss;
  render_json(ss);
  return ss.str();
}

TimeSeriesRecorder::TimeSeriesRecorder(const MetricsRegistry* registry, double window)
    : registry_(registry) {
  series_.window = window;
}

void TimeSeriesRecorder::annotate(std::string_view name, double value) {
  pending_values_.emplace_back(std::string(name), value);
}

void TimeSeriesRecorder::close_window(double start, double end) {
  TimeSeriesWindow w;
  w.start = start;
  w.end = end;
  w.values = std::move(pending_values_);
  pending_values_.clear();

  if (registry_ != nullptr) {
    const MetricsSnapshot snap = registry_->snapshot();
    for (const CounterSample& c : snap.counters) {
      auto [it, inserted] = prev_counters_.try_emplace(c.name, 0);
      const std::int64_t delta = c.value - it->second;
      it->second = c.value;
      if (delta != 0) w.counter_deltas.emplace_back(c.name, delta);
    }
    for (const HistogramSample& h : snap.histograms) {
      auto [it, inserted] = prev_histograms_.try_emplace(h.name, std::pair{std::int64_t{0}, 0.0});
      const std::int64_t dcount = h.count - it->second.first;
      const double dsum = h.sum - it->second.second;
      it->second = {h.count, h.sum};
      if (dcount != 0) {
        w.histogram_deltas.emplace_back(h.name,
                                        std::pair{dcount, dsum / static_cast<double>(dcount)});
      }
    }
  }
  series_.windows.push_back(std::move(w));
}

}  // namespace via::obs
