#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace via::obs {

std::optional<DecisionReason> decision_reason_from(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNumDecisionReasons; ++i) {
    const auto r = static_cast<DecisionReason>(i);
    if (decision_reason_name(r) == name) return r;
  }
  return std::nullopt;
}

namespace {

void append_number(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "null";
    return;
  }
  std::array<char, 32> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "%.6g", v);
  out.append(buf.data(), static_cast<std::size_t>(n));
}

/// Finds `"key":` in `line` and returns the raw value text after it (up to
/// the next ',' or '}'), or nullopt.
std::optional<std::string_view> raw_value(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view rest = line.substr(pos + needle.size());
  std::size_t end = 0;
  bool in_string = false;
  for (; end < rest.size(); ++end) {
    const char c = rest[end];
    if (c == '"') in_string = !in_string;
    if (!in_string && (c == ',' || c == '}')) break;
  }
  return rest.substr(0, end);
}

template <typename T>
std::optional<T> parse_int(std::string_view raw) {
  T v{};
  const auto [ptr, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), v);
  if (ec != std::errc{} || ptr != raw.data() + raw.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view raw) {
  if (raw == "null") return std::numeric_limits<double>::quiet_NaN();
  // std::from_chars for doubles is missing on some libstdc++ versions the
  // toolchain matrix covers, so go through strtod with a bounded copy.
  std::array<char, 64> buf{};
  if (raw.size() >= buf.size()) return std::nullopt;
  raw.copy(buf.data(), raw.size());
  char* end = nullptr;
  const double v = std::strtod(buf.data(), &end);
  if (end != buf.data() + raw.size()) return std::nullopt;
  return v;
}

}  // namespace

std::string DecisionEvent::to_jsonl() const {
  std::string out;
  out.reserve(160);
  out += "{\"call\":";
  out += std::to_string(call_id);
  out += ",\"time\":";
  out += std::to_string(time);
  out += ",\"src\":";
  out += std::to_string(src_as);
  out += ",\"dst\":";
  out += std::to_string(dst_as);
  out += ",\"option\":";
  out += std::to_string(option);
  out += ",\"reason\":\"";
  out += decision_reason_name(reason);
  out += "\",\"predicted\":";
  append_number(out, predicted);
  out += ",\"observed\":";
  append_number(out, observed);
  out += ",\"top_k\":";
  out += std::to_string(top_k_size);
  out += ",\"pulls\":";
  out += std::to_string(bandit_pulls);
  out += "}";
  return out;
}

std::optional<DecisionEvent> DecisionEvent::from_jsonl(std::string_view line) {
  DecisionEvent e;
  const auto call = raw_value(line, "call");
  const auto time_raw = raw_value(line, "time");
  const auto src = raw_value(line, "src");
  const auto dst = raw_value(line, "dst");
  const auto option_raw = raw_value(line, "option");
  const auto reason_raw = raw_value(line, "reason");
  const auto predicted_raw = raw_value(line, "predicted");
  const auto observed_raw = raw_value(line, "observed");
  const auto top_k_raw = raw_value(line, "top_k");
  const auto pulls_raw = raw_value(line, "pulls");
  if (!call || !time_raw || !src || !dst || !option_raw || !reason_raw || !predicted_raw ||
      !observed_raw || !top_k_raw || !pulls_raw) {
    return std::nullopt;
  }

  const auto call_id = parse_int<CallId>(*call);
  const auto time_v = parse_int<TimeSec>(*time_raw);
  const auto src_v = parse_int<AsId>(*src);
  const auto dst_v = parse_int<AsId>(*dst);
  const auto option_v = parse_int<OptionId>(*option_raw);
  const auto top_k_v = parse_int<std::int32_t>(*top_k_raw);
  const auto pulls_v = parse_int<std::int64_t>(*pulls_raw);
  const auto predicted_v = parse_double(*predicted_raw);
  const auto observed_v = parse_double(*observed_raw);
  if (!call_id || !time_v || !src_v || !dst_v || !option_v || !top_k_v || !pulls_v ||
      !predicted_v || !observed_v) {
    return std::nullopt;
  }

  std::string_view reason_name = *reason_raw;
  if (reason_name.size() < 2 || reason_name.front() != '"' || reason_name.back() != '"') {
    return std::nullopt;
  }
  reason_name.remove_prefix(1);
  reason_name.remove_suffix(1);
  const auto reason = decision_reason_from(reason_name);
  if (!reason) return std::nullopt;

  e.call_id = *call_id;
  e.time = *time_v;
  e.src_as = *src_v;
  e.dst_as = *dst_v;
  e.option = *option_v;
  e.reason = *reason;
  e.predicted = *predicted_v;
  e.observed = *observed_v;
  e.top_k_size = *top_k_v;
  e.bandit_pulls = *pulls_v;
  return e;
}

DecisionTrace::DecisionTrace(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void DecisionTrace::record(const DecisionEvent& event) {
  if (capacity_ == 0) return;
  const std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    index_[event.call_id] = ring_.size();
    ring_.push_back(event);
  } else {
    // Overwrite the oldest slot; its call id leaves the index.
    const auto evicted = index_.find(ring_[next_].call_id);
    if (evicted != index_.end() && evicted->second == next_) index_.erase(evicted);
    index_[event.call_id] = next_;
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

void DecisionTrace::fill_observed(CallId call_id, double observed) {
  if (capacity_ == 0) return;
  const std::lock_guard lock(mutex_);
  const auto it = index_.find(call_id);
  if (it != index_.end()) ring_[it->second].observed = observed;
}

std::vector<DecisionEvent> DecisionTrace::snapshot() const {
  const std::lock_guard lock(mutex_);
  std::vector<DecisionEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

void DecisionTrace::export_jsonl(std::ostream& os) const {
  for (const DecisionEvent& e : snapshot()) os << e.to_jsonl() << '\n';
}

std::int64_t DecisionTrace::recorded() const {
  const std::lock_guard lock(mutex_);
  return recorded_;
}

std::int64_t DecisionTrace::dropped() const {
  const std::lock_guard lock(mutex_);
  return recorded_ - static_cast<std::int64_t>(ring_.size());
}

}  // namespace via::obs
