// Process-wide metrics substrate for the telemetry subsystem.
//
// Three primitive instruments, all safe to update concurrently and designed
// so the hot path is a handful of relaxed atomics:
//   - Counter:          monotonically increasing int64 (decisions, bytes, ...)
//   - Gauge:            last-written double (coverage, segment counts, ...)
//   - LatencyHistogram: fixed cumulative-bucket histogram ("le" semantics,
//                       like Prometheus) with an atomic count/sum
//
// Instruments live inside a MetricsRegistry, which owns them at stable
// addresses: callers look a name up once (mutex-protected) and cache the
// returned reference for the hot path.  snapshot() produces a plain-data
// copy that exporters (table / JSON / Prometheus, see obs/export.h) render
// and that RunResult can carry by value.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace via::obs {

class Counter {
 public:
  void inc(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

struct HistogramSample;

/// Histogram over fixed upper bounds (a value lands in the first bucket
/// whose bound is >= it; values beyond the last bound land in an implicit
/// overflow bucket).  Bucket counts, total count, and sum are atomics, so
/// observe() is lock-free.
class LatencyHistogram {
 public:
  /// `upper_bounds` must be sorted ascending and non-empty.
  explicit LatencyHistogram(std::span<const double> upper_bounds);

  void observe(double v) noexcept;

  /// Folds a snapshot of a same-shaped histogram into this one (exact
  /// bucket/count/sum addition).  No-op on bucket-layout mismatch.
  void merge(const HistogramSample& sample) noexcept;

  /// Bucket count including the overflow bucket.
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::span<const double> upper_bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::int64_t bucket(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Convenience boundary generators for registry callers.
  [[nodiscard]] static std::vector<double> exponential_bounds(double first, double factor,
                                                              std::size_t n);
  [[nodiscard]] static std::vector<double> linear_bounds(double first, double step,
                                                         std::size_t n);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> counts_;  ///< bounds_.size() + 1 (overflow)
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ------------------------------------------------------------- snapshots

struct CounterSample {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> upper_bounds;    ///< finite bounds; +inf overflow implied
  std::vector<std::int64_t> counts;    ///< per-bucket, upper_bounds.size() + 1
  std::int64_t count = 0;
  double sum = 0.0;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Approximate quantile (upper bound of the bucket holding rank q*count).
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Plain-data copy of a registry at one point in time.  Copyable, cheap to
/// pass around, and the unit every exporter consumes.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Counter value by exact name; 0 when absent (absent == never touched).
  [[nodiscard]] std::int64_t counter_value(std::string_view name) const noexcept;
  [[nodiscard]] double gauge_value(std::string_view name) const noexcept;
  [[nodiscard]] const HistogramSample* find_histogram(std::string_view name) const noexcept;
};

// -------------------------------------------------------------- registry

/// Thread-safe instrument directory.  Registration takes a mutex; returned
/// references stay valid for the registry's lifetime, so hot paths cache
/// them and touch only atomics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// `upper_bounds` is used only on first registration of `name`.
  [[nodiscard]] LatencyHistogram& histogram(std::string_view name,
                                            std::span<const double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Folds this registry into `target`: counters and histogram buckets add,
  /// gauges overwrite.  Used to accumulate per-run registries into the
  /// process-wide one that bench binaries report from.
  void merge_into(MetricsRegistry& target) const;

  /// The process-wide registry (bench/CLI session aggregate).
  [[nodiscard]] static MetricsRegistry& process();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms_;
};

}  // namespace via::obs
