// The unit of telemetry ownership: one registry + one decision trace +
// one flight recorder + one tracer.
//
// A Telemetry instance is owned by whoever hosts a policy (the simulation
// engine per run, the RPC server for its lifetime, an embedding app) and
// attached to the policy via RoutingPolicy::attach_telemetry().  Attaching
// is optional and detachable; policies must run identically, minus the
// bookkeeping, when none is attached.
//
// The tracer defaults to disabled (TraceConfig::sample_rate == 0):
// components cache a null Tracer* in that case, so request tracing costs
// one pointer test until a host opts in.  The flight recorder defaults to
// a small resident ring — its producers are rare, structural events
// (quarantines, RPC errors, refresh ticks), never per-call work.
#pragma once

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace via::obs {

struct Telemetry {
  MetricsRegistry registry;
  DecisionTrace decisions;
  FlightRecorder flight;
  Tracer tracer;

  explicit Telemetry(std::size_t trace_capacity = 4096, TraceConfig trace_config = {},
                     std::size_t flight_capacity = 4096)
      : decisions(trace_capacity), flight(flight_capacity), tracer(trace_config) {}

  /// The tracer to hand to hot paths: null unless tracing is enabled, so
  /// disabled tracing compiles down to a single branch at each call site.
  [[nodiscard]] Tracer* tracer_if_enabled() noexcept {
    return tracer.enabled() ? &tracer : nullptr;
  }
  /// Same contract for the flight recorder (capacity 0 disables it).
  [[nodiscard]] FlightRecorder* flight_if_enabled() noexcept {
    return flight.enabled() ? &flight : nullptr;
  }
};

}  // namespace via::obs
