// The unit of telemetry ownership: one registry + one decision trace.
//
// A Telemetry instance is owned by whoever hosts a policy (the simulation
// engine per run, the RPC server for its lifetime, an embedding app) and
// attached to the policy via RoutingPolicy::attach_telemetry().  Attaching
// is optional and detachable; policies must run identically, minus the
// bookkeeping, when none is attached.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace via::obs {

struct Telemetry {
  MetricsRegistry registry;
  DecisionTrace decisions;

  explicit Telemetry(std::size_t trace_capacity = 4096) : decisions(trace_capacity) {}
};

}  // namespace via::obs
