#include "obs/span.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

namespace via::obs {

struct SpanBuffer::Stripe {
  mutable std::mutex mutex;
  std::vector<Span> ring;
  std::size_t next = 0;
  std::int64_t recorded = 0;
};

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SpanBuffer::SpanBuffer(std::size_t capacity, std::size_t stripes) : capacity_(capacity) {
  const std::size_t n = round_up_pow2(std::max<std::size_t>(stripes, 1));
  stripe_mask_ = n - 1;
  stripes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) stripes_.push_back(std::make_unique<Stripe>());
}

SpanBuffer::~SpanBuffer() = default;

SpanBuffer::Stripe& SpanBuffer::stripe_for(std::uint64_t trace_id) const {
  return *stripes_[hash_mix(trace_id) & stripe_mask_];
}

void SpanBuffer::add(const Span& span) {
  if (capacity_ == 0) return;
  // Per-stripe share of the total capacity (at least one slot each).
  const std::size_t per_stripe = std::max<std::size_t>(capacity_ / stripes_.size(), 1);
  Stripe& s = stripe_for(span.trace_id);
  const std::lock_guard lock(s.mutex);
  if (s.ring.size() < per_stripe) {
    s.ring.push_back(span);
  } else {
    s.ring[s.next] = span;
    s.next = (s.next + 1) % per_stripe;
  }
  ++s.recorded;
}

std::vector<Span> SpanBuffer::snapshot() const {
  std::vector<Span> out;
  for (const auto& stripe : stripes_) {
    const std::lock_guard lock(stripe->mutex);
    out.insert(out.end(), stripe->ring.begin(), stripe->ring.end());
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.span_id < b.span_id;
  });
  return out;
}

std::int64_t SpanBuffer::recorded() const {
  std::int64_t total = 0;
  for (const auto& stripe : stripes_) {
    const std::lock_guard lock(stripe->mutex);
    total += stripe->recorded;
  }
  return total;
}

void SpanBuffer::clear() {
  for (const auto& stripe : stripes_) {
    const std::lock_guard lock(stripe->mutex);
    stripe->ring.clear();
    stripe->next = 0;
  }
}

SpanBuffer& SpanBuffer::process() {
  static SpanBuffer instance(8192, 8);
  return instance;
}

Tracer::Tracer(TraceConfig config)
    : config_(config), buffer_(config.buffer_capacity, config.stripes) {}

std::uint64_t Tracer::now_ns() noexcept {
  // One steady epoch per process, captured on first use, so spans emitted
  // by different Telemetry instances share a timeline.
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - epoch)
                                        .count());
}

std::uint32_t Tracer::current_tid() noexcept {
  const std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

void Tracer::emit(const Span& span) {
  buffer_.add(span);
  // Mirror into the process-wide sink so failure dumps see every tracer.
  SpanBuffer::process().add(span);
}

StagedSpan::~StagedSpan() {
  if (tracer_ == nullptr) return;
  const std::uint64_t end_ns = Tracer::now_ns();
  const std::uint32_t tid = Tracer::current_tid();
  Span root;
  root.trace_id = trace_id_;
  root.span_id = tracer_->next_span_id();
  root.parent_id = parent_id_;
  root.name = name_;
  root.start_ns = start_ns_;
  root.dur_ns = end_ns - start_ns_;
  root.tid = tid;
  for (std::size_t i = 0; i < stage_count_; ++i) {
    const Mark& m = stages_[i];
    Span child;
    child.trace_id = trace_id_;
    child.span_id = tracer_->next_span_id();
    child.parent_id = root.span_id;
    child.name = m.name;
    child.start_ns = m.begin_ns;
    child.dur_ns = m.end_ns - m.begin_ns;
    child.tid = tid;
    tracer_->emit(child);
  }
  if (tail_name_ != nullptr && end_ns > last_ns_) {
    Span tail;
    tail.trace_id = trace_id_;
    tail.span_id = tracer_->next_span_id();
    tail.parent_id = root.span_id;
    tail.name = tail_name_;
    tail.start_ns = last_ns_;
    tail.dur_ns = end_ns - last_ns_;
    tail.tid = tid;
    tracer_->emit(tail);
  }
  tracer_->emit(root);
}

namespace {

void hex_u64(std::ostream& os, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  char buf[16];
  int i = 16;
  do {
    buf[--i] = kDigits[v & 0xF];
    v >>= 4;
  } while (v != 0);
  os.write(&buf[i], 16 - i);
}

}  // namespace

void export_chrome_trace(std::span<const Span> spans, std::ostream& os,
                         std::size_t max_events) {
  if (spans.size() > max_events) {
    spans = spans.subspan(spans.size() - max_events);  // keep the newest
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) os << ",";
    first = false;
    // Complete ("X") events; Chrome wants microsecond timestamps.  Span
    // names are compile-time literals (see Span::name), safe to emit raw.
    os << "{\"name\":\"" << s.name << "\",\"cat\":\"via\",\"ph\":\"X\",\"ts\":"
       << static_cast<double>(s.start_ns) / 1000.0
       << ",\"dur\":" << static_cast<double>(s.dur_ns) / 1000.0
       << ",\"pid\":1,\"tid\":" << s.tid << ",\"args\":{\"trace\":\"";
    hex_u64(os, s.trace_id);
    os << "\",\"span\":\"";
    hex_u64(os, s.span_id);
    os << "\",\"parent\":\"";
    hex_u64(os, s.parent_id);
    os << "\"}}";
  }
  os << "],\"displayTimeUnit\":\"ns\"}";
}

std::string chrome_trace_json(const SpanBuffer& buffer, std::size_t max_bytes) {
  const std::vector<Span> spans = buffer.snapshot();
  std::size_t max_events = spans.size();
  for (;;) {
    std::ostringstream ss;
    export_chrome_trace(spans, ss, max_events);
    std::string out = ss.str();
    if (max_bytes == 0 || out.size() <= max_bytes || max_events == 0) return out;
    max_events /= 2;  // trim oldest half and retry until it fits
  }
}

}  // namespace via::obs
