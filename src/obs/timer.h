// ScopedTimer: RAII span helper that measures a scope's wall time and
// records it into a LatencyHistogram (in microseconds) on destruction.
//
//   obs::ScopedTimer timer(registry.histogram("rpc.server.request_us",
//                                             obs::kLatencyBoundsUs));
//
// A null-histogram constructor exists so call sites can time conditionally
// ("telemetry attached or not") without branching around the scope.
#pragma once

#include <array>
#include <chrono>

#include "obs/metrics.h"

namespace via::obs {

/// Default microsecond latency buckets: 1us .. ~32ms, powers of two.
inline constexpr std::array<double, 16> kLatencyBoundsUs{
    1,   2,   4,    8,    16,   32,   64,    128,
    256, 512, 1024, 2048, 4096, 8192, 16384, 32768};

/// Nanosecond latency buckets: 32ns .. ~1ms, powers of two.  For in-memory
/// hot paths (the ~179ns ViaPolicy::choose) that the microsecond preset
/// would collapse into its first bucket.
inline constexpr std::array<double, 16> kLatencyBoundsNs{
    32,   64,   128,   256,   512,   1024,   2048,   4096,
    8192, 16384, 32768, 65536, 131072, 262144, 524288, 1048576};

class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& hist) noexcept
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  /// No-op timer when `hist` is null (telemetry disabled).
  explicit ScopedTimer(LatencyHistogram* hist) noexcept
      : hist_(hist),
        start_(hist != nullptr ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{}) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->observe(elapsed_us());
  }

  [[nodiscard]] double elapsed_us() const noexcept {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// ScopedTimer's nanosecond sibling, for hot paths recorded against
/// kLatencyBoundsNs-shaped histograms.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(LatencyHistogram& hist) noexcept
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  /// No-op timer when `hist` is null (telemetry disabled).
  explicit ScopedTimerNs(LatencyHistogram* hist) noexcept
      : hist_(hist),
        start_(hist != nullptr ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{}) {}

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

  ~ScopedTimerNs() {
    if (hist_ != nullptr) hist_->observe(elapsed_ns());
  }

  [[nodiscard]] double elapsed_ns() const noexcept {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace via::obs
