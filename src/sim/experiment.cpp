#include "sim/experiment.h"

#include <algorithm>
#include <limits>

#include "sim/parallel.h"
#include "util/percentile.h"

namespace via {

Experiment::Setup Experiment::default_setup(Scale scale) {
  Setup s;
  switch (scale) {
    case Scale::Small:
      s.world.num_ases = 60;
      s.world.num_relays = 12;
      s.trace.days = 12;
      s.trace.total_calls = 30'000;
      s.trace.active_pairs = 150;
      break;
    case Scale::Medium:
      s.world.num_ases = 150;
      s.world.num_relays = 24;
      s.trace.days = 30;
      s.trace.total_calls = 400'000;
      s.trace.active_pairs = 900;
      break;
    case Scale::Large:
      s.world.num_ases = 300;
      s.world.num_relays = 37;
      s.trace.days = 60;
      s.trace.total_calls = 2'000'000;
      s.trace.active_pairs = 3000;
      break;
  }
  return s;
}

Experiment::Experiment(const Setup& setup)
    : setup_(setup),
      world_(setup.world),
      gt_(world_, setup.ground_truth),
      gen_(gt_, setup.trace, setup.rating),
      arrivals_(gen_.generate_arrivals()) {}

std::unique_ptr<ViaPolicy> Experiment::make_via(Metric target, ViaConfig config) {
  config.target = target;
  return std::make_unique<ViaPolicy>(gt_.option_table(), backbone_fn(), config);
}

std::unique_ptr<OraclePolicy> Experiment::make_oracle(Metric target, BudgetConfig budget) {
  return std::make_unique<OraclePolicy>(gt_, target, budget);
}

std::unique_ptr<DefaultPolicy> Experiment::make_default() {
  return std::make_unique<DefaultPolicy>();
}

std::unique_ptr<PredictionOnlyPolicy> Experiment::make_prediction_only(Metric target) {
  return std::make_unique<PredictionOnlyPolicy>(gt_.option_table(), backbone_fn(), target);
}

std::unique_ptr<ExplorationOnlyPolicy> Experiment::make_exploration_only(Metric target) {
  return std::make_unique<ExplorationOnlyPolicy>(target);
}

RunResult Experiment::run(RoutingPolicy& policy, RunConfig config) {
  SimulationEngine engine(gt_, arrivals_, config);
  return engine.run(policy);
}

void Experiment::warm_caches() {
  if (warmed_) return;
  // +2 days of slack covers refresh-boundary probe calls landing past the
  // last arrival's day.
  const int max_day = arrivals_.empty() ? 0 : day_of(arrivals_.back().time) + 2;
  gt_.warm(arrivals_, max_day);
  warmed_ = true;
}

std::vector<RunResult> Experiment::run_many(std::span<const RunSpec> specs, int threads) {
  ParallelRunner runner(threads);
  return runner.run_all(*this, specs);
}

PnrComparison compare_pnr(const RunResult& baseline, const RunResult& treated) {
  PnrComparison out;
  for (const Metric m : kAllMetrics) {
    out.reduction_pct[metric_index(m)] =
        relative_improvement_pct(baseline.pnr.pnr(m), treated.pnr.pnr(m));
  }
  out.reduction_any_pct =
      relative_improvement_pct(baseline.pnr.pnr_any(), treated.pnr.pnr_any());
  return out;
}

PercentileImprovement compare_percentiles(const RunResult& baseline, const RunResult& treated,
                                          Metric metric, std::vector<double> percentiles) {
  PercentileImprovement out;
  out.metric = metric;
  out.percentiles = std::move(percentiles);

  std::vector<double> base = baseline.values[metric_index(metric)];
  std::vector<double> treat = treated.values[metric_index(metric)];
  std::sort(base.begin(), base.end());
  std::sort(treat.begin(), treat.end());

  for (const double p : out.percentiles) {
    const double b = percentile_sorted(base, p);
    const double t = percentile_sorted(treat, p);
    out.baseline_values.push_back(b);
    out.treated_values.push_back(t);
    out.improvement_pct.push_back(relative_improvement_pct(b, t));
  }
  return out;
}

std::vector<double> best_option_durations(GroundTruth& gt,
                                          std::span<const TrafficMatrix::Pair> pairs, int days,
                                          Metric metric) {
  std::vector<double> medians;
  medians.reserve(pairs.size());

  for (const auto& pair : pairs) {
    if (pair.src == pair.dst) continue;
    const auto options = gt.candidate_options(pair.src, pair.dst);
    if (options.size() < 2) continue;

    std::vector<double> runs;
    OptionId prev_best = kInvalidOption;
    int run = 0;
    for (int day = 0; day < days; ++day) {
      OptionId best = kInvalidOption;
      double best_value = std::numeric_limits<double>::infinity();
      for (const OptionId opt : options) {
        const double v = gt.day_mean(pair.src, pair.dst, opt, day).get(metric);
        if (v < best_value) {
          best_value = v;
          best = opt;
        }
      }
      if (best == prev_best) {
        ++run;
      } else {
        if (run > 0) runs.push_back(static_cast<double>(run));
        prev_best = best;
        run = 1;
      }
    }
    if (run > 0) runs.push_back(static_cast<double>(run));
    if (!runs.empty()) medians.push_back(percentile(runs, 50.0));
  }
  return medians;
}

}  // namespace via
