#include "sim/parallel.h"

#include <exception>
#include <utility>

#include "sim/experiment.h"

namespace via {

std::vector<RunResult> ParallelRunner::run_all(Experiment& experiment,
                                               std::span<const RunSpec> specs) {
  // Serial warm-up: after this, workers only read the ground truth, and
  // relay-option ids already have their deterministic serial-order values.
  experiment.warm_caches();

  std::vector<RunResult> results(specs.size());
  std::vector<std::exception_ptr> errors(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunSpec& spec = specs[i];
    pool_.submit([&experiment, &spec, &result = results[i], &error = errors[i]] {
      try {
        const std::unique_ptr<RoutingPolicy> policy = spec.make_policy();
        SimulationEngine engine(experiment.ground_truth(), experiment.arrivals(),
                                spec.config);
        result = engine.run(*policy);
      } catch (...) {
        error = std::current_exception();
      }
    });
  }
  pool_.wait_idle();

  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(std::move(error));
  }
  return results;
}

}  // namespace via
