#include "sim/oracle.h"

#include <limits>

namespace via {

OptionId OraclePolicy::choose(const CallContext& call) {
  const OptionId direct = RelayOptionTable::direct_id();
  OptionId best = direct;
  double best_value = std::numeric_limits<double>::infinity();
  double direct_value = std::numeric_limits<double>::infinity();

  for (const OptionId opt : call.options) {
    const double v = gt_->day_mean(call.src_as, call.dst_as, opt, call.day()).get(target_);
    if (opt == direct) direct_value = v;
    if (v < best_value) {
      best_value = v;
      best = opt;
    }
  }

  const double benefit = direct_value - best_value;
  budget_.on_call(benefit);
  if (best != direct && !budget_.allow_relay(benefit)) return direct;
  return best;
}

}  // namespace via
