// Experiment harness shared by the bench binaries: world + ground truth +
// workload bundles, policy factories, and the improvement calculators the
// paper's evaluation section reports.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/policies.h"
#include "core/via_policy.h"
#include "netsim/groundtruth.h"
#include "netsim/world.h"
#include "sim/engine.h"
#include "sim/oracle.h"
#include "trace/generator.h"

namespace via {

struct RunSpec;

/// Everything a trace-driven experiment needs, built once per bench.
class Experiment {
 public:
  struct Setup {
    WorldConfig world;
    GroundTruthConfig ground_truth;
    TraceConfig trace;
    RatingModelParams rating;
  };

  /// Scale presets: Small for unit tests, Medium for default benches,
  /// Large for the high-fidelity reruns.
  enum class Scale { Small, Medium, Large };
  [[nodiscard]] static Setup default_setup(Scale scale);

  explicit Experiment(const Setup& setup);

  [[nodiscard]] World& world() noexcept { return world_; }
  [[nodiscard]] GroundTruth& ground_truth() noexcept { return gt_; }
  [[nodiscard]] TraceGenerator& generator() noexcept { return gen_; }
  [[nodiscard]] std::span<const CallArrival> arrivals() const noexcept { return arrivals_; }
  [[nodiscard]] const Setup& setup() const noexcept { return setup_; }

  /// The controller's knowledge of the managed backbone.
  [[nodiscard]] BackboneFn backbone_fn() {
    return [gt = &gt_](RelayId a, RelayId b) { return gt->backbone(a, b); };
  }

  // Policy factories (fresh instance per run).
  [[nodiscard]] std::unique_ptr<ViaPolicy> make_via(Metric target, ViaConfig config = {});
  [[nodiscard]] std::unique_ptr<OraclePolicy> make_oracle(Metric target,
                                                          BudgetConfig budget = {});
  [[nodiscard]] std::unique_ptr<DefaultPolicy> make_default();
  [[nodiscard]] std::unique_ptr<PredictionOnlyPolicy> make_prediction_only(Metric target);
  [[nodiscard]] std::unique_ptr<ExplorationOnlyPolicy> make_exploration_only(Metric target);

  /// Runs one policy over the full trace.
  [[nodiscard]] RunResult run(RoutingPolicy& policy, RunConfig config = {});

  /// Runs every spec concurrently on `threads` workers (<= 0 = hardware
  /// concurrency) and returns results in spec order.  Warms the ground
  /// truth first, which makes the results bit-identical to running the
  /// same specs serially — see sim/parallel.h.
  [[nodiscard]] std::vector<RunResult> run_many(std::span<const RunSpec> specs,
                                                int threads = 0);

  /// Serially pre-fills every GroundTruth cache this experiment's trace
  /// can touch (idempotent; run_many calls it implicitly).
  void warm_caches();

 private:
  Setup setup_;
  World world_;
  GroundTruth gt_;
  TraceGenerator gen_;
  std::vector<CallArrival> arrivals_;
  bool warmed_ = false;
};

// ------------------------------------------------------------ reporting

/// 100*(b-a)/b reduction of PNR between runs, per metric and "any bad".
struct PnrComparison {
  std::array<double, kNumMetrics> reduction_pct{};
  double reduction_any_pct = 0.0;
};
[[nodiscard]] PnrComparison compare_pnr(const RunResult& baseline, const RunResult& treated);

/// Improvement of metric percentiles between two runs (Figure 8a / 12b):
/// improvement[i] = 100*(base_pct - treated_pct)/base_pct at percentiles[i].
struct PercentileImprovement {
  Metric metric{};
  std::vector<double> percentiles;
  std::vector<double> baseline_values;
  std::vector<double> treated_values;
  std::vector<double> improvement_pct;
};
[[nodiscard]] PercentileImprovement compare_percentiles(const RunResult& baseline,
                                                        const RunResult& treated, Metric metric,
                                                        std::vector<double> percentiles = {
                                                            10, 25, 50, 75, 90, 95, 99});

/// Figure 9: for each communicating AS pair, the median number of
/// consecutive days the oracle keeps picking the same best option.
[[nodiscard]] std::vector<double> best_option_durations(GroundTruth& gt,
                                                        std::span<const TrafficMatrix::Pair> pairs,
                                                        int days, Metric metric);

}  // namespace via
