// Deterministic ground-truth fault injection (DESIGN.md §6f).
//
// A FaultPlan is a seeded schedule of relay-level failures applied to
// sampled path performance *at observation time*: the underlying
// GroundTruth distributions are untouched, so the same plan replays bit-
// identically, and a null/empty plan leaves every sample byte-for-byte
// what it was (golden-replay invariant).
//
// Three fault shapes, matching how relay infrastructure actually fails:
//   - RelayOutage:        hard down over [start, end) — any option using
//                         the relay returns outage-grade performance.
//   - RelayFlap:          periodic outage — down for duty*period out of
//                         every period within [start, end), with a
//                         seed-derived phase so two flapping relays don't
//                         synchronize.
//   - SegmentDegradation: soft failure — RTT/jitter multiplied, loss
//                         added, for options using the relay in [start,end).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/relay_option.h"
#include "common/types.h"

namespace via {

struct RelayOutage {
  RelayId relay = -1;
  TimeSec start = 0;
  TimeSec end = 0;
};

struct RelayFlap {
  RelayId relay = -1;
  TimeSec start = 0;
  TimeSec end = 0;
  TimeSec period = 600;   ///< one up/down cycle
  double duty_down = 0.5; ///< fraction of each cycle spent down
};

struct SegmentDegradation {
  RelayId relay = -1;
  TimeSec start = 0;
  TimeSec end = 0;
  double rtt_factor = 1.0;
  double loss_add_pct = 0.0;
  double jitter_factor = 1.0;
};

/// What a down relay looks like to the client that tried it: the call
/// "completes" with catastrophic metrics (the controller's health machine
/// classifies it as a failure; see RelayHealthConfig thresholds).
struct FaultImpairment {
  double outage_rtt_ms = 2500.0;
  double outage_loss_pct = 100.0;
  double outage_jitter_ms = 120.0;
};

struct FaultPlanConfig {
  std::uint64_t seed = 0;  ///< phase-randomizes flaps; nothing else draws
  std::vector<RelayOutage> outages;
  std::vector<RelayFlap> flaps;
  std::vector<SegmentDegradation> degradations;
  FaultImpairment impairment;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultPlanConfig config) : config_(std::move(config)) {}

  /// No scheduled fault at all — callers short-circuit to the unfaulted
  /// sample path.
  [[nodiscard]] bool empty() const noexcept {
    return config_.outages.empty() && config_.flaps.empty() && config_.degradations.empty();
  }

  [[nodiscard]] bool relay_down(RelayId relay, TimeSec t) const noexcept;
  /// Whether any relay the option rides is down at t (Direct never is).
  [[nodiscard]] bool option_down(const RelayOption& option, TimeSec t) const noexcept;

  /// Applies the plan to one sampled performance: outage replaces the
  /// sample with outage-grade metrics, degradations scale it.  Returns
  /// true when the sample was altered.
  bool apply(const RelayOption& option, TimeSec t, PathPerformance& perf) const noexcept;

  [[nodiscard]] const FaultPlanConfig& config() const noexcept { return config_; }

  /// Parses a plan from a compact flag spec, e.g.
  ///   "outage:relay=3,start=86400,end=172800;
  ///    flap:relay=2,start=0,end=86400,period=600,duty=0.5;
  ///    degrade:relay=1,start=0,end=86400,rtt=2.0,loss=5,jitter=1.5;
  ///    seed=7"
  /// (';'-separated clauses, ','-separated key=value fields).  Throws
  /// std::runtime_error on malformed input.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

 private:
  FaultPlanConfig config_;
};

}  // namespace via
