#include "sim/faults.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace via {

namespace {

/// The relays an option rides: none for Direct, {a} for Bounce, {a, b}
/// for Transit.
template <typename Fn>
bool any_relay(const RelayOption& option, Fn&& down) {
  switch (option.kind) {
    case RelayKind::Direct:
      return false;
    case RelayKind::Bounce:
      return down(option.a);
    case RelayKind::Transit:
      return down(option.a) || down(option.b);
  }
  return false;
}

}  // namespace

bool FaultPlan::relay_down(RelayId relay, TimeSec t) const noexcept {
  for (const RelayOutage& o : config_.outages) {
    if (o.relay == relay && t >= o.start && t < o.end) return true;
  }
  for (const RelayFlap& f : config_.flaps) {
    if (f.relay != relay || t < f.start || t >= f.end || f.period <= 0) continue;
    // Seed-derived phase keeps independently flapping relays out of sync.
    const auto phase = static_cast<TimeSec>(
        hash_mix(config_.seed, static_cast<std::uint64_t>(f.relay)) %
        static_cast<std::uint64_t>(f.period));
    const TimeSec in_cycle = (t - f.start + phase) % f.period;
    if (static_cast<double>(in_cycle) <
        f.duty_down * static_cast<double>(f.period)) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::option_down(const RelayOption& option, TimeSec t) const noexcept {
  return any_relay(option, [&](RelayId r) { return relay_down(r, t); });
}

bool FaultPlan::apply(const RelayOption& option, TimeSec t,
                      PathPerformance& perf) const noexcept {
  if (option_down(option, t)) {
    perf.rtt_ms = config_.impairment.outage_rtt_ms;
    perf.loss_pct = config_.impairment.outage_loss_pct;
    perf.jitter_ms = config_.impairment.outage_jitter_ms;
    return true;
  }
  bool touched = false;
  for (const SegmentDegradation& d : config_.degradations) {
    if (t < d.start || t >= d.end) continue;
    if (!any_relay(option, [&](RelayId r) { return r == d.relay; })) continue;
    perf.rtt_ms *= d.rtt_factor;
    perf.loss_pct = std::min(100.0, perf.loss_pct + d.loss_add_pct);
    perf.jitter_ms *= d.jitter_factor;
    touched = true;
  }
  return touched;
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlanConfig config;

  auto next_token = [](std::string_view& s, char sep) -> std::string_view {
    const std::size_t pos = s.find(sep);
    std::string_view tok = s.substr(0, pos);
    s = pos == std::string_view::npos ? std::string_view{} : s.substr(pos + 1);
    return tok;
  };
  auto parse_fields = [&](std::string_view body) {
    std::vector<std::pair<std::string_view, double>> fields;
    while (!body.empty()) {
      const std::string_view field = next_token(body, ',');
      const std::size_t eq = field.find('=');
      if (eq == std::string_view::npos) {
        throw std::runtime_error("fault plan: expected key=value in '" + std::string(field) +
                                 "'");
      }
      fields.emplace_back(field.substr(0, eq), std::stod(std::string(field.substr(eq + 1))));
    }
    return fields;
  };

  while (!spec.empty()) {
    std::string_view clause = next_token(spec, ';');
    if (clause.empty()) continue;
    if (clause.substr(0, 5) == "seed=") {
      // "seed=N" has no clause body.
      config.seed = static_cast<std::uint64_t>(std::stoull(std::string(clause.substr(5))));
      continue;
    }
    if (clause == "seed") throw std::runtime_error("fault plan: seed=N expected");
    const std::size_t colon = clause.find(':');
    const std::string_view kind = clause.substr(0, colon);
    if (colon == std::string_view::npos) {
      throw std::runtime_error("fault plan: unknown clause '" + std::string(clause) + "'");
    }
    const auto fields = parse_fields(clause.substr(colon + 1));
    auto get = [&](std::string_view key, double fallback) {
      for (const auto& [k, v] : fields) {
        if (k == key) return v;
      }
      return fallback;
    };
    if (kind == "outage") {
      RelayOutage o;
      o.relay = static_cast<RelayId>(get("relay", -1));
      o.start = static_cast<TimeSec>(get("start", 0));
      o.end = static_cast<TimeSec>(get("end", 0));
      config.outages.push_back(o);
    } else if (kind == "flap") {
      RelayFlap f;
      f.relay = static_cast<RelayId>(get("relay", -1));
      f.start = static_cast<TimeSec>(get("start", 0));
      f.end = static_cast<TimeSec>(get("end", 0));
      f.period = static_cast<TimeSec>(get("period", 600));
      f.duty_down = get("duty", 0.5);
      config.flaps.push_back(f);
    } else if (kind == "degrade") {
      SegmentDegradation d;
      d.relay = static_cast<RelayId>(get("relay", -1));
      d.start = static_cast<TimeSec>(get("start", 0));
      d.end = static_cast<TimeSec>(get("end", 0));
      d.rtt_factor = get("rtt", 1.0);
      d.loss_add_pct = get("loss", 0.0);
      d.jitter_factor = get("jitter", 1.0);
      config.degradations.push_back(d);
    } else {
      throw std::runtime_error("fault plan: unknown clause kind '" + std::string(kind) + "'");
    }
  }
  return FaultPlan(std::move(config));
}

}  // namespace via
