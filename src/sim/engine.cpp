#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>

#include "obs/telemetry.h"
#include "obs/timer.h"
#include "util/rng.h"

namespace via {

SimulationEngine::SimulationEngine(GroundTruth& ground_truth,
                                   std::span<const CallArrival> arrivals, RunConfig config)
    : gt_(&ground_truth),
      owned_stream_(std::make_unique<SpanStream>(arrivals)),
      stream_(owned_stream_.get()),
      config_(config) {
  assert(std::is_sorted(arrivals.begin(), arrivals.end(),
                        [](const CallArrival& a, const CallArrival& b) {
                          return a.time < b.time;
                        }));
  count_pair_calls();
}

SimulationEngine::SimulationEngine(GroundTruth& ground_truth, ArrivalStream& stream,
                                   RunConfig config)
    : gt_(&ground_truth), stream_(&stream), config_(config) {
  count_pair_calls();
}

void SimulationEngine::count_pair_calls() {
  if (config_.min_pair_calls_for_eval <= 0) return;
  stream_->reset();
  CallArrival a;
  while (stream_->next(a)) ++pair_call_counts_[a.pair_key()];
  stream_->reset();
}

std::span<const OptionId> SimulationEngine::options_for(AsId src, AsId dst) {
  const auto full = gt_->candidate_options(src, dst);
  if (!config_.exclude_transit) return full;

  const std::uint64_t key = as_pair_key(src, dst);
  if (const std::vector<OptionId>* kept = filtered_options_.find(key); kept != nullptr) {
    return kept->empty() ? full : std::span<const OptionId>(*kept);
  }
  std::vector<OptionId> kept;
  kept.reserve(full.size());
  for (const OptionId opt : full) {
    if (gt_->option_table().get(opt).kind != RelayKind::Transit) kept.push_back(opt);
  }
  if (kept.size() == full.size()) {
    // No transit option to exclude: remember that with an empty sentinel
    // and serve the ground-truth span directly instead of a copy.
    filtered_options_.insert(key, {});
    return full;
  }
  return filtered_options_.insert(key, std::move(kept));
}

void SimulationEngine::map_keys(const CallArrival& a, AsId& key_src, AsId& key_dst) const {
  switch (config_.granularity) {
    case Granularity::Country:
      key_src = static_cast<AsId>(a.src_country);
      key_dst = static_cast<AsId>(a.dst_country);
      break;
    case Granularity::AsPair:
      key_src = a.src_as;
      key_dst = a.dst_as;
      break;
    case Granularity::Prefix:
      key_src = static_cast<AsId>(a.src_prefix);
      key_dst = static_cast<AsId>(a.dst_prefix);
      break;
  }
}

RunResult SimulationEngine::run(RoutingPolicy& policy) {
  RunResult result;
  result.policy_name = std::string(policy.name());
  result.pnr = PnrAccumulator(config_.thresholds);
  result.pnr_international = PnrAccumulator(config_.thresholds);
  result.pnr_domestic = PnrAccumulator(config_.thresholds);

  // Per-run telemetry: owned here, attached to the policy for the run.
  std::unique_ptr<obs::Telemetry> telemetry;
  obs::Counter* tel_calls = nullptr;
  obs::Counter* tel_background = nullptr;
  obs::LatencyHistogram* tel_choose_ns = nullptr;
  if (config_.enable_telemetry) {
    telemetry = std::make_unique<obs::Telemetry>(config_.decision_trace_capacity, config_.trace,
                                                 config_.flight_capacity);
    policy.attach_telemetry(telemetry.get());
    tel_calls = &telemetry->registry.counter("engine.calls");
    tel_background = &telemetry->registry.counter("engine.decision.background_relay");
    tel_choose_ns = &telemetry->registry.histogram("engine.choose_ns", obs::kLatencyBoundsNs);
  }
  const auto run_start = std::chrono::steady_clock::now();

  // Windowed time series (§6g): closed on sim-second boundaries, each
  // window annotated with what the registry alone can't say — evaluated
  // calls, mean PNR, and mean RTT over just that window.
  std::unique_ptr<obs::TimeSeriesRecorder> timeseries;
  TimeSec next_window = 0;
  PnrAccumulator window_pnr(config_.thresholds);
  double window_rtt_sum = 0.0;
  std::int64_t window_rtt_count = 0;
  if (telemetry != nullptr && config_.timeseries_window > 0) {
    timeseries = std::make_unique<obs::TimeSeriesRecorder>(
        &telemetry->registry, static_cast<double>(config_.timeseries_window));
    next_window = config_.timeseries_window;
  }
  const auto close_window = [&](TimeSec start, TimeSec end) {
    timeseries->annotate("evaluated_calls", static_cast<double>(window_pnr.total()));
    timeseries->annotate("pnr_any", window_pnr.pnr_any());
    timeseries->annotate("mean_rtt_ms",
                         window_rtt_count > 0
                             ? window_rtt_sum / static_cast<double>(window_rtt_count)
                             : 0.0);
    timeseries->close_window(static_cast<double>(start), static_cast<double>(end));
    window_pnr = PnrAccumulator(config_.thresholds);
    window_rtt_sum = 0.0;
    window_rtt_count = 0;
  };

  // Fault injection (§6f): every ground-truth draw routes through this
  // lambda.  A null or empty plan reduces to one pointer test, so the
  // unfaulted replay stays bit-identical to the plain sample path.
  const FaultPlan* faults =
      (config_.faults != nullptr && !config_.faults->empty()) ? config_.faults : nullptr;
  const auto sample = [&](CallId id, AsId src, AsId dst, OptionId opt, TimeSec t) {
    PathPerformance perf = gt_->sample_call(id, src, dst, opt, t);
    if (faults != nullptr && faults->apply(gt_->option_table().get(opt), t, perf)) {
      ++result.fault_impaired_samples;
    }
    return perf;
  };

  TimeSec next_refresh = config_.refresh_period;

  CallId probe_id = 1'000'000'000'000LL;  // distinct id space for mock calls

  // The engine drives the policy strictly serially (one call at a time, in
  // arrival order) even though ViaPolicy itself is concurrent-safe: with
  // the default single serving stripe this replay path is bit-identical to
  // the pre-split controller (DESIGN.md §6d), which is what makes figure
  // runs and A/B comparisons reproducible.  Refreshes use the monolithic
  // refresh() rather than the §6e prepare/commit split — with no serving
  // traffic in between the two are operation-identical, and the engine has
  // no concurrency to hide the prepare behind.
  stream_->reset();
  TimeSec last_time = 0;
  bool any_arrival = false;
  CallArrival arrival;
  while (stream_->next(arrival)) {
    last_time = arrival.time;
    any_arrival = true;
    // Close time-series windows this call has crossed.
    while (timeseries != nullptr && arrival.time >= next_window) {
      close_window(next_window - config_.timeseries_window, next_window);
      next_window += config_.timeseries_window;
    }

    // Fire refresh boundaries that this call has crossed.
    while (arrival.time >= next_refresh) {
      policy.refresh(next_refresh);

      // Active measurements: execute the controller's requested probes as
      // mock calls right after the refresh (§7).
      if (config_.probes_per_refresh > 0) {
        for (const ProbeRequest& probe :
             policy.plan_probes(static_cast<std::size_t>(config_.probes_per_refresh))) {
          if (probe.src_as == kInvalidAs || probe.option == kInvalidOption) continue;
          Observation obs;
          obs.id = ++probe_id;
          obs.time = next_refresh;
          obs.src_as = probe.src_as;
          obs.dst_as = probe.dst_as;
          obs.option = probe.option;
          obs.ingress = gt_->transit_ingress(probe.src_as, probe.option);
          obs.perf = sample(obs.id, probe.src_as, probe.dst_as, probe.option, next_refresh);
          policy.observe(obs);
          ++result.probes_executed;
        }
      }

      next_refresh += config_.refresh_period;
    }

    CallContext ctx;
    ctx.id = arrival.id;
    ctx.time = arrival.time;
    ctx.src_as = arrival.src_as;
    ctx.dst_as = arrival.dst_as;
    map_keys(arrival, ctx.key_src, ctx.key_dst);
    ctx.src_country = arrival.src_country;
    ctx.dst_country = arrival.dst_country;
    ctx.src_prefix = arrival.src_prefix;
    ctx.dst_prefix = arrival.dst_prefix;
    ctx.options = options_for(arrival.src_as, arrival.dst_as);

    // Connectivity-relayed background traffic: forced onto a (hashed-
    // deterministic) relay option, observed by the policy, not evaluated.
    if (config_.background_relay_fraction > 0.0 && !ctx.options.empty() &&
        hashed_uniform(hash_mix(0xB6, static_cast<std::uint64_t>(arrival.id))) <
            config_.background_relay_fraction) {
      const auto pick_index = static_cast<std::size_t>(
          hashed_uniform(hash_mix(0xB7, static_cast<std::uint64_t>(arrival.id))) *
          static_cast<double>(ctx.options.size()));
      const OptionId forced = ctx.options[std::min(pick_index, ctx.options.size() - 1)];
      if (telemetry != nullptr) {
        tel_background->inc();
        if (telemetry->decisions.enabled()) {
          obs::DecisionEvent event;
          event.call_id = arrival.id;
          event.time = arrival.time;
          event.src_as = ctx.key_src;
          event.dst_as = ctx.key_dst;
          event.option = forced;
          event.reason = obs::DecisionReason::BackgroundRelay;
          telemetry->decisions.record(event);
        }
      }
      Observation obs;
      obs.id = arrival.id;
      obs.time = arrival.time;
      obs.src_as = ctx.key_src;
      obs.dst_as = ctx.key_dst;
      obs.option = forced;
      obs.ingress = gt_->transit_ingress(arrival.src_as, forced);
      obs.perf = sample(arrival.id, arrival.src_as, arrival.dst_as, forced, arrival.time);
      policy.observe(obs);
      continue;
    }

    OptionId option;
    PathPerformance perf;
    if (config_.enable_racing) {
      // Hybrid racing: sample every raced option, keep the best, and feed
      // all measurements back (racing is free information, paid in setup
      // traffic).
      const auto raced = [&] {
        const obs::ScopedTimerNs timer(tel_choose_ns);
        return policy.choose_candidates(ctx);
      }();
      option = raced.front();
      perf = sample(arrival.id, arrival.src_as, arrival.dst_as, option, arrival.time);
      for (const OptionId candidate : raced) {
        const PathPerformance candidate_perf =
            sample(arrival.id, arrival.src_as, arrival.dst_as, candidate, arrival.time);
        Observation obs;
        obs.id = arrival.id;
        obs.time = arrival.time;
        obs.src_as = ctx.key_src;
        obs.dst_as = ctx.key_dst;
        obs.option = candidate;
        obs.ingress = gt_->transit_ingress(arrival.src_as, candidate);
        obs.perf = candidate_perf;
        policy.observe(obs);
        if (candidate != option &&
            candidate_perf.get(config_.race_metric) < perf.get(config_.race_metric)) {
          option = candidate;
          perf = candidate_perf;
        }
      }
      result.raced_extra_samples += static_cast<std::int64_t>(raced.size()) - 1;
    } else {
      {
        const obs::ScopedTimerNs timer(tel_choose_ns);
        option = policy.choose(ctx);
      }
      perf = sample(arrival.id, arrival.src_as, arrival.dst_as, option, arrival.time);
      Observation obs;
      obs.id = arrival.id;
      obs.time = arrival.time;
      obs.src_as = ctx.key_src;
      obs.dst_as = ctx.key_dst;
      obs.option = option;
      obs.ingress = gt_->transit_ingress(arrival.src_as, option);
      obs.perf = perf;
      policy.observe(obs);
    }

    ++result.calls;
    if (tel_calls != nullptr) tel_calls->inc();
    switch (gt_->option_table().get(option).kind) {
      case RelayKind::Direct:
        ++result.used_direct;
        break;
      case RelayKind::Bounce:
        ++result.used_bounce;
        break;
      case RelayKind::Transit:
        ++result.used_transit;
        break;
    }

    if (config_.min_pair_calls_for_eval > 0 &&
        pair_call_counts_[arrival.pair_key()] < config_.min_pair_calls_for_eval) {
      continue;
    }

    ++result.evaluated_calls;
    result.pnr.add(perf);
    if (timeseries != nullptr) {
      window_pnr.add(perf);
      window_rtt_sum += perf.rtt_ms;
      ++window_rtt_count;
    }
    (arrival.international() ? result.pnr_international : result.pnr_domestic).add(perf);
    if (config_.collect_by_country && arrival.international()) {
      result.by_country.try_emplace(arrival.src_country, config_.thresholds)
          .first->second.add(perf);
      result.by_country.try_emplace(arrival.dst_country, config_.thresholds)
          .first->second.add(perf);
    }
    if (config_.collect_values) {
      for (const Metric m : kAllMetrics) {
        result.values[metric_index(m)].push_back(perf.get(m));
      }
    }
  }

  if (telemetry != nullptr) {
    obs::MetricsRegistry& r = telemetry->registry;
    r.counter("engine.evaluated_calls").inc(result.evaluated_calls);
    r.counter("engine.probes_executed").inc(result.probes_executed);
    r.counter("engine.raced_extra_samples").inc(result.raced_extra_samples);
    r.counter("engine.fault.impaired_samples").inc(result.fault_impaired_samples);
    r.gauge("engine.run_seconds")
        .set(std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
                 .count());
    // Final (partial) window, so short traces still produce a series.
    if (timeseries != nullptr) {
      const TimeSec end = any_arrival ? last_time + 1 : next_window;
      close_window(next_window - config_.timeseries_window, end);
      result.timeseries = timeseries->take();
    }
    result.telemetry = r.snapshot();
    result.decisions = telemetry->decisions.snapshot();
    result.spans = telemetry->tracer.buffer().snapshot();
    result.flight = telemetry->flight.snapshot();
    // Session-wide aggregate: how the bench binaries report telemetry.
    r.merge_into(obs::MetricsRegistry::process());
    policy.attach_telemetry(nullptr);
  }
  return result;
}

}  // namespace via
