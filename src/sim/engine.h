// Chronological trace-replay engine (the paper's Section 5.1 methodology).
//
// Calls are replayed in trace order.  For each call the engine asks the
// policy for a relaying option, samples the resulting performance from
// ground truth (a draw from the same (AS pair, option, 24h window)
// distribution, as in the paper), feeds the measurement back to the
// policy, and accumulates evaluation statistics.  Policies are refreshed
// at fixed period boundaries (stages 2-3 cadence, default 24 h).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/flat_map.h"

#include "common/relay_option.h"
#include "core/policy.h"
#include "netsim/groundtruth.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "quality/pnr.h"
#include "sim/faults.h"
#include "trace/arrival.h"
#include "trace/stream.h"

namespace via {

/// Spatial granularity of policy decision state (Figure 17a).
enum class Granularity : std::uint8_t { Country, AsPair, Prefix };

struct RunConfig {
  TimeSec refresh_period = 24 * 3600;  ///< T: controller refresh cadence
  Granularity granularity = Granularity::AsPair;
  bool exclude_transit = false;  ///< restrict candidates to direct+bounce (§5.2)
  /// Fraction of calls relayed for *connectivity* (NAT/firewall traversal),
  /// independent of the policy — the Skype dataset contains such calls and
  /// they are what seeds every strategy's history with relayed-path
  /// samples.  These calls bypass the policy's choice (it still observes
  /// them) and are excluded from evaluation.
  double background_relay_fraction = 0.05;
  /// Active measurements (§7): after each refresh, execute up to this many
  /// of the policy's requested probe calls (0 disables).
  int probes_per_refresh = 0;
  /// Hybrid racing (§7): let the policy race several options per call and
  /// keep the best on `race_metric`; every raced option produces a
  /// measurement the policy observes.
  bool enable_racing = false;
  Metric race_metric = Metric::Rtt;
  /// Evaluate only calls whose AS pair has at least this many calls in the
  /// whole trace (the paper's data-density eligibility filter).
  std::int64_t min_pair_calls_for_eval = 0;
  bool collect_values = true;       ///< keep per-call metric values (percentiles)
  bool collect_by_country = false;  ///< per-country PNR (Figure 14)
  PoorThresholds thresholds;
  /// Telemetry (src/obs/): the engine owns an obs::Telemetry per run,
  /// attaches it to the policy, tags every replayed call (policy-routed
  /// calls are traced by the policy; connectivity-relayed background calls
  /// are tagged by the engine), and snapshots the registry + decision
  /// trace into RunResult.  The per-run registry is also folded into
  /// obs::MetricsRegistry::process() so bench binaries can report a
  /// session-wide summary.
  bool enable_telemetry = true;
  std::size_t decision_trace_capacity = 4096;
  /// Request tracing (§6g): sample_rate 0 (the default) disables it and
  /// the replay is bit-identical to an untraced run; nonzero records 1 in
  /// N decision traces into RunResult::spans.
  obs::TraceConfig trace;
  /// Flight-recorder ring capacity for the run (0 disables; §6g).
  std::size_t flight_capacity = 4096;
  /// Windowed time series (§6g): close a telemetry window every this many
  /// sim seconds into RunResult::timeseries, each annotated with the
  /// window's evaluated-call count, mean PNR, and mean RTT.  0 disables.
  TimeSec timeseries_window = 0;
  /// Fault injection (§6f): every ground-truth sample the engine draws —
  /// policy-routed, background, probe, and raced alike — passes through
  /// the plan, which impairs options riding a faulted relay.  Null or
  /// empty leaves every sample untouched (golden-replay invariant).  The
  /// plan must outlive the run.
  const FaultPlan* faults = nullptr;
};

struct RunResult {
  std::string policy_name;
  std::int64_t calls = 0;
  std::int64_t evaluated_calls = 0;
  PnrAccumulator pnr;
  PnrAccumulator pnr_international;
  PnrAccumulator pnr_domestic;
  std::unordered_map<CountryId, PnrAccumulator> by_country;  ///< international calls
  /// Per-call metric values of evaluated calls (for percentile analysis).
  std::array<std::vector<double>, kNumMetrics> values;
  /// Option-kind mix of the policy's decisions.
  std::int64_t used_direct = 0;
  std::int64_t used_bounce = 0;
  std::int64_t used_transit = 0;
  /// Extension accounting.
  std::int64_t probes_executed = 0;
  std::int64_t raced_extra_samples = 0;  ///< raced options beyond the one kept
  /// Fault accounting (§6f): samples the plan altered (0 without a plan).
  std::int64_t fault_impaired_samples = 0;
  /// Telemetry captured at the end of the run (empty when disabled):
  /// registry snapshot plus the resident tail of the decision trace.
  obs::MetricsSnapshot telemetry;
  std::vector<obs::DecisionEvent> decisions;
  /// §6g observability captures (each empty unless its RunConfig knob
  /// enabled it): windowed counter/histogram deltas, sampled spans, and
  /// the flight recorder's structural events.
  obs::TimeSeries timeseries;
  std::vector<obs::Span> spans;
  std::vector<obs::FlightEvent> flight;

  [[nodiscard]] double relayed_fraction() const noexcept {
    const auto total = used_direct + used_bounce + used_transit;
    return total > 0 ? static_cast<double>(used_bounce + used_transit) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

class SimulationEngine {
 public:
  /// `arrivals` must be sorted by time (TraceGenerator guarantees this).
  /// Wraps the span in a SpanStream — the materialized and streaming
  /// constructors replay identically.
  SimulationEngine(GroundTruth& ground_truth, std::span<const CallArrival> arrivals,
                   RunConfig config = {});

  /// Streaming replay (§6i): pulls arrivals from `stream` one at a time —
  /// nothing materializes the trace, so memory stays flat regardless of
  /// call count.  The stream must yield arrivals sorted by time and must
  /// outlive the engine.  With min_pair_calls_for_eval > 0 the constructor
  /// makes one extra counting pass over the stream (then reset()s it).
  SimulationEngine(GroundTruth& ground_truth, ArrivalStream& stream, RunConfig config = {});

  /// Replays the whole trace through one policy.  reset()s the stream
  /// first, so successive runs (one per policy) see the same trace.
  [[nodiscard]] RunResult run(RoutingPolicy& policy);

  [[nodiscard]] const RunConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::span<const OptionId> options_for(AsId src, AsId dst);
  void map_keys(const CallArrival& a, AsId& key_src, AsId& key_dst) const;
  void count_pair_calls();

  GroundTruth* gt_;
  std::unique_ptr<ArrivalStream> owned_stream_;  ///< span ctor's SpanStream
  ArrivalStream* stream_;
  RunConfig config_;
  FlatMap<std::int64_t> pair_call_counts_;
  /// Transit-free candidate cache (when exclude_transit is set).  An empty
  /// cached vector means "nothing was filtered — serve the ground-truth
  /// span as-is" (a genuinely filtered set always keeps the direct option,
  /// so it can never be empty).
  FlatMap<std::vector<OptionId>> filtered_options_;
};

}  // namespace via
