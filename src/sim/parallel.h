// Parallel experiment runner: fans independent (policy, config) trace
// replays across a thread pool.
//
// Parallel runs are bit-identical to serial ones.  The only mutable state
// runs share is the GroundTruth memo caches and its relay-option interning
// table; every cached value is a pure function of its key, and the runner
// pre-warms the caches serially (Experiment::warm_caches) so option ids are
// interned in the same deterministic order a serial first run would use.
// After warm-up the replays only read GroundTruth, under striped shared
// locks (see DESIGN.md "Threading model").
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/policy.h"
#include "sim/engine.h"
#include "util/thread_pool.h"

namespace via {

class Experiment;

/// One experiment run: a label for reporting, a factory producing a fresh
/// policy instance (invoked on the worker thread), and the run config.
struct RunSpec {
  std::string label;
  std::function<std::unique_ptr<RoutingPolicy>()> make_policy;
  RunConfig config{};
};

/// Executes RunSpecs on a shared thread pool.  Results come back in spec
/// order regardless of completion order; the first exception thrown by any
/// run is rethrown from run_all after every run has finished.
class ParallelRunner {
 public:
  /// `threads` <= 0 selects ThreadPool::default_threads().
  explicit ParallelRunner(int threads = 0) : pool_(threads) {}

  [[nodiscard]] int thread_count() const noexcept { return pool_.thread_count(); }

  [[nodiscard]] std::vector<RunResult> run_all(Experiment& experiment,
                                               std::span<const RunSpec> specs);

 private:
  ThreadPool pool_;
};

}  // namespace via
