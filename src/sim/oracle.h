// Oracle policy (Section 3.2): foresight-endowed relay selection.  For each
// call it inspects the ground-truth *daily average* performance of every
// candidate option and picks the best — exactly the paper's oracle, which
// knows "the average performance of each relaying option on a given day".
// An optional budget makes it the budget-constrained oracle of Figure 16,
// using the *true* benefit for its percentile filter.
#pragma once

#include "core/budget.h"
#include "core/policy.h"
#include "netsim/groundtruth.h"

namespace via {

class OraclePolicy final : public RoutingPolicy {
 public:
  OraclePolicy(GroundTruth& ground_truth, Metric target = Metric::Rtt,
               BudgetConfig budget = {})
      : gt_(&ground_truth), target_(target), budget_(budget) {}

  [[nodiscard]] OptionId choose(const CallContext& call) override;
  [[nodiscard]] std::string_view name() const override { return "oracle"; }

 private:
  GroundTruth* gt_;
  Metric target_;
  BudgetFilter budget_;
};

}  // namespace via
