#include "trace/stream.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace via {

std::vector<CallArrival> ArrivalStream::collect() {
  reset();
  std::vector<CallArrival> out;
  if (total_calls() > 0) out.reserve(static_cast<std::size_t>(total_calls()));
  CallArrival a;
  while (next(a)) out.push_back(a);
  return out;
}

SyntheticArrivalStream::SyntheticArrivalStream(StreamTraceConfig config) : config_(config) {
  assert(config_.days > 0 && config_.total_calls > 0 && config_.active_pairs > 0);
  config_.days = std::max(config_.days, 1);
  config_.total_calls = std::max<std::int64_t>(config_.total_calls, 1);
  config_.active_pairs = std::max<std::int64_t>(config_.active_pairs, 1);
  config_.num_countries = std::max(config_.num_countries, 1);

  // Smallest endpoint universe whose undirected pairs cover active_pairs.
  // Stays far below the 2^24 path_key group-id bound (1M pairs -> 1415
  // endpoints): the stream can never produce a key the history rejects.
  const double p = static_cast<double>(config_.active_pairs);
  auto endpoints = static_cast<std::int64_t>(std::ceil((1.0 + std::sqrt(1.0 + 8.0 * p)) / 2.0));
  while (endpoints * (endpoints - 1) / 2 < config_.active_pairs) ++endpoints;
  num_endpoints_ = static_cast<AsId>(endpoints);

  // The first active_pairs undirected pairs in lexicographic order.  The
  // Zipf ranks are decoupled from that order by a seeded shuffle below, so
  // heavy pairs are spread across the endpoint universe.
  const auto n = static_cast<std::size_t>(config_.active_pairs);
  pairs_.reserve(n);
  for (AsId a = 0; a < num_endpoints_ && pairs_.size() < n; ++a) {
    for (AsId b = a + 1; b < num_endpoints_ && pairs_.size() < n; ++b) {
      pairs_.push_back({a, b});
    }
  }

  const ZipfSampler zipf(n, config_.pair_zipf_exponent);
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) weights[i] = zipf.pmf(i);
  Rng shuffle_rng(hash_mix(config_.seed, 0x5a1f));
  for (std::size_t i = n - 1; i > 0; --i) {
    std::swap(weights[i], weights[shuffle_rng.uniform_index(i + 1)]);
  }

  // Vose alias table: O(n) build, O(1) sample.
  double sum = 0.0;
  for (const double w : weights) sum += w;
  alias_prob_.assign(n, 1.0);
  alias_idx_.resize(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    alias_idx_[i] = static_cast<std::uint32_t>(i);
    weights[i] = weights[i] * static_cast<double>(n) / sum;
    (weights[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    alias_prob_[s] = weights[s];
    alias_idx_[s] = l;
    weights[l] = (weights[l] + weights[s]) - 1.0;
    (weights[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers (FP residue) keep prob 1.0: they always take their own slot.

  // Same diurnal curve as TraceGenerator::generate_arrivals.
  for (int h = 0; h < 24; ++h) {
    hour_weight_[static_cast<std::size_t>(h)] =
        1.0 + 0.6 * std::cos(2.0 * std::numbers::pi * (h - 20) / 24.0);
  }
  weight_per_day_ = 0.0;
  for (const double w : hour_weight_) weight_per_day_ += 3600.0 * w;

  reset();
}

void SyntheticArrivalStream::reset() {
  rng_.reseed(hash_mix(config_.seed, 0x57ca11));
  next_id_ = 1;
  emitted_ = 0;
  sec_ = -1;
  left_in_sec_ = 0;
  rate_acc_ = 0.0;
}

std::size_t SyntheticArrivalStream::sample_pair() {
  // Single uniform draw: integer part picks the column, fraction the coin.
  const double scaled = rng_.uniform() * static_cast<double>(pairs_.size());
  auto idx = static_cast<std::size_t>(scaled);
  if (idx >= pairs_.size()) idx = pairs_.size() - 1;
  const double frac = scaled - static_cast<double>(idx);
  return frac < alias_prob_[idx] ? idx : alias_idx_[idx];
}

CountryId SyntheticArrivalStream::country_of(AsId as) const noexcept {
  return static_cast<CountryId>(
      hash_mix(config_.seed, 0xc0, static_cast<std::uint64_t>(as)) %
      static_cast<std::uint64_t>(config_.num_countries));
}

std::int32_t SyntheticArrivalStream::sample_user(AsId as) noexcept {
  // Same shape as TraceGenerator::sample_user, with the AS's activity
  // hash-derived instead of read from a World (there is none here).
  const double activity = hashed_uniform(hash_mix(config_.seed, 0xac7, static_cast<std::uint64_t>(as)));
  const auto pool = static_cast<std::int32_t>(std::min(4000.0, 30.0 + 60.0 * activity));
  const double u = rng_.uniform();
  const auto idx = static_cast<std::int32_t>(static_cast<double>(pool) * u * u);
  return (static_cast<std::int32_t>(as) << 12) | (std::min(idx, pool - 1) & 0xFFF);
}

bool SyntheticArrivalStream::next(CallArrival& out) {
  while (left_in_sec_ == 0) {
    if (emitted_ >= config_.total_calls) return false;
    ++sec_;
    const TimeSec total_secs = static_cast<TimeSec>(config_.days) * kSecondsPerDay;
    if (sec_ >= total_secs - 1) {
      // Last second absorbs the fractional residue: totals are exact.
      sec_ = total_secs - 1;
      left_in_sec_ = config_.total_calls - emitted_;
      break;
    }
    const double w = hour_weight_[static_cast<std::size_t>(hour_of(sec_))];
    rate_acc_ += static_cast<double>(config_.total_calls) * w /
                 (static_cast<double>(config_.days) * weight_per_day_);
    left_in_sec_ = static_cast<std::int64_t>(rate_acc_);
    rate_acc_ -= static_cast<double>(left_in_sec_);
    left_in_sec_ = std::min(left_in_sec_, config_.total_calls - emitted_);
  }

  const PairEntry& pair = pairs_[sample_pair()];
  out.id = next_id_++;
  out.time = sec_;
  out.src_as = pair.src;
  out.dst_as = pair.dst;
  out.src_country = country_of(pair.src);
  out.dst_country = country_of(pair.dst);
  out.src_user = sample_user(pair.src);
  out.dst_user = sample_user(pair.dst);
  out.src_prefix = (static_cast<PrefixId>(pair.src) << 3) | (out.src_user & 0x7);
  out.dst_prefix = (static_cast<PrefixId>(pair.dst) << 3) | (out.dst_user & 0x7);
  out.duration_min = static_cast<float>(
      rng_.lognormal_mean_cv(config_.mean_duration_min, config_.duration_cv));
  --left_in_sec_;
  ++emitted_;
  return true;
}

std::size_t SyntheticArrivalStream::approx_bytes() const noexcept {
  return sizeof(*this) + pairs_.capacity() * sizeof(PairEntry) +
         alias_prob_.capacity() * sizeof(double) +
         alias_idx_.capacity() * sizeof(std::uint32_t);
}

}  // namespace via
