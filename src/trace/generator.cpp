#include "trace/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <unordered_map>

namespace via {

TraceGenerator::TraceGenerator(GroundTruth& ground_truth, TraceConfig config,
                               RatingModelParams rating)
    : ground_truth_(&ground_truth),
      config_(config),
      rating_(rating, hash_mix(config.seed, 0x4a7e)) {
  assert(config_.days > 0 && config_.total_calls > 0 && config_.active_pairs > 0);
  build_traffic_matrix();
}

void TraceGenerator::build_traffic_matrix() {
  const World& world = ground_truth_->world();
  Rng rng(hash_mix(config_.seed, 0x7a14));
  const auto activity = world.as_activity();

  // Probability that an inter-AS pair is international, chosen so the
  // overall call mix hits the configured international fraction.
  const double p_intl =
      std::clamp(config_.international_fraction / std::max(1e-9, 1.0 - config_.intra_as_fraction),
                 0.0, 1.0);

  std::unordered_map<std::uint64_t, std::size_t> seen;
  const ZipfSampler zipf(static_cast<std::size_t>(config_.active_pairs),
                         config_.pair_zipf_exponent);

  for (int i = 0; i < config_.active_pairs; ++i) {
    const auto src = static_cast<AsId>(rng.weighted_index(activity));
    AsId dst = src;
    if (!rng.bernoulli(config_.intra_as_fraction)) {
      const bool want_intl = rng.bernoulli(p_intl);
      const CountryId src_country = world.as_node(src).country;
      dst = kInvalidAs;
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto cand = static_cast<AsId>(rng.weighted_index(activity));
        if (cand == src) continue;
        const bool intl = world.as_node(cand).country != src_country;
        if (intl == want_intl) {
          dst = cand;
          break;
        }
      }
      if (dst == kInvalidAs) {
        // Small worlds may lack a matching candidate; accept any other AS.
        do {
          dst = static_cast<AsId>(rng.weighted_index(activity));
        } while (dst == src && world.num_ases() > 1);
      }
    }

    const double w = zipf.pmf(static_cast<std::size_t>(i));
    const std::uint64_t key = as_pair_key(src, dst);
    if (const auto it = seen.find(key); it != seen.end()) {
      matrix_.pairs[it->second].weight += w;
    } else {
      seen.emplace(key, matrix_.pairs.size());
      matrix_.pairs.push_back({src, dst, w});
    }
  }

  // Rescale class weights so the *call volume* mix matches the configured
  // targets exactly in expectation (Zipf skew and pair-merging would
  // otherwise let a few heavy pairs distort the class shares).
  const double intl_target = config_.international_fraction;
  const double intra_target = config_.intra_as_fraction;
  const double dom_inter_target = std::max(0.0, 1.0 - intl_target - intra_target);
  double intra_sum = 0.0, intl_sum = 0.0, dom_sum = 0.0;
  for (const auto& p : matrix_.pairs) {
    if (p.src == p.dst) {
      intra_sum += p.weight;
    } else if (world.as_node(p.src).country != world.as_node(p.dst).country) {
      intl_sum += p.weight;
    } else {
      dom_sum += p.weight;
    }
  }
  for (auto& p : matrix_.pairs) {
    if (p.src == p.dst) {
      if (intra_sum > 0.0) p.weight *= intra_target / intra_sum;
    } else if (world.as_node(p.src).country != world.as_node(p.dst).country) {
      if (intl_sum > 0.0) p.weight *= intl_target / intl_sum;
    } else {
      if (dom_sum > 0.0) p.weight *= dom_inter_target / dom_sum;
    }
  }

  pair_weights_.clear();
  pair_weights_.reserve(matrix_.pairs.size());
  for (const auto& p : matrix_.pairs) pair_weights_.push_back(p.weight);
}

std::int32_t TraceGenerator::sample_user(AsId as, Rng& rng) const {
  const double activity = ground_truth_->world().as_node(as).activity;
  const auto pool = static_cast<std::int32_t>(
      std::min(4000.0, 30.0 + 60.0 * activity));
  // Skew towards low indices: heavy users make most calls.
  const double u = rng.uniform();
  const auto idx = static_cast<std::int32_t>(static_cast<double>(pool) * u * u);
  return (static_cast<std::int32_t>(as) << 12) | (std::min(idx, pool - 1) & 0xFFF);
}

std::vector<CallArrival> TraceGenerator::generate_arrivals() { return stream()->collect(); }

std::unique_ptr<ArrivalStream> TraceGenerator::stream() {
  return std::make_unique<MaterializedStream>(materialize_arrivals());
}

std::vector<CallArrival> TraceGenerator::materialize_arrivals() {
  const World& world = ground_truth_->world();
  Rng rng(hash_mix(config_.seed, 0xca11));

  // Diurnal arrival intensity, peaking in the evening.
  std::array<double, 24> hour_weight{};
  for (int h = 0; h < 24; ++h) {
    hour_weight[static_cast<std::size_t>(h)] =
        1.0 + 0.6 * std::cos(2.0 * std::numbers::pi * (h - 20) / 24.0);
  }

  std::vector<CallArrival> arrivals;
  arrivals.reserve(static_cast<std::size_t>(config_.total_calls));

  for (CallId id = 1; id <= config_.total_calls; ++id) {
    const auto& pair = matrix_.pairs[rng.weighted_index(pair_weights_)];

    CallArrival a;
    a.id = id;
    a.src_as = pair.src;
    a.dst_as = pair.dst;
    a.src_country = world.as_node(pair.src).country;
    a.dst_country = world.as_node(pair.dst).country;
    a.src_user = sample_user(pair.src, rng);
    a.dst_user = sample_user(pair.dst, rng);
    // A handful of /24-like prefixes per AS, correlated with the user.
    a.src_prefix = (static_cast<PrefixId>(pair.src) << 3) | (a.src_user & 0x7);
    a.dst_prefix = (static_cast<PrefixId>(pair.dst) << 3) | (a.dst_user & 0x7);

    const auto day = static_cast<TimeSec>(rng.uniform_index(static_cast<std::uint64_t>(config_.days)));
    const auto hour = static_cast<TimeSec>(rng.weighted_index(hour_weight));
    const auto sec = static_cast<TimeSec>(rng.uniform_index(3600));
    a.time = day * kSecondsPerDay + hour * 3600 + sec;

    a.duration_min =
        static_cast<float>(rng.lognormal_mean_cv(config_.mean_duration_min, config_.duration_cv));
    arrivals.push_back(a);
  }

  std::sort(arrivals.begin(), arrivals.end(),
            [](const CallArrival& x, const CallArrival& y) {
              return x.time != y.time ? x.time < y.time : x.id < y.id;
            });
  return arrivals;
}

CallRecord TraceGenerator::realize(const CallArrival& arrival, OptionId option) {
  CallRecord rec;
  rec.id = arrival.id;
  rec.start = arrival.time;
  rec.src_as = arrival.src_as;
  rec.dst_as = arrival.dst_as;
  rec.src_country = arrival.src_country;
  rec.dst_country = arrival.dst_country;
  rec.src_prefix = arrival.src_prefix;
  rec.dst_prefix = arrival.dst_prefix;
  rec.option = option;
  rec.duration_min = arrival.duration_min;
  rec.perf = ground_truth_->sample_call(arrival.id, arrival.src_as, arrival.dst_as, option,
                                        arrival.time);
  rec.rating = rating_.sample_rating(arrival.id, rec.perf);
  return rec;
}

std::vector<CallRecord> TraceGenerator::generate_default_routed() {
  const auto arrivals = generate_arrivals();
  std::vector<CallRecord> records;
  records.reserve(arrivals.size());
  for (const auto& a : arrivals) {
    records.push_back(realize(a, RelayOptionTable::direct_id()));
  }
  return records;
}

}  // namespace via
