// Synthetic workload generator — the stand-in for the Skype trace.
//
// Structure matched to the paper's dataset description (Section 2.1):
//   - heavily skewed call volume across AS pairs (Zipf),
//   - 46.6% international calls, 80.7% inter-AS calls,
//   - diurnal arrival pattern, heavy-tailed call durations,
//   - a small random fraction of calls receives a 1..5 user rating.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/call.h"
#include "netsim/groundtruth.h"
#include "quality/rating.h"
#include "trace/arrival.h"
#include "trace/stream.h"

namespace via {

struct TraceConfig {
  int days = 60;
  std::int64_t total_calls = 500'000;
  int active_pairs = 2000;          ///< distinct AS pairs that generate traffic
  double pair_zipf_exponent = 0.9;  ///< skew of call volume across pairs
  double international_fraction = 0.466;
  double intra_as_fraction = 0.193;  ///< paper: 80.7% of calls are inter-AS
  double mean_duration_min = 4.5;
  double duration_cv = 1.2;
  std::uint64_t seed = 7;
};

/// The communicating AS pairs and their traffic shares.
struct TrafficMatrix {
  struct Pair {
    AsId src = kInvalidAs;
    AsId dst = kInvalidAs;
    double weight = 0.0;
  };
  std::vector<Pair> pairs;
};

class TraceGenerator {
 public:
  /// `ground_truth` supplies the world and per-call performance sampling.
  TraceGenerator(GroundTruth& ground_truth, TraceConfig config, RatingModelParams rating = {});

  /// The traffic matrix is fixed at construction; exposed for analysis.
  [[nodiscard]] const TrafficMatrix& traffic_matrix() const noexcept { return matrix_; }

  /// Generates `total_calls` arrivals sorted by time.  Thin wrapper over
  /// stream()->collect(); kept for fig benches and golden replays.
  [[nodiscard]] std::vector<CallArrival> generate_arrivals();

  /// The same arrivals behind the pull-based cursor API.  This generator's
  /// algorithm (one sequential RNG per call, then a global sort) is
  /// inherently materializing, so the stream wraps the full vector; use
  /// SyntheticArrivalStream for bounded-memory scale runs.
  [[nodiscard]] std::unique_ptr<ArrivalStream> stream();

  /// Generates a full default-routed trace: every call takes the direct
  /// path; performance and ratings are attached.  This is the dataset the
  /// Section 2 analyses consume.
  [[nodiscard]] std::vector<CallRecord> generate_default_routed();

  /// Turns one arrival plus a routing decision into a trace record.
  [[nodiscard]] CallRecord realize(const CallArrival& arrival, OptionId option);

  [[nodiscard]] const TraceConfig& config() const noexcept { return config_; }
  [[nodiscard]] const RatingModel& rating_model() const noexcept { return rating_; }

 private:
  void build_traffic_matrix();
  [[nodiscard]] std::vector<CallArrival> materialize_arrivals();
  /// Samples a user index on an AS (Zipf within the AS's user pool).
  [[nodiscard]] std::int32_t sample_user(AsId as, Rng& rng) const;

  GroundTruth* ground_truth_;
  TraceConfig config_;
  RatingModel rating_;
  TrafficMatrix matrix_;
  std::vector<double> pair_weights_;  ///< cached for weighted sampling
};

}  // namespace via
