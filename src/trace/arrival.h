// Call arrivals: the workload stream before any routing decision is made.
// The simulation engine feeds arrivals to a policy, the policy picks an
// option, and GroundTruth samples the resulting performance.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace via {

struct CallArrival {
  CallId id = 0;
  TimeSec time = 0;
  AsId src_as = kInvalidAs;
  AsId dst_as = kInvalidAs;
  CountryId src_country = -1;
  CountryId dst_country = -1;
  PrefixId src_prefix = -1;
  PrefixId dst_prefix = -1;
  std::int32_t src_user = -1;  ///< globally unique synthetic user id
  std::int32_t dst_user = -1;
  float duration_min = 0.0F;

  [[nodiscard]] bool international() const noexcept { return src_country != dst_country; }
  [[nodiscard]] bool inter_as() const noexcept { return src_as != dst_as; }
  [[nodiscard]] std::uint64_t pair_key() const noexcept { return as_pair_key(src_as, dst_as); }
  [[nodiscard]] int day() const noexcept { return day_of(time); }
};

}  // namespace via
