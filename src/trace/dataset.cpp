#include "trace/dataset.h"

#include <unordered_set>

namespace via {

namespace {

template <typename T, typename SrcAs, typename DstAs, typename SrcCountry, typename DstCountry,
          typename Id, typename Time>
TraceStats summarize_impl(std::span<const T> items, const GroundTruth& gt, SrcAs src_as,
                          DstAs dst_as, SrcCountry src_country, DstCountry dst_country, Id id,
                          Time time) {
  TraceStats s;
  std::unordered_set<AsId> ases;
  std::unordered_set<CountryId> countries;
  std::unordered_set<std::uint64_t> pairs;
  std::int64_t intl = 0, inter_as = 0, wireless = 0;
  int max_day = -1;

  for (const auto& item : items) {
    ++s.calls;
    ases.insert(src_as(item));
    ases.insert(dst_as(item));
    countries.insert(src_country(item));
    countries.insert(dst_country(item));
    pairs.insert(as_pair_key(src_as(item), dst_as(item)));
    if (src_country(item) != dst_country(item)) ++intl;
    if (src_as(item) != dst_as(item)) ++inter_as;
    if (gt.call_is_wireless(id(item))) ++wireless;
    max_day = std::max(max_day, day_of(time(item)));
  }

  s.ases = static_cast<std::int64_t>(ases.size());
  s.countries = static_cast<std::int64_t>(countries.size());
  s.as_pairs = static_cast<std::int64_t>(pairs.size());
  s.days = max_day + 1;
  if (s.calls > 0) {
    s.international_fraction = static_cast<double>(intl) / static_cast<double>(s.calls);
    s.inter_as_fraction = static_cast<double>(inter_as) / static_cast<double>(s.calls);
    s.wireless_fraction = static_cast<double>(wireless) / static_cast<double>(s.calls);
  }
  return s;
}

}  // namespace

TraceStats summarize_arrivals(std::span<const CallArrival> arrivals,
                              const GroundTruth& ground_truth) {
  TraceStats s = summarize_impl(
      arrivals, ground_truth, [](const auto& a) { return a.src_as; },
      [](const auto& a) { return a.dst_as; }, [](const auto& a) { return a.src_country; },
      [](const auto& a) { return a.dst_country; }, [](const auto& a) { return a.id; },
      [](const auto& a) { return a.time; });

  std::unordered_set<std::int32_t> users;
  for (const auto& a : arrivals) {
    users.insert(a.src_user);
    users.insert(a.dst_user);
  }
  s.users = static_cast<std::int64_t>(users.size());
  return s;
}

TraceStats summarize_records(std::span<const CallRecord> records,
                             const GroundTruth& ground_truth) {
  TraceStats s = summarize_impl(
      records, ground_truth, [](const auto& r) { return r.src_as; },
      [](const auto& r) { return r.dst_as; }, [](const auto& r) { return r.src_country; },
      [](const auto& r) { return r.dst_country; }, [](const auto& r) { return r.id; },
      [](const auto& r) { return r.start; });

  std::int64_t rated = 0;
  for (const auto& r : records) {
    if (r.rated()) ++rated;
  }
  if (s.calls > 0) s.rated_fraction = static_cast<double>(rated) / static_cast<double>(s.calls);
  return s;
}

}  // namespace via
