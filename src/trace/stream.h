// Pull-based arrival streams (DESIGN.md §6i).
//
// The paper's corpus is 430M calls; materializing a trace of that size as a
// std::vector<CallArrival> costs ~56 bytes per call — tens of gigabytes —
// before the first decision is made.  ArrivalStream inverts the dataflow:
// consumers (the simulation engine, the scale bench) pull one arrival at a
// time, so generation state is O(active pairs), not O(calls).
//
// Three implementations:
//   - SpanStream: a non-owning cursor over an existing arrival vector; the
//     adapter the engine uses for the legacy span-based entry point.
//   - MaterializedStream: owns the vector (TraceGenerator::stream() wraps
//     its exact legacy generation in one of these; collect() moves the
//     vector out, which is what keeps generate_arrivals() bit-identical).
//   - SyntheticArrivalStream: true next-event generation with bounded
//     state — the 100M-call / 1M-pair path.  It is *not* bit-compatible
//     with TraceGenerator (the legacy algorithm draws every call from one
//     sequential RNG and then globally sorts, which fundamentally requires
//     O(calls) memory); it reproduces the same workload *shape* (Zipf pair
//     skew, diurnal arrivals, heavy-tailed durations) chronologically.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "trace/arrival.h"
#include "util/rng.h"

namespace via {

/// A resettable cursor over a time-sorted arrival sequence.
class ArrivalStream {
 public:
  virtual ~ArrivalStream() = default;

  /// Fills `out` with the next arrival (nondecreasing time); false at end.
  virtual bool next(CallArrival& out) = 0;

  /// Rewinds to the first arrival; the replayed sequence is identical.
  virtual void reset() = 0;

  /// Arrivals one full pass produces.
  [[nodiscard]] virtual std::int64_t total_calls() const noexcept = 0;

  /// Resident bytes of generation state (what bounded-memory runs report).
  [[nodiscard]] virtual std::size_t approx_bytes() const noexcept = 0;

  /// Drains the stream into a vector (fig benches, golden replays).  May
  /// consume the stream's storage; call reset() to stream again only on
  /// implementations that regenerate (SyntheticArrivalStream, SpanStream).
  [[nodiscard]] virtual std::vector<CallArrival> collect();
};

/// Non-owning cursor over an existing arrival vector; `arrivals` must
/// outlive the stream.
class SpanStream final : public ArrivalStream {
 public:
  explicit SpanStream(std::span<const CallArrival> arrivals) : arrivals_(arrivals) {}

  bool next(CallArrival& out) override {
    if (pos_ >= arrivals_.size()) return false;
    out = arrivals_[pos_++];
    return true;
  }
  void reset() override { pos_ = 0; }
  [[nodiscard]] std::int64_t total_calls() const noexcept override {
    return static_cast<std::int64_t>(arrivals_.size());
  }
  [[nodiscard]] std::size_t approx_bytes() const noexcept override { return sizeof(*this); }

 private:
  std::span<const CallArrival> arrivals_;
  std::size_t pos_ = 0;
};

/// Owns a fully generated arrival vector behind the stream interface.
class MaterializedStream final : public ArrivalStream {
 public:
  explicit MaterializedStream(std::vector<CallArrival> arrivals)
      : arrivals_(std::move(arrivals)) {}

  bool next(CallArrival& out) override {
    if (pos_ >= arrivals_.size()) return false;
    out = arrivals_[pos_++];
    return true;
  }
  void reset() override { pos_ = 0; }
  [[nodiscard]] std::int64_t total_calls() const noexcept override {
    return static_cast<std::int64_t>(arrivals_.size());
  }
  [[nodiscard]] std::size_t approx_bytes() const noexcept override {
    return sizeof(*this) + arrivals_.capacity() * sizeof(CallArrival);
  }
  /// Moves the vector out (no copy); the stream is empty afterwards.
  [[nodiscard]] std::vector<CallArrival> collect() override {
    pos_ = 0;
    return std::move(arrivals_);
  }

 private:
  std::vector<CallArrival> arrivals_;
  std::size_t pos_ = 0;
};

/// Workload shape for SyntheticArrivalStream.  Matches TraceConfig's knobs
/// where they overlap, but is self-contained: the synthetic stream needs no
/// World/GroundTruth (whose memo caches are themselves O(pairs × options ×
/// days) — exactly what a 1M-pair run cannot afford).
struct StreamTraceConfig {
  std::int64_t total_calls = 1'000'000;
  int days = 30;
  std::int64_t active_pairs = 10'000;   ///< distinct undirected AS pairs
  double pair_zipf_exponent = 0.9;      ///< skew of call volume across pairs
  int num_countries = 40;
  double mean_duration_min = 4.5;
  double duration_cv = 1.2;
  std::uint64_t seed = 7;
};

/// Bounded-memory chronological generator: O(active_pairs) resident state,
/// O(1) work per arrival (alias-method pair sampling), exact total call
/// count by construction.  Arrivals are emitted second by second following
/// the same diurnal intensity curve as TraceGenerator; per-second counts
/// are a deterministic rate split (the randomness lives in the pair, user,
/// and duration draws).  Fully deterministic per seed, and reset() replays
/// the identical sequence.
class SyntheticArrivalStream final : public ArrivalStream {
 public:
  explicit SyntheticArrivalStream(StreamTraceConfig config);

  bool next(CallArrival& out) override;
  void reset() override;
  [[nodiscard]] std::int64_t total_calls() const noexcept override {
    return config_.total_calls;
  }
  [[nodiscard]] std::size_t approx_bytes() const noexcept override;

  [[nodiscard]] const StreamTraceConfig& config() const noexcept { return config_; }
  /// Endpoint-group universe size (largest AS id is num_endpoints()-1).
  [[nodiscard]] AsId num_endpoints() const noexcept { return num_endpoints_; }

 private:
  struct PairEntry {
    AsId src = kInvalidAs;
    AsId dst = kInvalidAs;
  };

  [[nodiscard]] std::size_t sample_pair();
  [[nodiscard]] CountryId country_of(AsId as) const noexcept;
  [[nodiscard]] std::int32_t sample_user(AsId as) noexcept;

  StreamTraceConfig config_;
  AsId num_endpoints_ = 0;
  std::vector<PairEntry> pairs_;
  // Vose alias table over the (shuffled) Zipf weights: one uniform draw
  // picks a pair in O(1) — the legacy generator's linear weighted_index
  // scan is O(pairs) per call and dominates at 1M pairs.
  std::vector<double> alias_prob_;
  std::vector<std::uint32_t> alias_idx_;
  std::array<double, 24> hour_weight_{};
  double weight_per_day_ = 0.0;  ///< sum of all per-second weights in one day

  // Cursor state (reset() rewinds all of it).
  Rng rng_{0};
  CallId next_id_ = 1;
  std::int64_t emitted_ = 0;
  TimeSec sec_ = -1;              ///< current emission second
  std::int64_t left_in_sec_ = 0;  ///< arrivals still owed to sec_
  double rate_acc_ = 0.0;         ///< fractional arrivals carried forward
};

}  // namespace via
