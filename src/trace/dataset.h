// Dataset summary statistics (the paper's Table 1 plus the §2.1 headline
// characteristics: international / inter-AS / wireless call fractions).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/call.h"
#include "netsim/groundtruth.h"
#include "trace/arrival.h"

namespace via {

struct TraceStats {
  std::int64_t calls = 0;
  std::int64_t users = 0;
  std::int64_t ases = 0;
  std::int64_t countries = 0;
  std::int64_t as_pairs = 0;
  int days = 0;
  double international_fraction = 0.0;
  double inter_as_fraction = 0.0;
  double wireless_fraction = 0.0;
  double rated_fraction = 0.0;  ///< only meaningful when computed from records
};

/// Summarizes an arrival stream (pre-routing workload).
[[nodiscard]] TraceStats summarize_arrivals(std::span<const CallArrival> arrivals,
                                            const GroundTruth& ground_truth);

/// Summarizes a realized trace (post-routing records; no user info).
[[nodiscard]] TraceStats summarize_records(std::span<const CallRecord> records,
                                           const GroundTruth& ground_truth);

}  // namespace via
