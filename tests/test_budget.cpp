#include "core/budget.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace via {
namespace {

TEST(BudgetFilter, UnlimitedAlwaysAllows) {
  BudgetFilter f({.fraction = 1.0, .aware = true});
  for (int i = 0; i < 100; ++i) {
    f.on_call(0.0);
    EXPECT_TRUE(f.allow_relay(0.0));
  }
}

TEST(BudgetFilter, TokensGateRelayVolume) {
  BudgetFilter f({.fraction = 0.25, .aware = false});
  int granted = 0;
  const int calls = 10'000;
  for (int i = 0; i < calls; ++i) {
    f.on_call(5.0);
    if (f.allow_relay(5.0)) ++granted;
  }
  EXPECT_NEAR(granted / static_cast<double>(calls), 0.25, 0.02);
}

TEST(BudgetFilter, UnawareRejectsOnlyNegativeBenefit) {
  BudgetFilter f({.fraction = 0.5, .aware = false});
  // Two on_calls accrue one full token each time before the decision.
  f.on_call(-1.0);
  f.on_call(-1.0);
  EXPECT_FALSE(f.allow_relay(-1.0));  // negative benefit: refused, token kept
  EXPECT_TRUE(f.allow_relay(0.0));    // unknown benefit: greedily spends it
  f.on_call(0.001);
  f.on_call(0.001);
  EXPECT_TRUE(f.allow_relay(0.001));
}

TEST(BudgetFilter, AwareRequiresHighBenefit) {
  BudgetFilter f({.fraction = 0.2, .aware = true});
  Rng rng(3);
  // Benefits uniform in [0, 100): the aware filter should grant mostly to
  // the top ~20% (benefit > ~80).
  int low_grants = 0, high_grants = 0, low_calls = 0, high_calls = 0;
  for (int i = 0; i < 20'000; ++i) {
    const double benefit = rng.uniform(0, 100);
    f.on_call(benefit);
    const bool granted = f.allow_relay(benefit);
    if (benefit < 50) {
      ++low_calls;
      low_grants += granted;
    } else if (benefit > 85) {
      ++high_calls;
      high_grants += granted;
    }
  }
  EXPECT_LT(low_grants / static_cast<double>(low_calls), 0.05);
  EXPECT_GT(high_grants / static_cast<double>(high_calls), 0.6);
}

TEST(BudgetFilter, AwareThresholdTracksPercentile) {
  BudgetFilter f({.fraction = 0.3, .aware = true});
  Rng rng(5);
  for (int i = 0; i < 50'000; ++i) f.on_call(rng.uniform(0, 10));
  // 70th percentile of U[0,10) is 7.
  EXPECT_NEAR(f.benefit_threshold(), 7.0, 0.3);
}

TEST(BudgetFilter, AwareStaysWithinBudget) {
  BudgetFilter f({.fraction = 0.3, .aware = true});
  Rng rng(7);
  int granted = 0;
  const int calls = 20'000;
  for (int i = 0; i < calls; ++i) {
    const double benefit = rng.uniform(0, 100);
    f.on_call(benefit);
    if (f.allow_relay(benefit)) ++granted;
  }
  EXPECT_LE(granted / static_cast<double>(calls), 0.31);
}

TEST(BudgetFilter, CountsAccounting) {
  BudgetFilter f({.fraction = 0.5, .aware = false});
  for (int i = 0; i < 10; ++i) {
    f.on_call(1.0);
    (void)f.allow_relay(1.0);
  }
  EXPECT_EQ(f.calls_seen(), 10);
  EXPECT_GT(f.relays_granted(), 0);
}

TEST(BudgetFilter, ThresholdTracksNegativeBenefits) {
  // A purely negative benefit distribution pushes the threshold negative:
  // with slack budget, the filter must not block relaying outright (the
  // bandit may know better than the predictor).
  BudgetFilter f({.fraction = 0.5, .aware = true});
  for (int i = 0; i < 100; ++i) f.on_call(-5.0);
  EXPECT_NEAR(f.benefit_threshold(), -5.0, 0.5);
}

// Property: granted fraction tracks the configured budget for the aware
// filter across budget levels.
class BudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweep, GrantedFractionNearBudget) {
  const double budget = GetParam();
  BudgetFilter f({.fraction = budget, .aware = true});
  Rng rng(hash_mix(static_cast<std::uint64_t>(budget * 100), 13));
  int granted = 0;
  const int calls = 30'000;
  for (int i = 0; i < calls; ++i) {
    const double benefit = rng.uniform(0, 100);
    f.on_call(benefit);
    if (f.allow_relay(benefit)) ++granted;
  }
  const double fraction = granted / static_cast<double>(calls);
  EXPECT_LE(fraction, budget + 0.02);
  EXPECT_GE(fraction, budget * 0.5);  // threshold + tokens, so below budget but not starved
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep, ::testing::Values(0.1, 0.2, 0.3, 0.5, 0.8));

}  // namespace
}  // namespace via
